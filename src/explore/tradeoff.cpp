#include "explore/tradeoff.h"

#include <ostream>

#include "cost/cost_analysis.h"

namespace asilkit::explore {

std::ostream& operator<<(std::ostream& os, const TradeoffPoint& p) {
    return os << p.label << ": cost=" << p.cost << ", P(fail)=" << p.failure_probability
              << ", app_nodes=" << p.app_nodes << ", resources=" << p.resources
              << ", ft_nodes=" << p.ft_dag_nodes << ", ft_paths=" << p.ft_paths
              << ", bdd_nodes=" << p.bdd_nodes;
}

namespace {

TradeoffPoint fill_point(const ArchitectureModel& m, std::string label,
                         const cost::CostMetric& metric, const analysis::ProbabilityResult& prob) {
    TradeoffPoint point;
    point.label = std::move(label);
    point.cost = cost::total_cost(m, metric);
    point.failure_probability = prob.failure_probability;
    point.app_nodes = m.app().node_count();
    point.resources = m.resources().node_count();
    point.ft_dag_nodes = prob.ft_stats.dag_nodes;
    point.ft_paths = prob.ft_stats.paths;
    point.bdd_nodes = prob.bdd_nodes;
    return point;
}

}  // namespace

TradeoffPoint measure_point(const ArchitectureModel& m, std::string label,
                            const cost::CostMetric& metric,
                            const analysis::ProbabilityOptions& prob_options) {
    return fill_point(m, std::move(label), metric,
                      analysis::analyze_failure_probability(m, prob_options));
}

TradeoffPoint measure_point(const ArchitectureModel& m, std::string label,
                            const cost::CostMetric& metric,
                            const analysis::ProbabilityOptions& prob_options,
                            engine::EvalEngine& engine) {
    return fill_point(m, std::move(label), metric, engine.analyze(m, prob_options));
}

}  // namespace asilkit::explore

# Empty dependencies file for asilkit_explore.
# This may be replaced when dependencies are built.

#include "analysis/sim_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <random>

#include "analysis/cutsets.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::analysis {
namespace {

// Kernel geometry.  A *lane batch* of kLaneWords words (512 trials) is
// the sweep unit: event masks and gate values live in SoA lanes of
// kLaneWords contiguous words per slot, so every gate op is a short
// fixed-length loop the vectorizer unrolls.  A *granule* of
// kGranuleWords words (4096 trials) is the accumulation unit: partial
// sums are written to one slot per granule and reduced in granule
// order, which is what makes the estimate bitwise independent of the
// thread count and the block size (both only decide who computes a
// granule, never what a granule contains).
constexpr std::size_t kLaneWords = 8;
constexpr std::size_t kGranuleWords = 64;
constexpr std::uint64_t kGranuleTrials = kGranuleWords * 64;

/// Number of significant bits kept in a sampling threshold.  An event
/// probability is truncated toward zero to this many significant bits
/// of its 64-bit fixed-point form, which bounds the worst-case
/// MSB-first comparison scan (it may stop at the threshold's lowest
/// set bit; the expected scan is ~log2(64) words regardless).  The
/// relative bias is below 2^-24 ~ 6e-8 — orders of magnitude under any
/// reachable sampling error — and both the plain and the
/// importance-sampled estimator target the same truncated model, so
/// the truncation never unbalances a likelihood ratio.
constexpr int kThresholdBits = 24;

/// One-pass evaluation order: gate indices sorted so every gate's gate
/// children precede it.  Identical to the order the scalar oracle has
/// always used (all gates visited, roots in index order).
std::vector<std::uint32_t> evaluation_order(const ftree::FaultTree& ft) {
    const auto gates = ft.gates();
    std::vector<std::uint8_t> state(gates.size(), 0);  // 0 new, 1 open, 2 done
    std::vector<std::uint32_t> order;
    order.reserve(gates.size());
    std::vector<std::uint32_t> stack;
    for (std::uint32_t root = 0; root < gates.size(); ++root) {
        if (state[root]) continue;
        stack.push_back(root);
        while (!stack.empty()) {
            const std::uint32_t g = stack.back();
            if (state[g] == 2) {
                stack.pop_back();
                continue;
            }
            if (state[g] == 1) {
                state[g] = 2;
                order.push_back(g);
                stack.pop_back();
                continue;
            }
            state[g] = 1;
            for (const ftree::FtRef& c : gates[g].children) {
                if (c.kind == ftree::FtRef::Kind::Gate && state[c.index] == 0) {
                    stack.push_back(c.index);
                }
            }
        }
    }
    return order;
}

/// `p` as a truncated 64-bit fixed-point threshold: the sampled
/// probability is threshold / 2^64.  `certain` marks p >= 1 (the mask
/// is all-ones, no RNG consumed); probabilities below 2^-64 truncate
/// to a zero threshold (the mask is all-zeros).
struct EventThreshold {
    std::uint64_t bits = 0;
    bool certain = false;
};

EventThreshold make_threshold(double p) noexcept {
    if (!(p > 0.0)) return {0, false};
    if (p >= 1.0) return {0, true};
    std::uint64_t t = static_cast<std::uint64_t>(p * 0x1p64);
    if (t != 0) {
        const int low = 63 - std::countl_zero(t) - (kThresholdBits - 1);
        if (low > 0) t &= ~((std::uint64_t{1} << low) - 1);
    }
    return {t, false};
}

/// The probability a truncated threshold actually samples at.  Exact:
/// the threshold has at most kThresholdBits significant bits, so the
/// double conversion does not round.
double threshold_probability(const EventThreshold& t) noexcept {
    return t.certain ? 1.0 : std::ldexp(static_cast<double>(t.bits), -64);
}

/// CLT interval shared by every estimator, with half a trial of slack
/// so a zero-failure run still brackets 0.  `slack_weight` is the
/// estimator's granularity: 1 for unweighted counting, the heaviest
/// observed failing weight under importance sampling (so a sharp
/// rare-event interval is not inflated to the worst-case weight bound).
void fill_interval(SimulationResult& r, double std_error, double slack_weight) {
    r.std_error = std_error;
    const double slack = 0.5 * slack_weight / static_cast<double>(r.trials);
    r.ci95_low = r.estimate - 1.96 * std_error - slack;
    r.ci95_high = r.estimate + 1.96 * std_error + slack;
}

struct GranulePartial {
    std::uint64_t failures = 0;
    double sum_w = 0.0;    ///< sum of likelihood-ratio weights, all trials
    double sum_w2 = 0.0;   ///< sum of squared weights, all trials
    double sum_wi = 0.0;   ///< sum of weights over failing trials
    double sum_w2i = 0.0;  ///< sum of squared weights over failing trials
    double max_wi = 0.0;   ///< heaviest weight among failing trials
};

}  // namespace

/// Sampling distribution of the bit-parallel kernel: per-event
/// thresholds (possibly biased toward cut-set events) plus everything
/// the likelihood-ratio estimator needs to stay unbiased under the
/// bias.  With importance sampling off, `ratios` is empty and `w0` is
/// exactly 1, so the weighted accumulators degenerate to plain counts.
struct SimEngine::Proposal {
    std::vector<EventThreshold> thresholds;  ///< per event: actual sampling probability
    bool is = false;
    double w0 = 1.0;  ///< all-clear likelihood ratio, prod (1-p)/(1-q) >= 1
    /// Biased events with their per-occurrence weight factor
    /// R_e = (p_e/q_e) * ((1-q_e)/(1-p_e)) <= 1: a trial's weight is
    /// w0 * prod over *failed* biased events of R_e, so every weight is
    /// bounded by w0 and the estimator's variance is finite.
    std::vector<std::pair<std::uint32_t, double>> ratios;

    static Proposal make(const ftree::FaultTree& ft, const SimulationOptions& options,
                         const std::vector<double>& p) {
        Proposal proposal;
        proposal.thresholds.resize(p.size());
        for (std::size_t e = 0; e < p.size(); ++e) proposal.thresholds[e] = make_threshold(p[e]);
        if (!options.importance_sampling) return proposal;

        if (!(options.is_bias > 0.0) || !(options.is_bias < 1.0)) {
            throw AnalysisError("importance sampling bias must lie in (0, 1)");
        }
        proposal.is = true;
        CutSetOptions cut_options;
        cut_options.max_order = options.is_max_order;
        std::vector<std::uint8_t> in_cut(p.size(), 0);
        for (const CutSet& cut : minimal_cut_sets(ft, cut_options)) {
            for (const std::uint32_t e : cut) in_cut[e] = 1;
        }
        for (std::size_t e = 0; e < p.size(); ++e) {
            if (in_cut[e] == 0 || proposal.thresholds[e].certain) continue;
            const EventThreshold biased =
                make_threshold(std::max(p[e], options.is_bias));
            if (biased.bits <= proposal.thresholds[e].bits && !biased.certain) continue;
            const double target = threshold_probability(proposal.thresholds[e]);
            const double q = threshold_probability(biased);
            proposal.w0 *= (1.0 - target) / (1.0 - q);
            proposal.ratios.emplace_back(
                static_cast<std::uint32_t>(e), (target / q) * ((1.0 - q) / (1.0 - target)));
            proposal.thresholds[e] = biased;
        }
        return proposal;
    }
};

SimEngine::SimEngine(const ftree::FaultTree& ft) : ft_(&ft) {
    if (!ft.has_top()) throw AnalysisError("SimEngine: fault tree has no top event");
    obs::ObsSpan span("sim.plan", "sim");
    const auto gates = ft.gates();
    const auto basics = ft.basic_events();
    order_ = evaluation_order(ft);
    gate_is_and_.resize(gates.size());
    child_begin_.resize(gates.size() + 1, 0);
    std::size_t children = 0;
    for (const ftree::Gate& g : gates) children += g.children.size();
    child_slot_.reserve(children);
    for (std::uint32_t g = 0; g < gates.size(); ++g) {
        gate_is_and_[g] = gates[g].kind == ftree::GateKind::And ? 1 : 0;
        child_begin_[g] = static_cast<std::uint32_t>(child_slot_.size());
        for (const ftree::FtRef& c : gates[g].children) {
            const std::uint32_t slot = c.kind == ftree::FtRef::Kind::Gate
                                           ? c.index
                                           : static_cast<std::uint32_t>(gates.size()) + c.index;
            child_slot_.push_back(slot);
        }
    }
    child_begin_[gates.size()] = static_cast<std::uint32_t>(child_slot_.size());
    lambdas_.resize(basics.size());
    for (std::size_t e = 0; e < basics.size(); ++e) lambdas_[e] = basics[e].lambda;
    const ftree::FtRef top = ft.top();
    top_slot_ = top.kind == ftree::FtRef::Kind::Gate
                    ? top.index
                    : static_cast<std::uint32_t>(gates.size()) + top.index;
}

std::vector<double> SimEngine::event_probabilities(const SimulationOptions& options) const {
    std::vector<double> p(lambdas_.size());
    for (std::size_t e = 0; e < lambdas_.size(); ++e) {
        p[e] = 1.0 - std::exp(-lambdas_[e] * options.rate_scale * options.mission_hours);
    }
    return p;
}

SimulationResult SimEngine::run(const SimulationOptions& options) const {
    obs::ObsSpan span("sim.run", "sim");
    if (options.trials == 0) throw AnalysisError("simulation needs at least one trial");
    const SimulationResult result = options.engine == SimEngineKind::Naive
                                        ? run_naive(options)
                                        : run_bit_parallel(options);
    static obs::Counter& runs = obs::Registry::global().counter("sim.runs");
    static obs::Counter& trials = obs::Registry::global().counter("sim.trials");
    static obs::Counter& failures = obs::Registry::global().counter("sim.failures");
    static obs::Gauge& ess = obs::Registry::global().gauge("sim.ess");
    runs.inc();
    trials.add(result.trials);
    failures.add(result.failures);
    ess.set(result.ess);
    return result;
}

SimulationResult SimEngine::run_naive(const SimulationOptions& options) const {
    if (options.importance_sampling) {
        throw AnalysisError("importance sampling requires the bit-parallel engine");
    }
    const std::vector<double> p = event_probabilities(options);
    std::mt19937_64 rng(options.seed);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    const std::size_t gate_count = gate_is_and_.size();
    std::vector<std::uint8_t> values(gate_count + lambdas_.size(), 0);

    SimulationResult result;
    result.trials = options.trials;
    for (std::uint64_t t = 0; t < options.trials; ++t) {
        for (std::size_t e = 0; e < p.size(); ++e) {
            values[gate_count + e] = uniform(rng) < p[e] ? 1 : 0;
        }
        for (const std::uint32_t g : order_) {
            const std::uint32_t begin = child_begin_[g];
            const std::uint32_t end = child_begin_[g + 1];
            std::uint8_t value = gate_is_and_[g] != 0 && begin != end ? 1 : 0;
            for (std::uint32_t c = begin; c < end; ++c) {
                const std::uint8_t child = values[child_slot_[c]];
                if (gate_is_and_[g] == 0) {
                    if (child != 0) {
                        value = 1;
                        break;
                    }
                } else if (child == 0) {
                    value = 0;
                    break;
                }
            }
            values[g] = value;
        }
        if (values[top_slot_] != 0) ++result.failures;
    }
    result.estimate =
        static_cast<double>(result.failures) / static_cast<double>(result.trials);
    fill_interval(result,
                  std::sqrt(result.estimate * (1.0 - result.estimate) /
                            static_cast<double>(result.trials)),
                  1.0);
    result.ess = static_cast<double>(result.trials);
    return result;
}

SimulationResult SimEngine::run_bit_parallel(const SimulationOptions& options) const {
    const std::vector<double> p = event_probabilities(options);
    const Proposal proposal = Proposal::make(*ft_, options, p);

    const std::size_t gate_count = gate_is_and_.size();
    const std::size_t slots = gate_count + lambdas_.size();
    const std::uint64_t total_words = (options.trials + 63) / 64;
    const std::uint64_t granules = (options.trials + kGranuleTrials - 1) / kGranuleTrials;
    const std::uint64_t granules_per_block =
        std::max<std::uint64_t>(1, (std::max<std::uint64_t>(options.block_trials, 1) +
                                    kGranuleTrials - 1) /
                                       kGranuleTrials);
    const std::uint64_t blocks = (granules + granules_per_block - 1) / granules_per_block;

    // Samples the Bernoulli masks of every basic event for the lane
    // batch of words [word0, word0 + kLaneWords).  Each trial's mask
    // bit is [X < t] for a uniform 64-bit X whose bit b is taken from
    // the RNG word addressed by (seed, absolute trial word,
    // event * 64 + b) — a pure function, so the sampled field is
    // identical whatever thread or block visits it.  The comparison is
    // bit-sliced MSB-first: a trial stays `undecided` only while its
    // random bits tie the threshold's, so half the undecided trials
    // resolve per bit and the scan almost always stops after
    // ~log2(64) + a few RNG words — independent of how small t is.
    // Early exit never changes the result (decided bits are final, and
    // below the threshold's lowest set bit `lt` can no longer grow),
    // which is what keeps the output bitwise deterministic.
    const auto sample_events = [&](std::uint64_t* values, std::uint64_t word0) {
        for (std::size_t e = 0; e < lambdas_.size(); ++e) {
            std::uint64_t* mask = values + (gate_count + e) * kLaneWords;
            const EventThreshold& threshold = proposal.thresholds[e];
            if (threshold.certain) {
                std::fill_n(mask, kLaneWords, ~std::uint64_t{0});
                continue;
            }
            const std::uint64_t t = threshold.bits;
            if (t == 0) {
                std::fill_n(mask, kLaneWords, std::uint64_t{0});
                continue;
            }
            const int stop = std::countr_zero(t);
            for (std::size_t lane = 0; lane < kLaneWords; ++lane) {
                const std::uint64_t word = word0 + lane;
                std::uint64_t lt = 0;
                std::uint64_t undecided = ~std::uint64_t{0};
                for (int b = 63; b >= stop; --b) {
                    const std::uint64_t r = core::counter_word(
                        options.seed, word,
                        static_cast<std::uint64_t>(e) * 64 + static_cast<std::uint64_t>(b));
                    if ((t >> b) & 1) {
                        lt |= undecided & ~r;
                        undecided &= r;
                    } else {
                        undecided &= ~r;
                    }
                    if (undecided == 0) break;
                }
                mask[lane] = lt;  // ties (X == t) correctly stay clear
            }
        }
    };

    // Bottom-up AND/OR word sweep over the lane batch.  An empty gate
    // is false for both kinds — the oracle's convention.
    const auto sweep_gates = [&](std::uint64_t* values) {
        for (const std::uint32_t g : order_) {
            std::uint64_t* out = values + static_cast<std::size_t>(g) * kLaneWords;
            const std::uint32_t begin = child_begin_[g];
            const std::uint32_t end = child_begin_[g + 1];
            if (begin == end) {
                std::fill_n(out, kLaneWords, std::uint64_t{0});
                continue;
            }
            std::uint64_t acc[kLaneWords];
            const std::uint64_t* first =
                values + static_cast<std::size_t>(child_slot_[begin]) * kLaneWords;
            std::copy_n(first, kLaneWords, acc);
            if (gate_is_and_[g] != 0) {
                for (std::uint32_t c = begin + 1; c < end; ++c) {
                    const std::uint64_t* child =
                        values + static_cast<std::size_t>(child_slot_[c]) * kLaneWords;
                    for (std::size_t lane = 0; lane < kLaneWords; ++lane) acc[lane] &= child[lane];
                }
            } else {
                for (std::uint32_t c = begin + 1; c < end; ++c) {
                    const std::uint64_t* child =
                        values + static_cast<std::size_t>(child_slot_[c]) * kLaneWords;
                    for (std::size_t lane = 0; lane < kLaneWords; ++lane) acc[lane] |= child[lane];
                }
            }
            std::copy_n(acc, kLaneWords, out);
        }
    };

    const auto run_granule = [&](std::uint64_t granule, std::uint64_t* values,
                                 double* weights) {
        GranulePartial partial;
        const std::uint64_t first_word = granule * kGranuleWords;
        for (std::size_t batch = 0; batch < kGranuleWords / kLaneWords; ++batch) {
            const std::uint64_t word0 = first_word + batch * kLaneWords;
            if (word0 >= total_words) break;
            sample_events(values, word0);
            sweep_gates(values);
            const std::uint64_t* top =
                values + static_cast<std::size_t>(top_slot_) * kLaneWords;

            if (proposal.is) {
                std::fill_n(weights, kLaneWords * 64, proposal.w0);
                for (const auto& [e, ratio] : proposal.ratios) {
                    const std::uint64_t* mask =
                        values + (gate_count + e) * kLaneWords;
                    for (std::size_t lane = 0; lane < kLaneWords; ++lane) {
                        std::uint64_t bits = mask[lane];
                        while (bits != 0) {
                            weights[lane * 64 +
                                    static_cast<std::size_t>(std::countr_zero(bits))] *= ratio;
                            bits &= bits - 1;
                        }
                    }
                }
            }
            for (std::size_t lane = 0; lane < kLaneWords; ++lane) {
                const std::uint64_t word = word0 + lane;
                if (word >= total_words) break;
                const unsigned rem = static_cast<unsigned>(options.trials % 64);
                const std::uint64_t valid = (word == total_words - 1 && rem != 0)
                                                ? (std::uint64_t{1} << rem) - 1
                                                : ~std::uint64_t{0};
                const std::uint64_t failed = top[lane] & valid;
                partial.failures += static_cast<std::uint64_t>(std::popcount(failed));
                if (!proposal.is) continue;
                const unsigned count = rem != 0 && word == total_words - 1 ? rem : 64u;
                for (unsigned trial = 0; trial < count; ++trial) {
                    const double w = weights[lane * 64 + trial];
                    partial.sum_w += w;
                    partial.sum_w2 += w * w;
                    if ((failed >> trial) & 1) {
                        partial.sum_wi += w;
                        partial.sum_w2i += w * w;
                        partial.max_wi = std::max(partial.max_wi, w);
                    }
                }
            }
        }
        return partial;
    };

    std::vector<GranulePartial> partials(granules);
    core::ThreadPool pool(core::resolve_thread_count(options.threads));
    pool.parallel_for(static_cast<std::size_t>(blocks), [&](std::size_t block) {
        std::vector<std::uint64_t> values(slots * kLaneWords);
        std::vector<double> weights(proposal.is ? kLaneWords * 64 : 0);
        const std::uint64_t begin = static_cast<std::uint64_t>(block) * granules_per_block;
        const std::uint64_t end = std::min<std::uint64_t>(granules, begin + granules_per_block);
        for (std::uint64_t g = begin; g < end; ++g) {
            partials[g] = run_granule(g, values.data(), weights.data());
        }
    });

    // Fixed-order reduction: granule index order, independent of which
    // thread produced which partial.
    GranulePartial total;
    for (const GranulePartial& partial : partials) {
        total.failures += partial.failures;
        total.sum_w += partial.sum_w;
        total.sum_w2 += partial.sum_w2;
        total.sum_wi += partial.sum_wi;
        total.sum_w2i += partial.sum_w2i;
        total.max_wi = std::max(total.max_wi, partial.max_wi);
    }

    SimulationResult result;
    result.trials = options.trials;
    result.failures = total.failures;
    const double n = static_cast<double>(options.trials);
    if (proposal.is) {
        result.importance_sampled = true;
        result.estimate = total.sum_wi / n;
        double variance = std::max(0.0, total.sum_w2i / n - result.estimate * result.estimate);
        if (options.trials > 1) variance *= n / (n - 1.0);
        // With zero observed failures the granularity is unknown; fall
        // back to the worst-case weight bound w0 so the interval still
        // covers what one heaviest-possible failure would have moved it.
        fill_interval(result, std::sqrt(variance / n),
                      total.failures > 0 ? total.max_wi : proposal.w0);
        result.ess = total.sum_w2 > 0.0 ? (total.sum_w * total.sum_w) / total.sum_w2 : 0.0;
    } else {
        result.estimate = static_cast<double>(total.failures) / n;
        fill_interval(result, std::sqrt(result.estimate * (1.0 - result.estimate) / n), 1.0);
        result.ess = n;
    }
    return result;
}

}  // namespace asilkit::analysis

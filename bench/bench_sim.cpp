// Monte Carlo engine benchmark: the scalar oracle against the
// bit-parallel kernel and the cut-set importance sampler
// (analysis::SimEngine, docs/simulation.md).
//
// Workload: the EcoTwin lateral-control fault tree — the paper's
// production-sized case study — plus a synthetic AND/OR DAG sweep up
// to 10^5 nodes (scenarios::synthetic_fault_tree) to show the kernel's
// scaling is linear in tree size, not just fast on one shape.
//
// The report prints the acceptance numbers directly: trials/second for
// each estimator (the bit-parallel kernel must clear 20x the oracle)
// and the rare-event estimate at unscaled automotive rates, where the
// importance sampler brackets the exact BDD value that plain sampling
// cannot even see (P ~ 1e-8: one failure expected per 10^8 trials).
//
// Counters exported per timing (consumed by tools/bench_to_json):
//   trials_per_sec    sampled trials per wall second
//   nodes             fault-tree size (synthetic sweep only)
#include "bench_util.h"

#include <chrono>

#include "analysis/probability.h"
#include "analysis/sim_engine.h"
#include "analysis/simulation.h"
#include "ftree/builder.h"
#include "scenarios/ecotwin.h"
#include "scenarios/synthetic.h"

using namespace asilkit;

namespace {

ftree::FaultTree ecotwin_tree() {
    return ftree::build_fault_tree(scenarios::ecotwin_lateral_control()).tree;
}

analysis::SimulationOptions base_options(std::uint64_t trials) {
    analysis::SimulationOptions options;
    options.trials = trials;
    options.seed = 7;
    return options;
}

double trials_per_second(const analysis::SimEngine& engine,
                         const analysis::SimulationOptions& options) {
    const auto start = std::chrono::steady_clock::now();
    (void)engine.run(options);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    return static_cast<double>(options.trials) / seconds;
}

void print_report() {
    bench::heading("Monte Carlo estimation: oracle vs bit-parallel vs importance sampling");
    const ftree::FaultTree ft = ecotwin_tree();
    const analysis::SimEngine engine(ft);
    bench::row("EcoTwin tree (events + gates)",
               static_cast<double>(ft.basic_events().size() + ft.gates().size()));

    analysis::SimulationOptions naive = base_options(1u << 15);
    naive.engine = analysis::SimEngineKind::Naive;
    const double naive_rate = trials_per_second(engine, naive);
    const double vector_rate = trials_per_second(engine, base_options(1u << 21));
    bench::row("naive trials/sec", naive_rate);
    bench::row("bit-parallel trials/sec", vector_rate);
    bench::row("speedup (acceptance: >= 20x)", vector_rate / naive_rate);

    // Rare-event regime: unscaled automotive rates over one hour.
    const double exact = analysis::fault_tree_probability(ft);
    analysis::SimulationOptions is = base_options(1u << 20);
    is.importance_sampling = true;
    const analysis::SimulationResult r = engine.run(is);
    bench::row("exact P(failure), BDD", exact);
    bench::row("IS estimate", r.estimate);
    bench::row("IS 95% CI low", r.ci95_low);
    bench::row("IS 95% CI high", r.ci95_high);
    bench::row("IS effective sample size", r.ess);
    bench::note(r.consistent_with(exact) ? "IS interval brackets the exact value"
                                         : "WARNING: IS interval misses the exact value");
}

void BM_naive_ecotwin(benchmark::State& state) {
    const ftree::FaultTree ft = ecotwin_tree();
    const analysis::SimEngine engine(ft);
    analysis::SimulationOptions options = base_options(1u << 13);
    options.engine = analysis::SimEngineKind::Naive;
    bench::time_batch(state, "bench.sim_naive_ns", [&] {
        benchmark::DoNotOptimize(engine.run(options));
    });
    state.counters["trials_per_sec"] = benchmark::Counter(
        static_cast<double>(options.trials), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_bitparallel_ecotwin(benchmark::State& state) {
    const ftree::FaultTree ft = ecotwin_tree();
    const analysis::SimEngine engine(ft);
    analysis::SimulationOptions options = base_options(1u << 18);
    options.threads = static_cast<unsigned>(state.range(0));
    bench::time_batch(state, "bench.sim_bitparallel_ns", [&] {
        benchmark::DoNotOptimize(engine.run(options));
    });
    state.counters["trials_per_sec"] = benchmark::Counter(
        static_cast<double>(options.trials), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_bitparallel_is_ecotwin(benchmark::State& state) {
    const ftree::FaultTree ft = ecotwin_tree();
    const analysis::SimEngine engine(ft);
    analysis::SimulationOptions options = base_options(1u << 18);
    options.importance_sampling = true;
    bench::time_batch(state, "bench.sim_is_ns", [&] {
        benchmark::DoNotOptimize(engine.run(options));
    });
    state.counters["trials_per_sec"] = benchmark::Counter(
        static_cast<double>(options.trials), benchmark::Counter::kIsIterationInvariantRate);
}

/// Tree-size scaling: fixed trial budget over synthetic DAGs from 10^3
/// to 10^5 nodes.  ns_per_op should grow linearly with `nodes`.
void BM_bitparallel_synthetic(benchmark::State& state) {
    const auto nodes = static_cast<std::size_t>(state.range(0));
    scenarios::SyntheticTreeOptions tree_options;
    tree_options.events = nodes - nodes / 3;
    tree_options.gates = nodes / 3 - 1;  // +1 top gate restores `nodes` total
    const ftree::FaultTree ft = scenarios::synthetic_fault_tree(tree_options);
    const analysis::SimEngine engine(ft);
    const analysis::SimulationOptions options = base_options(1u << 12);
    bench::time_batch(state, "bench.sim_synthetic_ns", [&] {
        benchmark::DoNotOptimize(engine.run(options));
    });
    state.counters["trials_per_sec"] = benchmark::Counter(
        static_cast<double>(options.trials), benchmark::Counter::kIsIterationInvariantRate);
    state.counters["nodes"] =
        benchmark::Counter(static_cast<double>(ft.basic_events().size() + ft.gates().size()));
}

BENCHMARK(BM_naive_ecotwin)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_bitparallel_ecotwin)->Arg(1)->Arg(4)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_bitparallel_is_ecotwin)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_bitparallel_synthetic)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

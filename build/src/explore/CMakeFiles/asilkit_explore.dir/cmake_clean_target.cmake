file(REMOVE_RECURSE
  "libasilkit_explore.a"
)

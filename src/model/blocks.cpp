#include "model/blocks.h"

#include <algorithm>
#include <ostream>
#include <unordered_set>

namespace asilkit {
namespace {

/// Traces one branch backwards from `start` (a predecessor of the merger)
/// until splitters; appends discovered splitters to `splitters`.
Branch trace_branch(const ArchitectureModel& m, NodeId start,
                    std::vector<NodeId>& splitters, std::vector<std::string>& issues) {
    const AppGraph& g = m.app();
    Branch branch;
    std::unordered_set<NodeId> seen;
    std::vector<NodeId> stack{start};
    while (!stack.empty()) {
        const NodeId n = stack.back();
        stack.pop_back();
        if (!seen.insert(n).second) continue;
        const AppNode& node = g.node(n);
        if (node.kind == NodeKind::Splitter) {
            if (std::find(splitters.begin(), splitters.end(), n) == splitters.end()) {
                splitters.push_back(n);
            }
            if (std::find(branch.feeding_splitters.begin(), branch.feeding_splitters.end(), n) ==
                branch.feeding_splitters.end()) {
                branch.feeding_splitters.push_back(n);
            }
            continue;  // block boundary
        }
        if (node.kind == NodeKind::Merger) {
            // A nested merger ends this branch: its own block is a unit
            // inside the branch.  We keep it as a branch node and do not
            // traverse past it.
            branch.nodes.push_back(n);
            continue;
        }
        branch.nodes.push_back(n);
        const auto preds = g.predecessors(n);
        if (preds.empty()) {
            // A branch must be bounded by a splitter; hitting a source
            // node first means the merger compares non-replicated inputs.
            issues.push_back("branch starting at '" + g.node(start).name + "' reaches source '" +
                             node.name + "' without crossing a splitter");
        }
        for (NodeId p : preds) stack.push_back(p);
    }
    return branch;
}

}  // namespace

RedundantBlock find_block_at_merger(const ArchitectureModel& m, NodeId merger) {
    const AppGraph& g = m.app();
    RedundantBlock block;
    block.merger = merger;
    if (g.node(merger).kind != NodeKind::Merger) {
        block.well_formed = false;
        block.issues.push_back("node '" + g.node(merger).name + "' is not a merger");
        return block;
    }
    for (ChannelId e : g.in_edges(merger)) {
        block.branches.push_back(trace_branch(m, g.edge(e).source, block.splitters, block.issues));
    }
    // No block-level "must have a splitter" rule: a branch may be bounded
    // by a NESTED merger instead (a block inside the branch), which the
    // per-branch trace records by ending at that merger.  A branch that
    // reaches a source without any boundary was already reported above.
    if (block.branches.size() < 2) {
        block.issues.push_back("merger '" + g.node(merger).name + "' has fewer than two inputs");
    }
    // Branch disjointness: shared nodes break the independence argument.
    std::unordered_set<NodeId> all;
    for (const Branch& b : block.branches) {
        for (NodeId n : b.nodes) {
            if (!all.insert(n).second) {
                block.issues.push_back("node '" + g.node(n).name + "' is shared between branches");
            }
        }
    }
    block.well_formed = block.issues.empty();
    return block;
}

std::vector<RedundantBlock> find_redundant_blocks(const ArchitectureModel& m) {
    std::vector<RedundantBlock> out;
    for (NodeId n : m.app().node_ids()) {
        if (m.app().node(n).kind == NodeKind::Merger) {
            out.push_back(find_block_at_merger(m, n));
        }
    }
    return out;
}

Asil branch_asil(const ArchitectureModel& m, const Branch& b) {
    if (b.nodes.empty()) return Asil::D;  // neutral: bounded by splitter/merger in Eq. 4
    Asil a = Asil::D;
    for (NodeId n : b.nodes) a = asil_min(a, m.effective_asil(n));
    return a;
}

Asil block_asil(const ArchitectureModel& m, const RedundantBlock& block) {
    Asil bound = Asil::D;
    for (NodeId s : block.splitters) bound = asil_min(bound, m.effective_asil(s));
    bound = asil_min(bound, m.effective_asil(block.merger));
    Asil sum = Asil::QM;
    for (const Branch& b : block.branches) sum = asil_sum(sum, branch_asil(m, b));
    return asil_min(bound, sum);
}

std::ostream& operator<<(std::ostream& os, const RedundantBlock& b) {
    os << "block(merger=" << b.merger << ", splitters=" << b.splitters.size() << ", branches=[";
    for (std::size_t i = 0; i < b.branches.size(); ++i) {
        if (i) os << ", ";
        os << b.branches[i].nodes.size();
    }
    os << "]" << (b.well_formed ? "" : ", ill-formed") << ")";
    return os;
}

}  // namespace asilkit

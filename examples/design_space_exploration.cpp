// Reproduces the paper's Fig. 1 study: the same application explored with
// different ASIL-decomposition strategies (BB, AC, RND) and different
// cost metrics, each producing a cost vs failure-probability curve.  The
// Pareto front over all visited architectures is printed at the end.
//
//   $ ./design_space_exploration [output_prefix]
//
// With a prefix, each curve is written to <prefix>_<strategy>_<metric>.csv.
#include <iostream>
#include <vector>

#include "explore/driver.h"
#include "explore/pareto.h"
#include "io/csv.h"
#include "scenarios/ecotwin.h"

using namespace asilkit;

int main(int argc, char** argv) {
    const ArchitectureModel model = scenarios::ecotwin_lateral_control();
    const std::vector<std::string> to_expand = scenarios::ecotwin_decision_nodes();

    const DecompositionStrategy strategies[] = {
        DecompositionStrategy::BB, DecompositionStrategy::AC, DecompositionStrategy::RND};
    const cost::CostMetric metrics[] = {cost::CostMetric::exponential_metric1(),
                                        cost::CostMetric::exponential_metric2(),
                                        cost::CostMetric::linear_metric3()};

    std::vector<explore::TradeoffPoint> all_points;
    for (const DecompositionStrategy strategy : strategies) {
        for (const cost::CostMetric& metric : metrics) {
            explore::ExplorationOptions options;
            options.strategy = strategy;
            options.metric = metric;
            options.probability.approximate = true;
            options.rng_seed = 2019;  // fixed: curves are reproducible

            const explore::ExplorationResult result =
                explore::run_exploration(model, to_expand, options);

            std::cout << "curve " << result.curve.name << ": " << result.curve.points.size()
                      << " points, cost " << result.curve.front().cost << " -> "
                      << result.curve.back().cost << ", P(fail) "
                      << result.curve.front().failure_probability << " -> "
                      << result.curve.back().failure_probability << "\n";

            for (const explore::TradeoffPoint& p : result.curve.points) all_points.push_back(p);

            if (argc > 1) {
                io::CsvWriter csv({"label", "cost", "failure_probability"});
                for (const explore::TradeoffPoint& p : result.curve.points) {
                    csv.add_row({p.label, io::CsvWriter::number(p.cost),
                                 io::CsvWriter::number(p.failure_probability)});
                }
                const std::string path = std::string(argv[1]) + "_" +
                                         std::string(to_string(strategy)) + "_" + metric.name() +
                                         ".csv";
                csv.save(path);
            }
        }
    }

    std::cout << "\nPareto front over " << all_points.size() << " visited architectures:\n";
    for (const explore::TradeoffPoint& p : explore::pareto_front(all_points)) {
        std::cout << "  " << p.label << ": cost=" << p.cost
                  << " P(fail)=" << p.failure_probability << "\n";
    }
    return 0;
}

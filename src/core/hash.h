// Shared 64-bit hashing primitives.
//
// Every hash table in the hot analysis path (BDD unique/apply tables,
// the engine's evaluation cache) uses power-of-two capacities, so the
// mixer must achieve full avalanche: keys produced by incremental
// construction differ only in a few low bits, and a weak mix makes them
// cluster after masking.  splitmix64's finalizer is the standard choice
// (also used as the recommended seeder for xoshiro generators).
#pragma once

#include <cstdint>

namespace asilkit::hash {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Order-dependent accumulation: combine(combine(s, a), b) != with b, a.
[[nodiscard]] constexpr std::uint64_t combine(std::uint64_t seed, std::uint64_t value) noexcept {
    return mix64(seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2)));
}

}  // namespace asilkit::hash

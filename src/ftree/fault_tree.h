// Fault-tree data structure (paper Section V).
//
// A fault tree here is a rooted DAG: interior nodes are AND/OR gates,
// leaves are basic events with a failure rate lambda (failures/hour).
// DAG — not tree — because a resource shared by several application nodes
// contributes ONE basic event referenced from several gates; that sharing
// is precisely what the Common-Cause-Fault analysis looks for and what
// makes the Fig. 9 mapping experiment behave.
//
// Nodes are index-addressed within the owning FaultTree; FtRef is a typed
// (kind, index) handle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/error.h"

namespace asilkit::ftree {

enum class GateKind : std::uint8_t { Or, And };

[[nodiscard]] std::string_view to_string(GateKind k) noexcept;

/// Reference to a node inside a FaultTree.
struct FtRef {
    enum class Kind : std::uint8_t { Basic, Gate } kind = Kind::Basic;
    std::uint32_t index = 0;

    friend bool operator==(const FtRef&, const FtRef&) = default;
};

struct BasicEvent {
    std::string name;
    double lambda = 0.0;  ///< failures/hour
};

struct Gate {
    std::string name;
    GateKind kind = GateKind::Or;
    std::vector<FtRef> children;
};

/// Statistics of a fault tree; `dag_nodes` counts each shared node once,
/// `expanded_nodes` and `paths` treat the structure as a tree (the
/// quantities the paper reports: the Fig. 3 example goes from 87 to 51
/// nodes under the approximation, and the number of root-to-leaf paths
/// doubles per ASIL decomposition without it).
struct FaultTreeStats {
    std::size_t basic_events = 0;
    std::size_t gates = 0;
    std::size_t dag_nodes = 0;
    std::uint64_t expanded_nodes = 0;  ///< saturates at 2^62
    std::uint64_t paths = 0;           ///< saturates at 2^62
    std::size_t depth = 0;
};

std::ostream& operator<<(std::ostream& os, const FaultTreeStats& s);

class FaultTree {
public:
    /// Adds (or finds) a basic event by name.  Re-adding an existing name
    /// with a different lambda is an error: one physical cause, one rate.
    FtRef add_basic_event(std::string name, double lambda);

    /// Adds a gate.  Children may be added later via add_child.
    FtRef add_gate(std::string name, GateKind kind, std::vector<FtRef> children = {});

    void add_child(FtRef gate, FtRef child);

    void set_top(FtRef top);
    [[nodiscard]] FtRef top() const;
    [[nodiscard]] bool has_top() const noexcept { return has_top_; }

    [[nodiscard]] const BasicEvent& basic_event(std::uint32_t index) const;
    [[nodiscard]] const Gate& gate(std::uint32_t index) const;
    [[nodiscard]] const BasicEvent& basic_event(FtRef r) const;
    [[nodiscard]] const Gate& gate(FtRef r) const;

    [[nodiscard]] std::span<const BasicEvent> basic_events() const noexcept { return basics_; }
    [[nodiscard]] std::span<const Gate> gates() const noexcept { return gates_; }

    /// Finds a basic event by name; returns {Basic, index} or throws.
    [[nodiscard]] FtRef find_basic_event(std::string_view name) const;
    [[nodiscard]] bool has_basic_event(std::string_view name) const noexcept;

    /// Statistics over the subtree reachable from top().
    [[nodiscard]] FaultTreeStats stats() const;

    /// 64-bit structural hash of the DAG reachable from top().
    ///
    /// Two fault trees hash equal when they are isomorphic as shared
    /// DAGs with identical gate kinds, child order, event sharing and
    /// failure rates — event *names* are deliberately ignored, since the
    /// top-event probability is a function of structure and rates only.
    /// Sharing matters: OR(a, a) and OR(a, b) hash differently even when
    /// a and b carry the same rate, because basic events are numbered by
    /// first occurrence in a depth-first traversal from the top.  This
    /// is the key of the engine's evaluation cache: candidate moves that
    /// generate isomorphic trees (ubiquitous in steepest-descent mapping
    /// search) reuse a previously computed probability.  Throws when the
    /// tree has no top event.
    [[nodiscard]] std::uint64_t structural_hash() const;

    /// structural_hash() with the failure rates left out: two trees
    /// share a shape hash when they are isomorphic as shared DAGs with
    /// identical gate kinds, child order and event sharing, whatever
    /// their lambdas.  This is the grouping key of the engine's batched
    /// multi-lambda evaluation: rate-only variants of one candidate
    /// shape collapse onto one group and share a single BDD compilation
    /// (the BDD is a function of structure only; rates enter at the
    /// probability sweep).  Like any 64-bit key it can collide, so
    /// group membership is confirmed with identical_shape() before any
    /// lane sharing.  Throws when the tree has no top event.
    [[nodiscard]] std::uint64_t shape_hash() const;

    /// The basic events reachable from `root` (deduplicated, by index).
    [[nodiscard]] std::vector<std::uint32_t> reachable_basic_events(FtRef root) const;

private:
    std::vector<BasicEvent> basics_;
    std::vector<Gate> gates_;
    std::unordered_map<std::string, std::uint32_t> basic_by_name_;
    FtRef top_{};
    bool has_top_ = false;
};

/// Canonical form under gate commutativity: rebuilds the DAG reachable
/// from top() with every gate's children stably sorted by a
/// sharing-blind bottom-up subtree hash.  AND/OR are commutative, so
/// the canonical tree represents the same boolean function and the same
/// top-event probability — but candidate architectures that differ only
/// by a symmetry (a merge in branch 1 vs the mirror merge in branch 2,
/// a merge of sibling chains in a sensor fan) collapse onto ONE
/// canonical tree.  Evaluating the canonical form therefore makes
/// structural_hash() a sound memoisation key for exact probabilities:
/// equal hashes mean the same canonical tree, hence bit-identical BDD
/// construction and Shannon evaluation.  This is how the engine's eval
/// cache turns the steepest-descent candidate sweep — where symmetric
/// moves are ubiquitous — into cache hits.
///
/// The ordering keys are refined with a context signature (each event's
/// sorted multiset of parent-gate hashes), so the canonical tree — and
/// with it structural_hash()/shape_hash() — is invariant under the
/// component and edge *declaration order* of the source model even when
/// distinct shared events carry equal rates and reference counts (the
/// Table-I norm).  tests/test_ftree.cpp and tests/test_cft.cpp hold
/// shuffled-but-isomorphic builds to hash equality.
[[nodiscard]] FaultTree canonical_form(const FaultTree& ft);

/// Exact index-wise structural equality ignoring names and failure
/// rates: same gate count/kinds/child lists, same basic-event count,
/// same top reference.  Conservative for arbitrary trees (isomorphic
/// trees with permuted indices compare unequal — never the unsafe
/// direction), and exact for trees built by canonical_form(), whose
/// rebuild numbers nodes in a structure-determined traversal order:
/// shape-identical canonical trees are index-identical.  This is the
/// collision-proof confirmation behind shape_hash() grouping, and it
/// guarantees that an event/gate index in one tree addresses the
/// corresponding node of every tree in the group.
[[nodiscard]] bool identical_shape(const FaultTree& a, const FaultTree& b);

}  // namespace asilkit::ftree

// Observability layer tests: metrics registry exactness, histogram
// bucket semantics, trace well-formedness (Chrome trace-event JSON with
// balanced B/E pairs), the one-branch disabled mode, and — the contract
// the whole layer hangs on — bitwise-identical DSE results with tracing
// on or off at any thread count.
#include "obs/metrics.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.h"
#include "obs/watchdog.h"

#include "explore/mapping_search.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
    Counter& c = Registry::global().counter("test.counter.basic");
    const std::uint64_t base = c.value();
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value() - base, 42u);
}

TEST(Counter, SameIdReturnsSameCell) {
    Counter& a = Registry::global().counter("test.counter.same_id");
    Counter& b = Registry::global().counter("test.counter.same_id");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), a.value());
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
    Counter& c = Registry::global().counter("test.counter.concurrent");
    const std::uint64_t base = c.value();
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 100'000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(c.value() - base, kThreads * kPerThread);
}

TEST(Gauge, SetAndSetMax) {
    Gauge& g = Registry::global().gauge("test.gauge.basic");
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.set_max(2.0);  // lower: ignored
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.set_max(7.25);  // higher: taken
    EXPECT_DOUBLE_EQ(g.value(), 7.25);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
    const std::vector<double> bounds{10.0, 100.0, 1000.0};
    Histogram& h = Registry::global().histogram("test.hist.bounds", bounds);
    h.observe(0.0);     // <= 10        -> bucket 0
    h.observe(10.0);    // == bound     -> bucket 0 (inclusive)
    h.observe(10.5);    // (10, 100]    -> bucket 1
    h.observe(100.0);   // == bound     -> bucket 1
    h.observe(999.0);   // (100, 1000]  -> bucket 2
    h.observe(1000.5);  // > last bound -> overflow bucket
    EXPECT_EQ(h.bucket_count(0), 2u);
    EXPECT_EQ(h.bucket_count(1), 2u);
    EXPECT_EQ(h.bucket_count(2), 1u);
    EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 10.0 + 10.5 + 100.0 + 999.0 + 1000.5);
}

TEST(HistogramTest, FirstRegistrationFixesBounds) {
    const std::vector<double> bounds{1.0, 2.0};
    Histogram& a = Registry::global().histogram("test.hist.fixed", bounds);
    const std::vector<double> other{50.0};
    Histogram& b = Registry::global().histogram("test.hist.fixed", other);
    EXPECT_EQ(&a, &b);
    ASSERT_EQ(b.bounds().size(), 2u);
    EXPECT_DOUBLE_EQ(b.bounds()[0], 1.0);
}

TEST(HistogramTest, DefaultLatencyBoundsAscend) {
    const std::span<const double> bounds = latency_bounds_ns();
    ASSERT_FALSE(bounds.empty());
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
    EXPECT_DOUBLE_EQ(bounds.front(), 1000.0);  // 1 µs
}

TEST(Snapshot, RoundTripsRegisteredMetrics) {
    Registry::global().counter("test.snap.counter").add(5);
    Registry::global().gauge("test.snap.gauge").set(2.5);
    const MetricsSnapshot snap = Registry::global().snapshot();
    EXPECT_GE(snap.counter_or("test.snap.counter"), 5u);
    EXPECT_DOUBLE_EQ(snap.gauge_or("test.snap.gauge"), 2.5);
    EXPECT_EQ(snap.counter_or("test.snap.missing", 77), 77u);

    const std::string json = snap.to_json();
    EXPECT_NE(json.find("\"test.snap.counter\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    const std::string text = snap.to_text();
    EXPECT_NE(text.find("test.snap.gauge"), std::string::npos);
}

TEST(Tracing, DisabledModeEmitsNothing) {
    ASSERT_FALSE(tracing_enabled());
    const std::uint64_t before = trace_event_count();
    {
        const ObsSpan span("should_not_appear", "test");
        trace_instant("also_not", "test");
    }
    EXPECT_EQ(trace_event_count(), before);
}

TEST(Tracing, SpansProduceBalancedWellFormedJson) {
    start_tracing();
    {
        const ObsSpan outer("outer", "test");
        {
            const ObsSpan inner("inner", "test", "value", 3.0);
        }
        trace_instant("marker", "test");
    }
    stop_tracing();
    const std::string json = trace_to_json();

    // Well-formed enough to hand to Perfetto: the envelope keys exist
    // and every B has its E (same thread, LIFO order by construction).
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"I\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":3}"), std::string::npos);

    std::size_t begins = 0;
    std::size_t ends = 0;
    for (std::size_t pos = 0; (pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos;
         pos += 8) {
        ++begins;
    }
    for (std::size_t pos = 0; (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos;
         pos += 8) {
        ++ends;
    }
    EXPECT_EQ(begins, 2u);
    EXPECT_EQ(begins, ends);

    // Draining consumed the buffers: a second export is empty.
    EXPECT_EQ(trace_event_count(), 0u);
}

TEST(Tracing, SpanOpenAcrossStopStillBalances) {
    start_tracing();
    {
        const ObsSpan span("crosses_stop", "test");
        stop_tracing();
        // Destructor runs after stop: the E event must still be recorded
        // or the trace would be unbalanced.
    }
    const std::string json = trace_to_json();
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

TEST(Tracing, StartClearsPreviousEvents) {
    start_tracing();
    trace_instant("first_session", "test");
    stop_tracing();
    start_tracing();
    trace_instant("second_session", "test");
    stop_tracing();
    const std::string json = trace_to_json();
    EXPECT_EQ(json.find("first_session"), std::string::npos);
    EXPECT_NE(json.find("second_session"), std::string::npos);
}

TEST(Tracing, ConcurrentSpansKeepPerThreadBalance) {
    start_tracing();
    constexpr unsigned kThreads = 4;
    constexpr int kSpansPerThread = 200;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                const ObsSpan span("worker_span", "test", "i", static_cast<double>(i));
            }
        });
    }
    for (std::thread& w : workers) w.join();
    stop_tracing();
    EXPECT_EQ(trace_event_count(), 2u * kThreads * kSpansPerThread);
    const std::string json = trace_to_json();
    // Parse the tids back out: every tid must balance B against E.
    std::map<std::string, int> balance;
    for (std::size_t pos = 0; (pos = json.find("\"ph\":\"", pos)) != std::string::npos;) {
        const char ph = json[pos + 6];
        const std::size_t tid_pos = json.find("\"tid\":", pos);
        ASSERT_NE(tid_pos, std::string::npos);
        const std::size_t tid_end = json.find_first_of(",}", tid_pos);
        const std::string tid = json.substr(tid_pos, tid_end - tid_pos);
        balance[tid] += ph == 'B' ? 1 : -1;
        pos += 6;
    }
    EXPECT_EQ(balance.size(), kThreads);
    for (const auto& [tid, b] : balance) EXPECT_EQ(b, 0) << tid;
}

/// The acceptance contract: the same mapping search produces bitwise
/// identical results at 1 and 4 threads, with tracing off and on.  The
/// obs layer records, it never participates.
TEST(Determinism, TraceOnOffAndThreadCountNeverChangeResults) {
    const auto run_search = [](unsigned threads, bool tracing) {
        if (tracing) start_tracing();
        ArchitectureModel m = scenarios::chain_n_stages(2);
        for (const char* n : {"f1", "f2"}) transform::expand(m, m.find_app_node(n));
        explore::MappingSearchOptions options;
        options.engine.threads = threads;
        const explore::MappingSearchResult r = explore::search_mapping(m, options);
        if (tracing) stop_tracing();
        return r;
    };

    const explore::MappingSearchResult baseline = run_search(1, false);
    for (const unsigned threads : {1u, 4u}) {
        for (const bool tracing : {false, true}) {
            const explore::MappingSearchResult r = run_search(threads, tracing);
            // Bitwise comparison: EXPECT_EQ on doubles, not NEAR.
            EXPECT_EQ(r.probability_after, baseline.probability_after)
                << "threads=" << threads << " tracing=" << tracing;
            EXPECT_EQ(r.cost_after, baseline.cost_after);
            EXPECT_EQ(r.merges, baseline.merges);
            EXPECT_EQ(r.iterations, baseline.iterations);
            EXPECT_EQ(r.evaluations, baseline.evaluations);
        }
    }
    (void)trace_to_json();  // leave the buffers empty for other tests
}

/// The acceptance bar for the continuous-telemetry subsystem: running
/// the FULL stack — tracing, a background sampler with an attached
/// watchdog, and detail-mode histograms — changes no analysis result
/// bit at any thread count.
TEST(Determinism, FullTelemetryStackNeverChangesResults) {
    const auto run_search = [](unsigned threads, bool telemetry) {
        std::optional<TimeSeriesSampler> sampler;
        std::optional<Watchdog> dog;
        if (telemetry) {
            start_tracing();
            set_detail_enabled(true);
            dog.emplace(std::vector<WatchdogRule>{
                {"depth", "engine.queue_depth", WatchdogRule::Op::Gt, 1e9, 0}});
            TimeSeriesOptions options;
            options.period = std::chrono::milliseconds(1);
            sampler.emplace(options);
            sampler->attach_watchdog(&*dog);
            sampler->start();
        }
        ArchitectureModel m = scenarios::chain_n_stages(2);
        for (const char* n : {"f1", "f2"}) transform::expand(m, m.find_app_node(n));
        explore::MappingSearchOptions options;
        options.engine.threads = threads;
        const explore::MappingSearchResult r = explore::search_mapping(m, options);
        if (telemetry) {
            sampler->stop();
            sampler->sample_now();
            EXPECT_GE(sampler->ticks(), 1u);
            stop_tracing();
            set_detail_enabled(false);
            (void)trace_to_json();
        }
        return r;
    };

    const explore::MappingSearchResult baseline = run_search(1, false);
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        const explore::MappingSearchResult r = run_search(threads, true);
        // Bitwise comparison: EXPECT_EQ on doubles, not NEAR.
        EXPECT_EQ(r.probability_after, baseline.probability_after)
            << "threads=" << threads;
        EXPECT_EQ(r.cost_after, baseline.cost_after) << "threads=" << threads;
        EXPECT_EQ(r.merges, baseline.merges) << "threads=" << threads;
        EXPECT_EQ(r.iterations, baseline.iterations) << "threads=" << threads;
        EXPECT_EQ(r.evaluations, baseline.evaluations) << "threads=" << threads;
    }
}

}  // namespace
}  // namespace asilkit::obs

file(REMOVE_RECURSE
  "libasilkit_io.a"
)

// FMEA-style component criticality report.
//
// The deliverable a safety engineer actually files: one row per hardware
// resource with its failure rate, the application functions it
// implements, the FSRs it touches, its exact importance measures
// (Birnbaum / Fussell-Vesely on the system BDD), and whether it is a
// single point of failure.  Rows are ranked by Fussell-Vesely — the
// fraction of the system failure probability flowing through the part —
// which is the order in which hardening the architecture pays off.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/asil.h"
#include "model/architecture.h"

namespace asilkit::analysis {

struct FmeaRow {
    std::string resource;
    ResourceKind kind = ResourceKind::Functional;
    Asil asil = Asil::QM;
    double lambda = 0.0;
    std::vector<std::string> implements;  ///< application node names
    std::vector<std::string> fsrs;        ///< requirements traced through those nodes
    double birnbaum = 0.0;
    double fussell_vesely = 0.0;
    bool single_point_of_failure = false;
};

std::ostream& operator<<(std::ostream& os, const FmeaRow& row);

struct FmeaOptions {
    double mission_hours = 1.0;
    bool include_location_events = true;
    /// Cut-set order limit for the SPOF determination.
    std::size_t max_cut_order = 2;
};

/// One row per used resource, sorted by descending Fussell-Vesely.
[[nodiscard]] std::vector<FmeaRow> fmea_report(const ArchitectureModel& m,
                                               const FmeaOptions& options = {});

}  // namespace asilkit::analysis

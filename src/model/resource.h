// Resource-layer (hardware) node types.
//
// The resource graph H = (R, L) is the EE architecture: ECUs, buses,
// gateways, sensors, actuators and the dedicated voting/replication
// hardware (splitter / merger resources).  Each resource is "ASIL-X
// ready": X is the maximum integrity level a function mapped on it can
// claim (Eq. 3).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "core/asil.h"
#include "model/node.h"

namespace asilkit {

/// Resource categories; these are the row labels of the paper's Table I
/// (failure rates) and Table II (cost metric).
enum class ResourceKind : std::uint8_t {
    Sensor,
    Actuator,
    Functional,     ///< processing hardware: ECU, domain controller, ...
    Communication,  ///< buses, point-to-point links, gateways, switches
    Splitter,       ///< dedicated replication hardware
    Merger,         ///< dedicated comparison/voting hardware
};

inline constexpr int kResourceKindCount = 6;

inline constexpr ResourceKind kAllResourceKinds[kResourceKindCount] = {
    ResourceKind::Sensor,        ResourceKind::Actuator, ResourceKind::Functional,
    ResourceKind::Communication, ResourceKind::Splitter, ResourceKind::Merger};

[[nodiscard]] std::string_view to_string(ResourceKind k) noexcept;
std::ostream& operator<<(std::ostream& os, ResourceKind k);

/// The resource kind a node of the given application kind maps onto by
/// default (sensor nodes on sensor hardware, communication nodes on
/// communication hardware, ...).
[[nodiscard]] ResourceKind default_resource_kind(NodeKind k) noexcept;

/// True iff an application node of kind `n` may be mapped onto a resource
/// of kind `r`.  Functional nodes may run on functional resources;
/// splitter/merger application nodes may run on dedicated splitter/merger
/// hardware or on functional/communication resources (the Fig. 3 example
/// implements them in Ethernet switches).
[[nodiscard]] bool mapping_compatible(NodeKind n, ResourceKind r) noexcept;

/// One hardware resource.
struct Resource {
    std::string name;
    ResourceKind kind = ResourceKind::Functional;
    Asil asil = Asil::QM;  ///< ASIL-readiness: max level obtainable on it.
    /// Overrides the Table I failure rate when the data sheet provides a
    /// measured value.
    std::optional<double> lambda_override;
    /// Overrides the cost-metric lookup (e.g. virtual/free elements such
    /// as the "observed scene" pseudo-source behind a virtual splitter).
    std::optional<double> cost_override;
};

/// Resource-layer edge payload (physical or logical link between two
/// resources).
struct ResourceLink {
    std::string label;
};

}  // namespace asilkit

#include "io/model_diff.h"

#include <gtest/gtest.h>

#include <sstream>

#include "io/graphml.h"
#include "scenarios/ecotwin.h"
#include "scenarios/micro.h"
#include "transform/expand.h"
#include "transform/reduce.h"

namespace asilkit::io {
namespace {

TEST(ModelDiff, IdenticalModelsAreEmpty) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const ModelDiff diff = diff_models(m, m);
    EXPECT_TRUE(diff.empty());
    EXPECT_EQ(diff.total_changes(), 0u);
    std::ostringstream os;
    os << diff;
    EXPECT_NE(os.str().find("no differences"), std::string::npos);
}

TEST(ModelDiff, ExpandFootprintIsExact) {
    const ArchitectureModel before = scenarios::chain_1in_1out();
    ArchitectureModel after = before;
    transform::expand(after, after.find_app_node("n"));
    const ModelDiff diff = diff_models(before, after);
    // Removed: n.  Added: splitter, merger, 2 replicas, 4 branch comms.
    EXPECT_EQ(diff.removed_nodes, (std::vector<std::string>{"n"}));
    EXPECT_EQ(diff.added_nodes.size(), 8u);
    EXPECT_EQ(diff.removed_resources, (std::vector<std::string>{"n_hw"}));
    EXPECT_EQ(diff.added_resources.size(), 8u);
    EXPECT_EQ(diff.added_locations.size(), 2u);  // fresh branch locations
    // Neighbours keep their identity; no changed nodes.
    EXPECT_TRUE(diff.changed_nodes.empty());
    // n's two incident channels went away; 10 new ones arrived.
    EXPECT_EQ(diff.removed_channels.size(), 2u);
    EXPECT_EQ(diff.added_channels.size(), 10u);
}

TEST(ModelDiff, AsilChangeIsReported) {
    const ArchitectureModel before = scenarios::chain_1in_1out();
    ArchitectureModel after = before;
    after.app().node(after.find_app_node("n")).asil = AsilTag{Asil::B, Asil::D};
    const ModelDiff diff = diff_models(before, after);
    ASSERT_EQ(diff.changed_nodes.size(), 1u);
    EXPECT_NE(diff.changed_nodes.front().find("ASIL D -> B(D)"), std::string::npos)
        << diff.changed_nodes.front();
}

TEST(ModelDiff, MappingChangeIsReported) {
    const ArchitectureModel before = scenarios::chain_1in_1out();
    ArchitectureModel after = before;
    const ResourceId bus = after.add_resource({"bus", ResourceKind::Communication, Asil::D, {}, {}});
    after.remap_node(after.find_app_node("c_in"), {bus});
    const ModelDiff diff = diff_models(before, after);
    ASSERT_EQ(diff.changed_nodes.size(), 1u);
    EXPECT_NE(diff.changed_nodes.front().find("mapping"), std::string::npos);
    EXPECT_EQ(diff.added_resources, (std::vector<std::string>{"bus"}));
}

TEST(ModelDiff, ResourceChangesReported) {
    const ArchitectureModel before = scenarios::chain_1in_1out();
    ArchitectureModel after = before;
    Resource& hw = after.resources().node(after.find_resource("n_hw"));
    hw.asil = Asil::B;
    hw.lambda_override = 1e-7;
    const ModelDiff diff = diff_models(before, after);
    ASSERT_EQ(diff.changed_resources.size(), 1u);
    EXPECT_NE(diff.changed_resources.front().find("ASIL D -> B"), std::string::npos);
    EXPECT_NE(diff.changed_resources.front().find("lambda"), std::string::npos);
}

TEST(ModelDiff, FsrChangeReported) {
    const ArchitectureModel before = scenarios::chain_1in_1out();
    ArchitectureModel after = before;
    after.app().node(after.find_app_node("n")).fsr = "FSR-9";
    const ModelDiff diff = diff_models(before, after);
    ASSERT_EQ(diff.changed_nodes.size(), 1u);
    EXPECT_NE(diff.changed_nodes.front().find("FSR-9"), std::string::npos);
}

TEST(ModelDiff, ReduceFootprint) {
    ArchitectureModel before = scenarios::chain_1in_1out();
    // Make a reducible pair first.
    ArchitectureModel after = before;
    transform::expand(after, after.find_app_node("c_out"));
    const ArchitectureModel mid = after;
    transform::reduce_all(after);
    const ModelDiff diff = diff_models(mid, after);
    EXPECT_TRUE(diff.added_nodes.empty());
    EXPECT_EQ(diff.total_changes(), diff.removed_nodes.size() + diff.removed_resources.size() +
                                        diff.removed_channels.size() + diff.added_channels.size() +
                                        diff.changed_nodes.size());
}

// ---- graphml ---------------------------------------------------------------

TEST(GraphMl, AppGraphIsWellFormedXml) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const std::string xml = app_graph_to_graphml(m);
    EXPECT_NE(xml.find("<?xml version=\"1.0\""), std::string::npos);
    EXPECT_NE(xml.find("<graphml"), std::string::npos);
    EXPECT_NE(xml.find("edgedefault=\"directed\""), std::string::npos);
    EXPECT_NE(xml.find("world_model"), std::string::npos);
    EXPECT_NE(xml.find("FSR-LAT-01"), std::string::npos);
    // Every <node has a matching </node>.
    std::size_t opens = 0;
    std::size_t closes = 0;
    for (std::size_t pos = 0; (pos = xml.find("<node ", pos)) != std::string::npos; ++pos) ++opens;
    for (std::size_t pos = 0; (pos = xml.find("</node>", pos)) != std::string::npos; ++pos) {
        ++closes;
    }
    EXPECT_EQ(opens, closes);
    EXPECT_EQ(opens, m.app().node_count());
}

TEST(GraphMl, ResourceGraphCarriesLambda) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const std::string xml = resource_graph_to_graphml(m);
    EXPECT_NE(xml.find("d_lambda"), std::string::npos);
    EXPECT_NE(xml.find("1e-09"), std::string::npos);
}

TEST(GraphMl, EscapesSpecialCharacters) {
    ArchitectureModel m("xml");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    m.add_node_with_dedicated_resource({"a<b>&\"c'", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const std::string xml = app_graph_to_graphml(m);
    EXPECT_NE(xml.find("a&lt;b&gt;&amp;&quot;c&apos;"), std::string::npos);
    EXPECT_EQ(xml.find("<b>"), std::string::npos);
}

}  // namespace
}  // namespace asilkit::io

#include "analysis/tolerance.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "scenarios/ecotwin.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::analysis {
namespace {

TEST(Tolerance, SeriesChainHasOrderOne) {
    const FaultToleranceReport report = analyze_fault_tolerance(scenarios::chain_1in_1out());
    EXPECT_EQ(report.min_cut_order, 1u);
    EXPECT_EQ(report.tolerated_faults, 0u);
    // Every resource and location is a single point of failure: 5 + 2.
    EXPECT_EQ(report.single_points_of_failure.size(), 7u);
}

TEST(Tolerance, ExpansionRemovesSpofsInTheDecomposedRegion) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const auto before = analyze_fault_tolerance(m);
    ASSERT_NE(std::find(before.single_points_of_failure.begin(),
                        before.single_points_of_failure.end(), "res:n_hw"),
              before.single_points_of_failure.end());
    transform::expand(m, m.find_app_node("n"));
    const auto after = analyze_fault_tolerance(m);
    // The replicated hardware is no longer a single point of failure ...
    for (const std::string& spof : after.single_points_of_failure) {
        EXPECT_NE(spof, "res:n_hw");
        EXPECT_NE(spof, "res:n_1_hw");
        EXPECT_NE(spof, "res:n_2_hw");
    }
    // ... but the management hardware (splitter/merger) joins the series
    // path: the SPOF *count* may grow even as the SPOF *rate mass* drops.
    EXPECT_NE(std::find(after.single_points_of_failure.begin(),
                        after.single_points_of_failure.end(), "res:split_n_hw"),
              after.single_points_of_failure.end());
}

TEST(Tolerance, ThreeWayExpansionToleratesTwoFaultsLocally) {
    // A 3-branch block has local cut order 3; build a model where the
    // block is the only structure (virtual sensing/actuation rates 0).
    ArchitectureModel m = scenarios::chain_1in_1out();
    // Make everything but the expanded region perfectly reliable so the
    // system-wide metric reflects the block.
    for (const char* res : {"sens_hw", "c_in_hw", "c_out_hw", "act_hw"}) {
        m.resources().node(m.find_resource(res)).lambda_override = 0.0;
    }
    transform::ExpandOptions options;
    options.branches = 3;
    transform::expand(m, m.find_app_node("n"), options);
    // Management hardware is still a SPOF; exclude it the same way.
    m.resources().node(m.find_resource("split_n_hw")).lambda_override = 0.0;
    m.resources().node(m.find_resource("merge_n_hw")).lambda_override = 0.0;
    FaultToleranceOptions tol_options;
    tol_options.include_location_events = false;
    const auto report = analyze_fault_tolerance(m, tol_options);
    // Zero-rate events still appear as cut sets structurally; check the
    // *named* SPOFs instead: no branch hardware may be order-1.
    for (const std::string& spof : report.single_points_of_failure) {
        EXPECT_NE(spof, "res:n_1_hw");
        EXPECT_NE(spof, "res:n_2_hw");
        EXPECT_NE(spof, "res:n_3_hw");
    }
    // And a cross-branch triple exists at order 3.
    EXPECT_GT(report.cut_sets_by_order[3], 0u);
}

TEST(Tolerance, Fig3CountsByOrder) {
    const auto report = analyze_fault_tolerance(scenarios::fig3_camera_gps_fusion());
    EXPECT_EQ(report.min_cut_order, 1u);
    EXPECT_EQ(report.cut_sets_by_order[1], report.single_points_of_failure.size());
    EXPECT_GT(report.cut_sets_by_order[2], 0u);  // cross-branch pairs
}

TEST(Tolerance, SharedEcuAddsSpof) {
    const auto good = analyze_fault_tolerance(scenarios::fig3_camera_gps_fusion());
    const auto bad = analyze_fault_tolerance(scenarios::fig3_with_shared_ecu_ccf());
    EXPECT_GT(bad.single_points_of_failure.size(), good.single_points_of_failure.size());
    bool found = false;
    for (const std::string& spof : bad.single_points_of_failure) {
        if (spof == "res:ecu1") found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Tolerance, EcotwinSensingIsToleratedDecisionIsNot) {
    const auto report = analyze_fault_tolerance(scenarios::ecotwin_lateral_control());
    EXPECT_EQ(report.min_cut_order, 1u);
    bool camera_spof = false;
    bool world_model_spof = false;
    for (const std::string& spof : report.single_points_of_failure) {
        if (spof == "res:camera_hw") camera_spof = true;
        if (spof == "res:world_model_hw") world_model_spof = true;
    }
    EXPECT_FALSE(camera_spof) << "fused sensing masks single sensor faults";
    EXPECT_TRUE(world_model_spof) << "the single-channel decision chain is unprotected";
}

}  // namespace
}  // namespace asilkit::analysis

#include "analysis/tolerance.h"

#include <algorithm>

#include "ftree/builder.h"

namespace asilkit::analysis {

FaultToleranceReport analyze_fault_tolerance(const ArchitectureModel& m,
                                             const FaultToleranceOptions& options) {
    ftree::FtBuildOptions build_options;
    build_options.include_location_events = options.include_location_events;
    const ftree::FtBuildResult built = ftree::build_fault_tree(m, build_options);

    CutSetOptions cs_options;
    cs_options.max_order = options.max_order;
    const std::vector<CutSet> cut_sets = minimal_cut_sets(built.tree, cs_options);

    // A cut set containing a zero-rate event cannot occur: virtual
    // elements (the "observed scene" behind a virtual splitter, perfect
    // pseudo-sources) must not show up as single points of failure.
    std::vector<CutSet> occurring;
    for (const CutSet& cs : cut_sets) {
        const bool possible = std::all_of(cs.begin(), cs.end(), [&](std::uint32_t e) {
            return built.tree.basic_event(e).lambda > 0.0;
        });
        if (possible) occurring.push_back(cs);
    }

    FaultToleranceReport report;
    report.min_cut_order = minimal_cut_order(occurring);
    report.tolerated_faults = report.min_cut_order > 0 ? report.min_cut_order - 1 : 0;
    report.cut_sets_by_order.assign(options.max_order + 1, 0);
    for (const CutSet& cs : occurring) {
        ++report.cut_sets_by_order[cs.size()];
        if (cs.size() == 1) {
            report.single_points_of_failure.push_back(built.tree.basic_event(cs.front()).name);
        }
    }
    return report;
}

}  // namespace asilkit::analysis

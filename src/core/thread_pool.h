// Fixed-size thread pool for batched fan-out (candidate evaluation,
// Monte Carlo trial blocks).
//
// Deliberately work-stealing-free: callers submit one flat batch of
// independent tasks at a time — the DSE loop one batch of candidate
// evaluations per search iteration, the simulation engine one batch of
// trial blocks per run — so a single shared atomic index is all the
// scheduling needed — workers
// claim the next index until the batch is exhausted.  The calling
// thread participates in the batch, so `threads == 1` spawns no worker
// threads at all and runs the batch inline (the serial reference path
// the determinism tests compare against).
//
// The pool performs no synchronisation between tasks of a batch beyond
// the claim counter: tasks must be independent.  Evaluation tasks keep
// their BddManager (and every other piece of scratch state) local, so
// no locks sit on the BDD apply path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/sync.h"

namespace asilkit::core {

/// Resolves `requested` (0 = ASILKIT_THREADS env var, else hardware
/// concurrency) and clamps the result to [1, 256].
[[nodiscard]] unsigned resolve_thread_count(unsigned requested) noexcept;

class ThreadPool {
public:
    /// Spawns `threads - 1` workers (the caller is the remaining one).
    /// `threads` is clamped to at least 1.
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total evaluation lanes, including the calling thread.
    [[nodiscard]] unsigned thread_count() const noexcept { return threads_; }

    /// Runs fn(i) for every i in [0, count), distributing indices over
    /// the workers and the calling thread; blocks until the batch is
    /// complete.  The first exception thrown by any task is rethrown on
    /// the caller once the batch has drained — at every thread count,
    /// including the inline single-thread path, so a throwing task never
    /// leaves later indices unevaluated.  Not reentrant.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
    struct Batch {
        // `fn` and `count` are set once before the batch is published
        // under the pool mutex and immutable while workers can see the
        // batch, so tasks read them without synchronisation.
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        core::Mutex error_mutex;
        std::exception_ptr error GUARDED_BY(error_mutex);
    };

    void worker_loop();
    void run_batch(Batch& batch);

    unsigned threads_;
    std::vector<std::thread> workers_;
    core::Mutex mutex_;
    core::CondVar wake_workers_;
    core::CondVar batch_done_;
    Batch* batch_ GUARDED_BY(mutex_) = nullptr;
    std::uint64_t epoch_ GUARDED_BY(mutex_) = 0;   ///< bumped per batch
    std::size_t active_ GUARDED_BY(mutex_) = 0;    ///< workers inside the batch
    bool stopping_ GUARDED_BY(mutex_) = false;
};

}  // namespace asilkit::core

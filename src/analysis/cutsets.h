// Minimal cut sets (MOCUS-style, order-limited).
//
// A cut set is a set of basic events whose joint occurrence causes the top
// event; a minimal cut set has no proper subset with that property.  The
// paper's CCF discussion is naturally phrased in cut-set terms: a valid
// k-branch decomposition must not leave any cut set of order < k inside
// the redundant region.  This module is an extension beyond the paper's
// text used by the ccf_audit example and the failure-injection tests.
#pragma once

#include <cstdint>
#include <vector>

#include "ftree/fault_tree.h"

namespace asilkit::analysis {

/// Sorted basic-event indices.
using CutSet = std::vector<std::uint32_t>;

struct CutSetOptions {
    /// Discard cut sets with more than this many events (order-limit);
    /// keeps the enumeration polynomial in practice.
    std::size_t max_order = 4;
    /// Hard cap on intermediate products; exceeded -> AnalysisError.
    std::size_t max_sets = 200000;
};

/// Minimal cut sets of order <= max_order, lexicographically sorted.
[[nodiscard]] std::vector<CutSet> minimal_cut_sets(const ftree::FaultTree& ft,
                                                   const CutSetOptions& options = {});

/// Rare-event upper bound on the top probability from the cut sets:
/// sum over cut sets of the product of event probabilities.
[[nodiscard]] double cut_set_probability_bound(const ftree::FaultTree& ft,
                                               const std::vector<CutSet>& cut_sets,
                                               double mission_hours = 1.0);

/// Order (cardinality) of the smallest cut set; 0 when there are none.
[[nodiscard]] std::size_t minimal_cut_order(const std::vector<CutSet>& cut_sets) noexcept;

/// Admissible (never over-estimating) lower bound on the top-event
/// probability from a family of cut sets, with support for cheap
/// re-bounding after substituting a few cuts.
///
/// The bound is the second-order Bonferroni inequality combined with the
/// best single cut:
///
///     P(top) >= P(union of cuts) >= max( max_i P(C_i),  S1 - S2 )
///
/// where S1 = sum_i P(C_i) and S2 = sum_{i<j} P(C_i and C_j); under event
/// independence P(C_i and C_j) is the probability product over the merged
/// event set.  Both inequalities hold for ANY finite list of cuts of a
/// monotone structure function — duplicates and non-minimal cuts only
/// weaken the bound, never break it — which is exactly what makes the
/// substitution API sound for conservatively transformed cut lists.
///
/// Under event independence a pair of cuts sharing no events satisfies
/// P(C_i and C_j) = P(C_i) * P(C_j), so S2 splits into a closed form
/// over all pairs plus corrections for the (sparse) event-sharing pairs
/// found through the postings index.  Construction is therefore
/// O(k + sharing pairs) instead of O(k^2); rebound() is
/// O(|affected|^2 + |affected| * sharing) instead of O(|affected| * k).
class CutSetLowerBound {
public:
    /// `event_probability[e]` is the failure probability of basic event e
    /// over the mission; `cuts` index into it.  Cut sets must be sorted.
    CutSetLowerBound(std::vector<CutSet> cuts, std::vector<double> event_probability);

    [[nodiscard]] std::size_t cut_count() const noexcept { return cuts_.size(); }
    [[nodiscard]] const std::vector<CutSet>& cuts() const noexcept { return cuts_; }
    [[nodiscard]] double event_probability(std::uint32_t e) const { return probs_.at(e); }

    /// Lower bound with no substitution applied.
    [[nodiscard]] double base_bound() const noexcept { return base_bound_; }

    /// Indices (ascending) of the cuts containing event e; empty for
    /// events outside every cut (or out of range).
    [[nodiscard]] const std::vector<std::uint32_t>& cuts_containing(std::uint32_t e) const noexcept;

    /// A conservative rewrite of the cut list: the cuts at `affected`
    /// are dropped and `replacements` (cuts of the transformed structure
    /// function, sorted event lists) take their place; `overrides`
    /// re-prices individual events.  Precondition: every cut containing
    /// an overridden event is listed in `affected` (its re-priced form,
    /// if still a cut, belongs in `replacements`).
    struct Substitution {
        std::vector<std::uint32_t> affected;  ///< sorted, unique cut indices
        std::vector<CutSet> replacements;
        std::vector<std::pair<std::uint32_t, double>> overrides;  ///< event -> new probability
    };

    /// Lower bound on P(union) of the substituted cut list.
    [[nodiscard]] double rebound(const Substitution& s) const;

private:
    [[nodiscard]] double priced(std::uint32_t e,
                                const std::vector<std::pair<std::uint32_t, double>>& ov) const;
    [[nodiscard]] double set_probability(
        const CutSet& cs, const std::vector<std::pair<std::uint32_t, double>>& ov) const;
    [[nodiscard]] double pair_probability(
        const CutSet& a, const CutSet& b,
        const std::vector<std::pair<std::uint32_t, double>>& ov) const;

    std::vector<CutSet> cuts_;
    std::vector<double> probs_;
    std::vector<double> cut_prob_;               ///< P(C_i)
    std::vector<double> pair_sum_;               ///< T_i = sum_{j != i} P(C_i and C_j)
    std::vector<std::vector<std::uint32_t>> postings_;  ///< event -> cut indices
    std::vector<std::uint32_t> by_prob_desc_;    ///< cut indices, P(C_i) descending
    double s1_ = 0.0;
    double s2_ = 0.0;
    double base_bound_ = 0.0;
};

/// Basic-event probabilities for a whole fault tree over `mission_hours`,
/// indexed by basic-event index — the natural `event_probability` input
/// for CutSetLowerBound.
[[nodiscard]] std::vector<double> basic_event_probabilities(const ftree::FaultTree& ft,
                                                            double mission_hours = 1.0);

}  // namespace asilkit::analysis

file(REMOVE_RECURSE
  "CMakeFiles/test_ccf.dir/test_ccf.cpp.o"
  "CMakeFiles/test_ccf.dir/test_ccf.cpp.o.d"
  "test_ccf"
  "test_ccf.pdb"
  "test_ccf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

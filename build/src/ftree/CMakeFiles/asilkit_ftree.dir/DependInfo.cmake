
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftree/builder.cpp" "src/ftree/CMakeFiles/asilkit_ftree.dir/builder.cpp.o" "gcc" "src/ftree/CMakeFiles/asilkit_ftree.dir/builder.cpp.o.d"
  "/root/repo/src/ftree/fault_tree.cpp" "src/ftree/CMakeFiles/asilkit_ftree.dir/fault_tree.cpp.o" "gcc" "src/ftree/CMakeFiles/asilkit_ftree.dir/fault_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/asilkit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asilkit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

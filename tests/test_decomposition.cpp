#include "core/decomposition.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace asilkit {
namespace {

TEST(Decomposition, CatalogueHasEightPatterns) {
    EXPECT_EQ(all_decomposition_patterns().size(), 8u);
}

TEST(Decomposition, CatalogueMatchesFig2) {
    // D row of Fig. 2.
    EXPECT_TRUE(is_valid_decomposition(Asil::D, Asil::C, Asil::A));
    EXPECT_TRUE(is_valid_decomposition(Asil::D, Asil::B, Asil::B));
    EXPECT_TRUE(is_valid_decomposition(Asil::D, Asil::D, Asil::QM));
    // C row.
    EXPECT_TRUE(is_valid_decomposition(Asil::C, Asil::B, Asil::A));
    EXPECT_TRUE(is_valid_decomposition(Asil::C, Asil::C, Asil::QM));
    // B row.
    EXPECT_TRUE(is_valid_decomposition(Asil::B, Asil::A, Asil::A));
    EXPECT_TRUE(is_valid_decomposition(Asil::B, Asil::B, Asil::QM));
    // A row.
    EXPECT_TRUE(is_valid_decomposition(Asil::A, Asil::A, Asil::QM));
}

TEST(Decomposition, OrderOfPartsDoesNotMatter) {
    EXPECT_TRUE(is_valid_decomposition(Asil::D, Asil::A, Asil::C));
    EXPECT_TRUE(is_valid_decomposition(Asil::C, Asil::A, Asil::B));
    EXPECT_TRUE(is_valid_decomposition(Asil::D, Asil::QM, Asil::D));
}

TEST(Decomposition, RejectsInvalidPairs) {
    EXPECT_FALSE(is_valid_decomposition(Asil::D, Asil::B, Asil::A));   // sums to 3 < 4
    EXPECT_FALSE(is_valid_decomposition(Asil::D, Asil::A, Asil::A));   // sums to 2
    EXPECT_FALSE(is_valid_decomposition(Asil::D, Asil::QM, Asil::QM));
    EXPECT_FALSE(is_valid_decomposition(Asil::C, Asil::A, Asil::A));
    EXPECT_FALSE(is_valid_decomposition(Asil::B, Asil::A, Asil::QM));
    EXPECT_FALSE(is_valid_decomposition(Asil::A, Asil::QM, Asil::QM));
    EXPECT_FALSE(is_valid_decomposition(Asil::QM, Asil::QM, Asil::QM));
}

TEST(Decomposition, RejectsOverAchievingNonCataloguePairs) {
    // C + C "covers" D numerically (3+3 >= 4) but over-achieving pairs are
    // not in the ISO catalogue as two-way patterns.
    EXPECT_FALSE(is_valid_decomposition(Asil::D, Asil::C, Asil::C));
    EXPECT_FALSE(is_valid_decomposition(Asil::D, Asil::D, Asil::D));
    EXPECT_FALSE(is_valid_decomposition(Asil::B, Asil::B, Asil::B));
}

// Every catalogue pattern satisfies the saturating-sum invariant.
class CataloguePattern : public ::testing::TestWithParam<DecompositionPattern> {};

TEST_P(CataloguePattern, SumRuleHolds) {
    const DecompositionPattern& p = GetParam();
    EXPECT_GE(asil_value(p.left) + asil_value(p.right), asil_value(p.parent));
}

TEST_P(CataloguePattern, PartsDoNotExceedParent) {
    const DecompositionPattern& p = GetParam();
    EXPECT_LE(asil_value(p.left), asil_value(p.parent));
    EXPECT_LE(asil_value(p.right), asil_value(p.parent));
}

TEST_P(CataloguePattern, ValidityPredicateAccepts) {
    const DecompositionPattern& p = GetParam();
    EXPECT_TRUE(is_valid_decomposition(p.parent, p.left, p.right)) << to_string(p);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, CataloguePattern,
                         ::testing::ValuesIn(all_decomposition_patterns().begin(),
                                             all_decomposition_patterns().end()));

TEST(Decomposition, DecompositionsOfEachLevel) {
    EXPECT_EQ(decompositions_of(Asil::D).size(), 3u);
    EXPECT_EQ(decompositions_of(Asil::C).size(), 2u);
    EXPECT_EQ(decompositions_of(Asil::B).size(), 2u);
    EXPECT_EQ(decompositions_of(Asil::A).size(), 1u);
    EXPECT_TRUE(decompositions_of(Asil::QM).empty());
}

TEST(Decomposition, NWayValidityUsesSumRule) {
    const Asil bbb[] = {Asil::B, Asil::B, Asil::B};
    EXPECT_TRUE(is_valid_decomposition(Asil::D, bbb));  // reachable via repeated patterns
    const Asil aab[] = {Asil::A, Asil::A, Asil::B};
    EXPECT_TRUE(is_valid_decomposition(Asil::D, aab));
    const Asil aaa[] = {Asil::A, Asil::A, Asil::A};
    EXPECT_FALSE(is_valid_decomposition(Asil::D, aaa));  // sums to 3
    const Asil qm_only[] = {Asil::QM, Asil::QM};
    EXPECT_FALSE(is_valid_decomposition(Asil::A, qm_only));
}

TEST(Decomposition, NWayEdgeCases) {
    EXPECT_FALSE(is_valid_decomposition(Asil::D, std::span<const Asil>{}));
    const Asil single_d[] = {Asil::D};
    EXPECT_TRUE(is_valid_decomposition(Asil::D, single_d));
    const Asil single_c[] = {Asil::C};
    EXPECT_FALSE(is_valid_decomposition(Asil::D, single_c));
}

TEST(Strategy, BbPrefersSymmetricSplit) {
    EXPECT_EQ(select_pattern(Asil::D, DecompositionStrategy::BB),
              (DecompositionPattern{Asil::D, Asil::B, Asil::B}));
    EXPECT_EQ(select_pattern(Asil::C, DecompositionStrategy::BB),
              (DecompositionPattern{Asil::C, Asil::B, Asil::A}));
    EXPECT_EQ(select_pattern(Asil::B, DecompositionStrategy::BB),
              (DecompositionPattern{Asil::B, Asil::A, Asil::A}));
    EXPECT_EQ(select_pattern(Asil::A, DecompositionStrategy::BB),
              (DecompositionPattern{Asil::A, Asil::A, Asil::QM}));
}

TEST(Strategy, AcPrefersAsymmetricSplit) {
    EXPECT_EQ(select_pattern(Asil::D, DecompositionStrategy::AC),
              (DecompositionPattern{Asil::D, Asil::C, Asil::A}));
    EXPECT_EQ(select_pattern(Asil::C, DecompositionStrategy::AC),
              (DecompositionPattern{Asil::C, Asil::C, Asil::QM}));
    EXPECT_EQ(select_pattern(Asil::B, DecompositionStrategy::AC),
              (DecompositionPattern{Asil::B, Asil::B, Asil::QM}));
}

TEST(Strategy, RndIsDeterministicInTheDraw) {
    const auto p0 = select_pattern(Asil::D, DecompositionStrategy::RND, 0.0);
    const auto p1 = select_pattern(Asil::D, DecompositionStrategy::RND, 0.99);
    EXPECT_EQ(p0, select_pattern(Asil::D, DecompositionStrategy::RND, 0.0));
    EXPECT_NE(p0, p1);  // D has two proper patterns: C+A and B+B
}

TEST(Strategy, RndOnlyPicksProperPatterns) {
    for (double draw : {0.0, 0.3, 0.6, 0.99}) {
        const auto p = select_pattern(Asil::D, DecompositionStrategy::RND, draw);
        EXPECT_NE(p.right, Asil::QM) << "draw " << draw;
        EXPECT_TRUE(is_valid_decomposition(Asil::D, p.left, p.right));
    }
}

TEST(Strategy, RndDrawOutOfRangeIsClamped) {
    EXPECT_NO_THROW((void)select_pattern(Asil::D, DecompositionStrategy::RND, -1.0));
    EXPECT_NO_THROW((void)select_pattern(Asil::D, DecompositionStrategy::RND, 2.0));
}

TEST(Strategy, QmCannotBeDecomposed) {
    EXPECT_THROW((void)select_pattern(Asil::QM, DecompositionStrategy::BB), std::invalid_argument);
    EXPECT_THROW((void)select_pattern(Asil::QM, DecompositionStrategy::RND), std::invalid_argument);
}

TEST(Strategy, EverySelectedPatternIsValid) {
    for (Asil parent : {Asil::A, Asil::B, Asil::C, Asil::D}) {
        for (DecompositionStrategy s : {DecompositionStrategy::BB, DecompositionStrategy::AC,
                                        DecompositionStrategy::RND}) {
            const auto p = select_pattern(parent, s, 0.5);
            EXPECT_EQ(p.parent, parent);
            EXPECT_TRUE(is_valid_decomposition(parent, p.left, p.right))
                << to_string(s) << " on " << to_string(parent);
        }
    }
}

TEST(Strategy, Names) {
    EXPECT_EQ(to_string(DecompositionStrategy::BB), "BB");
    EXPECT_EQ(to_string(DecompositionStrategy::AC), "AC");
    EXPECT_EQ(to_string(DecompositionStrategy::RND), "RND");
}

TEST(Decomposition, PatternToString) {
    const DecompositionPattern p{Asil::D, Asil::B, Asil::B};
    EXPECT_EQ(to_string(p), "D -> B(D) + B(D)");
}

}  // namespace
}  // namespace asilkit

// Vectorized Monte Carlo estimation engine (ROADMAP item 3).
//
// Exact BDD analysis is the first choice on every tree it can reach,
// but it blows up on wide synthetic workloads and will not cover the
// dynamic gates planned for degraded-mode scenarios.  SimEngine is the
// sampling fallback, built for throughput and statistical soundness:
//
//   * Bit-parallel trials — 64 trials are packed into one uint64_t
//     word.  Basic events are sampled as Bernoulli bit masks and the
//     fault tree is swept bottom-up with AND/OR word instructions over
//     a flattened SoA plan (the blocked-sweep idiom of
//     bdd::probability_batch applied to bits instead of lanes), so one
//     pass of the gate array evaluates 64 trials.
//   * Counter-based RNG — every random word is a pure function of
//     (seed, trial-word index, event/slice stream) via
//     core::counter_word, so the sampled field does not depend on who
//     generates it: results are bitwise identical at every thread
//     count and block size.  Trial blocks fan out over the shared
//     core::ThreadPool; per-granule partial sums are written to
//     disjoint slots and reduced in fixed order.
//   * Cut-set importance sampling — the proposal raises the failure
//     probability of every event appearing in a minimal cut set
//     (analysis::minimal_cut_sets) to at least `is_bias`; trials are
//     weighted by the exact likelihood ratio, so the estimator stays
//     unbiased while true 1e-9 probabilities become estimable without
//     rate_scale inflation.  Weights are bounded above by the
//     all-clear ratio, so variance is finite and the reported CLT
//     confidence intervals are sound (docs/simulation.md).
//
// The scalar oracle (SimulationOptions::engine = Naive) lives behind
// the same run() so the two estimators share one compiled evaluation
// plan (topological gate order, flattened children) computed once per
// SimEngine, not once per call.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/simulation.h"
#include "ftree/fault_tree.h"

namespace asilkit::analysis {

class SimEngine {
public:
    /// Compiles the evaluation plan (topological gate order, flattened
    /// child slots, event rates) once.  Non-owning: `ft` must outlive
    /// the engine.
    explicit SimEngine(const ftree::FaultTree& ft);

    /// Runs `options.trials` Monte Carlo trials with the selected
    /// engine.  Thread-safe for concurrent calls with distinct options;
    /// bitwise deterministic in (seed, trials, engine, IS settings)
    /// whatever `threads` and `block_trials` say.
    [[nodiscard]] SimulationResult run(const SimulationOptions& options = {}) const;

    [[nodiscard]] std::size_t event_count() const noexcept { return lambdas_.size(); }
    [[nodiscard]] std::size_t gate_count() const noexcept { return gate_is_and_.size(); }

private:
    struct Proposal;  // biased event probabilities + likelihood-ratio weights

    [[nodiscard]] SimulationResult run_naive(const SimulationOptions& options) const;
    [[nodiscard]] SimulationResult run_bit_parallel(const SimulationOptions& options) const;
    [[nodiscard]] std::vector<double> event_probabilities(const SimulationOptions& options) const;

    const ftree::FaultTree* ft_;

    // Flattened SoA plan.  Value slots: gates occupy [0, gate_count()),
    // basic events [gate_count(), gate_count() + event_count()) — one
    // unified array indexes both, so a gate's child list is plain slot
    // indices whatever the child kind.
    std::vector<std::uint32_t> order_;        ///< gate indices, children-first
    std::vector<std::uint8_t> gate_is_and_;   ///< per gate (index, not order position)
    std::vector<std::uint32_t> child_begin_;  ///< per gate: offset into child_slot_ (+1 sentinel)
    std::vector<std::uint32_t> child_slot_;   ///< flattened child value slots
    std::vector<double> lambdas_;             ///< per basic event
    std::uint32_t top_slot_ = 0;
};

}  // namespace asilkit::analysis

#include "model/validation.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"

namespace asilkit {
namespace {

ArchitectureModel valid_chain() { return scenarios::chain_1in_1out(); }

TEST(Validation, CleanModelPasses) {
    const ValidationReport report = validate(valid_chain());
    EXPECT_TRUE(report.ok()) << report.issues.size() << " issues";
    EXPECT_NO_THROW((void)validate_or_throw(valid_chain()));
}

TEST(Validation, Fig3Passes) {
    const ValidationReport report = validate(scenarios::fig3_camera_gps_fusion());
    EXPECT_EQ(report.error_count(), 0u);
}

TEST(Validation, UnmappedNodeIsError) {
    ArchitectureModel m = valid_chain();
    const NodeId orphan = m.add_app_node({"orphan", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const NodeId n = m.find_app_node("n");
    m.connect_app(n, orphan);
    m.connect_app(orphan, n);
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::UnmappedNode));
    EXPECT_GE(report.error_count(), 1u);
    EXPECT_THROW((void)validate_or_throw(m), ModelError);
}

TEST(Validation, UnderImplementedAsilIsWarning) {
    ArchitectureModel m = valid_chain();
    const NodeId n = m.find_app_node("n");
    // Downgrade the implementing resource below the requirement.
    m.resources().node(m.mapped_resources(n).front()).asil = Asil::A;
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::UnderImplementedAsil));
    EXPECT_EQ(report.error_count(), 0u);  // warning only
}

TEST(Validation, UnplacedResourceIsWarning) {
    ArchitectureModel m = valid_chain();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::UnplacedResource));
}

TEST(Validation, SplitterDegreeChecked) {
    ArchitectureModel m = valid_chain();
    const LocationId loc = m.find_location("front");
    const NodeId s = m.add_node_with_dedicated_resource(
        {"bad_split", NodeKind::Splitter, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(m.find_app_node("c_in"), s);  // 1 input, 0 outputs
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::BadSplitterDegree));
}

TEST(Validation, MergerDegreeChecked) {
    ArchitectureModel m = valid_chain();
    const LocationId loc = m.find_location("front");
    const NodeId g = m.add_node_with_dedicated_resource(
        {"bad_merge", NodeKind::Merger, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(m.find_app_node("c_in"), g);
    m.connect_app(g, m.find_app_node("c_out"));  // only 1 input
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::BadMergerDegree));
}

TEST(Validation, MergerWithoutSplitterIsIllFormedBlock) {
    ArchitectureModel m("bad-block");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s1 = m.add_node_with_dedicated_resource(
        {"s1", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const NodeId s2 = m.add_node_with_dedicated_resource(
        {"s2", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const NodeId merge = m.add_node_with_dedicated_resource(
        {"merge", NodeKind::Merger, AsilTag{Asil::D}, {}}, loc);
    const NodeId act = m.add_node_with_dedicated_resource(
        {"act", NodeKind::Actuator, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(s1, merge);
    m.connect_app(s2, merge);
    m.connect_app(merge, act);
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::IllFormedBlock));
}

TEST(Validation, UnreachableActuatorWarned) {
    ArchitectureModel m = valid_chain();
    const LocationId loc = m.find_location("front");
    const NodeId lonely = m.add_node_with_dedicated_resource(
        {"lonely_act", NodeKind::Actuator, AsilTag{Asil::B}, {}}, loc);
    (void)lonely;
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::UnreachableActuator));
}

TEST(Validation, DanglingSensorWarned) {
    ArchitectureModel m = valid_chain();
    const LocationId loc = m.find_location("front");
    m.add_node_with_dedicated_resource({"lonely_sensor", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::DanglingSensor));
}

TEST(Validation, InvalidDecompositionWarned) {
    // Branches at A + A only reach B < inherited D.
    ArchitectureModel m("weak-block");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    auto add = [&](const char* name, NodeKind kind, AsilTag tag) {
        return m.add_node_with_dedicated_resource({name, kind, tag, {}}, loc);
    };
    const NodeId sens = add("sens", NodeKind::Sensor, AsilTag{Asil::D});
    const NodeId split = add("split", NodeKind::Splitter, AsilTag{Asil::D});
    const NodeId b1 = add("b1", NodeKind::Functional, AsilTag{Asil::A, Asil::D});
    const NodeId b2 = add("b2", NodeKind::Functional, AsilTag{Asil::A, Asil::D});
    const NodeId merge = add("merge", NodeKind::Merger, AsilTag{Asil::D});
    const NodeId act = add("act", NodeKind::Actuator, AsilTag{Asil::D});
    m.connect_app(sens, split);
    m.connect_app(split, b1);
    m.connect_app(split, b2);
    m.connect_app(b1, merge);
    m.connect_app(b2, merge);
    m.connect_app(merge, act);
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::InvalidDecomposition));
}

TEST(Validation, CleanModelsHaveNoReachabilityOrBlockIssues) {
    // Negative coverage for the warning-level checks: a connected chain
    // and the fig3 block structure must not trip any of them.
    for (const ArchitectureModel& m : {valid_chain(), scenarios::fig3_camera_gps_fusion()}) {
        const ValidationReport report = validate(m);
        EXPECT_FALSE(report.has(IssueCode::DanglingSensor)) << m.name();
        EXPECT_FALSE(report.has(IssueCode::UnreachableActuator)) << m.name();
        EXPECT_FALSE(report.has(IssueCode::IllFormedBlock)) << m.name();
    }
}

TEST(Validation, DanglingSensorIsWarningNotError) {
    ArchitectureModel m = valid_chain();
    const LocationId loc = m.find_location("front");
    m.add_node_with_dedicated_resource({"lonely_sensor", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::DanglingSensor));
    EXPECT_EQ(report.error_count(), 0u);
    EXPECT_NO_THROW((void)validate_or_throw(m));  // warnings never throw
}

TEST(Validation, UnreachableActuatorIsWarningNotError) {
    ArchitectureModel m = valid_chain();
    const LocationId loc = m.find_location("front");
    m.add_node_with_dedicated_resource({"lonely_act", NodeKind::Actuator, AsilTag{Asil::B}, {}}, loc);
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::UnreachableActuator));
    EXPECT_EQ(report.error_count(), 0u);
}

TEST(Validation, IllFormedBlockIsError) {
    ArchitectureModel m("bad-block");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s1 =
        m.add_node_with_dedicated_resource({"s1", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const NodeId s2 =
        m.add_node_with_dedicated_resource({"s2", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const NodeId merge =
        m.add_node_with_dedicated_resource({"merge", NodeKind::Merger, AsilTag{Asil::D}, {}}, loc);
    const NodeId act =
        m.add_node_with_dedicated_resource({"act", NodeKind::Actuator, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(s1, merge);
    m.connect_app(s2, merge);
    m.connect_app(merge, act);
    const ValidationReport report = validate(m);
    EXPECT_TRUE(report.has(IssueCode::IllFormedBlock));
    EXPECT_GE(report.error_count(), 1u);
    EXPECT_THROW((void)validate_or_throw(m), ModelError);
}

TEST(Validation, ReportCountsAndToString) {
    ArchitectureModel m = valid_chain();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    const ValidationReport report = validate(m);
    EXPECT_EQ(report.error_count() + report.warning_count(), report.issues.size());
    for (const auto& issue : report.issues) {
        EXPECT_FALSE(std::string(to_string(issue.code)).empty());
        EXPECT_FALSE(issue.message.empty());
    }
}

}  // namespace
}  // namespace asilkit

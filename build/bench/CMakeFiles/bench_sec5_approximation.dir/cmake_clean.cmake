file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_approximation.dir/bench_sec5_approximation.cpp.o"
  "CMakeFiles/bench_sec5_approximation.dir/bench_sec5_approximation.cpp.o.d"
  "bench_sec5_approximation"
  "bench_sec5_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

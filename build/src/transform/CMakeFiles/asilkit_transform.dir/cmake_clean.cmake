file(REMOVE_RECURSE
  "CMakeFiles/asilkit_transform.dir/connect.cpp.o"
  "CMakeFiles/asilkit_transform.dir/connect.cpp.o.d"
  "CMakeFiles/asilkit_transform.dir/expand.cpp.o"
  "CMakeFiles/asilkit_transform.dir/expand.cpp.o.d"
  "CMakeFiles/asilkit_transform.dir/reduce.cpp.o"
  "CMakeFiles/asilkit_transform.dir/reduce.cpp.o.d"
  "libasilkit_transform.a"
  "libasilkit_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

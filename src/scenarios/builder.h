// Fluent construction helper for scenario models.
//
// Every node gets a dedicated resource of the default kind at the given
// location (the paper's pre-optimisation assumption), so scenario code
// reads as the application graph it draws.
#pragma once

#include <string>

#include "model/architecture.h"

namespace asilkit::scenarios {

class ScenarioBuilder {
public:
    explicit ScenarioBuilder(std::string model_name) : m_(std::move(model_name)) {}

    /// Creates (or returns the existing) location with this name.
    LocationId loc(const std::string& name, Environment env = {});

    /// Sets the FSR id stamped onto subsequently created nodes ("" = none).
    void set_fsr(std::string fsr) { fsr_ = std::move(fsr); }

    NodeId sensor(const std::string& name, Asil a, LocationId at);
    NodeId actuator(const std::string& name, Asil a, LocationId at);
    NodeId func(const std::string& name, Asil a, LocationId at);
    NodeId comm(const std::string& name, Asil a, LocationId at);
    NodeId splitter(const std::string& name, Asil a, LocationId at);
    NodeId merger(const std::string& name, Asil a, LocationId at);

    void link(NodeId from, NodeId to) { m_.connect_app(from, to); }

    /// Chains a >= 2 node path: link(n0,n1), link(n1,n2), ...
    void chain(std::initializer_list<NodeId> nodes);

    [[nodiscard]] ArchitectureModel take() { return std::move(m_); }
    [[nodiscard]] ArchitectureModel& model() noexcept { return m_; }

private:
    NodeId add(const std::string& name, NodeKind kind, Asil a, LocationId at);

    ArchitectureModel m_;
    std::string fsr_;
};

}  // namespace asilkit::scenarios

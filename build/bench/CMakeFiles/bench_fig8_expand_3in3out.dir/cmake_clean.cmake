file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_expand_3in3out.dir/bench_fig8_expand_3in3out.cpp.o"
  "CMakeFiles/bench_fig8_expand_3in3out.dir/bench_fig8_expand_3in3out.cpp.o.d"
  "bench_fig8_expand_3in3out"
  "bench_fig8_expand_3in3out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_expand_3in3out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Incremental fault-tree generation benchmark: per-thread component-
// fragment builders (ftree::IncrementalTreeBuilder) against from-scratch
// tree builds on the EcoTwin trade-off sweep.
//
// Workload: the same expanded EcoTwin lateral-control model as
// bench_pruning, swept across capacity x metric configurations on one
// shared engine whose result LRU is deliberately tiny — so revisited
// candidates miss the LRU and reach tree generation, the regime the
// fragment layer is built for.  The sweep runs twice on the same
// engine: the first pass is the cold start (every composition
// assembled once), the second is the steady state an iterative DSE
// driver lives in (every composition already in the finished-tree
// memo).  Results are bitwise identical on/off (asserted in
// tests/test_mapping_search.cpp at threads 1/2/4/8); only the tree
// construction work differs.
//
// Counters exported per timing (consumed by tools/bench_to_json):
//   prepares_warm     tree-generation calls in the steady-state pass
//   gates_warm        gates constructed during the steady-state pass
//                     (registry delta of "ftree.gates_built")
//   gates_per_prepare_warm  the acceptance metric: gate constructions
//                     per steady-state candidate
//   fragment_reuse_rate     reused / (built + reused) over both passes
//   memo_hits         compositions served whole from the finished-tree
//                     memo (zero gates, zero fragment work)
#include "bench_util.h"

#include "cost/cost_analysis.h"
#include "engine/engine.h"
#include "explore/mapping_search.h"
#include "scenarios/ecotwin.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

ArchitectureModel workload() {
    ArchitectureModel m = scenarios::ecotwin_lateral_control();
    // Expand most of the communication-heavy decision chain, as
    // bench_pruning does: redundant branches make every tree build
    // genuinely costly (many gates, many modules).
    for (const char* n :
         {"objs_eth", "objs_bb", "env_out", "wm_eth", "wm_can", "lateral_control", "ctrl_out"}) {
        transform::expand(m, m.find_app_node(n));
    }
    // Field-calibrated per-instance rates (same spread as
    // bench_pruning): separates otherwise-tied candidates on the
    // objective so the sweep explores a realistic candidate mix.
    std::size_t instance = 0;
    for (ResourceId r : m.used_resources()) {
        const double calibrated =
            m.resource_lambda(r) * (1.0 + 0.003 * static_cast<double>(++instance));
        m.resources().node(r).lambda_override = calibrated;
    }
    return m;
}

struct PassTotals {
    std::uint64_t evals = 0;
    std::uint64_t prepares = 0;  // LRU misses: candidates that reached tree generation
    std::uint64_t gates = 0;     // "ftree.gates_built" delta over the pass
    std::uint64_t fragments_built = 0;
    std::uint64_t fragments_reused = 0;
    std::uint64_t memo_hits = 0;
};

/// One capacity x metric sweep over `shared`, with the gate-construction
/// registry counter sampled around it.
PassTotals run_pass(engine::EvalEngine& shared) {
    obs::Counter& gates = obs::Registry::global().counter("ftree.gates_built");
    PassTotals totals;
    const std::uint64_t gates_before = gates.value();
    for (const std::size_t capacity : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
        for (const int metric : {1, 2}) {
            ArchitectureModel m = workload();
            explore::MappingSearchOptions options;
            options.max_nodes_per_resource = capacity;
            options.metric = metric == 1 ? cost::CostMetric::exponential_metric1()
                                         : cost::CostMetric::exponential_metric2();
            const explore::MappingSearchResult r = explore::search_mapping(m, options, shared);
            totals.evals += r.evaluations;
            totals.prepares += r.eval_cache_misses;
            totals.fragments_built += r.fragments_built;
            totals.fragments_reused += r.fragments_reused;
            totals.memo_hits += r.ftree_memo_hits;
        }
    }
    totals.gates = gates.value() - gates_before;
    return totals;
}

struct SweepTotals {
    PassTotals cold;
    PassTotals warm;
};

/// The double sweep: cold pass then the identical steady-state pass on
/// one shared engine.  The tiny LRU forces revisited candidates back
/// through tree generation — with the fragment layer on, the warm pass
/// serves them from the finished-tree memo instead of rebuilding.
SweepTotals run_sweep(bool incremental) {
    engine::EngineOptions eng;
    eng.threads = 1;
    eng.cache_capacity = 8;
    eng.candidate_dedup = false;  // isolate the tree-generation layer
    eng.incremental_ftree = incremental;
    engine::EvalEngine shared(eng);
    SweepTotals totals;
    totals.cold = run_pass(shared);
    totals.warm = run_pass(shared);
    return totals;
}

double per(std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

void print_report() {
    bench::heading("Incremental fault-tree generation (EcoTwin trade-off sweep)");
    const SweepTotals off = run_sweep(false);
    const SweepTotals on = run_sweep(true);
    bench::row("tree generations, cold pass", static_cast<double>(on.cold.prepares));
    bench::row("gates/candidate, full rebuild (warm)", per(off.warm.gates, off.warm.prepares));
    bench::row("gates/candidate, incremental (warm)", per(on.warm.gates, on.warm.prepares));
    if (on.warm.gates > 0) {
        bench::row("gate-construction reduction (warm)",
                   per(off.warm.gates, off.warm.prepares) / per(on.warm.gates, on.warm.prepares));
    } else {
        bench::row("gate-construction reduction (warm)",
                   std::string("inf (steady state builds zero gates)"));
    }
    const std::uint64_t frags = on.cold.fragments_built + on.cold.fragments_reused +
                                on.warm.fragments_built + on.warm.fragments_reused;
    bench::row("fragment reuse rate",
               per(on.cold.fragments_reused + on.warm.fragments_reused, frags));
    bench::row("finished-tree memo hits (warm)", static_cast<double>(on.warm.memo_hits));
    bench::note("fronts and searched models are bitwise identical on/off");
    bench::note("(asserted by tests/test_mapping_search.cpp at threads 1/2/4/8).");
}

// The double sweep with incremental generation off: every LRU miss
// rebuilds its fault tree from the model, cold and warm alike.
void BM_IncrementalSweep_Off(benchmark::State& state) {
    SweepTotals totals;
    bench::time_batch(state, "bench.incremental_sweep_off_ns", [&] {
        totals = run_sweep(false);
        benchmark::DoNotOptimize(totals);
    });
    state.counters["prepares_warm"] = static_cast<double>(totals.warm.prepares);
    state.counters["gates_warm"] = static_cast<double>(totals.warm.gates);
    state.counters["gates_per_prepare_warm"] = per(totals.warm.gates, totals.warm.prepares);
    state.counters["cache_hit_rate"] = 0.0;
}
BENCHMARK(BM_IncrementalSweep_Off)->Unit(benchmark::kMillisecond)->UseManualTime();

// The same double sweep with the fragment layer on.
void BM_IncrementalSweep_On(benchmark::State& state) {
    SweepTotals totals;
    bench::time_batch(state, "bench.incremental_sweep_on_ns", [&] {
        totals = run_sweep(true);
        benchmark::DoNotOptimize(totals);
    });
    const std::uint64_t frags = totals.cold.fragments_built + totals.cold.fragments_reused +
                                totals.warm.fragments_built + totals.warm.fragments_reused;
    state.counters["prepares_warm"] = static_cast<double>(totals.warm.prepares);
    state.counters["gates_warm"] = static_cast<double>(totals.warm.gates);
    state.counters["gates_per_prepare_warm"] = per(totals.warm.gates, totals.warm.prepares);
    state.counters["memo_hits"] = static_cast<double>(totals.warm.memo_hits);
    state.counters["cache_hit_rate"] =
        per(totals.cold.fragments_reused + totals.warm.fragments_reused, frags);
}
BENCHMARK(BM_IncrementalSweep_On)->Unit(benchmark::kMillisecond)->UseManualTime();

// Steady-state analyze latency: two rate-variant models alternating
// through an engine whose LRU holds only one of them, so every analyze
// is an LRU miss and pays tree generation.  With the fragment layer on
// the finished-tree memo serves both after the first round.
void BM_RepeatAnalyze(benchmark::State& state) {
    const bool incremental = state.range(0) != 0;
    engine::EngineOptions eng;
    eng.threads = 1;
    eng.cache_capacity = 1;
    eng.candidate_dedup = false;
    eng.incremental_ftree = incremental;
    engine::EvalEngine shared(eng);
    const ArchitectureModel a = workload();
    ArchitectureModel b = workload();
    {
        const ResourceId r = b.used_resources().front();
        b.resources().node(r).lambda_override = b.resource_lambda(r) * 1.5;
    }
    const analysis::ProbabilityOptions options;
    // Warm-up round: both compositions enter the finished-tree memo
    // (and, off, prove the LRU really thrashes).
    (void)shared.analyze(a, options);
    (void)shared.analyze(b, options);
    obs::Counter& gates = obs::Registry::global().counter("ftree.gates_built");
    const std::uint64_t gates_before = gates.value();
    std::uint64_t analyzes = 0;
    bench::time_batch(state, "bench.repeat_analyze_ns", [&] {
        benchmark::DoNotOptimize(shared.analyze(a, options));
        benchmark::DoNotOptimize(shared.analyze(b, options));
        analyzes += 2;
    });
    state.counters["gates_per_analyze"] =
        analyzes == 0 ? 0.0 : per(gates.value() - gates_before, analyzes);
    state.counters["cache_hit_rate"] = 0.0;
}
BENCHMARK(BM_RepeatAnalyze)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

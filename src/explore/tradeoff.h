// Cost vs failure-probability trade-off recording (paper Figs. 1 and 12).
//
// Every step of a transformation sequence is snapshotted as one point of
// a curve: total cost under the configured metric, system failure
// probability, and the structural measures the paper discusses alongside
// (model size, fault-tree size, path counts).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/probability.h"
#include "cost/cost_metric.h"
#include "engine/engine.h"
#include "model/architecture.h"

namespace asilkit::explore {

struct TradeoffPoint {
    std::string label;  ///< e.g. "initial", "expand(world_model)", "connect#3"
    double cost = 0.0;
    double failure_probability = 0.0;
    std::size_t app_nodes = 0;
    std::size_t resources = 0;
    std::size_t ft_dag_nodes = 0;
    std::uint64_t ft_paths = 0;
    std::size_t bdd_nodes = 0;
};

std::ostream& operator<<(std::ostream& os, const TradeoffPoint& p);

struct TradeoffCurve {
    std::string name;
    std::vector<TradeoffPoint> points;

    [[nodiscard]] const TradeoffPoint& front() const { return points.front(); }
    [[nodiscard]] const TradeoffPoint& back() const { return points.back(); }
};

/// Measures one point on the current model state.
[[nodiscard]] TradeoffPoint measure_point(const ArchitectureModel& m, std::string label,
                                          const cost::CostMetric& metric,
                                          const analysis::ProbabilityOptions& prob_options);

/// Same, but evaluated through a caller-owned engine so repeated
/// measurements of structurally identical states hit the eval cache.
[[nodiscard]] TradeoffPoint measure_point(const ArchitectureModel& m, std::string label,
                                          const cost::CostMetric& metric,
                                          const analysis::ProbabilityOptions& prob_options,
                                          engine::EvalEngine& engine);

}  // namespace asilkit::explore

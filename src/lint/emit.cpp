#include "lint/emit.h"

#include <sstream>

#include "core/version.h"
#include "io/sarif.h"

namespace asilkit::lint {
namespace {

/// SARIF has no "off": an off rule emits nothing, and Note maps to the
/// schema's "note" level.
std::string sarif_level(Severity s) {
    switch (s) {
        case Severity::Error: return "error";
        case Severity::Warning: return "warning";
        case Severity::Note: return "note";
        case Severity::Off: break;
    }
    return "none";
}

}  // namespace

std::string to_text(const LintReport& report, const std::string& model_name) {
    std::ostringstream os;
    if (!model_name.empty()) os << model_name << ":\n";
    for (const Diagnostic& d : report.diagnostics) os << d << "\n";
    os << report.error_count() << " errors, " << report.warning_count() << " warnings, "
       << report.note_count() << " notes\n";
    return os.str();
}

io::Json to_json(const LintReport& report, const std::string& model_name) {
    io::Json doc = io::Json::object();
    if (!model_name.empty()) doc["model"] = model_name;
    io::Json summary = io::Json::object();
    summary["errors"] = static_cast<std::uint64_t>(report.error_count());
    summary["warnings"] = static_cast<std::uint64_t>(report.warning_count());
    summary["notes"] = static_cast<std::uint64_t>(report.note_count());
    doc["summary"] = std::move(summary);
    io::Json diagnostics = io::Json::array();
    for (const Diagnostic& d : report.diagnostics) {
        io::Json entry = io::Json::object();
        entry["rule"] = d.rule_id;
        entry["severity"] = to_string(d.severity);
        entry["layer"] = to_string(d.location.layer);
        entry["element"] = d.location.name;
        entry["message"] = d.message;
        if (!d.fixit.empty()) entry["fixit"] = d.fixit;
        diagnostics.push_back(std::move(entry));
    }
    doc["diagnostics"] = std::move(diagnostics);
    return doc;
}

io::Json to_sarif(const LintReport& report) {
    io::SarifLog log("asilkit-lint", kVersionString,
                     "https://github.com/asilkit/asilkit");
    for (const auto& rule : RuleRegistry::builtin().rules()) {
        const RuleInfo& info = rule->info();
        log.add_rule(std::string(info.id), std::string(info.summary),
                     sarif_level(info.default_severity));
    }
    for (const Diagnostic& d : report.diagnostics) {
        log.add_result(d.rule_id, sarif_level(d.severity), d.message,
                       d.location.qualified_name(), std::string(to_string(d.location.layer)),
                       d.fixit);
    }
    return log.to_json();
}

}  // namespace asilkit::lint

# Empty compiler generated dependencies file for test_traceability.
# This may be replaced when dependencies are built.

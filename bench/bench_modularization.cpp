// Modularized incremental candidate evaluation vs PR 1's whole-tree
// cache (the ISSUE 2 tentpole).
//
// Workload: chain_n_stages(3) with every stage expanded, evaluated
// without location events — location events are *global* shared basic
// events (one per physical position, referenced by every co-located
// component), which glue the whole tree into a single module and thereby
// define away the decomposition (see docs/engine.md "Modularization").
// Without them the canonical tree splits into ~15 independent modules.
//
// The steady-state loop rotates through *perturbed workload variants*:
// every round overrides one resource's data-sheet failure rate with a
// fresh value.  That models the realistic iterative-DSE regime — the
// architect nudges a parameter and re-runs the search — and it is the
// regime that separates the two cache granularities:
//   * whole-tree keying (modularize=off) finds no cross-round reuse at
//     all: every canonical tree embeds the new rate, so every round is
//     as cold as the first;
//   * module keying (modularize=on) misses at tree level too, but then
//     replays every module the perturbed resource does not touch, and
//     recompiles only the dirty spine.
// The timings therefore show strictly higher cache hit rate and lower
// wall time for modularize=on at identical results (bitwise identity of
// the two settings is asserted by tests/test_engine.cpp).
//
// Counters exported per timing (consumed by tools/bench_to_json):
//   cache_hit_rate   combined tree+module hit rate during the timing
//   evals            engine evaluations (analyze calls)
#include "bench_util.h"

#include "explore/mapping_search.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

/// Fully expanded 3-stage chain with the actuator resource's failure
/// rate overridden; a new `round` yields a new variant (and so a new
/// set of whole-tree cache keys) while every module not containing that
/// resource's event is unchanged.  The actuator is the most downstream
/// component, and the chain's fault tree nests downstream-outward — so
/// the perturbation dirties only the outermost module and the rest of
/// the decomposition replays.
ArchitectureModel workload_variant(std::uint64_t round) {
    ArchitectureModel m = scenarios::chain_n_stages(3);
    for (const char* n : {"f1", "f2", "f3"}) transform::expand(m, m.find_app_node(n));
    const NodeId act = m.find_app_node("act");
    const ResourceId r = m.mapped_resources(act).front();
    m.resources().node(r).lambda_override = 1e-9 * (1.0 + 1e-3 * static_cast<double>(round + 1));
    return m;
}

/// Rounds share this counter so every search in the process — whichever
/// benchmark or report section issues it — sees a variant no earlier
/// round used, keeping whole-tree keys cold across rounds by design.
std::uint64_t next_round() {
    static std::uint64_t round = 0;
    return round++;
}

explore::MappingSearchOptions search_options(bool modularize) {
    explore::MappingSearchOptions options;
    options.probability.include_location_events = false;
    options.engine = {.threads = 1, .cache_capacity = 1 << 14, .modularize = modularize};
    return options;
}

struct RotatingTotals {
    std::uint64_t evals = 0;
    std::uint64_t tree_hits = 0;
    std::uint64_t module_hits = 0;
    std::uint64_t module_misses = 0;
    double probability_after = 0.0;

    [[nodiscard]] double combined_hit_rate() const noexcept {
        const std::uint64_t hits = tree_hits + module_hits;
        const std::uint64_t total = evals + module_hits + module_misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

RotatingTotals run_round(engine::EvalEngine& engine, const explore::MappingSearchOptions& options,
                         RotatingTotals totals) {
    ArchitectureModel m = workload_variant(next_round());
    const auto r = explore::search_mapping(m, options, engine);
    totals.evals += r.evaluations;
    totals.tree_hits += r.eval_cache_hits;
    totals.module_hits += r.module_cache_hits;
    totals.module_misses += r.module_cache_misses;
    totals.probability_after = r.probability_after;
    return totals;
}

void print_report() {
    bench::heading("Modularized incremental evaluation (chain x3 expanded, rotating variants)");

    constexpr int kRounds = 4;
    engine::EvalEngine whole_tree(search_options(false).engine);
    RotatingTotals off;
    for (int i = 0; i < kRounds; ++i) off = run_round(whole_tree, search_options(false), off);

    engine::EvalEngine modular(search_options(true).engine);
    RotatingTotals on;
    for (int i = 0; i < kRounds; ++i) on = run_round(modular, search_options(true), on);

    ArchitectureModel probe = workload_variant(next_round());
    const auto canon = engine::EvalEngine(search_options(true).engine).analyze(
        probe, search_options(true).probability);
    bench::row("modules per canonical tree", static_cast<double>(canon.modules));
    bench::row("evaluations per rotating round", static_cast<double>(on.evals / kRounds));
    std::printf("  %-46s %.1f%%  (%llu/%llu tree hits)\n", "whole-tree cache, rotating variants",
                100.0 * off.combined_hit_rate(), static_cast<unsigned long long>(off.tree_hits),
                static_cast<unsigned long long>(off.evals));
    std::printf("  %-46s %.1f%%  (+%llu module hits, %llu module misses)\n",
                "modularized cache, rotating variants", 100.0 * on.combined_hit_rate(),
                static_cast<unsigned long long>(on.module_hits),
                static_cast<unsigned long long>(on.module_misses));
    bench::note("modularize on/off search results are bitwise identical");
    bench::note("(asserted by tests/test_engine.cpp, Modularize.*).");
}

// PR 1 baseline under the rotating regime: whole-tree keys only, so the
// cache earns nothing across rounds and little within one (mirror-merge
// symmetry only).
void BM_RotatingVariants_WholeTreeCache(benchmark::State& state) {
    engine::EvalEngine engine(search_options(false).engine);
    RotatingTotals totals;
    for (auto _ : state) {
        totals = run_round(engine, search_options(false), totals);
        benchmark::DoNotOptimize(totals);
    }
    state.counters["cache_hit_rate"] = totals.combined_hit_rate();
    state.counters["evals"] = static_cast<double>(totals.evals);
}
BENCHMARK(BM_RotatingVariants_WholeTreeCache)->Unit(benchmark::kMillisecond);

// The tentpole: per-module keys replay every region the perturbation
// does not touch, so each round only recompiles the dirty spine.
void BM_RotatingVariants_ModularizedCache(benchmark::State& state) {
    engine::EvalEngine engine(search_options(true).engine);
    RotatingTotals totals;
    for (auto _ : state) {
        totals = run_round(engine, search_options(true), totals);
        benchmark::DoNotOptimize(totals);
    }
    state.counters["cache_hit_rate"] = totals.combined_hit_rate();
    state.counters["evals"] = static_cast<double>(totals.evals);
}
BENCHMARK(BM_RotatingVariants_ModularizedCache)->Unit(benchmark::kMillisecond);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

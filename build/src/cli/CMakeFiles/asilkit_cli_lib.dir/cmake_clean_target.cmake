file(REMOVE_RECURSE
  "libasilkit_cli_lib.a"
)

// OpenMetrics / Prometheus text exposition of the metrics registry.
//
// Renders a MetricsSnapshot in the OpenMetrics text format
// (https://prometheus.io/docs/specs/om/open_metrics_spec/): counters as
// `<name>_total`, gauges verbatim, histograms as cumulative
// `_bucket{le="..."}` series plus `_sum`/`_count`, terminated by the
// mandatory `# EOF` line.  Dotted registry ids ("bdd.apply_hits") are
// mapped to legal metric names ("bdd_apply_hits") — every character
// outside [a-zA-Z0-9_:] becomes '_', with a leading '_' prepended when
// the id starts with a digit.
//
// This string is what the future `asilkit serve` daemon returns from
// its /metrics endpoint verbatim (ROADMAP item 1); today it is exposed
// through `asilkit stats --format openmetrics` and written on a period
// by the time-series sampler (obs/timeseries.h) so a Prometheus
// file-based collector can scrape a long bench run.
#pragma once

#include <string>
#include <string_view>

namespace asilkit::obs {

struct MetricsSnapshot;

/// Maps a dotted registry id to a legal OpenMetrics metric name.
[[nodiscard]] std::string openmetrics_name(std::string_view id);

/// Renders the whole snapshot as an OpenMetrics text document,
/// `# EOF` terminator included.  An empty snapshot renders as just the
/// terminator — still a valid (empty) exposition.
[[nodiscard]] std::string to_openmetrics(const MetricsSnapshot& snapshot);

}  // namespace asilkit::obs

#include "analysis/fmea.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <unordered_map>

#include "analysis/cutsets.h"
#include "analysis/importance.h"
#include "ftree/builder.h"
#include "model/failure_rates.h"

namespace asilkit::analysis {

std::ostream& operator<<(std::ostream& os, const FmeaRow& row) {
    os << row.resource << " (" << to_string(row.kind) << ", " << to_string(row.asil)
       << ", lambda=" << row.lambda << "): FV=" << row.fussell_vesely << ", B=" << row.birnbaum;
    if (row.single_point_of_failure) os << " [SPOF]";
    return os;
}

std::vector<FmeaRow> fmea_report(const ArchitectureModel& m, const FmeaOptions& options) {
    ftree::FtBuildOptions build_options;
    build_options.include_location_events = options.include_location_events;
    const ftree::FtBuildResult built = ftree::build_fault_tree(m, build_options);

    // Importance per basic-event name.
    std::unordered_map<std::string, ImportanceEntry> importance;
    for (ImportanceEntry& e : importance_measures(built.tree, options.mission_hours)) {
        importance.emplace(e.event, std::move(e));
    }

    // SPOF set from order-1 minimal cut sets (zero-rate events cannot
    // occur and are not SPOFs).
    CutSetOptions cs_options;
    cs_options.max_order = options.max_cut_order;
    std::set<std::string> spofs;
    for (const CutSet& cs : minimal_cut_sets(built.tree, cs_options)) {
        if (cs.size() == 1 && built.tree.basic_event(cs.front()).lambda > 0.0) {
            spofs.insert(built.tree.basic_event(cs.front()).name);
        }
    }

    const FailureRates rates;
    std::vector<FmeaRow> rows;
    for (ResourceId r : m.used_resources()) {
        const Resource& res = m.resources().node(r);
        FmeaRow row;
        row.resource = res.name;
        row.kind = res.kind;
        row.asil = res.asil;
        row.lambda = rates.resource_rate(res);
        std::set<std::string> fsrs;
        for (NodeId n : m.nodes_on_resource(r)) {
            row.implements.push_back(m.app().node(n).name);
            if (!m.app().node(n).fsr.empty()) fsrs.insert(m.app().node(n).fsr);
        }
        std::sort(row.implements.begin(), row.implements.end());
        row.fsrs.assign(fsrs.begin(), fsrs.end());
        const std::string event = std::string(ftree::kResourceEventPrefix) + res.name;
        if (auto it = importance.find(event); it != importance.end()) {
            row.birnbaum = it->second.birnbaum;
            row.fussell_vesely = it->second.fussell_vesely;
        }
        row.single_point_of_failure = spofs.contains(event);
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(), [](const FmeaRow& a, const FmeaRow& b) {
        if (a.fussell_vesely != b.fussell_vesely) return a.fussell_vesely > b.fussell_vesely;
        return a.resource < b.resource;
    });
    return rows;
}

}  // namespace asilkit::analysis

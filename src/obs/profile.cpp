#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/metrics.h"

namespace asilkit::obs {
namespace {

/// "1.23 ms"-style rendering for the text table.
std::string human_ns(double ns) {
    char buf[48];
    if (ns >= 1e9) {
        std::snprintf(buf, sizeof(buf), "%.3g s", ns / 1e9);
    } else if (ns >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.3g ms", ns / 1e6);
    } else if (ns >= 1e3) {
        std::snprintf(buf, sizeof(buf), "%.3g us", ns / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3g ns", ns);
    }
    return buf;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/// Mutable aggregation cell for one span name.
struct NodeAccum {
    const char* cat = "";
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    std::vector<std::uint64_t> buckets;  // latency_bounds_ns().size() + 1

    void observe(std::uint64_t dur_ns, std::uint64_t self, const char* category) {
        cat = category;
        if (count == 0 || dur_ns < min_ns) min_ns = dur_ns;
        if (dur_ns > max_ns) max_ns = dur_ns;
        ++count;
        total_ns += dur_ns;
        self_ns += self;
        const std::span<const double> bounds = latency_bounds_ns();
        if (buckets.empty()) buckets.assign(bounds.size() + 1, 0);
        const auto it = std::lower_bound(bounds.begin(), bounds.end(),
                                         static_cast<double>(dur_ns));
        ++buckets[static_cast<std::size_t>(it - bounds.begin())];
    }
};

/// One open span on a thread's replay stack.
struct Frame {
    const char* name;
    const char* cat;
    std::uint64_t begin_ns;
    std::uint64_t child_ns = 0;
    std::string path;  // "parent;...;name"
};

}  // namespace

const SpanProfile::Node* SpanProfile::find(std::string_view name) const noexcept {
    for (const Node& n : nodes) {
        if (n.name == name) return &n;
    }
    return nullptr;
}

SpanProfile build_profile(std::span<const TraceEvent> events) {
    std::map<std::string, NodeAccum> accum;
    std::map<std::pair<std::string, std::string>, SpanProfile::Edge> edges;
    std::map<std::string, std::uint64_t> stacks;
    std::map<std::uint32_t, std::vector<Frame>> threads;
    std::uint64_t unmatched = 0;

    for (const TraceEvent& e : events) {
        if (e.ph == 'I') continue;
        std::vector<Frame>& stack = threads[e.tid];
        if (e.ph == 'B') {
            Frame frame{e.name, e.cat, e.ts_ns, 0, {}};
            frame.path = stack.empty() ? std::string(e.name)
                                       : stack.back().path + ";" + e.name;
            stack.push_back(std::move(frame));
            continue;
        }
        // 'E': must close the innermost open span.  RAII guarantees LIFO
        // per thread, so a mismatch means the matching B fell to the
        // buffer cap — drop the E rather than corrupt the stack.
        if (stack.empty() || std::string_view(stack.back().name) != e.name) {
            ++unmatched;
            continue;
        }
        Frame frame = std::move(stack.back());
        stack.pop_back();
        const std::uint64_t dur =
            e.ts_ns >= frame.begin_ns ? e.ts_ns - frame.begin_ns : 0;
        const std::uint64_t self = dur >= frame.child_ns ? dur - frame.child_ns : 0;
        accum[frame.name].observe(dur, self, frame.cat);
        stacks[frame.path] += self;
        if (!stack.empty()) {
            stack.back().child_ns += dur;
            SpanProfile::Edge& edge = edges[{stack.back().name, frame.name}];
            edge.parent = stack.back().name;
            edge.child = frame.name;
            ++edge.count;
            edge.total_ns += dur;
        }
    }
    for (const auto& entry : threads) unmatched += entry.second.size();

    SpanProfile profile;
    profile.unmatched = unmatched;
    profile.nodes.reserve(accum.size());
    for (const auto& [name, a] : accum) {
        SpanProfile::Node node;
        node.name = name;
        node.cat = a.cat;
        node.count = a.count;
        node.total_ns = a.total_ns;
        node.self_ns = a.self_ns;
        node.min_ns = a.min_ns;
        node.max_ns = a.max_ns;
        node.p50_ns = histogram_quantile(latency_bounds_ns(), a.buckets, 0.50);
        node.p95_ns = histogram_quantile(latency_bounds_ns(), a.buckets, 0.95);
        profile.nodes.push_back(std::move(node));
    }
    profile.edges.reserve(edges.size());
    for (auto& entry : edges) profile.edges.push_back(std::move(entry.second));
    profile.stacks.reserve(stacks.size());
    for (const auto& [path, self_ns] : stacks) profile.stacks.push_back({path, self_ns});
    return profile;
}

SpanProfile profile_current_trace() {
    const std::vector<TraceEvent> events = snapshot_events();
    return build_profile(events);
}

std::string SpanProfile::to_text() const {
    if (nodes.empty()) return "(no spans recorded)\n";
    // Hottest self-time first; ties broken by name for determinism.
    std::vector<const Node*> by_self;
    by_self.reserve(nodes.size());
    for (const Node& n : nodes) by_self.push_back(&n);
    std::sort(by_self.begin(), by_self.end(), [](const Node* a, const Node* b) {
        if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
        return a->name < b->name;
    });

    std::ostringstream os;
    char line[200];
    std::snprintf(line, sizeof(line), "%-26s %-8s %8s %10s %10s %9s %9s %9s %9s\n",
                  "span", "cat", "count", "self", "total", "min", "p50", "p95", "max");
    os << line;
    for (const Node* n : by_self) {
        std::snprintf(line, sizeof(line), "%-26s %-8s %8llu %10s %10s %9s %9s %9s %9s\n",
                      n->name.c_str(), n->cat.c_str(),
                      static_cast<unsigned long long>(n->count),
                      human_ns(static_cast<double>(n->self_ns)).c_str(),
                      human_ns(static_cast<double>(n->total_ns)).c_str(),
                      human_ns(static_cast<double>(n->min_ns)).c_str(),
                      human_ns(n->p50_ns).c_str(), human_ns(n->p95_ns).c_str(),
                      human_ns(static_cast<double>(n->max_ns)).c_str());
        os << line;
    }
    if (!edges.empty()) {
        os << "edges:\n";
        for (const Edge& e : edges) {
            std::snprintf(line, sizeof(line), "  %-24s -> %-24s count=%-8llu total=%s\n",
                          e.parent.c_str(), e.child.c_str(),
                          static_cast<unsigned long long>(e.count),
                          human_ns(static_cast<double>(e.total_ns)).c_str());
            os << line;
        }
    }
    if (unmatched != 0) os << "unmatched spans: " << unmatched << "\n";
    return os.str();
}

std::string SpanProfile::to_json() const {
    std::ostringstream os;
    os << "{\"spans\":[";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Node& n = nodes[i];
        if (i != 0) os << ",";
        os << "{\"name\":\"" << json_escape(n.name) << "\",\"cat\":\"" << json_escape(n.cat)
           << "\",\"count\":" << n.count << ",\"total_ns\":" << n.total_ns
           << ",\"self_ns\":" << n.self_ns << ",\"min_ns\":" << n.min_ns
           << ",\"max_ns\":" << n.max_ns;
        char buf[96];
        std::snprintf(buf, sizeof(buf), ",\"p50_ns\":%.17g,\"p95_ns\":%.17g", n.p50_ns,
                      n.p95_ns);
        os << buf << "}";
    }
    os << "],\"edges\":[";
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const Edge& e = edges[i];
        if (i != 0) os << ",";
        os << "{\"parent\":\"" << json_escape(e.parent) << "\",\"child\":\""
           << json_escape(e.child) << "\",\"count\":" << e.count
           << ",\"total_ns\":" << e.total_ns << "}";
    }
    os << "],\"stacks\":[";
    for (std::size_t i = 0; i < stacks.size(); ++i) {
        if (i != 0) os << ",";
        os << "{\"path\":\"" << json_escape(stacks[i].path)
           << "\",\"self_ns\":" << stacks[i].self_ns << "}";
    }
    os << "],\"unmatched\":" << unmatched << "}";
    return os.str();
}

std::string SpanProfile::to_collapsed() const {
    std::string out;
    for (const Stack& s : stacks) {
        if (s.self_ns == 0) continue;  // flamegraph.pl ignores zero rows anyway
        out += s.path;
        out += ' ';
        out += std::to_string(s.self_ns);
        out += '\n';
    }
    return out;
}

}  // namespace asilkit::obs

// Functional-Safety-Requirement traceability (paper Section X: the
// framework provides "traceability of the FSRs on the architecture").
//
// Every application node may carry an FSR id; transformations propagate
// it, so after any sequence of Expand/Connect/Reduce the question "which
// architecture elements implement FSR-LAT-01, and do they still achieve
// its ASIL?" has a mechanical answer:
//
//   required  = the strongest inherited level among the FSR's nodes
//               (X(Y) tags keep Y through decompositions);
//   achieved  = the weakest credited level among them, where a node
//               inside a well-formed redundant block is credited with
//               the block's Eq. 4 ASIL rather than its own (that is the
//               point of decomposition);
//   satisfied = achieved >= required.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/asil.h"
#include "model/architecture.h"

namespace asilkit::analysis {

struct FsrStatus {
    std::string fsr;
    Asil required = Asil::QM;
    Asil achieved = Asil::D;
    bool satisfied = true;
    std::vector<std::string> nodes;               ///< implementing node names
    std::vector<std::string> under_implemented;   ///< nodes whose credit < required
};

std::ostream& operator<<(std::ostream& os, const FsrStatus& status);

struct TraceabilityReport {
    std::vector<FsrStatus> requirements;  ///< sorted by FSR id
    std::vector<std::string> untraced_nodes;  ///< nodes with no FSR

    [[nodiscard]] bool all_satisfied() const noexcept;
    [[nodiscard]] const FsrStatus* find(const std::string& fsr) const noexcept;
};

[[nodiscard]] TraceabilityReport trace_requirements(const ArchitectureModel& m);

}  // namespace asilkit::analysis

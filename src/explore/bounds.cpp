#include "explore/bounds.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "bdd/from_fault_tree.h"
#include "core/error.h"
#include "core/sync.h"
#include "cost/cost_analysis.h"
#include "ftree/builder.h"
#include "obs/metrics.h"

namespace asilkit::explore {
namespace {

// Beyond this many cut sets the Bonferroni precompute stops paying for
// itself against plain engine evaluations.
constexpr std::size_t kMaxCuts = 2048;

/// Process-wide memo for minimal-cut-set enumeration, keyed by
/// fault-tree shape.  A DSE driver's trade-off sweep starts many
/// searches from the same seed architecture (capacity x metric
/// configurations), and every such search's bound context re-derives
/// the seed's cut sets — the MOCUS enumeration dominates context
/// construction, yet it depends only on the tree's gate structure:
/// not on rates, names, or the cost metric.  So shapes that hash equal
/// AND are confirmed index-identical by ftree::identical_shape() share
/// one enumeration (always with default CutSetOptions, the only ones
/// the bound context uses).  Small and move-to-front; a miss just
/// enumerates.
class CutSetMemo {
public:
    std::shared_ptr<const std::vector<analysis::CutSet>> cuts_for(const ftree::FaultTree& tree) {
        static obs::Counter& hits = obs::Registry::global().counter("explore.cutset_memo_hits");
        const std::uint64_t key = tree.shape_hash();
        {
            const core::MutexLock lock(mu_);
            for (auto it = entries_.begin(); it != entries_.end(); ++it) {
                if (it->key == key && ftree::identical_shape(it->tree, tree)) {
                    std::rotate(entries_.begin(), it, it + 1);
                    hits.inc();
                    return entries_.front().cuts;
                }
            }
        }
        // Enumerate outside the lock; a racing duplicate enumeration is
        // wasted work, never a wrong answer.
        auto cuts = std::make_shared<const std::vector<analysis::CutSet>>(
            analysis::minimal_cut_sets(tree));
        const core::MutexLock lock(mu_);
        if (entries_.size() >= kCapacity) entries_.pop_back();
        entries_.insert(entries_.begin(), Entry{key, tree, cuts});
        return cuts;
    }

private:
    struct Entry {
        std::uint64_t key;
        ftree::FaultTree tree;  ///< retained for the collision-proof confirmation
        std::shared_ptr<const std::vector<analysis::CutSet>> cuts;
    };
    static constexpr std::size_t kCapacity = 4;
    core::Mutex mu_;
    std::vector<Entry> entries_ GUARDED_BY(mu_);
};

CutSetMemo& cut_set_memo() {
    static CutSetMemo memo;
    return memo;
}

// Both bounds are exact-arithmetic sound; the slack absorbs the
// floating-point rounding difference between the bound computation and
// the engine's own evaluation of the same quantity, keeping
// bound <= engine value certain in FP as well.
constexpr double kProbabilitySlack = 1.0 - 1e-9;
constexpr double kCostSlack = 1.0 - 1e-12;

/// Sorted union of `extra` into sorted `cs`, in place.
void merge_into(analysis::CutSet& cs, const std::vector<std::uint32_t>& extra) {
    const std::size_t mid = cs.size();
    cs.insert(cs.end(), extra.begin(), extra.end());
    std::inplace_merge(cs.begin(), cs.begin() + static_cast<std::ptrdiff_t>(mid), cs.end());
    cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
}

}  // namespace

MergeBoundContext::MergeBoundContext(const ArchitectureModel& m, const cost::CostMetric& metric,
                                     const analysis::ProbabilityOptions& prob_options,
                                     double current_total_cost)
    : model_(m),
      metric_(metric),
      prob_options_(prob_options),
      current_total_cost_(current_total_cost),
      location_events_(prob_options.include_location_events) {
    try {
        ftree::FtBuildOptions build;
        build.approximate = prob_options_.approximate;
        build.include_location_events = prob_options_.include_location_events;
        build.rates = prob_options_.rates;
        const ftree::FtBuildResult built = ftree::build_fault_tree(m, build);

        for (ResourceId r : m.used_resources()) {
            ResourceEvents ev;
            const std::string event_name =
                std::string(ftree::kResourceEventPrefix) + m.resources().node(r).name;
            if (built.tree.has_basic_event(event_name)) {
                ev.event = built.tree.find_basic_event(event_name).index;
            }
            ev.locations = m.resource_locations(r);
            std::sort(ev.locations.begin(), ev.locations.end());
            for (LocationId loc : ev.locations) {
                const std::string loc_name =
                    std::string(ftree::kLocationEventPrefix) + m.physical().node(loc).name;
                if (built.tree.has_basic_event(loc_name)) {
                    ev.loc_events.push_back(built.tree.find_basic_event(loc_name).index);
                }
            }
            std::sort(ev.loc_events.begin(), ev.loc_events.end());
            ev.loc_events.erase(std::unique(ev.loc_events.begin(), ev.loc_events.end()),
                                ev.loc_events.end());
            resource_events_.emplace(r, std::move(ev));
        }
        events_ok_ = true;

        const std::shared_ptr<const std::vector<analysis::CutSet>> cuts =
            cut_set_memo().cuts_for(built.tree);
        if (cuts->size() > kMaxCuts) return;  // lb_ stays empty -> unusable
        event_probs_ = analysis::basic_event_probabilities(built.tree, prob_options_.mission_hours);
        lb_.emplace(*cuts, event_probs_);
    } catch (const AnalysisError&) {
        lb_.reset();  // no probability bound for this model; never prune
    }
}

const MergeBoundContext::ResourceEvents& MergeBoundContext::events_of(ResourceId r) const {
    return resource_events_.at(r);
}

/// The conservative cut rewrite for merging `from` (events `eb`) into
/// `into` (events `ea`): re-price the survivor for its asil_max raise,
/// substitute res:from by res:into in every cut pricing it, and widen by
/// the survivor's location events when a cut relied on the old ones.
/// Widening (more events required to fail jointly) can only lower the
/// cut's probability — sound.  See docs/explore.md for the monotonicity
/// argument that each rewrite IS a cut of the merged top event.
analysis::CutSetLowerBound::Substitution MergeBoundContext::substitution_for(
    ResourceId into, ResourceId from, const ResourceEvents& ea, const ResourceEvents& eb,
    bool same_locations) const {
    analysis::CutSetLowerBound::Substitution sub;
    // Re-priced survivor event: the merge raises `into` to asil_max of
    // the pair, exactly as apply_merge will (a lambda_override, being a
    // data-sheet fact about the part, survives the ASIL raise).
    if (ea.event) {
        Resource merged = model_.resources().node(into);
        merged.asil = asil_max(merged.asil, model_.resources().node(from).asil);
        sub.overrides.emplace_back(
            *ea.event, bdd::basic_event_probability(prob_options_.rates.resource_rate(merged),
                                                    prob_options_.mission_hours));
    }

    // A cut is affected when its probability changes (it prices res:into
    // or res:from) or when its validity depends on the moved nodes' old
    // locations (it contains a loc event of `from` while the merge
    // relocates — i.e. the location sets differ).
    std::vector<std::uint32_t> affected;
    const auto add_postings = [&](std::uint32_t event) {
        const auto& posts = lb_->cuts_containing(event);
        affected.insert(affected.end(), posts.begin(), posts.end());
    };
    if (ea.event) add_postings(*ea.event);
    if (eb.event) add_postings(*eb.event);
    if (!same_locations) {
        for (std::uint32_t e : eb.loc_events) add_postings(e);
    }
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

    sub.replacements.reserve(affected.size());
    for (std::uint32_t i : affected) {
        analysis::CutSet rewritten = lb_->cuts()[i];
        if (eb.event) {
            const auto it = std::lower_bound(rewritten.begin(), rewritten.end(), *eb.event);
            if (it != rewritten.end() && *it == *eb.event) {
                rewritten.erase(it);
                merge_into(rewritten, {*ea.event});
            }
        }
        if (!same_locations) {
            const bool touches_old_location = std::any_of(
                eb.loc_events.begin(), eb.loc_events.end(), [&](std::uint32_t e) {
                    return std::binary_search(rewritten.begin(), rewritten.end(), e);
                });
            if (touches_old_location) merge_into(rewritten, ea.loc_events);
        }
        sub.replacements.push_back(std::move(rewritten));
    }
    sub.affected = std::move(affected);
    return sub;
}

MergeBoundContext::Bounds MergeBoundContext::bounds(ResourceId into, ResourceId from) const {
    Bounds out;
    const Resource& a = model_.resources().node(into);
    const Resource& b = model_.resources().node(from);
    out.cost_lb = cost::merged_total_cost(current_total_cost_, metric_, a, b) * kCostSlack;
    if (!lb_) return out;  // probability_lb = 0: never prunes

    const ResourceEvents& ea = events_of(into);
    const ResourceEvents& eb = events_of(from);
    if (eb.event && !ea.event) return out;  // cannot express the substitution soundly
    const bool same_locations = !location_events_ || ea.locations == eb.locations;
    const analysis::CutSetLowerBound::Substitution sub =
        substitution_for(into, from, ea, eb, same_locations);
    out.probability_lb = lb_->rebound(sub) * kProbabilitySlack;
    return out;
}

void MergeBoundContext::commit(ResourceId into, ResourceId from, double new_total_cost) {
    current_total_cost_ = new_total_cost;
    if (!events_ok_) return;
    // Copies: the map is mutated below, and substitution_for takes refs.
    const ResourceEvents ea = events_of(into);
    const ResourceEvents eb = events_of(from);
    resource_events_.erase(from);
    if (!lb_) return;
    if (eb.event && !ea.event) {
        // The accepted merge itself is inexpressible as a cut rewrite;
        // without a sound family for the merged model the probability
        // bound is retired for the rest of the search (cost bounds keep
        // working).  Unreachable for models the fault-tree builder
        // prices completely — every mapped resource gets an event.
        lb_.reset();
        return;
    }
    const bool same_locations = !location_events_ || ea.locations == eb.locations;
    analysis::CutSetLowerBound::Substitution sub =
        substitution_for(into, from, ea, eb, same_locations);

    // Materialize the substituted family as the new base: every
    // rewritten cut is a cut of the merged top event, so the next
    // iteration's bounds stay admissible without a fault-tree rebuild or
    // cut re-enumeration.  Sort + dedup keeps the family canonical and
    // stops duplicates accumulating over long walks.
    std::vector<analysis::CutSet> next;
    next.reserve(lb_->cut_count() + sub.replacements.size());
    std::size_t skip = 0;
    for (std::uint32_t i = 0; i < lb_->cut_count(); ++i) {
        if (skip < sub.affected.size() && sub.affected[skip] == i) {
            ++skip;
            continue;
        }
        next.push_back(lb_->cuts()[i]);
    }
    for (analysis::CutSet& r : sub.replacements) next.push_back(std::move(r));
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    for (const auto& [event, probability] : sub.overrides) event_probs_[event] = probability;
    if (next.size() > kMaxCuts) {
        lb_.reset();
        return;
    }
    lb_.emplace(std::move(next), event_probs_);
}

}  // namespace asilkit::explore


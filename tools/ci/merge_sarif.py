#!/usr/bin/env python3
"""Merge SARIF 2.1.0 documents into one multi-run document.

Each input file contributes its runs unchanged (SARIF is explicitly
multi-run: one run per tool), so clang-tidy, -Wthread-safety, and
asilkit-archcheck findings land in a single static-analysis.sarif
artifact.  Inputs that are missing or empty are skipped with a note on
stderr — a converter upstream may legitimately have produced nothing.

Usage: merge_sarif.py out.sarif in1.sarif [in2.sarif ...]
Exits 1 only on malformed (unparsable) input.
"""

import json
import sys

SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/"
    "sarif-schema-2.1.0.json"
)


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    out_path, in_paths = sys.argv[1], sys.argv[2:]

    runs = []
    total_results = 0
    for path in in_paths:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            print(f"merge_sarif: skipping missing {path}", file=sys.stderr)
            continue
        except json.JSONDecodeError as e:
            sys.exit(f"merge_sarif: {path} is not valid JSON: {e}")
        doc_runs = doc.get("runs", [])
        for run in doc_runs:
            total_results += len(run.get("results", []))
        runs.extend(doc_runs)

    merged = {"$schema": SARIF_SCHEMA, "version": "2.1.0", "runs": runs}
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    tools = ", ".join(
        run.get("tool", {}).get("driver", {}).get("name", "?") for run in runs
    )
    print(f"merge_sarif: {len(runs)} runs ({tools}): {total_results} results")


if __name__ == "__main__":
    main()

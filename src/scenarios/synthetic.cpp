#include "scenarios/synthetic.h"

#include <cmath>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenarios/builder.h"

namespace asilkit::scenarios {

ArchitectureModel synthetic_model(const SyntheticOptions& options) {
    ScenarioBuilder b("synthetic-" + std::to_string(options.seed));
    std::mt19937 rng(options.seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    const Asil level = options.level;

    const LocationId zone_a = b.loc("zone_a");
    const LocationId zone_b = b.loc("zone_b");
    const LocationId zone_c = b.loc("zone_c");
    const LocationId zones[] = {zone_a, zone_b, zone_c};
    auto pick_zone = [&]() { return zones[rng() % 3]; };

    // Sensors feed the first layer through explicit communication nodes.
    std::vector<NodeId> previous;
    for (std::size_t i = 0; i < options.sensors; ++i) {
        const LocationId at = pick_zone();
        const NodeId s = b.sensor("s" + std::to_string(i), level, at);
        const NodeId c = b.comm("sc" + std::to_string(i), level, at);
        b.link(s, c);
        previous.push_back(c);
    }

    for (std::size_t layer = 0; layer < options.layers; ++layer) {
        std::vector<NodeId> current;
        for (std::size_t i = 0; i < options.width; ++i) {
            const LocationId at = pick_zone();
            const std::string tag = std::to_string(layer) + "_" + std::to_string(i);
            const NodeId f = b.func("f" + tag, level, at);
            // Primary input keeps the graph connected; optional extras add
            // fan-in.
            b.link(previous[rng() % previous.size()], f);
            if (previous.size() > 1 && coin(rng) < options.extra_edge_probability) {
                b.link(previous[rng() % previous.size()], f);
            }
            const NodeId c = b.comm("c" + tag, level, at);
            b.link(f, c);
            current.push_back(c);
        }
        previous = std::move(current);
    }

    for (std::size_t i = 0; i < options.actuators; ++i) {
        const NodeId a = b.actuator("a" + std::to_string(i), level, pick_zone());
        b.link(previous[rng() % previous.size()], a);
        // Every layer output must reach some actuator to avoid dangling
        // chains: the first actuator absorbs the rest.
        if (i == 0) {
            for (NodeId c : previous) {
                if (!b.model().app().find_edge(c, a).valid()) b.link(c, a);
            }
        }
    }
    return b.take();
}

ftree::FaultTree synthetic_fault_tree(const SyntheticTreeOptions& options) {
    if (options.events == 0) throw std::invalid_argument("synthetic_fault_tree: events == 0");
    if (options.max_arity < 2) throw std::invalid_argument("synthetic_fault_tree: max_arity < 2");
    std::mt19937 rng(options.seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_real_distribution<double> log_lambda(std::log(options.lambda_low),
                                                      std::log(options.lambda_high));

    ftree::FaultTree ft;
    std::vector<ftree::FtRef> pool;
    std::vector<std::uint8_t> referenced;
    pool.reserve(options.events + options.gates);
    referenced.reserve(options.events + options.gates);
    for (std::size_t i = 0; i < options.events; ++i) {
        pool.push_back(ft.add_basic_event("e" + std::to_string(i), std::exp(log_lambda(rng))));
        referenced.push_back(0);
    }
    for (std::size_t i = 0; i < options.gates; ++i) {
        const auto kind =
            coin(rng) < options.and_fraction ? ftree::GateKind::And : ftree::GateKind::Or;
        const std::size_t arity = 2 + rng() % (options.max_arity - 1);
        std::vector<ftree::FtRef> children;
        children.reserve(arity);
        for (std::size_t c = 0; c < arity; ++c) {
            const std::size_t pick = rng() % pool.size();
            referenced[pick] = 1;
            children.push_back(pool[pick]);
        }
        pool.push_back(ft.add_gate("g" + std::to_string(i), kind, std::move(children)));
        referenced.push_back(0);
    }
    // Every dangling root feeds the top OR, so no generated node is dead
    // weight in a sweep — the advertised node count is all working set.
    std::vector<ftree::FtRef> roots;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        if (referenced[i] == 0) roots.push_back(pool[i]);
    }
    ft.set_top(ft.add_gate("top", ftree::GateKind::Or, std::move(roots)));
    return ft;
}

}  // namespace asilkit::scenarios

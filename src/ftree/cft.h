// Component fault trees (CFT) with dirty-fragment incremental
// recompilation (ROADMAP item 4; ALFRED/ArChes in PAPERS.md).
//
// Each application component owns a *fragment*: its intrinsic basic
// events (one per mapped resource, one per hosting location), the names
// of the gates it will contribute, and its inport wiring — everything
// local that whole-tree generation re-derives from the model on every
// candidate.  A fragment is keyed by a content fingerprint over exactly
// the model facts it reads, so a candidate edit (a resource merge, a
// rate override, a new channel) *dirties* precisely the fragments whose
// facts changed; every other fragment is reused by reference.
//
// Assembly stitches fragments along the architecture edges through the
// very same traversal the whole-tree builder runs (assemble_fault_tree
// shares its implementation), so the assembled arena is bitwise
// identical to build_fault_tree() — same events, names, rates, child
// order, warnings and indices.  On top sits a composition memo: the
// fingerprint of the whole fragment composition keys a cache of
// finished (canonical tree, hashes, module decomposition) bundles, so a
// *repeat* candidate — the steady state of a trade-off sweep, where the
// engine's LRU would score it from cache but still paid O(tree) to
// rebuild and canonicalise the tree first — skips generation entirely.
//
// Exactness contract: with incremental generation on, assembled trees,
// canonical forms, structural hashes and module decompositions are
// bitwise identical to full rebuilds (tests/test_cft.cpp), and DSE
// results and Pareto fronts are bitwise identical at any thread count
// (tests/test_mapping_search.cpp).  docs/ftree.md gives the argument.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ftree/builder.h"
#include "ftree/fault_tree.h"
#include "ftree/modules.h"
#include "model/architecture.h"

namespace asilkit::ftree {

/// One component's reusable share of the fault tree: the intrinsic base
/// events in mapped order, pre-resolved against the rate table.  Gates
/// are not stored — a component's failure gate wires to its
/// predecessors' gates, so gates materialise at stitch time; what the
/// fragment saves is every model lookup, rate resolution and name
/// construction behind them.
struct ComponentFragment {
    /// Content fingerprint (see fragment_key).
    std::uint64_t key = 0;
    /// Emits the "no mapped resource" warning during assembly.
    bool no_resource = false;
    /// Intrinsic events in mapped order: per resource its res: event,
    /// then one loc: event per hosting location.  Duplicates are kept —
    /// assembly replays them through FaultTree::add_basic_event exactly
    /// as the whole-tree builder does, so arenas stay identical.
    std::vector<BasicEvent> events;
};

/// Content fingerprint of `n`'s fragment: a hash over exactly the model
/// facts fragment generation and stitching read for this component —
/// its name, kind and ASIL, the in-order predecessor ids (the inport
/// wiring), and per mapped resource the resolved failure rate plus the
/// hosting locations' names and rates — together with the build-option
/// bits.  Two models agree on a node's key iff the node's local share
/// of the generated tree is identical, which is what makes the key a
/// sound dirtiness test: an edit dirties a fragment iff it changes the
/// key.  64-bit, so collisions are possible in principle — the same
/// exposure the engine's tree keys already accept (docs/ftree.md).
[[nodiscard]] std::uint64_t fragment_key(const ArchitectureModel& m, NodeId n,
                                         const FtBuildOptions& options);

/// Builds (or rebuilds) the fragment of `n`, key included.
[[nodiscard]] ComponentFragment build_fragment(const ArchitectureModel& m, NodeId n,
                                               const FtBuildOptions& options);

/// The delta of an edit: application nodes whose fragment key differs
/// between the two models (symmetric difference of the node sets counts
/// as dirty too).  This is the invalidation rule the incremental
/// builder applies; tests/test_cft.cpp pins down that rate, ASIL and
/// connectivity edits each dirty exactly the expected set.
[[nodiscard]] std::vector<NodeId> dirty_fragments(const ArchitectureModel& before,
                                                  const ArchitectureModel& after,
                                                  const FtBuildOptions& options);

/// build_fault_tree() with intrinsic events sourced from pre-built
/// fragments instead of the model: `fragment_of` returns the fragment
/// of a node (never nullptr for live nodes).  Shares the whole-tree
/// builder's implementation, so the result is bitwise identical to
/// build_fault_tree(m, options) whenever every fragment matches the
/// model (the incremental builder's invariant).
[[nodiscard]] FtBuildResult assemble_fault_tree(
    const ArchitectureModel& m, const FtBuildOptions& options,
    const std::function<const ComponentFragment*(NodeId)>& fragment_of);

/// The incremental front half of candidate evaluation: model -> fragments
/// -> assembled tree -> canonical form -> hashes -> modules, with a
/// per-node fragment cache and a bounded composition memo.  One instance
/// per engine worker thread (not thread-safe), mirroring the persistent
/// BDD compiler lanes.
class IncrementalTreeBuilder {
public:
    struct Options {
        /// Composition-memo entries kept (FIFO).  Each entry holds one
        /// canonical tree + module decomposition, so this bounds memory,
        /// not correctness.  Sized to hold a trade-off sweep's full
        /// candidate working set (typically several hundred distinct
        /// compositions); FIFO eviction degrades sharply once the set
        /// cycles past capacity.
        std::size_t memo_capacity = 1024;
    };

    /// Everything the engine needs from tree generation, shareable by
    /// reference across repeat candidates.
    struct Prepared {
        std::shared_ptr<const FaultTree> canonical;
        std::shared_ptr<const ModuleDecomposition> modules;
        std::uint64_t structural_hash = 0;
        std::uint64_t shape_hash = 0;
        FaultTreeStats stats;
        std::vector<std::string> warnings;
        std::size_t approximated_blocks = 0;
        std::size_t cycles_cut = 0;
    };

    /// Per-prepare() accounting, for tests and benchmarks.
    struct PassStats {
        std::uint64_t fragments_built = 0;
        std::uint64_t fragments_reused = 0;
        bool memo_hit = false;
    };

    IncrementalTreeBuilder() = default;
    explicit IncrementalTreeBuilder(Options options) : options_(options) {}

    /// One candidate through the incremental pipeline.  Emits the
    /// "assemble" span and the ftree.fragment.{built,reused} /
    /// ftree.memo_hits counters.
    [[nodiscard]] Prepared prepare(const ArchitectureModel& m, const FtBuildOptions& options);

    [[nodiscard]] const PassStats& last_pass() const noexcept { return last_; }

private:
    Options options_{};
    /// Node id -> last-assembled fragment; regenerated when the key
    /// drifts from the current model's.
    std::unordered_map<std::uint32_t, ComponentFragment> fragments_;
    /// Composition fingerprint -> finished bundle, FIFO-bounded.
    std::unordered_map<std::uint64_t, Prepared> memo_;
    std::deque<std::uint64_t> memo_order_;
    PassStats last_{};
};

}  // namespace asilkit::ftree

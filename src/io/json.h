// Minimal self-contained JSON value, parser, and writer.
//
// asilkit has no third-party dependencies, so model serialization ships
// its own JSON implementation: a strict RFC 8259 subset (UTF-8 assumed
// opaque, \uXXXX escapes decoded to UTF-8, no comments, no trailing
// commas).  Numbers are stored as double; integral values round-trip
// exactly up to 2^53.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/error.h"

namespace asilkit::io {

class Json;

using JsonArray = std::vector<Json>;
/// std::map keeps keys ordered: serialization is deterministic.
using JsonObject = std::map<std::string, Json>;

class Json {
public:
    enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(int i) : value_(static_cast<double>(i)) {}
    Json(unsigned i) : value_(static_cast<double>(i)) {}
    Json(std::int64_t i) : value_(static_cast<double>(i)) {}
    Json(std::uint64_t i) : value_(static_cast<double>(i)) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(std::string_view s) : value_(std::string(s)) {}
    Json(JsonArray a) : value_(std::move(a)) {}
    Json(JsonObject o) : value_(std::move(o)) {}

    [[nodiscard]] static Json array() { return Json(JsonArray{}); }
    [[nodiscard]] static Json object() { return Json(JsonObject{}); }

    [[nodiscard]] Type type() const noexcept { return static_cast<Type>(value_.index()); }
    [[nodiscard]] bool is_null() const noexcept { return type() == Type::Null; }
    [[nodiscard]] bool is_bool() const noexcept { return type() == Type::Bool; }
    [[nodiscard]] bool is_number() const noexcept { return type() == Type::Number; }
    [[nodiscard]] bool is_string() const noexcept { return type() == Type::String; }
    [[nodiscard]] bool is_array() const noexcept { return type() == Type::Array; }
    [[nodiscard]] bool is_object() const noexcept { return type() == Type::Object; }

    // Checked accessors (throw IoError on type mismatch).
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const JsonArray& as_array() const;
    [[nodiscard]] JsonArray& as_array();
    [[nodiscard]] const JsonObject& as_object() const;
    [[nodiscard]] JsonObject& as_object();

    // Object convenience.
    [[nodiscard]] bool contains(const std::string& key) const;
    /// Checked member access (throws IoError when absent / not an object).
    [[nodiscard]] const Json& at(const std::string& key) const;
    /// Mutating access; creates members on demand (converts Null->Object).
    Json& operator[](const std::string& key);
    /// Optional member: null Json when absent.
    [[nodiscard]] const Json& get_or_null(const std::string& key) const;

    // Array convenience.
    void push_back(Json v);
    [[nodiscard]] std::size_t size() const;

    /// Serialize; indent < 0 -> compact single-line.
    [[nodiscard]] std::string dump(int indent = -1) const;

    /// Strict parse of a complete document.  Throws IoError with
    /// line/column context on malformed input.
    [[nodiscard]] static Json parse(std::string_view text);

    friend bool operator==(const Json&, const Json&) = default;

private:
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

/// Reads and parses a JSON file.
[[nodiscard]] Json load_json_file(const std::string& path);

/// Writes `dump(2)` plus trailing newline.
void save_json_file(const Json& value, const std::string& path);

}  // namespace asilkit::io

#pragma once
#include "core/base.h"
inline int engine_pool() { return core_base() * 2; }

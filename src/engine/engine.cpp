#include "engine/engine.h"

#include <cstdlib>
#include <cstring>
#include <thread>

#include "bdd/from_fault_tree.h"
#include "core/hash.h"
#include "ftree/builder.h"

namespace asilkit::engine {
namespace {

[[nodiscard]] std::uint64_t double_bits(double d) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

}  // namespace

unsigned resolve_thread_count(unsigned requested) noexcept {
    unsigned threads = requested;
    if (threads == 0) {
        if (const char* env = std::getenv("ASILKIT_THREADS"); env != nullptr && *env != '\0') {
            threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        }
    }
    if (threads == 0) threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    return threads > 256 ? 256 : threads;
}

EvalEngine::EvalEngine(const EngineOptions& options)
    : pool_(resolve_thread_count(options.threads)), cache_(options.cache_capacity) {}

analysis::ProbabilityResult EvalEngine::analyze(const ArchitectureModel& m,
                                                const analysis::ProbabilityOptions& options) {
    ftree::FtBuildOptions build_options;
    build_options.approximate = options.approximate;
    build_options.include_location_events = options.include_location_events;
    build_options.rates = options.rates;
    ftree::FtBuildResult built = ftree::build_fault_tree(m, build_options);

    analysis::ProbabilityResult result;
    result.ft_stats = built.tree.stats();
    result.approximated_blocks = built.approximated_blocks;
    result.cycles_cut = built.cycles_cut;
    result.warnings = std::move(built.warnings);

    // The engine evaluates the canonical form of the tree: gate children
    // sorted by a structural subtree hash.  AND/OR commute, so the
    // probability is unchanged — but candidate architectures that differ
    // only by a symmetry (mirror merges in redundant branches, sibling
    // chains of a sensor fan) collapse onto the SAME canonical tree and
    // therefore the same cache key, the same BDD variable order, and
    // bit-identical arithmetic.  That is what makes a cache hit safe to
    // substitute for a fresh evaluation at any thread count.
    const ftree::FaultTree canonical = ftree::canonical_form(built.tree);
    const std::uint64_t key =
        hash::combine(canonical.structural_hash(), double_bits(options.mission_hours));
    if (const auto cached = cache_.lookup(key)) {
        result.failure_probability = cached->failure_probability;
        result.bdd_nodes = cached->bdd_nodes;
        result.bdd_total_nodes = cached->bdd_total_nodes;
        result.variables = cached->variables;
        return result;
    }

    const bdd::CompiledFaultTree compiled = bdd::compile_fault_tree(canonical);
    EvalValue value;
    value.variables = compiled.event_of_var.size();
    value.bdd_nodes = compiled.manager.node_count(compiled.root);
    value.bdd_total_nodes = compiled.manager.size();
    const std::vector<double> probs =
        compiled.variable_probabilities(canonical, options.mission_hours);
    value.failure_probability = compiled.manager.probability(compiled.root, probs);
    cache_.insert(key, value);

    result.failure_probability = value.failure_probability;
    result.bdd_nodes = value.bdd_nodes;
    result.bdd_total_nodes = value.bdd_total_nodes;
    result.variables = value.variables;
    return result;
}

std::vector<analysis::ProbabilityResult> EvalEngine::analyze_batch(
    std::span<const ArchitectureModel* const> models,
    const analysis::ProbabilityOptions& options) {
    std::vector<analysis::ProbabilityResult> results(models.size());
    pool_.parallel_for(models.size(), [&](std::size_t i) {
        if (models[i] != nullptr) results[i] = analyze(*models[i], options);
    });
    return results;
}

}  // namespace asilkit::engine

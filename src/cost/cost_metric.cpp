#include "cost/cost_metric.h"

namespace asilkit::cost {
namespace {

constexpr std::array<double, kResourceKindCount> kTable2Bases = [] {
    std::array<double, kResourceKindCount> bases{};
    bases[static_cast<std::size_t>(ResourceKind::Sensor)] = 8.0;
    bases[static_cast<std::size_t>(ResourceKind::Actuator)] = 8.0;
    bases[static_cast<std::size_t>(ResourceKind::Functional)] = 5.0;
    bases[static_cast<std::size_t>(ResourceKind::Communication)] = 4.0;
    bases[static_cast<std::size_t>(ResourceKind::Splitter)] = 1.0;
    bases[static_cast<std::size_t>(ResourceKind::Merger)] = 1.0;
    return bases;
}();

}  // namespace

CostMetric CostMetric::exponential(std::array<double, kResourceKindCount> base_by_kind,
                                   double factor, std::string name) {
    CostMetric m(std::move(name));
    for (ResourceKind kind : kAllResourceKinds) {
        double value = base_by_kind[static_cast<std::size_t>(kind)];
        for (Asil a : kAllAsilLevels) {
            m.set_cost(kind, a, value);
            value *= factor;
        }
    }
    return m;
}

CostMetric CostMetric::exponential_metric1() {
    return exponential(kTable2Bases, 10.0, "exponential-metric-1");
}

CostMetric CostMetric::exponential_metric2() {
    return exponential(kTable2Bases, 20.0, "exponential-metric-2");
}

CostMetric CostMetric::linear_metric3() {
    CostMetric m("linear-metric-3");
    for (ResourceKind kind : kAllResourceKinds) {
        const double base = kTable2Bases[static_cast<std::size_t>(kind)] * 1000.0;
        for (Asil a : kAllAsilLevels) {
            m.set_cost(kind, a, base * (1.0 + 4.0 * asil_value(a)));
        }
    }
    return m;
}

double CostMetric::cost(ResourceKind kind, Asil asil) const noexcept {
    return table_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(asil)];
}

void CostMetric::set_cost(ResourceKind kind, Asil asil, double value) noexcept {
    table_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(asil)] = value;
}

}  // namespace asilkit::cost

// Architecture-model <-> JSON serialization.
//
// The on-disk schema is positional: elements are arrays in export order
// and cross-references (mappings, edges) use array indices, so a model
// that lived through erasures serializes densely and re-imports with
// fresh ids.  Round-tripping preserves everything the analyses consume:
// names, kinds, ASIL tags, lambdas, environments, edges, and both
// mappings.
#pragma once

#include <string>

#include "io/json.h"
#include "model/architecture.h"

namespace asilkit::io {

[[nodiscard]] Json to_json(const ArchitectureModel& m);

[[nodiscard]] ArchitectureModel model_from_json(const Json& j);

void save_model(const ArchitectureModel& m, const std::string& path);
[[nodiscard]] ArchitectureModel load_model(const std::string& path);

}  // namespace asilkit::io

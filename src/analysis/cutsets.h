// Minimal cut sets (MOCUS-style, order-limited).
//
// A cut set is a set of basic events whose joint occurrence causes the top
// event; a minimal cut set has no proper subset with that property.  The
// paper's CCF discussion is naturally phrased in cut-set terms: a valid
// k-branch decomposition must not leave any cut set of order < k inside
// the redundant region.  This module is an extension beyond the paper's
// text used by the ccf_audit example and the failure-injection tests.
#pragma once

#include <cstdint>
#include <vector>

#include "ftree/fault_tree.h"

namespace asilkit::analysis {

/// Sorted basic-event indices.
using CutSet = std::vector<std::uint32_t>;

struct CutSetOptions {
    /// Discard cut sets with more than this many events (order-limit);
    /// keeps the enumeration polynomial in practice.
    std::size_t max_order = 4;
    /// Hard cap on intermediate products; exceeded -> AnalysisError.
    std::size_t max_sets = 200000;
};

/// Minimal cut sets of order <= max_order, lexicographically sorted.
[[nodiscard]] std::vector<CutSet> minimal_cut_sets(const ftree::FaultTree& ft,
                                                   const CutSetOptions& options = {});

/// Rare-event upper bound on the top probability from the cut sets:
/// sum over cut sets of the product of event probabilities.
[[nodiscard]] double cut_set_probability_bound(const ftree::FaultTree& ft,
                                               const std::vector<CutSet>& cut_sets,
                                               double mission_hours = 1.0);

/// Order (cardinality) of the smallest cut set; 0 when there are none.
[[nodiscard]] std::size_t minimal_cut_order(const std::vector<CutSet>& cut_sets) noexcept;

}  // namespace asilkit::analysis

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cost_metric.dir/bench_table2_cost_metric.cpp.o"
  "CMakeFiles/bench_table2_cost_metric.dir/bench_table2_cost_metric.cpp.o.d"
  "bench_table2_cost_metric"
  "bench_table2_cost_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cost_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

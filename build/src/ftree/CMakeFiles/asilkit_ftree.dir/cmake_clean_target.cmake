file(REMOVE_RECURSE
  "libasilkit_ftree.a"
)

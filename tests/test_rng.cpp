// Statistical smoke tests for the counter-based RNG (core/rng.h).
//
// These are not a test battery (two mix64 rounds have well-studied
// output quality); they pin the properties the Monte Carlo engine
// actually leans on: determinism as a pure function, decorrelation
// between adjacent counters/streams, and Bernoulli bit masks whose
// mean and variance match the binomial law.
#include "core/rng.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace asilkit::core {
namespace {

TEST(CounterRng, PureFunctionOfInputs) {
    EXPECT_EQ(counter_word(1, 2, 3), counter_word(1, 2, 3));
    EXPECT_NE(counter_word(1, 2, 3), counter_word(2, 2, 3));
    EXPECT_NE(counter_word(1, 2, 3), counter_word(1, 3, 3));
    EXPECT_NE(counter_word(1, 2, 3), counter_word(1, 2, 4));
}

TEST(CounterRng, UniformInUnitInterval) {
    EXPECT_GE(counter_uniform(7, 0, 0), 0.0);
    EXPECT_LT(counter_uniform(7, 0, 0), 1.0);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += counter_uniform(7, static_cast<std::uint64_t>(i), 0);
    // Mean of n uniforms: 1/2 +- a few sigma, sigma = 1/sqrt(12 n).
    EXPECT_NEAR(sum / n, 0.5, 5.0 / std::sqrt(12.0 * n));
}

TEST(CounterRng, AdjacentCountersShareNoWords) {
    // A sequential walk must look like distinct draws: collisions among
    // 10^5 64-bit words are overwhelmingly unlikely (p ~ 3e-10).
    std::set<std::uint64_t> seen;
    for (std::uint64_t c = 0; c < 100000; ++c) seen.insert(counter_word(42, c, 0));
    EXPECT_EQ(seen.size(), 100000u);
}

TEST(CounterRng, PopcountMatchesBinomialLaw) {
    // Each word carries 64 Bernoulli(1/2) bits: across n words the total
    // popcount is Binomial(64 n, 1/2).
    const std::uint64_t n = 50000;
    std::uint64_t ones = 0;
    for (std::uint64_t c = 0; c < n; ++c) {
        ones += static_cast<std::uint64_t>(std::popcount(counter_word(9, c, 5)));
    }
    const double bits = 64.0 * static_cast<double>(n);
    const double mean = static_cast<double>(ones) / bits;
    EXPECT_NEAR(mean, 0.5, 5.0 * std::sqrt(0.25 / bits));
}

TEST(CounterRng, PerBitPositionUnbiased) {
    // No bit position may be stuck or skewed: every one of the 64 lanes
    // is its own Bernoulli(1/2) sequence.
    const std::uint64_t n = 20000;
    std::vector<std::uint64_t> per_bit(64, 0);
    for (std::uint64_t c = 0; c < n; ++c) {
        const std::uint64_t w = counter_word(3, c, 11);
        for (int b = 0; b < 64; ++b) per_bit[b] += (w >> b) & 1;
    }
    const double sigma = std::sqrt(0.25 / static_cast<double>(n));
    for (int b = 0; b < 64; ++b) {
        EXPECT_NEAR(static_cast<double>(per_bit[b]) / static_cast<double>(n), 0.5, 6.0 * sigma)
            << "bit " << b;
    }
}

TEST(CounterRng, StreamsAreDecorrelated) {
    // The engine assigns one stream per (event, threshold bit); masks
    // built from adjacent streams must not co-vary.  Estimate the
    // correlation of the bit fields of streams s and s+1.
    const std::uint64_t n = 20000;
    std::uint64_t both = 0;
    for (std::uint64_t c = 0; c < n; ++c) {
        both += static_cast<std::uint64_t>(
            std::popcount(counter_word(5, c, 100) & counter_word(5, c, 101)));
    }
    // Independent Bernoulli(1/2) pairs AND to Bernoulli(1/4).
    const double bits = 64.0 * static_cast<double>(n);
    EXPECT_NEAR(static_cast<double>(both) / bits, 0.25, 5.0 * std::sqrt(0.1875 / bits));
}

TEST(CounterRng, VarianceOfWordPopcountsMatchesBinomial) {
    // Binomial(64, 1/2): mean 32, variance 16.  A correlated bit field
    // inside one word would inflate or deflate the variance.
    const std::uint64_t n = 50000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::uint64_t c = 0; c < n; ++c) {
        const auto pc = static_cast<double>(std::popcount(counter_word(12, c, 2)));
        sum += pc;
        sum_sq += pc * pc;
    }
    const double mean = sum / static_cast<double>(n);
    const double variance = sum_sq / static_cast<double>(n) - mean * mean;
    EXPECT_NEAR(mean, 32.0, 0.2);
    // Var of the sample variance of a binomial ~ 2*16^2/n; 5 sigma.
    EXPECT_NEAR(variance, 16.0, 5.0 * std::sqrt(2.0 * 256.0 / static_cast<double>(n)));
}

}  // namespace
}  // namespace asilkit::core

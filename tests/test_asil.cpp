#include "core/asil.h"

#include <gtest/gtest.h>

#include <sstream>

namespace asilkit {
namespace {

TEST(Asil, ValuesAreOrdered) {
    EXPECT_EQ(asil_value(Asil::QM), 0);
    EXPECT_EQ(asil_value(Asil::A), 1);
    EXPECT_EQ(asil_value(Asil::B), 2);
    EXPECT_EQ(asil_value(Asil::C), 3);
    EXPECT_EQ(asil_value(Asil::D), 4);
}

TEST(Asil, FromValueRoundTripsAndSaturates) {
    for (Asil a : kAllAsilLevels) {
        EXPECT_EQ(asil_from_value(asil_value(a)), a);
    }
    EXPECT_EQ(asil_from_value(-3), Asil::QM);
    EXPECT_EQ(asil_from_value(99), Asil::D);
}

TEST(Asil, MinMax) {
    EXPECT_EQ(asil_min(Asil::B, Asil::D), Asil::B);
    EXPECT_EQ(asil_min(Asil::QM, Asil::A), Asil::QM);
    EXPECT_EQ(asil_max(Asil::B, Asil::D), Asil::D);
    EXPECT_EQ(asil_max(Asil::C, Asil::C), Asil::C);
}

TEST(Asil, SumSaturatesAtD) {
    EXPECT_EQ(asil_sum(Asil::B, Asil::B), Asil::D);
    EXPECT_EQ(asil_sum(Asil::A, Asil::C), Asil::D);
    EXPECT_EQ(asil_sum(Asil::A, Asil::A), Asil::B);
    EXPECT_EQ(asil_sum(Asil::QM, Asil::C), Asil::C);
    EXPECT_EQ(asil_sum(Asil::D, Asil::D), Asil::D);
}

TEST(Asil, SumIsCommutativeAndMonotone) {
    for (Asil a : kAllAsilLevels) {
        for (Asil b : kAllAsilLevels) {
            EXPECT_EQ(asil_sum(a, b), asil_sum(b, a));
            EXPECT_GE(asil_value(asil_sum(a, b)), asil_value(a));
            EXPECT_GE(asil_value(asil_sum(a, b)), asil_value(b));
        }
    }
}

TEST(Asil, ToString) {
    EXPECT_EQ(to_string(Asil::QM), "QM");
    EXPECT_EQ(to_string(Asil::D), "D");
    EXPECT_EQ(to_long_string(Asil::QM), "QM");
    EXPECT_EQ(to_long_string(Asil::B), "ASIL B");
}

TEST(Asil, Parse) {
    EXPECT_EQ(asil_from_string("D"), Asil::D);
    EXPECT_EQ(asil_from_string("qm"), Asil::QM);
    EXPECT_EQ(asil_from_string("ASIL C"), Asil::C);
    EXPECT_EQ(asil_from_string("asil_b"), Asil::B);
    EXPECT_EQ(asil_from_string("ASIL-A"), Asil::A);
    EXPECT_EQ(asil_from_string("E"), std::nullopt);
    EXPECT_EQ(asil_from_string(""), std::nullopt);
    EXPECT_EQ(asil_from_string("ASILD"), Asil::D);
}

TEST(Asil, ParseRoundTripsEveryLevel) {
    for (Asil a : kAllAsilLevels) {
        EXPECT_EQ(asil_from_string(to_string(a)), a);
        EXPECT_EQ(asil_from_string(to_long_string(a)), a);
    }
}

TEST(Asil, StreamOutput) {
    std::ostringstream os;
    os << Asil::C;
    EXPECT_EQ(os.str(), "C");
}

TEST(AsilTag, PlainTagIsNotDecomposed) {
    const AsilTag tag{Asil::C};
    EXPECT_EQ(tag.level, Asil::C);
    EXPECT_EQ(tag.inherited, Asil::C);
    EXPECT_FALSE(tag.is_decomposed());
    EXPECT_EQ(to_string(tag), "C");
}

TEST(AsilTag, DecomposedTagShowsProvenance) {
    const AsilTag tag{Asil::B, Asil::D};
    EXPECT_TRUE(tag.is_decomposed());
    EXPECT_EQ(to_string(tag), "B(D)");
}

TEST(AsilTag, Equality) {
    EXPECT_EQ((AsilTag{Asil::B, Asil::D}), (AsilTag{Asil::B, Asil::D}));
    EXPECT_NE((AsilTag{Asil::B, Asil::D}), (AsilTag{Asil::B, Asil::B}));
    EXPECT_NE((AsilTag{Asil::B, Asil::D}), (AsilTag{Asil::A, Asil::D}));
}

TEST(AsilTag, DefaultIsQm) {
    const AsilTag tag;
    EXPECT_EQ(tag.level, Asil::QM);
    EXPECT_FALSE(tag.is_decomposed());
}

}  // namespace
}  // namespace asilkit

#include "analysis/ccf.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

#include "model/blocks.h"

namespace asilkit::analysis {

std::string_view to_string(CcfKind k) noexcept {
    switch (k) {
        case CcfKind::SharedResource: return "shared-resource";
        case CcfKind::SharedLocation: return "shared-location";
        case CcfKind::SharedEnvironment: return "shared-environment";
    }
    return "?";
}

std::ostream& operator<<(std::ostream& os, const CcfFinding& f) {
    return os << to_string(f.kind) << " at merger " << f.merger << ": " << f.message;
}

bool CcfReport::block_independent(NodeId merger) const noexcept {
    return std::none_of(findings.begin(), findings.end(),
                        [merger](const CcfFinding& f) { return f.merger == merger; });
}

bool CcfReport::block_approximation_safe(NodeId merger) const noexcept {
    return std::none_of(findings.begin(), findings.end(), [merger](const CcfFinding& f) {
        return f.merger == merger && f.kind == CcfKind::SharedResource;
    });
}

std::size_t CcfReport::count(CcfKind kind) const noexcept {
    return static_cast<std::size_t>(std::count_if(
        findings.begin(), findings.end(),
        [kind](const CcfFinding& f) { return f.kind == kind; }));
}

namespace {

struct EnvZoneKey {
    const char* dimension;
    int zone;
    friend auto operator<=>(const EnvZoneKey&, const EnvZoneKey&) = default;
};

void analyze_block(const ArchitectureModel& m, const RedundantBlock& block,
                   const CcfOptions& options, CcfReport& report) {
    const std::string merger_name = m.app().node(block.merger).name;

    // subject -> branches using it, per dimension.
    std::map<ResourceId, std::set<std::size_t>> resource_users;
    std::map<LocationId, std::set<std::size_t>> location_users;
    std::map<EnvZoneKey, std::set<std::size_t>> zone_users;

    for (std::size_t i = 0; i < block.branches.size(); ++i) {
        for (NodeId n : block.branches[i].nodes) {
            for (ResourceId r : m.mapped_resources(n)) {
                resource_users[r].insert(i);
                for (LocationId p : m.resource_locations(r)) {
                    location_users[p].insert(i);
                    const Environment& env = m.physical().node(p).env;
                    if (env.temperature_zone) {
                        zone_users[{"temperature", env.temperature_zone}].insert(i);
                    }
                    if (env.vibration_zone) zone_users[{"vibration", env.vibration_zone}].insert(i);
                    if (env.emi_zone) zone_users[{"emi", env.emi_zone}].insert(i);
                    if (env.water_exposure_zone) {
                        zone_users[{"water", env.water_exposure_zone}].insert(i);
                    }
                }
            }
        }
    }

    auto branch_list = [](const std::set<std::size_t>& s) {
        std::string out;
        for (std::size_t i : s) {
            if (!out.empty()) out += ", ";
            out += std::to_string(i);
        }
        return out;
    };

    for (const auto& [r, users] : resource_users) {
        if (users.size() < 2) continue;
        CcfFinding f;
        f.kind = CcfKind::SharedResource;
        f.merger = block.merger;
        f.subject = m.resources().node(r).name;
        f.branch_indices.assign(users.begin(), users.end());
        f.message = "resource '" + f.subject + "' is shared by branches {" + branch_list(users) +
                    "} of the block at merger '" + merger_name +
                    "'; the ASIL decomposition is not valid";
        report.findings.push_back(std::move(f));
    }
    if (options.check_locations) {
        for (const auto& [p, users] : location_users) {
            if (users.size() < 2) continue;
            CcfFinding f;
            f.kind = CcfKind::SharedLocation;
            f.merger = block.merger;
            f.subject = m.physical().node(p).name;
            f.branch_indices.assign(users.begin(), users.end());
            f.message = "branches {" + branch_list(users) + "} of the block at merger '" +
                        merger_name + "' are both placed at location '" + f.subject + "'";
            report.findings.push_back(std::move(f));
        }
    }
    if (options.check_environment) {
        for (const auto& [zone, users] : zone_users) {
            if (users.size() < 2) continue;
            CcfFinding f;
            f.kind = CcfKind::SharedEnvironment;
            f.merger = block.merger;
            f.subject = std::string(zone.dimension) + "-zone-" + std::to_string(zone.zone);
            f.branch_indices.assign(users.begin(), users.end());
            f.message = "branches {" + branch_list(users) + "} of the block at merger '" +
                        merger_name + "' share environmental stressor " + f.subject +
                        " (freedom-from-interference concern)";
            report.findings.push_back(std::move(f));
        }
    }
}

}  // namespace

CcfReport analyze_ccf(const ArchitectureModel& m, const CcfOptions& options) {
    CcfReport report;
    for (const RedundantBlock& block : find_redundant_blocks(m)) {
        analyze_block(m, block, options, report);
    }
    return report;
}

}  // namespace asilkit::analysis

// Shared test utilities: brute-force fault-tree evaluation (ground truth
// for the BDD engine) and a seeded random fault-tree generator for
// property tests.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "ftree/fault_tree.h"

namespace asilkit::testing {

/// Evaluates the tree under a complete basic-event truth assignment.
/// Empty gates are "no failure mode": false.
inline bool evaluate_fault_tree(const ftree::FaultTree& ft, ftree::FtRef node,
                                const std::vector<bool>& assignment) {
    if (node.kind == ftree::FtRef::Kind::Basic) return assignment[node.index];
    const ftree::Gate& g = ft.gate(node.index);
    if (g.children.empty()) return false;
    if (g.kind == ftree::GateKind::Or) {
        for (const ftree::FtRef& c : g.children) {
            if (evaluate_fault_tree(ft, c, assignment)) return true;
        }
        return false;
    }
    for (const ftree::FtRef& c : g.children) {
        if (!evaluate_fault_tree(ft, c, assignment)) return false;
    }
    return true;
}

/// Exact top-event probability by enumerating all 2^n assignments
/// (n = number of basic events; keep n <= 20).
inline double brute_force_probability(const ftree::FaultTree& ft, double mission_hours = 1.0) {
    const std::size_t n = ft.basic_events().size();
    std::vector<double> p(n);
    for (std::size_t i = 0; i < n; ++i) {
        p[i] = 1.0 - std::exp(-ft.basic_events()[i].lambda * mission_hours);
    }
    double total = 0.0;
    std::vector<bool> assignment(n);
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        double weight = 1.0;
        for (std::size_t i = 0; i < n; ++i) {
            assignment[i] = (mask >> i) & 1u;
            weight *= assignment[i] ? p[i] : 1.0 - p[i];
        }
        if (weight > 0.0 && evaluate_fault_tree(ft, ft.top(), assignment)) total += weight;
    }
    return total;
}

/// A random DAG-shaped fault tree with `events` basic events and `gates`
/// gates, rooted at the last gate.  Same seed, same tree.
inline ftree::FaultTree random_fault_tree(std::uint32_t seed, std::size_t events,
                                          std::size_t gates) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> prob(0.01, 0.4);
    ftree::FaultTree ft;
    std::vector<ftree::FtRef> pool;
    for (std::size_t i = 0; i < events; ++i) {
        // lambda chosen so the 1-hour probability is prob(rng).
        const double p = prob(rng);
        pool.push_back(ft.add_basic_event("e" + std::to_string(i), -std::log(1.0 - p)));
    }
    for (std::size_t i = 0; i < gates; ++i) {
        const auto kind = (rng() % 2) ? ftree::GateKind::Or : ftree::GateKind::And;
        const std::size_t arity = 2 + rng() % 3;
        std::vector<ftree::FtRef> children;
        for (std::size_t c = 0; c < arity; ++c) {
            children.push_back(pool[rng() % pool.size()]);
        }
        pool.push_back(ft.add_gate("g" + std::to_string(i), kind, std::move(children)));
    }
    ft.set_top(pool.back());
    return ft;
}

}  // namespace asilkit::testing

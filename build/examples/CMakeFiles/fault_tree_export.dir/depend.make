# Empty dependencies file for fault_tree_export.
# This may be replaced when dependencies are built.

// Reproduces the paper's Section IX experiment on the EcoTwin
// truck-platooning lateral-control application (Figs. 10-12):
//
//   A: the ideal all-ASIL-D architecture (infeasible in practice),
//   B: after Expand()-ing every decision node into ASIL B(D) branches,
//   C: after Connect()/Reduce() fused the blocks into one redundant
//      region,
//   D: after in-branch mapping optimisation.
//
//   $ ./ecotwin_lateral_control [output.csv]
#include <iostream>

#include "explore/driver.h"
#include "io/csv.h"
#include "model/validation.h"
#include "scenarios/ecotwin.h"

using namespace asilkit;

int main(int argc, char** argv) {
    const ArchitectureModel model = scenarios::ecotwin_lateral_control();
    validate_or_throw(model);

    explore::ExplorationOptions options;
    options.strategy = DecompositionStrategy::BB;
    options.metric = cost::CostMetric::exponential_metric1();
    options.probability.approximate = true;  // the paper's approximation

    const explore::ExplorationResult result =
        explore::run_exploration(model, scenarios::ecotwin_decision_nodes(), options);

    std::cout << "EcoTwin lateral control - " << result.curve.name << "\n"
              << "expansions=" << result.expansions << " connects=" << result.connects
              << " reductions=" << result.reductions
              << " shared-resource groups=" << result.mapping_groups_merged << "\n\n";

    io::CsvWriter csv({"label", "cost", "failure_probability", "app_nodes", "resources",
                       "ft_nodes", "ft_paths"});
    for (const explore::TradeoffPoint& p : result.curve.points) {
        std::cout << "  " << p << "\n";
        csv.add_row({p.label, io::CsvWriter::number(p.cost),
                     io::CsvWriter::number(p.failure_probability), std::to_string(p.app_nodes),
                     std::to_string(p.resources), std::to_string(p.ft_dag_nodes),
                     std::to_string(p.ft_paths)});
    }

    const ValidationReport after = validate(result.final_model);
    std::cout << "\nfinal model validation: " << after.error_count() << " errors, "
              << after.warning_count() << " warnings\n";

    if (argc > 1) {
        csv.save(argv[1]);
        std::cout << "curve written to " << argv[1] << "\n";
    }
    return 0;
}

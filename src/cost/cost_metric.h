// Cost metrics (paper Section VI, Table II).
//
// A cost metric maps (resource kind, ASIL readiness) to a unit cost.  The
// paper's headline metric is exponential — one decade per ASIL step —
// with splitter/merger hardware an order of magnitude cheaper than
// general-purpose hardware of the same level, because its fixed function
// simplifies certification.  Alternative metrics (a steeper exponential
// and a linear one) reproduce the "-1/-2/-3" curve families of Fig. 1.
#pragma once

#include <array>
#include <string>

#include "core/asil.h"
#include "model/resource.h"

namespace asilkit::cost {

class CostMetric {
public:
    CostMetric() = default;
    explicit CostMetric(std::string name) : name_(std::move(name)) {}

    /// Paper Table II ("Exponential Cost Metric 1"):
    ///   kind           QM   A    B     C      D
    ///   functional     5    50   500   5000   50000
    ///   communication  4    40   400   4000   40000
    ///   sensor         8    80   800   8000   80000
    ///   actuator       8    80   800   8000   80000
    ///   splitter       1    10   100   1000   10000
    ///   merger         1    10   100   1000   10000
    [[nodiscard]] static CostMetric exponential_metric1();

    /// Steeper exponential (factor 20 per level, same kind bases):
    /// punishes high-ASIL general-purpose parts harder, which shifts the
    /// trade-off further in favour of decomposition.
    [[nodiscard]] static CostMetric exponential_metric2();

    /// Linear metric (base * (1 + 4*level)): redundancy is mostly cost-
    /// neutral, so decomposition never pays for itself on cost alone.
    [[nodiscard]] static CostMetric linear_metric3();

    /// Generic exponential builder: per-kind base cost at QM, multiplied
    /// by `factor` per ASIL level.
    [[nodiscard]] static CostMetric exponential(std::array<double, kResourceKindCount> base_by_kind,
                                                double factor, std::string name);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    [[nodiscard]] double cost(ResourceKind kind, Asil asil) const noexcept;
    void set_cost(ResourceKind kind, Asil asil, double value) noexcept;

    /// Metric lookup for a concrete resource; a per-resource cost_override
    /// wins when set.
    [[nodiscard]] double resource_cost(const Resource& r) const noexcept {
        if (r.cost_override) return *r.cost_override;
        return cost(r.kind, r.asil);
    }

private:
    std::string name_ = "custom";
    std::array<std::array<double, kAsilLevelCount>, kResourceKindCount> table_{};
};

}  // namespace asilkit::cost

#include "explore/mapping_search.h"

#include <gtest/gtest.h>

#include "analysis/ccf.h"
#include "io/model_json.h"
#include "model/validation.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::explore {
namespace {

TEST(MappingSearch, ImprovesSeriesChain) {
    ArchitectureModel m = scenarios::chain_n_stages(4);
    const MappingSearchResult r = search_mapping(m);
    EXPECT_GT(r.merges, 0u);
    EXPECT_LT(r.probability_after, r.probability_before);
    EXPECT_LT(r.cost_after, r.cost_before);
    EXPECT_TRUE(r.reached_local_optimum);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(MappingSearch, NeverExceedsCapacity) {
    ArchitectureModel m = scenarios::chain_n_stages(6);
    MappingSearchOptions options;
    options.max_nodes_per_resource = 2;
    search_mapping(m, options);
    for (ResourceId r : m.resources().node_ids()) {
        EXPECT_LE(m.nodes_on_resource(r).size(), 2u)
            << m.resources().node(r).name;
    }
}

TEST(MappingSearch, LooserCapacityFindsBetterOptimum) {
    ArchitectureModel tight_model = scenarios::chain_n_stages(6);
    MappingSearchOptions tight;
    tight.max_nodes_per_resource = 2;
    const auto r_tight = search_mapping(tight_model, tight);

    ArchitectureModel loose_model = scenarios::chain_n_stages(6);
    MappingSearchOptions loose;
    loose.max_nodes_per_resource = 8;
    const auto r_loose = search_mapping(loose_model, loose);

    EXPECT_LE(r_loose.probability_after, r_tight.probability_after);
    EXPECT_LT(r_loose.probability_after, r_loose.probability_before);
}

TEST(MappingSearch, NeverMergesAcrossBranches) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    transform::expand(m, m.find_app_node("n"));
    search_mapping(m);
    EXPECT_TRUE(analysis::analyze_ccf(m).independent());
    // Replicas stay on distinct hardware.
    const auto r1 = m.mapped_resources(m.find_app_node("n_1"));
    const auto r2 = m.mapped_resources(m.find_app_node("n_2"));
    ASSERT_EQ(r1.size(), 1u);
    ASSERT_EQ(r2.size(), 1u);
    EXPECT_NE(r1.front(), r2.front());
}

TEST(MappingSearch, SensorsActuatorsManagementUntouched) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    transform::expand(m, m.find_app_node("n"));
    search_mapping(m);
    EXPECT_TRUE(m.find_resource("sens_hw").valid());
    EXPECT_TRUE(m.find_resource("act_hw").valid());
    EXPECT_TRUE(m.find_resource("split_n_hw").valid());
    EXPECT_TRUE(m.find_resource("merge_n_hw").valid());
}

TEST(MappingSearch, SharedResourceGetsRequiredReadiness) {
    // Merging a D-node's resource with a B-node's resource must raise the
    // shared hardware to D so Eq. 3 does not degrade.
    ArchitectureModel m("mixed");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s = m.add_node_with_dedicated_resource(
        {"sens", NodeKind::Sensor, AsilTag{Asil::D}, {}}, loc);
    const NodeId f1 = m.add_node_with_dedicated_resource(
        {"f1", NodeKind::Functional, AsilTag{Asil::B}, {}}, loc);
    const NodeId f2 = m.add_node_with_dedicated_resource(
        {"f2", NodeKind::Functional, AsilTag{Asil::D}, {}}, loc);
    const NodeId a = m.add_node_with_dedicated_resource(
        {"act", NodeKind::Actuator, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(s, f1);
    m.connect_app(f1, f2);
    m.connect_app(f2, a);
    const Asil f1_before = m.effective_asil(f1);
    const Asil f2_before = m.effective_asil(f2);
    search_mapping(m);
    EXPECT_EQ(m.effective_asil(f1), f1_before);
    EXPECT_EQ(m.effective_asil(f2), f2_before);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(MappingSearch, IterationLimitRespected) {
    ArchitectureModel m = scenarios::chain_n_stages(6);
    MappingSearchOptions options;
    options.max_iterations = 1;
    const auto r = search_mapping(m, options);
    EXPECT_LE(r.merges, 1u);
    EXPECT_LE(r.iterations, 1u);
}

TEST(MappingSearch, NoopWhenNothingMergeable) {
    ArchitectureModel m = scenarios::chain_1in_1out();  // 1 functional, 2 comm
    MappingSearchOptions options;
    options.include_non_branch_nodes = false;
    const auto r = search_mapping(m, options);
    EXPECT_EQ(r.merges, 0u);
    EXPECT_TRUE(r.reached_local_optimum);
    EXPECT_DOUBLE_EQ(r.probability_after, r.probability_before);
}

TEST(MappingSearch, LintPrefilterNeverChangesResults) {
    // The pre-filter may only reject candidates that could not have won;
    // the searched model and every objective must be bitwise identical
    // with the filter on or off, at any thread count.
    for (const unsigned threads : {1u, 4u}) {
        ArchitectureModel with = scenarios::chain_n_stages(6);
        ArchitectureModel without = scenarios::chain_n_stages(6);
        transform::expand(with, with.find_app_node("f3"));
        transform::expand(without, without.find_app_node("f3"));

        MappingSearchOptions options;
        options.engine.threads = threads;
        options.lint_prefilter = true;
        const MappingSearchResult r_with = search_mapping(with, options);
        options.lint_prefilter = false;
        const MappingSearchResult r_without = search_mapping(without, options);

        EXPECT_EQ(r_with.merges, r_without.merges) << threads;
        EXPECT_EQ(r_with.iterations, r_without.iterations) << threads;
        EXPECT_EQ(r_with.probability_after, r_without.probability_after) << threads;
        EXPECT_EQ(r_with.cost_after, r_without.cost_after) << threads;
        EXPECT_EQ(io::to_json(with).dump(), io::to_json(without).dump()) << threads;
        EXPECT_EQ(r_without.lint_rejections, 0u);
    }
}

TEST(MappingSearch, LintRejectionCounterReported) {
    // The in-region move generator never proposes structurally invalid
    // merges, so a healthy search reports zero rejections — the counter
    // exists for external callers that inject broken candidates.
    ArchitectureModel m = scenarios::chain_n_stages(4);
    const MappingSearchResult r = search_mapping(m, {});
    EXPECT_EQ(r.lint_rejections, 0u);
}

}  // namespace
}  // namespace asilkit::explore

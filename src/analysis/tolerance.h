// Fault-tolerance metrics derived from minimal cut sets.
//
// The order of the smallest minimal cut set is the number of independent
// component faults the architecture survives plus one: order 1 means a
// single point of failure exists, order k means any k-1 simultaneous
// faults are masked.  ASIL decomposition with two branches should raise
// the decomposed region's local cut order from 1 to 2; this module
// reports the system-wide metric and the surviving single points of
// failure so architects can see what is *not* yet protected.
#pragma once

#include <string>
#include <vector>

#include "analysis/cutsets.h"
#include "model/architecture.h"

namespace asilkit::analysis {

struct FaultToleranceReport {
    /// Smallest cut-set order found (0 = no cut set within the limit).
    std::size_t min_cut_order = 0;
    /// Faults tolerated in the worst spot: min_cut_order - 1.
    std::size_t tolerated_faults = 0;
    /// Names of single-point-of-failure base events (order-1 cut sets).
    std::vector<std::string> single_points_of_failure;
    /// Number of minimal cut sets per order, index 0 unused.
    std::vector<std::size_t> cut_sets_by_order;
};

struct FaultToleranceOptions {
    std::size_t max_order = 3;
    bool include_location_events = true;
};

[[nodiscard]] FaultToleranceReport analyze_fault_tolerance(
    const ArchitectureModel& m, const FaultToleranceOptions& options = {});

}  // namespace asilkit::analysis

# Empty compiler generated dependencies file for bench_fig5_expand_structure.
# This may be replaced when dependencies are built.

// Fig. 2: the ISO 26262 ASIL decomposition pattern catalogue.
//
// Regenerates the catalogue, checks the sum-rule invariant on every
// pattern, and times the validity predicate the transformations call.
#include "bench_util.h"

#include "core/decomposition.h"

using namespace asilkit;

namespace {

void print_report() {
    bench::heading("Fig. 2: ASIL decomposition patterns");
    for (Asil parent : {Asil::D, Asil::C, Asil::B, Asil::A}) {
        std::printf("  %s:\n", to_long_string(parent).c_str());
        for (const DecompositionPattern& p : decompositions_of(parent)) {
            std::printf("    %s   (sum rule: %d + %d >= %d)\n", to_string(p).c_str(),
                        asil_value(p.left), asil_value(p.right), asil_value(p.parent));
        }
    }
    bench::heading("Strategy selections");
    for (DecompositionStrategy s :
         {DecompositionStrategy::BB, DecompositionStrategy::AC}) {
        for (Asil parent : {Asil::D, Asil::C, Asil::B, Asil::A}) {
            bench::row(std::string(to_string(s)) + " on " + std::string(to_string(parent)),
                       to_string(select_pattern(parent, s)));
        }
    }
}

void BM_ValidityCheck(benchmark::State& state) {
    std::size_t i = 0;
    for (auto _ : state) {
        const Asil parent = kAllAsilLevels[i % kAsilLevelCount];
        const Asil left = kAllAsilLevels[(i + 1) % kAsilLevelCount];
        const Asil right = kAllAsilLevels[(i + 2) % kAsilLevelCount];
        benchmark::DoNotOptimize(is_valid_decomposition(parent, left, right));
        ++i;
    }
}
BENCHMARK(BM_ValidityCheck);

void BM_SelectPattern(benchmark::State& state) {
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            select_pattern(Asil::D, DecompositionStrategy::RND, (i % 100) / 100.0));
        ++i;
    }
}
BENCHMARK(BM_SelectPattern);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

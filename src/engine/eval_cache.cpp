#include "engine/eval_cache.h"

namespace asilkit::engine {

EvalCache::EvalCache(std::size_t capacity) : capacity_(capacity) {
    map_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

std::optional<EvalValue> EvalCache::lookup(std::uint64_t key) {
    std::lock_guard lock(mutex_);
    if (const auto it = map_.find(key); it != map_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    return std::nullopt;
}

void EvalCache::insert(std::uint64_t key, const EvalValue& value) {
    if (capacity_ == 0) return;
    std::lock_guard lock(mutex_);
    const auto [it, inserted] = map_.insert_or_assign(key, value);
    if (!inserted) return;  // racing re-insert of the same tree
    fifo_.push_back(key);
    while (map_.size() > capacity_) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
        ++evictions_;
    }
}

EvalCache::Stats EvalCache::stats() const {
    std::lock_guard lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.size = map_.size();
    s.capacity = capacity_;
    return s;
}

void EvalCache::clear() {
    std::lock_guard lock(mutex_);
    map_.clear();
    fifo_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

}  // namespace asilkit::engine

// Physical-layer node types.
//
// The physical graph F = (P, C) partitions the vehicle into locations
// (front-left corner, central tunnel, rear compartment, cable duct c4,
// ...).  Locations carry the environmental information used by the
// Freedom-From-Interference analysis: two redundant branches placed in
// the same high-vibration zone share a common stressor, which the CCF
// analysis reports.  Each location also contributes a base event to the
// fault tree with rate `lambda` (paper: 1e-11 failures/hour) that models
// position-local destruction (crash intrusion, water, fire).
#pragma once

#include <string>

namespace asilkit {

/// Environmental profile of a physical location, bucketed into coarse
/// severity zones (0 = benign).  Identical non-zero zones across redundant
/// branches indicate a shared environmental stressor.
struct Environment {
    int temperature_zone = 0;
    int vibration_zone = 0;
    int emi_zone = 0;
    int water_exposure_zone = 0;

    friend bool operator==(const Environment&, const Environment&) = default;
};

/// Default failure rate of a physical location (failures/hour); conveys
/// the probability of accidents/conditions destroying everything at that
/// position of the vehicle.
inline constexpr double kDefaultLocationLambda = 1e-11;

struct Location {
    std::string name;
    double lambda = kDefaultLocationLambda;
    Environment env;
};

/// Physical-layer edge payload (adjacency / cable duct between locations).
struct PhysicalConnection {
    std::string label;
};

}  // namespace asilkit

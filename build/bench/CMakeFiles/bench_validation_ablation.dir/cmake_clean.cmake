file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_ablation.dir/bench_validation_ablation.cpp.o"
  "CMakeFiles/bench_validation_ablation.dir/bench_validation_ablation.cpp.o.d"
  "bench_validation_ablation"
  "bench_validation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// The EcoTwin truck-platooning lateral-control application (paper
// Sections VIII-IX, Figs. 10-12).
//
// The published figure gives the structure class but not the exact node
// list (the project model is proprietary), so this is a reconstruction
// with the same shape: heterogeneous forward sensors whose data is
// virtually split between object detection and an independent collision
// monitor, ego-state and V2V inputs, and a single decision chain
// (sensor fusion -> world model -> lateral control -> steering request)
// that the experiments expand into two redundant branches.  All nodes
// start at ASIL D on dedicated ASIL-D resources: the paper's "ideal but
// infeasible" position A.
//
// ecotwin_decision_nodes() lists the blue nodes of Fig. 10 — the
// functional and communication nodes the experiments Expand(), in chain
// order so that consecutive blocks become Connect()-able.
#pragma once

#include <string>
#include <vector>

#include "model/architecture.h"

namespace asilkit::scenarios {

[[nodiscard]] ArchitectureModel ecotwin_lateral_control();

/// Names of the decision-path nodes to expand, in dataflow order.
[[nodiscard]] std::vector<std::string> ecotwin_decision_nodes();

}  // namespace asilkit::scenarios

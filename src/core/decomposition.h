// ISO 26262 ASIL decomposition pattern catalogue (paper Fig. 2).
//
// The standard permits splitting a requirement at level P into two
// redundant requirements (L, R) only for the listed combinations; the
// invariant behind every pattern is asil_sum(L, R) >= P, and each listed
// pattern satisfies it with equality or by keeping one side at the
// original level.  Decomposing into more than two branches is expressed
// by repeated application of two-way patterns.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/asil.h"

namespace asilkit {

/// One two-way decomposition: parent -> left + right.  Left/right order is
/// not significant to the standard; patterns are stored with
/// left >= right for canonical comparison.
struct DecompositionPattern {
    Asil parent = Asil::QM;
    Asil left = Asil::QM;
    Asil right = Asil::QM;

    friend bool operator==(const DecompositionPattern&, const DecompositionPattern&) = default;
};

std::ostream& operator<<(std::ostream& os, const DecompositionPattern& p);

[[nodiscard]] std::string to_string(const DecompositionPattern& p);

/// The complete Fig. 2 catalogue:
///   D -> C+A | B+B | D+QM
///   C -> B+A | C+QM
///   B -> A+A | B+QM
///   A -> A+QM
/// QM cannot be decomposed (there is nothing to decompose).
[[nodiscard]] std::span<const DecompositionPattern> all_decomposition_patterns() noexcept;

/// Patterns applicable to a given parent level, in catalogue order.
[[nodiscard]] std::vector<DecompositionPattern> decompositions_of(Asil parent);

/// True iff (left, right) is a catalogue pattern for parent (order of
/// left/right does not matter).
[[nodiscard]] bool is_valid_decomposition(Asil parent, Asil left, Asil right) noexcept;

/// Generalised n-way validity: a multiset of branch levels is an
/// acceptable decomposition of `parent` iff it can be produced by repeated
/// application of catalogue patterns.  For the ISO catalogue this is
/// equivalent to: sum of branch values >= parent value (QM-only branch
/// sets are valid only for parent QM).
[[nodiscard]] bool is_valid_decomposition(Asil parent, std::span<const Asil> branches) noexcept;

/// Named strategies used throughout the paper's experiments to pick a
/// pattern when expanding a node.
enum class DecompositionStrategy : std::uint8_t {
    /// Prefer the symmetric pattern: D->B+B, C->B+A, B->A+A, A->A+QM.
    BB,
    /// Prefer the asymmetric pattern: D->C+A, C->C+QM, B->B+QM, A->A+QM.
    AC,
    /// Pick uniformly at random among the proper (non X+QM for parent>A
    /// unless it is the only choice) patterns; seeded, deterministic.
    RND,
};

[[nodiscard]] std::string_view to_string(DecompositionStrategy s) noexcept;

/// Selects the two-way pattern the given strategy uses for `parent`.
/// `rng_draw` is consumed only by RND: a value in [0,1) used to index the
/// candidate list, so callers own the random stream (determinism).
[[nodiscard]] DecompositionPattern select_pattern(Asil parent,
                                                  DecompositionStrategy strategy,
                                                  double rng_draw = 0.0);

}  // namespace asilkit

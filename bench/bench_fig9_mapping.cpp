// Fig. 9: the effect of the mapping on the analysis — a dedicated
// resource per application node (a) vs shared resources (b).
// Paper: 8.29e-9 (dedicated) vs 4.26e-9 (shared).
#include "bench_util.h"

#include "analysis/ccf.h"
#include "analysis/probability.h"
#include "cost/cost_analysis.h"
#include "explore/mapping_opt.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

void print_report() {
    bench::heading("Fig. 9: per-node mapping (a) vs shared-resource mapping (b)");

    // (a) a 4-stage series chain, one resource per node.
    ArchitectureModel dedicated = scenarios::chain_n_stages(4);
    const double p_dedicated =
        analysis::analyze_failure_probability(dedicated).failure_probability;
    const double c_dedicated =
        cost::total_cost(dedicated, cost::CostMetric::exponential_metric1());
    bench::compare("P(fail) dedicated mapping", "8.29e-9", p_dedicated);

    // (b) the same application on consolidated hardware (one ECU, one bus).
    ArchitectureModel shared = scenarios::chain_n_stages(4);
    explore::MappingOptimizeOptions options;
    options.include_non_branch_nodes = true;
    const explore::MappingOptimizeResult opt = explore::optimize_mapping(shared, options);
    const double p_shared = analysis::analyze_failure_probability(shared).failure_probability;
    const double c_shared = cost::total_cost(shared, cost::CostMetric::exponential_metric1());
    bench::compare("P(fail) shared mapping", "4.26e-9", p_shared);
    bench::row("resources", std::to_string(opt.resources_before) + " -> " +
                                std::to_string(opt.resources_after));
    std::printf("  %-46s %.6g -> %.6g\n", "cost", c_dedicated, c_shared);

    bench::heading("Shared mapping inside redundant branches (CCF-safe)");
    ArchitectureModel expanded = scenarios::chain_1in_1out();
    transform::expand(expanded, expanded.find_app_node("n"));
    const double p_before = analysis::analyze_failure_probability(expanded).failure_probability;
    const double c_before = cost::total_cost(expanded, cost::CostMetric::exponential_metric1());
    explore::optimize_mapping(expanded);
    const double p_after = analysis::analyze_failure_probability(expanded).failure_probability;
    const double c_after = cost::total_cost(expanded, cost::CostMetric::exponential_metric1());
    std::printf("  %-46s %.6g -> %.6g\n", "P(fail)", p_before, p_after);
    std::printf("  %-46s %.6g -> %.6g\n", "cost", c_before, c_after);
    bench::row("still CCF-independent",
               analysis::analyze_ccf(expanded).independent() ? "yes" : "NO");
    bench::note("in-branch sharing lowers cost at (nearly) unchanged probability;");
    bench::note("cross-branch sharing is never performed: it would be a CCF.");
}

void BM_OptimizeMapping(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        ArchitectureModel m = scenarios::chain_n_stages(6);
        for (int i = 1; i <= 6; ++i) {
            transform::expand(m, m.find_app_node("f" + std::to_string(i)));
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(explore::optimize_mapping(m));
    }
}
BENCHMARK(BM_OptimizeMapping);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

file(REMOVE_RECURSE
  "CMakeFiles/test_asil.dir/test_asil.cpp.o"
  "CMakeFiles/test_asil.dir/test_asil.cpp.o.d"
  "test_asil"
  "test_asil.pdb"
  "test_asil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

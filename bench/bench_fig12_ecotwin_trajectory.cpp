// Fig. 12: the EcoTwin design trajectory — failure probability vs cost
// through the experiment's four phases (paper, its unpublished model):
//   A initial (all ASIL D):   cost  998800, P(fail) 6.37e-9
//   B maximum expansion:      cost 1843000, P(fail) 2.14e-8
//   C connected + reduced:    cost 1229000, P(fail) 9.07e-9
//   D mapping optimised:      cost 1019000, P(fail) 6.72e-9
#include "bench_util.h"

#include "explore/driver.h"
#include "scenarios/ecotwin.h"

using namespace asilkit;

namespace {

explore::ExplorationResult run() {
    explore::ExplorationOptions options;
    options.strategy = DecompositionStrategy::BB;
    options.metric = cost::CostMetric::exponential_metric1();
    options.probability.approximate = true;
    return explore::run_exploration(scenarios::ecotwin_lateral_control(),
                                    scenarios::ecotwin_decision_nodes(), options);
}

void print_report() {
    bench::heading("Fig. 12: failure probability vs cost trajectory (BB, metric 1)");
    const explore::ExplorationResult result = run();
    std::printf("  %-26s %-12s %-14s %-10s %-10s\n", "step", "cost", "P(fail)", "app nodes",
                "resources");
    for (const explore::TradeoffPoint& p : result.curve.points) {
        std::printf("  %-26s %-12.6g %-14.6g %-10zu %-10zu\n", p.label.c_str(), p.cost,
                    p.failure_probability, p.app_nodes, p.resources);
    }

    const explore::TradeoffPoint& a = result.curve.points.front();
    std::size_t b_index = 0;
    for (std::size_t i = 0; i < result.curve.points.size(); ++i) {
        if (result.curve.points[i].label.rfind("expand(", 0) == 0) b_index = i;
    }
    const explore::TradeoffPoint& b = result.curve.points[b_index];
    std::size_t c_index = result.curve.points.size() - 2;  // last connect point
    const explore::TradeoffPoint& c = result.curve.points[c_index];
    const explore::TradeoffPoint& d = result.curve.points.back();

    bench::heading("paper-vs-measured at the four named points");
    bench::compare("A cost", "998800", a.cost);
    bench::compare("A P(fail)", "6.37e-9", a.failure_probability);
    bench::compare("B cost", "1843000", b.cost);
    bench::compare("B P(fail)", "2.14e-8", b.failure_probability);
    bench::compare("C cost", "1229000", c.cost);
    bench::compare("C P(fail)", "9.07e-9", c.failure_probability);
    bench::compare("D cost", "1019000", d.cost);
    bench::compare("D P(fail)", "6.72e-9", d.failure_probability);
    bench::note("shape checks: B > A in both axes; B->C descends linearly per connect;");
    bench::note("D approaches the ideal architecture A (paper: P within 6%; ours matches).");
    std::printf("  B/A cost ratio     paper=1.85   measured=%.2f\n", b.cost / a.cost);
    std::printf("  B/A P(fail) ratio  paper=3.36   measured=%.2f\n",
                b.failure_probability / a.failure_probability);
    std::printf("  D/A P(fail) ratio  paper=1.05   measured=%.2f\n",
                d.failure_probability / a.failure_probability);
}

void BM_FullEcotwinExploration(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(run());
    }
}
BENCHMARK(BM_FullEcotwinExploration)->Unit(benchmark::kMillisecond);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

#include "obs/openmetrics.h"

#include <cstdio>

#include "obs/metrics.h"

namespace asilkit::obs {
namespace {

/// Shortest round-trip double rendering, matching the JSON writer's.
std::string number(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    for (int precision = 6; precision < 17; ++precision) {
        char trial[40];
        std::snprintf(trial, sizeof(trial), "%.*g", precision, v);
        std::sscanf(trial, "%lf", &parsed);
        if (parsed == v) return trial;
    }
    return buf;
}

void append_line(std::string& out, const std::string& name, const char* suffix,
                 const std::string& labels, const std::string& value) {
    out += name;
    out += suffix;
    out += labels;
    out += ' ';
    out += value;
    out += '\n';
}

}  // namespace

std::string openmetrics_name(std::string_view id) {
    std::string name;
    name.reserve(id.size() + 1);
    for (const char c : id) {
        const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9') || c == '_' || c == ':';
        name += legal ? c : '_';
    }
    if (name.empty() || (name.front() >= '0' && name.front() <= '9')) {
        name.insert(name.begin(), '_');
    }
    return name;
}

std::string to_openmetrics(const MetricsSnapshot& snapshot) {
    std::string out;
    for (const MetricsSnapshot::CounterSample& c : snapshot.counters) {
        const std::string name = openmetrics_name(c.id);
        out += "# TYPE " + name + " counter\n";
        append_line(out, name, "_total", "", std::to_string(c.value));
    }
    for (const MetricsSnapshot::GaugeSample& g : snapshot.gauges) {
        const std::string name = openmetrics_name(g.id);
        out += "# TYPE " + name + " gauge\n";
        append_line(out, name, "", "", number(g.value));
    }
    for (const MetricsSnapshot::HistogramSample& h : snapshot.histograms) {
        const std::string name = openmetrics_name(h.id);
        out += "# TYPE " + name + " histogram\n";
        // Registry buckets are per-bucket counts with inclusive upper
        // bounds — exactly the `le` semantics; the exposition wants the
        // running (cumulative) total per bucket.
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            cumulative += h.counts[b];
            const std::string le =
                b < h.bounds.size() ? number(h.bounds[b]) : std::string("+Inf");
            append_line(out, name, "_bucket", "{le=\"" + le + "\"}",
                        std::to_string(cumulative));
        }
        append_line(out, name, "_sum", "", number(h.sum));
        append_line(out, name, "_count", "", std::to_string(h.count));
    }
    out += "# EOF\n";
    return out;
}

}  // namespace asilkit::obs

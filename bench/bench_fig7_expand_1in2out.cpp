// Fig. 7: expanding a node with 1 input and 2 outputs LOWERS the system
// failure probability (paper: 7.07e-9 -> 6.39e-9): the reliable
// splitter/merger hardware costs less rate than the removed node.
#include "bench_util.h"

#include "analysis/probability.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

void print_report() {
    bench::heading("Fig. 7: Expand() on a 1-input / 2-output node");
    ArchitectureModel m = scenarios::chain_1in_2out();
    const double before = analysis::analyze_failure_probability(m).failure_probability;
    bench::compare("P(fail) before expansion", "7.07e-9", before);
    const transform::ExpandResult r = transform::expand(m, m.find_app_node("n"));
    const double after = analysis::analyze_failure_probability(m).failure_probability;
    bench::compare("P(fail) after expansion", "6.39e-9", after);
    bench::row("delta (paper: -0.68e-9)", after - before);
    bench::row("management added",
               std::to_string(r.splitters.size()) + " splitter(s) + " +
                   std::to_string(r.mergers.size()) + " merger(s) @ 1e-10 each");
    bench::note("removed: the 1e-9 ASIL D node; added: 3 x 1e-10 management events");
    bench::note("and 2 x 1e-11 branch locations -> net improvement, as in the paper.");
}

void BM_Fig7Pipeline(benchmark::State& state) {
    ArchitectureModel m = scenarios::chain_1in_2out();
    transform::expand(m, m.find_app_node("n"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::analyze_failure_probability(m));
    }
}
BENCHMARK(BM_Fig7Pipeline);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

// Pareto-front extraction over trade-off points (lower cost AND lower
// failure probability are both better).  Used to compare curve families
// (Fig. 1: which decomposition/metric combinations dominate) and, via
// ParetoTracker, to maintain the best-front-so-far of an anytime search.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sync.h"
#include "explore/tradeoff.h"

namespace asilkit::explore {

/// True iff `a` dominates `b` (no worse in both objectives, strictly
/// better in at least one).
[[nodiscard]] bool dominates(const TradeoffPoint& a, const TradeoffPoint& b) noexcept;

/// The non-dominated subset, sorted by ascending cost (ties by ascending
/// failure probability), with exact (cost, probability) duplicates
/// collapsed to their first occurrence.  Sort-then-sweep, O(n log n):
/// every dominator of a point sorts strictly before it under
/// (cost, probability) lexicographic order, so one pass keeping the
/// running minimum probability finds exactly the non-dominated points.
[[nodiscard]] std::vector<TradeoffPoint> pareto_front(const std::vector<TradeoffPoint>& points);

/// Incremental Pareto front: the best-front-so-far of an anytime search.
///
/// The front is stored as the same staircase pareto_front() returns —
/// ascending cost, strictly descending failure probability, no
/// duplicates — so insert() is a binary search plus a contiguous erase
/// of newly dominated points: O(log n) to locate, O(k) to evict the k
/// points the new one dominates (each point is evicted at most once over
/// the tracker's lifetime, so a whole run is O(n log n) like the batch
/// sweep).  Feeding every point of a set through insert() yields exactly
/// pareto_front() of that set (asserted by tests/test_pareto.cpp).
///
/// Thread-safe: a tracker may be shared across concurrent searches via
/// MappingSearchOptions::front_tracker (the sharing `asilkit serve`
/// multiplexes on), so the staircase and its counters live behind a
/// mutex and front() returns a consistent snapshot rather than a
/// reference into mutable state.  Within one search, inserts happen on
/// the calling thread in deterministic order, so the lock never changes
/// results — it only makes cross-search sharing legal.
class ParetoTracker {
public:
    /// Offers a point.  Returns true iff the front changed (the point is
    /// not dominated by — and not an exact (cost, probability) duplicate
    /// of — a point already on the front).  Dominated offers are dropped.
    bool insert(TradeoffPoint p);

    /// Snapshot of the current front, ascending cost.
    [[nodiscard]] std::vector<TradeoffPoint> front() const;

    /// Number of points currently on the front.
    [[nodiscard]] std::size_t front_size() const;

    /// Number of insert() calls that changed the front.
    [[nodiscard]] std::uint64_t updates() const;

    /// Number of insert() calls observed (changed or not).
    [[nodiscard]] std::uint64_t offers() const;

    void clear();

private:
    mutable core::Mutex mu_;
    std::vector<TradeoffPoint> front_ GUARDED_BY(mu_);
    std::uint64_t updates_ GUARDED_BY(mu_) = 0;
    std::uint64_t offers_ GUARDED_BY(mu_) = 0;
};

}  // namespace asilkit::explore

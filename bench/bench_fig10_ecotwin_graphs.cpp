// Figs. 10 and 11: the EcoTwin lateral-control application graph before
// (non-redundant, Fig. 10) and after (two redundant branches, Fig. 11)
// the transformation flow.
#include "bench_util.h"

#include "explore/driver.h"
#include "io/dot.h"
#include "model/blocks.h"
#include "model/validation.h"
#include "scenarios/ecotwin.h"

using namespace asilkit;

namespace {

void describe(const ArchitectureModel& m, const char* which) {
    bench::heading(which);
    std::size_t by_kind[kNodeKindCount] = {};
    for (NodeId n : m.app().node_ids()) {
        ++by_kind[static_cast<std::size_t>(m.app().node(n).kind)];
    }
    for (NodeKind k : kAllNodeKinds) {
        bench::row(std::string(to_string(k)) + " nodes",
                   std::to_string(by_kind[static_cast<std::size_t>(k)]));
    }
    bench::row("channels", std::to_string(m.app().edge_count()));
    bench::row("resources", std::to_string(m.resources().node_count()));
    const auto blocks = find_redundant_blocks(m);
    bench::row("redundant blocks", std::to_string(blocks.size()));
    for (const auto& block : blocks) {
        bench::row("  block at " + m.app().node(block.merger).name,
                   std::to_string(block.branches.size()) + " branches, ASIL " +
                       std::string(to_string(block_asil(m, block))));
    }
    bench::row("validation errors", std::to_string(validate(m).error_count()));
}

void print_report() {
    const ArchitectureModel before = scenarios::ecotwin_lateral_control();
    describe(before, "Fig. 10: original non-redundant input application graph");
    std::string expanded_names;
    for (const std::string& n : scenarios::ecotwin_decision_nodes()) {
        if (!expanded_names.empty()) expanded_names += ", ";
        expanded_names += n;
    }
    bench::row("decision nodes to expand (blue)", expanded_names);

    explore::ExplorationOptions options;
    options.probability.approximate = true;
    const auto result =
        explore::run_exploration(before, scenarios::ecotwin_decision_nodes(), options);
    describe(result.final_model, "Fig. 11: redundant output application graph");
    bench::note("DOT renderings: use the fault_tree_export example or io::app_graph_to_dot.");
}

void BM_BuildEcotwinModel(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(scenarios::ecotwin_lateral_control());
    }
}
BENCHMARK(BM_BuildEcotwinModel);

void BM_DotExportEcotwin(benchmark::State& state) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    for (auto _ : state) {
        benchmark::DoNotOptimize(io::app_graph_to_dot(m));
    }
}
BENCHMARK(BM_DotExportEcotwin);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

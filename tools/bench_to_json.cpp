// Converts google-benchmark --benchmark_out JSON into the compact
// BENCH_dse.json the repository tracks for the DSE engine.  Accepts any
// number of raw inputs (last argument is the output), merging their
// benchmark lists so one tracked file can cover several bench binaries:
//
//   bench_mapping_search --benchmark_out=raw1.json --benchmark_out_format=json
//   bench_modularization --benchmark_out=raw2.json --benchmark_out_format=json
//   bench_to_json raw1.json raw2.json BENCH_dse.json
//
// Output: {"benchmarks": [{"name", "ns_per_op", "cache_hit_rate",
// "evals"?, "threads"?}, ...], "context": {...}} — one entry per timing,
// aggregate rows ("_mean" etc.) skipped so re-runs diff cleanly.  The
// context is taken from the first input.
//
// An optional `--metrics snapshot.json` (an obs registry snapshot, as
// written by a bench binary's own --metrics flag) adds a top-level
// "metrics" object with the BDD gauges worth tracking alongside the
// timings: bdd_node_high_water and bdd_apply_hit_rate (computed from
// the apply_hits/apply_lookups counters).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/json.h"

namespace {

// google-benchmark reports real_time in the unit named by "time_unit".
double to_nanoseconds(double value, const std::string& unit) {
    if (unit == "ns") return value;
    if (unit == "us") return value * 1e3;
    if (unit == "ms") return value * 1e6;
    if (unit == "s") return value * 1e9;
    return value;
}

/// Selected gauges/counters of an obs metrics snapshot, folded into the
/// tracked bench file.  Missing ids simply drop the derived field.
asilkit::io::Json metrics_summary(const asilkit::io::Json& snapshot) {
    asilkit::io::Json summary = asilkit::io::Json::object();
    if (snapshot.contains("gauges")) {
        const asilkit::io::Json& gauges = snapshot.at("gauges");
        if (gauges.contains("bdd.node_high_water")) {
            summary["bdd_node_high_water"] = gauges.at("bdd.node_high_water").as_number();
        }
    }
    if (snapshot.contains("counters")) {
        const asilkit::io::Json& counters = snapshot.at("counters");
        if (counters.contains("bdd.apply_hits") && counters.contains("bdd.apply_lookups")) {
            const double lookups = counters.at("bdd.apply_lookups").as_number();
            if (lookups > 0) {
                summary["bdd_apply_hit_rate"] =
                    counters.at("bdd.apply_hits").as_number() / lookups;
            }
        }
        if (counters.contains("engine.cache.hits") && counters.contains("engine.cache.misses")) {
            const double total = counters.at("engine.cache.hits").as_number() +
                                 counters.at("engine.cache.misses").as_number();
            if (total > 0) {
                summary["engine_cache_hit_rate"] =
                    counters.at("engine.cache.hits").as_number() / total;
            }
        }
    }
    return summary;
}

}  // namespace

int main(int argc, char** argv) {
    std::string metrics_path;
    std::vector<char*> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
            metrics_path = argv[++i];
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() < 2) {
        std::fprintf(stderr,
                     "usage: %s [--metrics snapshot.json] <google-benchmark.json> "
                     "[more.json...] <out.json>\n",
                     argv[0]);
        return 2;
    }
    try {
        asilkit::io::Json out = asilkit::io::Json::object();
        asilkit::io::Json context = asilkit::io::Json::object();
        asilkit::io::Json benchmarks = asilkit::io::Json::array();

        for (std::size_t input = 0; input + 1 < files.size(); ++input) {
            const asilkit::io::Json raw = asilkit::io::load_json_file(files[input]);
            if (input == 0 && raw.contains("context")) {
                const asilkit::io::Json& ctx = raw.at("context");
                for (const char* key : {"date", "host_name", "num_cpus", "mhz_per_cpu",
                                        "library_build_type"}) {
                    if (ctx.contains(key)) context[key] = ctx.at(key);
                }
            }
            for (const asilkit::io::Json& b : raw.at("benchmarks").as_array()) {
                // Skip repetition aggregates; keep plain timings only.
                if (b.contains("run_type") && b.at("run_type").as_string() != "iteration") {
                    continue;
                }
                const std::string& name = b.at("name").as_string();
                asilkit::io::Json entry = asilkit::io::Json::object();
                entry["name"] = name;
                entry["ns_per_op"] = to_nanoseconds(b.at("real_time").as_number(),
                                                    b.at("time_unit").as_string());
                entry["cache_hit_rate"] =
                    b.contains("cache_hit_rate") ? b.at("cache_hit_rate").as_number() : 0.0;
                if (b.contains("evals")) entry["evals"] = b.at("evals").as_number();
                if (b.contains("engine_threads")) {
                    entry["engine_threads"] = b.at("engine_threads").as_number();
                }
                // Lint pre-filter counters (bench_lint) and persistent-
                // compilation counters (bench_bdd_compile).
                for (const char* key : {"findings", "rejects_per_sec", "lint_rejections",
                                        "memo_hit_rate", "gc_freed_nodes", "batch_lanes"}) {
                    if (b.contains(key)) entry[key] = b.at(key).as_number();
                }
                benchmarks.push_back(std::move(entry));
            }
        }

        out["context"] = std::move(context);
        out["benchmarks"] = std::move(benchmarks);
        if (!metrics_path.empty()) {
            out["metrics"] = metrics_summary(asilkit::io::load_json_file(metrics_path));
        }

        asilkit::io::save_json_file(out, files.back());
        std::printf("wrote %s (%zu benchmarks)\n", files.back(),
                    out.at("benchmarks").size());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_to_json: %s\n", e.what());
        return 1;
    }
}

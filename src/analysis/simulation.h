// Monte Carlo fault simulation.
//
// An independent estimator for the top-event probability: sample every
// basic event as Bernoulli(p_i), evaluate the fault tree, repeat.  Two
// engines share one options/result surface (see docs/simulation.md):
//
//   * Naive — the original scalar loop, one trial at a time through a
//     sequential mt19937_64.  Kept bit-for-bit as the cross-validation
//     oracle: it shares no code with the analytic (BDD) pipeline, so
//     agreement within the confidence interval is strong evidence of
//     correctness.
//   * BitParallel — analysis::SimEngine (sim_engine.h): 64 trials per
//     machine word, counter-based RNG, thread-pool fan-out, optional
//     cut-set importance sampling.  Deterministic at every thread count
//     and block size by construction.
//
// Naive sampling cannot resolve automotive-scale probabilities (1e-9
// needs ~1e11 trials), so validation runs either scale the rates up
// (`rate_scale`) into the regime where a few hundred thousand trials
// give tight intervals, or enable importance sampling, which estimates
// the unscaled probability directly with likelihood-ratio weights.
#pragma once

#include <cstdint>

#include "ftree/fault_tree.h"
#include "model/architecture.h"
#include "model/failure_rates.h"

namespace asilkit::analysis {

enum class SimEngineKind : std::uint8_t {
    Naive,       ///< scalar oracle loop (sequential mt19937_64)
    BitParallel  ///< vectorized SimEngine (counter-based RNG, 64 trials/word)
};

struct SimulationOptions {
    std::uint64_t trials = 100000;
    /// Full 64-bit seed space; the naive oracle feeds it to mt19937_64
    /// unchanged, the bit-parallel engine uses it as the counter-RNG key.
    std::uint64_t seed = 1;
    double mission_hours = 1.0;
    /// Multiplies every basic-event rate before sampling (validation aid).
    double rate_scale = 1.0;
    bool include_location_events = true;
    FailureRates rates{};

    SimEngineKind engine = SimEngineKind::BitParallel;
    /// Evaluation lanes for the bit-parallel engine (0 = ASILKIT_THREADS
    /// env var, else hardware concurrency).  Results are bitwise
    /// identical at every thread count.  Ignored by the naive engine.
    unsigned threads = 1;
    /// Scheduling unit in trials for the thread-pool fan-out; rounded up
    /// to a multiple of the fixed accumulation granule (4096 trials), so
    /// results are bitwise identical across block sizes too.
    std::uint64_t block_trials = 1u << 16;

    /// Rare-event importance sampling (bit-parallel engine only): bias
    /// the proposal toward minimal-cut-set events and weight trials by
    /// the likelihood ratio.  Unbiased at any bias level; makes
    /// unscaled automotive rates (1e-9 fph) estimable.
    bool importance_sampling = false;
    /// Proposal floor for cut-set events: q_i = max(p_i, is_bias).
    double is_bias = 0.05;
    /// Order limit for the proposal's minimal-cut-set enumeration.
    std::size_t is_max_order = 4;
};

struct SimulationResult {
    double estimate = 0.0;   ///< failures / trials (weighted under IS)
    double std_error = 0.0;  ///< sqrt(p(1-p)/n), or the weighted-sample SE under IS
    double ci95_low = 0.0;
    double ci95_high = 0.0;
    std::uint64_t failures = 0;  ///< raw failing trials (unweighted, even under IS)
    std::uint64_t trials = 0;
    /// Kish effective sample size (sum w)^2 / sum w^2 of the
    /// likelihood-ratio weights; equals `trials` when IS is off.  A
    /// collapsed ESS (<< failures) flags an overdispersed proposal.
    double ess = 0.0;
    bool importance_sampled = false;

    /// True when `value` lies within the 95% confidence interval.
    [[nodiscard]] bool consistent_with(double value) const noexcept {
        return value >= ci95_low && value <= ci95_high;
    }
};

/// Simulates an already-built fault tree with the selected engine.
/// Repeated runs over one tree should construct a SimEngine instead —
/// this convenience wrapper recompiles the evaluation plan every call.
[[nodiscard]] SimulationResult simulate_fault_tree(const ftree::FaultTree& ft,
                                                   const SimulationOptions& options = {});

/// Builds the model's fault tree (exact form) and simulates it.
[[nodiscard]] SimulationResult simulate_failure_probability(const ArchitectureModel& m,
                                                            const SimulationOptions& options = {});

}  // namespace asilkit::analysis

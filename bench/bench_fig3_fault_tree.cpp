// Figs. 3 and 4: the camera+GPS data-fusion example and its automatically
// generated fault tree.
//
// Rebuilds the Fig. 3 model, generates the fault tree (the paper's Fig. 4
// shows the fragment for node com_a1), prints its structure and the gate
// kinds, and times fault-tree generation.
#include "bench_util.h"

#include "analysis/probability.h"
#include "ftree/builder.h"
#include "scenarios/fig3.h"

using namespace asilkit;

namespace {

void print_report() {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    bench::heading("Fig. 3: redundant camera + GPS data-fusion system");
    bench::row("application nodes", std::to_string(m.app().node_count()));
    bench::row("resources", std::to_string(m.resources().node_count()));
    bench::row("locations", std::to_string(m.physical().node_count()));

    const ftree::FtBuildResult ft = ftree::build_fault_tree(m);
    const ftree::FaultTreeStats stats = ft.tree.stats();
    bench::heading("Fig. 4: generated fault tree");
    bench::row("basic events", std::to_string(stats.basic_events));
    bench::row("gates", std::to_string(stats.gates));
    bench::row("nodes (DAG)", std::to_string(stats.dag_nodes));
    bench::row("nodes (expanded tree)", std::to_string(stats.expanded_nodes));
    bench::row("root-to-leaf paths", std::to_string(stats.paths));
    bench::row("depth", std::to_string(stats.depth));

    // The Fig. 4 pattern: com_a1's gate ORs its own base events with its
    // input's gate; the merger gate ANDs its redundant inputs.
    for (const ftree::Gate& g : ft.tree.gates()) {
        if (g.name == "fail:com_a1") {
            bench::row("fail:com_a1 gate", std::string(to_string(g.kind)) + " over " +
                                               std::to_string(g.children.size()) + " children");
        }
        if (g.name == "and:merge_dfus") {
            bench::row("merger input gate", std::string(to_string(g.kind)) + " over " +
                                                std::to_string(g.children.size()) + " branches");
        }
    }

    const double p = analysis::analyze_failure_probability(m).failure_probability;
    bench::compare("system failure probability (fph)", "2.04180e-7", p);
    bench::note("reconstructed model: two ASIL B sensors dominate, as in the paper");
}

void BM_BuildFaultTreeFig3(benchmark::State& state) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    for (auto _ : state) {
        benchmark::DoNotOptimize(ftree::build_fault_tree(m));
    }
}
BENCHMARK(BM_BuildFaultTreeFig3);

void BM_FullProbabilityPipelineFig3(benchmark::State& state) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::analyze_failure_probability(m));
    }
}
BENCHMARK(BM_FullProbabilityPipelineFig3);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

// Exception hierarchy for asilkit.
//
// Errors are reported by exceptions per the library-wide convention:
// constructors establish invariants, operations that cannot meet their
// postcondition throw.  All asilkit exceptions derive from Error so that
// callers can catch the library's failures in one clause.
#pragma once

#include <stdexcept>
#include <string>

namespace asilkit {

/// Root of all asilkit exceptions.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A model is structurally ill-formed (dangling id, unmapped node,
/// kind-mismatch, ...).
class ModelError : public Error {
public:
    explicit ModelError(const std::string& what) : Error("model error: " + what) {}
};

/// A transformation's precondition does not hold (e.g. Connect()'s four
/// conditions, or an Expand() with an invalid decomposition pattern).
class TransformError : public Error {
public:
    explicit TransformError(const std::string& what) : Error("transform error: " + what) {}
};

/// An analysis cannot be carried out on the given input (e.g. probability
/// evaluation over an empty fault tree).
class AnalysisError : public Error {
public:
    explicit AnalysisError(const std::string& what) : Error("analysis error: " + what) {}
};

/// Serialization / parsing failures.
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

}  // namespace asilkit

# Empty compiler generated dependencies file for test_cutsets.
# This may be replaced when dependencies are built.

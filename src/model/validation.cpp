#include "model/validation.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "core/error.h"
#include "graph/algorithms.h"
#include "model/blocks.h"

namespace asilkit {

std::string_view to_string(IssueCode c) noexcept {
    switch (c) {
        case IssueCode::UnmappedNode: return "unmapped-node";
        case IssueCode::IncompatibleMapping: return "incompatible-mapping";
        case IssueCode::UnderImplementedAsil: return "under-implemented-asil";
        case IssueCode::UnplacedResource: return "unplaced-resource";
        case IssueCode::BadSplitterDegree: return "bad-splitter-degree";
        case IssueCode::BadMergerDegree: return "bad-merger-degree";
        case IssueCode::IllFormedBlock: return "ill-formed-block";
        case IssueCode::InvalidDecomposition: return "invalid-decomposition";
        case IssueCode::UnreachableActuator: return "unreachable-actuator";
        case IssueCode::DanglingSensor: return "dangling-sensor";
    }
    return "?";
}

std::string_view to_string(IssueSeverity s) noexcept {
    return s == IssueSeverity::Error ? "error" : "warning";
}

std::ostream& operator<<(std::ostream& os, const ValidationIssue& issue) {
    return os << to_string(issue.severity) << " [" << to_string(issue.code) << "] "
              << issue.message;
}

std::size_t ValidationReport::error_count() const noexcept {
    return static_cast<std::size_t>(std::count_if(
        issues.begin(), issues.end(),
        [](const ValidationIssue& i) { return i.severity == IssueSeverity::Error; }));
}

std::size_t ValidationReport::warning_count() const noexcept {
    return issues.size() - error_count();
}

bool ValidationReport::has(IssueCode c) const noexcept {
    return std::any_of(issues.begin(), issues.end(),
                       [c](const ValidationIssue& i) { return i.code == c; });
}

namespace {

void check_mapping(const ArchitectureModel& m, ValidationReport& report) {
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        const auto& rs = m.mapped_resources(n);
        if (rs.empty()) {
            report.issues.push_back({IssueSeverity::Error, IssueCode::UnmappedNode,
                                     "application node '" + node.name + "' is not mapped to any resource"});
            continue;
        }
        for (ResourceId r : rs) {
            const Resource& res = m.resources().node(r);
            if (!mapping_compatible(node.kind, res.kind)) {
                report.issues.push_back(
                    {IssueSeverity::Error, IssueCode::IncompatibleMapping,
                     "node '" + node.name + "' (" + std::string(to_string(node.kind)) +
                         ") mapped on incompatible resource '" + res.name + "' (" +
                         std::string(to_string(res.kind)) + ")"});
            }
        }
        const Asil eff = m.effective_asil(n);
        if (asil_value(eff) < asil_value(node.asil.level)) {
            report.issues.push_back(
                {IssueSeverity::Warning, IssueCode::UnderImplementedAsil,
                 "node '" + node.name + "' requires " + to_long_string(node.asil.level) +
                     " but its mapping only provides " + to_long_string(eff)});
        }
    }
    for (ResourceId r : m.resources().node_ids()) {
        if (m.resource_locations(r).empty()) {
            report.issues.push_back({IssueSeverity::Warning, IssueCode::UnplacedResource,
                                     "resource '" + m.resources().node(r).name +
                                         "' has no physical location"});
        }
    }
}

void check_degrees(const ArchitectureModel& m, ValidationReport& report) {
    const AppGraph& g = m.app();
    for (NodeId n : g.node_ids()) {
        const AppNode& node = g.node(n);
        if (node.kind == NodeKind::Splitter &&
            (g.in_degree(n) < 1 || g.out_degree(n) < 2)) {
            report.issues.push_back({IssueSeverity::Error, IssueCode::BadSplitterDegree,
                                     "splitter '" + node.name + "' must have >=1 input and >=2 outputs"});
        }
        if (node.kind == NodeKind::Merger &&
            (g.in_degree(n) < 2 || g.out_degree(n) < 1)) {
            report.issues.push_back({IssueSeverity::Error, IssueCode::BadMergerDegree,
                                     "merger '" + node.name + "' must have >=2 inputs and >=1 output"});
        }
    }
}

void check_blocks(const ArchitectureModel& m, ValidationReport& report) {
    for (const RedundantBlock& block : find_redundant_blocks(m)) {
        const std::string merger_name = m.app().node(block.merger).name;
        if (!block.well_formed) {
            for (const std::string& why : block.issues) {
                report.issues.push_back({IssueSeverity::Error, IssueCode::IllFormedBlock,
                                         "block at merger '" + merger_name + "': " + why});
            }
            continue;
        }
        // The block must still satisfy the inherited requirement: take the
        // strongest inherited level among splitters/merger/branches as the
        // original FSR level and verify Eq. 4 reaches it.
        Asil inherited = m.app().node(block.merger).asil.inherited;
        for (NodeId s : block.splitters) {
            inherited = asil_max(inherited, m.app().node(s).asil.inherited);
        }
        const Asil achieved = block_asil(m, block);
        if (asil_value(achieved) < asil_value(inherited)) {
            report.issues.push_back(
                {IssueSeverity::Warning, IssueCode::InvalidDecomposition,
                 "block at merger '" + merger_name + "' achieves " + to_long_string(achieved) +
                     " but inherits a " + to_long_string(inherited) + " requirement"});
        }
    }
}

void check_reachability(const ArchitectureModel& m, ValidationReport& report) {
    const AppGraph& g = m.app();
    std::vector<NodeId> sensors;
    std::vector<NodeId> actuators;
    for (NodeId n : g.node_ids()) {
        const NodeKind k = g.node(n).kind;
        if (k == NodeKind::Sensor) sensors.push_back(n);
        if (k == NodeKind::Actuator) actuators.push_back(n);
    }
    std::unordered_set<NodeId> fed;  // nodes reachable from any sensor
    for (NodeId s : sensors) {
        for (NodeId n : graph::reachable_from(g, s)) fed.insert(n);
    }
    std::unordered_set<NodeId> feeding;  // nodes reaching any actuator
    for (NodeId a : actuators) {
        for (NodeId n : graph::reaching(g, a)) feeding.insert(n);
    }
    for (NodeId a : actuators) {
        if (!fed.contains(a)) {
            report.issues.push_back({IssueSeverity::Warning, IssueCode::UnreachableActuator,
                                     "actuator '" + g.node(a).name + "' is not fed by any sensor"});
        }
    }
    for (NodeId s : sensors) {
        if (!feeding.contains(s)) {
            report.issues.push_back({IssueSeverity::Warning, IssueCode::DanglingSensor,
                                     "sensor '" + g.node(s).name + "' does not reach any actuator"});
        }
    }
}

}  // namespace

ValidationReport validate(const ArchitectureModel& m) {
    ValidationReport report;
    check_mapping(m, report);
    check_degrees(m, report);
    check_blocks(m, report);
    check_reachability(m, report);
    return report;
}

void validate_or_throw(const ArchitectureModel& m) {
    const ValidationReport report = validate(m);
    if (report.error_count() == 0) return;
    std::ostringstream oss;
    oss << "model '" << m.name() << "' failed validation:";
    for (const ValidationIssue& issue : report.issues) {
        if (issue.severity == IssueSeverity::Error) oss << "\n  " << issue;
    }
    throw ModelError(oss.str());
}

}  // namespace asilkit

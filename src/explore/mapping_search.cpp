#include "explore/mapping_search.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/error.h"
#include "cost/cost_analysis.h"
#include "explore/bounds.h"
#include "lint/lint.h"
#include "model/blocks.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::explore {

namespace detail {

std::uint64_t pack_region_id(std::uint64_t merger, std::uint64_t branch) {
    constexpr std::uint64_t kHalf = std::uint64_t{1} << 32;
    if (merger >= kHalf - 1) {
        throw ModelError("pack_region_id: merger id does not fit 32 bits or is the invalid id");
    }
    if (branch >= kHalf) {
        throw ModelError("pack_region_id: branch index does not fit 32 bits");
    }
    return (merger << 32) | branch;
}

}  // namespace detail

namespace {

/// Region id per node: (merger id, branch index) for branch nodes, a
/// distinct trunk region otherwise.  Resources may only be merged when
/// all their nodes live in one common region.
using RegionId = std::uint64_t;
constexpr RegionId kTrunk = ~RegionId{0};

std::unordered_map<NodeId, RegionId> region_of_nodes(const ArchitectureModel& m) {
    std::unordered_map<NodeId, RegionId> region;
    for (NodeId n : m.app().node_ids()) region[n] = kTrunk;
    for (const RedundantBlock& block : find_redundant_blocks(m)) {
        if (!block.well_formed) continue;
        for (std::size_t b = 0; b < block.branches.size(); ++b) {
            const RegionId id = detail::pack_region_id(block.merger.value(), b);
            for (NodeId n : block.branches[b].nodes) region[n] = id;
        }
    }
    return region;
}

/// The single region of a resource's nodes, or nullopt when mixed/empty.
std::optional<RegionId> resource_region(const ArchitectureModel& m, ResourceId r,
                                        const std::unordered_map<NodeId, RegionId>& region) {
    const auto nodes = m.nodes_on_resource(r);
    if (nodes.empty()) return std::nullopt;
    const RegionId first = region.at(nodes.front());
    for (NodeId n : nodes) {
        if (region.at(n) != first) return std::nullopt;
    }
    return first;
}

struct Objective {
    double probability;
    double cost;
    friend bool operator<(const Objective& a, const Objective& b) {
        if (a.probability != b.probability) return a.probability < b.probability;
        return a.cost < b.cost;
    }
};

/// Merges `from` into `into`: remaps nodes, raises the readiness level if
/// needed, and erases `from`.
void apply_merge(ArchitectureModel& m, ResourceId into, ResourceId from) {
    const Asil needed = asil_max(m.resources().node(into).asil, m.resources().node(from).asil);
    m.resources().node(into).asil = needed;
    for (NodeId n : m.nodes_on_resource(from)) {
        m.map_node(n, into);
        m.unmap_node(n, from);
    }
    m.erase_resource(from);
}

/// Front point for one state of the walk; the objective and diagnostics
/// come from the evaluation that scored the state — no re-analysis.
TradeoffPoint search_point(const ArchitectureModel& m, std::string label, const Objective& obj,
                           const analysis::ProbabilityResult& prob) {
    TradeoffPoint point;
    point.label = std::move(label);
    point.cost = obj.cost;
    point.failure_probability = obj.probability;
    point.app_nodes = m.app().node_count();
    point.resources = m.resources().node_count();
    point.ft_dag_nodes = prob.ft_stats.dag_nodes;
    point.ft_paths = prob.ft_stats.paths;
    point.bdd_nodes = prob.bdd_nodes;
    return point;
}

}  // namespace

MappingSearchResult search_mapping(ArchitectureModel& m, const MappingSearchOptions& options) {
    engine::EvalEngine engine(options.engine);
    return search_mapping(m, options, engine);
}

MappingSearchResult search_mapping(ArchitectureModel& m, const MappingSearchOptions& options,
                                   engine::EvalEngine& engine) {
    const obs::ObsSpan search_span("search_mapping", "explore");
    static obs::Counter& obs_iterations = obs::Registry::global().counter("explore.iterations");
    static obs::Counter& obs_candidates =
        obs::Registry::global().counter("explore.candidates_generated");
    static obs::Counter& obs_bound_rejections =
        obs::Registry::global().counter("explore.bound_rejections");
    static obs::Counter& obs_front_updates =
        obs::Registry::global().counter("explore.front_updates");
    static obs::Gauge& obs_queue_depth = obs::Registry::global().gauge("engine.queue_depth");
    static obs::Gauge& obs_queue_depth_max =
        obs::Registry::global().gauge("engine.queue_depth_max");

    MappingSearchResult result;
    const engine::EvalEngine::Stats stats_before = engine.stats();

    ParetoTracker local_tracker;
    ParetoTracker& tracker = options.front_tracker != nullptr ? *options.front_tracker
                                                              : local_tracker;
    const auto publish = [&](const TradeoffPoint& point) {
        if (!tracker.insert(point)) return;
        ++result.front_updates;
        obs_front_updates.inc();
        if (options.on_front_update) options.on_front_update(point, tracker.front_size());
    };

    // The one unconditional full evaluation: every later state's exact
    // objective is carried forward from the batch that scored it.
    analysis::ProbabilityResult current_prob = engine.analyze(m, options.probability);
    Objective current{current_prob.failure_probability, cost::total_cost(m, options.metric)};
    result.probability_before = current.probability;
    result.cost_before = current.cost;
    publish(search_point(m, "initial", current, current_prob));

    // One bound context per SEARCH: built on the first iteration (fault
    // tree + minimal cut sets + Bonferroni precompute) and then carried
    // across accepted merges by commit(), which rewrites the cut family
    // in place of re-enumerating it.
    std::optional<MergeBoundContext> bound_ctx;

    for (; result.iterations < options.max_iterations; ++result.iterations) {
        const obs::ObsSpan iter_span("iteration", "explore", "iteration",
                                     static_cast<double>(result.iterations));
        obs_iterations.inc();

        std::vector<std::pair<ResourceId, ResourceId>> moves;
        {
            const obs::ObsSpan generate_span("generate", "explore");
            const auto region = region_of_nodes(m);

            // Candidate buckets: (kind, region) -> mergeable resources.
            std::map<std::pair<int, RegionId>, std::vector<ResourceId>> buckets;
            for (ResourceId r : m.used_resources()) {
                const Resource& res = m.resources().node(r);
                if (res.kind == ResourceKind::Splitter || res.kind == ResourceKind::Merger ||
                    res.kind == ResourceKind::Sensor || res.kind == ResourceKind::Actuator) {
                    continue;  // physical devices & redundancy management stay dedicated
                }
                if (const auto reg = resource_region(m, r, region)) {
                    if (!options.include_non_branch_nodes && *reg == kTrunk) continue;
                    buckets[{static_cast<int>(res.kind), *reg}].push_back(r);
                }
            }

            // Flatten the capacity-feasible moves in deterministic bucket
            // order; selection works on (score, move index), so the
            // chosen move is independent of how the batch is scheduled
            // AND of how the bound ordering permutes the evaluations.
            for (const auto& [key, resources] : buckets) {
                for (std::size_t i = 0; i < resources.size(); ++i) {
                    for (std::size_t j = i + 1; j < resources.size(); ++j) {
                        const std::size_t combined = m.nodes_on_resource(resources[i]).size() +
                                                     m.nodes_on_resource(resources[j]).size();
                        if (combined > options.max_nodes_per_resource) continue;
                        moves.emplace_back(resources[i], resources[j]);
                    }
                }
            }
        }
        const std::size_t n = moves.size();
        obs_candidates.add(n);
        obs_queue_depth.set(static_cast<double>(n));
        obs_queue_depth_max.set_max(static_cast<double>(n));

        // Baseline for the lint pre-filter: candidates may not introduce
        // a new structural error over what the current model already has
        // (a pre-existing error would otherwise reject every candidate).
        std::size_t baseline_errors = 0;
        if (options.lint_prefilter) {
            const obs::ObsSpan lint_span("lint_prefilter", "explore");
            baseline_errors = lint::structural_error_count(m);
        }
        constexpr double kRejected = std::numeric_limits<double>::infinity();
        std::atomic<std::uint64_t> rejected{0};

        // Bound-check stage: O(affected cuts) per candidate against the
        // carried context.  Each bound is admissible — never above the
        // candidate's exact objective — so the best-bound-first
        // evaluation below can stop early without ever changing the
        // selected move.
        std::vector<Objective> lower;
        bool have_bounds = false;
        if (options.bound_pruning && n > 0) {
            const obs::ObsSpan bound_span("bound_check", "explore", "candidates",
                                          static_cast<double>(n));
            if (!bound_ctx) {
                bound_ctx.emplace(m, options.metric, options.probability, current.cost);
            }
            lower.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                const MergeBoundContext::Bounds b =
                    bound_ctx->bounds(moves[i].first, moves[i].second);
                lower[i] = Objective{b.probability_lb, b.cost_lb};
            }
            have_bounds = true;
        }

        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        if (have_bounds) {
            std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
                if (lower[i] < lower[j]) return true;
                if (lower[j] < lower[i]) return false;
                return i < j;
            });
        }

        // `beats` is the selection total order of the original serial
        // scan, made explicit so candidates can be examined in any
        // sequence: strictly better objective wins; an equal objective
        // wins only against another candidate of higher move index
        // (never against the incumbent state).  The final winner is the
        // unique minimum of this order over everything evaluated.
        Objective best = current;
        std::optional<std::size_t> best_index;
        analysis::ProbabilityResult best_prob;
        const auto beats = [&](const Objective& s, std::size_t idx) {
            if (s < best) return true;
            if (best < s) return false;
            return best_index.has_value() && idx < *best_index;
        };

        // Lazy chunked evaluation, best bound first.  Each chunk runs
        // the proven pipeline: parallel copy + lint + cost, then ONE
        // analyze_batch so tree-key dedup and the batched multi-lambda
        // kernel see the chunk at once.  Before starting a chunk, if the
        // next candidate's bound cannot beat the best move found so far,
        // no remaining candidate can (bounds ascend in `order` and never
        // exceed their exact scores) — everything left is pruned without
        // any fault-tree/BDD work.
        // With bounds in play the smallest chunk stops earliest (no
        // wasted evaluations past the winner); without them the loop
        // never breaks, so larger chunks feed the batched kernel
        // better.  The selection is chunk-size independent either way,
        // but the chunk size must not depend on the thread count: the
        // break point — and with it the evaluations counter — sits on a
        // chunk boundary, and observable counters stay identical at any
        // thread count (tests/test_obs.cpp Determinism).
        const std::size_t chunk_size = have_bounds ? 2 : 8;
        std::size_t pos = 0;
        {
            const obs::ObsSpan evaluate_span("evaluate", "explore", "candidates",
                                             static_cast<double>(n));
            std::vector<ArchitectureModel> trials(std::min(chunk_size, n));
            std::vector<const ArchitectureModel*> model_ptrs;
            while (pos < n) {
                if (have_bounds && !beats(lower[order[pos]], order[pos])) break;
                const std::size_t end = std::min(pos + chunk_size, n);
                const std::size_t count = end - pos;
                model_ptrs.assign(count, nullptr);
                std::vector<Objective> scores(count);
                engine.pool().parallel_for(count, [&](std::size_t t) {
                    const std::size_t idx = order[pos + t];
                    ArchitectureModel trial = m;
                    apply_merge(trial, moves[idx].first, moves[idx].second);
                    if (options.lint_prefilter &&
                        lint::structural_error_count(trial) > baseline_errors) {
                        scores[t] = {kRejected, kRejected};
                        rejected.fetch_add(1, std::memory_order_relaxed);
                        return;
                    }
                    scores[t].cost = cost::total_cost(trial, options.metric);
                    trials[t] = std::move(trial);
                    model_ptrs[t] = &trials[t];
                });
                const std::vector<analysis::ProbabilityResult> batch =
                    engine.analyze_batch(model_ptrs, options.probability);
                for (std::size_t t = 0; t < count; ++t) {
                    if (model_ptrs[t] == nullptr) continue;  // lint-rejected
                    scores[t].probability = batch[t].failure_probability;
                    const std::size_t idx = order[pos + t];
                    if (beats(scores[t], idx)) {
                        best = scores[t];
                        best_index = idx;
                        best_prob = batch[t];
                    }
                }
                pos = end;
            }
        }
        obs_queue_depth.set(0.0);
        engine.note_lint_rejections(rejected.load(std::memory_order_relaxed));
        if (pos < n) {
            const std::uint64_t pruned = n - pos;
            result.bound_rejections += pruned;
            obs_bound_rejections.add(pruned);
        }

        const obs::ObsSpan select_span("select", "explore");
        if (!best_index.has_value()) {
            result.reached_local_optimum = true;
            break;
        }
        const auto [into, from] = moves[*best_index];
        std::string label = "merge#" + std::to_string(result.merges + 1) + "(" +
                            m.resources().node(into).name + "<-" +
                            m.resources().node(from).name + ")";
        // Advance the carried bound context across the accepted merge
        // (must see the pre-merge model) before mutating the model.
        if (bound_ctx) bound_ctx->commit(into, from, best.cost);
        apply_merge(m, into, from);
        ++result.merges;
        // Carry the winner's exact objective (and its diagnostics) as
        // the next iteration's incumbent: the applied model's canonical
        // tree is the one the batch scored, so re-evaluating could only
        // reproduce these very numbers.
        current = best;
        current_prob = std::move(best_prob);
        publish(search_point(m, std::move(label), current, current_prob));
    }

    result.probability_after = current.probability;
    result.cost_after = current.cost;
    result.front = tracker.front();

    const engine::EvalEngine::Stats stats_after = engine.stats();
    result.evaluations = stats_after.analyze_calls - stats_before.analyze_calls;
    result.eval_cache_hits = stats_after.tree_hits - stats_before.tree_hits;
    result.eval_cache_misses = stats_after.tree_misses - stats_before.tree_misses;
    result.module_cache_hits = stats_after.module_hits - stats_before.module_hits;
    result.module_cache_misses = stats_after.module_misses - stats_before.module_misses;
    result.lint_rejections = stats_after.lint_rejections - stats_before.lint_rejections;
    result.dedup_hits = stats_after.dedup_hits - stats_before.dedup_hits;
    result.fragments_built = stats_after.fragments_built - stats_before.fragments_built;
    result.fragments_reused = stats_after.fragments_reused - stats_before.fragments_reused;
    result.ftree_memo_hits = stats_after.ftree_memo_hits - stats_before.ftree_memo_hits;
    return result;
}

}  // namespace asilkit::explore

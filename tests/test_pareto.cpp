#include "explore/pareto.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

namespace asilkit::explore {
namespace {

TradeoffPoint point(double cost, double probability) {
    TradeoffPoint p;
    p.cost = cost;
    p.failure_probability = probability;
    return p;
}

/// Brute-force O(n^2) reference: the non-dominated points, deduplicated
/// by (cost, probability) keeping the first occurrence, in (cost,
/// probability) order — the contract pareto_front's sweep implements.
std::vector<TradeoffPoint> reference_front(const std::vector<TradeoffPoint>& points) {
    std::vector<TradeoffPoint> sorted = points;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TradeoffPoint& a, const TradeoffPoint& b) {
                         if (a.cost != b.cost) return a.cost < b.cost;
                         return a.failure_probability < b.failure_probability;
                     });
    std::vector<TradeoffPoint> front;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const TradeoffPoint& p = sorted[i];
        bool keep = true;
        for (const TradeoffPoint& q : points) {
            if (dominates(q, p)) {
                keep = false;
                break;
            }
        }
        if (keep && i > 0 && sorted[i - 1].cost == p.cost &&
            sorted[i - 1].failure_probability == p.failure_probability) {
            keep = false;  // duplicate collapse
        }
        if (keep) front.push_back(p);
    }
    return front;
}

void expect_same(const std::vector<TradeoffPoint>& got, const std::vector<TradeoffPoint>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].cost, want[i].cost) << "point " << i;
        EXPECT_EQ(got[i].failure_probability, want[i].failure_probability) << "point " << i;
    }
}

TEST(Pareto, SweepMatchesBruteForceOnRandomInputs) {
    // A discrete value grid forces equal-cost and duplicate ties, the
    // cases where sweep and reference could plausibly diverge.
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> grid(0, 9);
    for (int round = 0; round < 200; ++round) {
        std::vector<TradeoffPoint> points;
        const int n = grid(rng) * 3;
        points.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            points.push_back(point(grid(rng), grid(rng) / 10.0));
        }
        expect_same(pareto_front(points), reference_front(points));
    }
}

TEST(Pareto, SweepHandlesEdgeCases) {
    EXPECT_TRUE(pareto_front({}).empty());
    const auto single = pareto_front({point(3, 0.5)});
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0].cost, 3);
    // All-identical points collapse to one.
    const auto dup = pareto_front({point(2, 0.4), point(2, 0.4), point(2, 0.4)});
    EXPECT_EQ(dup.size(), 1u);
    // A chain where every point is optimal survives whole.
    const auto chain = pareto_front({point(3, 0.1), point(1, 0.3), point(2, 0.2)});
    EXPECT_EQ(chain.size(), 3u);
}

TEST(Pareto, TrackerMatchesBatchFrontInAnyOrder) {
    // Feeding every point through insert() must land on exactly the
    // batch front, whatever the arrival order — the incremental tracker
    // is the anytime view of the same set.
    std::mt19937 rng(11);
    std::uniform_int_distribution<int> grid(0, 9);
    for (int round = 0; round < 200; ++round) {
        std::vector<TradeoffPoint> points;
        const int n = 1 + grid(rng) * 2;
        points.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            points.push_back(point(grid(rng), grid(rng) / 10.0));
        }
        ParetoTracker tracker;
        for (const TradeoffPoint& p : points) tracker.insert(p);
        expect_same(tracker.front(), pareto_front(points));
        EXPECT_EQ(tracker.offers(), static_cast<std::uint64_t>(n));
    }
}

TEST(Pareto, TrackerInsertReportsFrontChanges) {
    ParetoTracker tracker;
    EXPECT_TRUE(tracker.insert(point(5, 0.5)));   // first point always enters
    EXPECT_FALSE(tracker.insert(point(5, 0.5)));  // exact duplicate
    EXPECT_FALSE(tracker.insert(point(6, 0.6)));  // dominated
    EXPECT_TRUE(tracker.insert(point(6, 0.4)));   // extends the staircase
    EXPECT_TRUE(tracker.insert(point(4, 0.45)));  // cheaper, not dominated
    EXPECT_TRUE(tracker.insert(point(3, 0.3)));   // dominates 5/0.5, 6/0.4, 4/0.45
    ASSERT_EQ(tracker.front().size(), 1u);
    EXPECT_EQ(tracker.front()[0].cost, 3);
    EXPECT_EQ(tracker.updates(), 4u);
    EXPECT_EQ(tracker.offers(), 6u);

    tracker.clear();
    EXPECT_TRUE(tracker.front().empty());
    EXPECT_EQ(tracker.updates(), 0u);
    EXPECT_EQ(tracker.offers(), 0u);
}

TEST(Pareto, TrackerSharedAcrossThreadsConvergesToBatchFront) {
    // The tracker is internally synchronized so `asilkit serve` can
    // share one instance across concurrent searches.  Hammer it from
    // several threads, each inserting a disjoint slice of a fixed point
    // set; the final front must equal the batch front of the union —
    // the front is order-independent, so interleaving cannot change it.
    std::mt19937 rng(17);
    std::uniform_int_distribution<int> grid(0, 19);
    std::vector<TradeoffPoint> points;
    constexpr std::size_t kPoints = 800;
    points.reserve(kPoints);
    for (std::size_t i = 0; i < kPoints; ++i) {
        points.push_back(point(grid(rng), grid(rng) / 20.0));
    }

    ParetoTracker tracker;
    constexpr std::size_t kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = t; i < kPoints; i += kThreads) {
                tracker.insert(points[i]);
            }
        });
    }
    for (std::thread& th : threads) th.join();

    expect_same(tracker.front(), pareto_front(points));
    EXPECT_EQ(tracker.offers(), kPoints);
    EXPECT_EQ(tracker.front_size(), tracker.front().size());
}

TEST(Pareto, TrackerKeepsStaircaseInvariant) {
    // After any insertion sequence: costs strictly ascend, probabilities
    // strictly descend.
    std::mt19937 rng(13);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    ParetoTracker tracker;
    for (int i = 0; i < 500; ++i) {
        tracker.insert(point(uniform(rng) * 100.0, uniform(rng)));
        const auto& front = tracker.front();
        for (std::size_t j = 1; j < front.size(); ++j) {
            ASSERT_GT(front[j].cost, front[j - 1].cost);
            ASSERT_LT(front[j].failure_probability, front[j - 1].failure_probability);
        }
    }
}

}  // namespace
}  // namespace asilkit::explore

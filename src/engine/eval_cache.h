// Evaluation cache: structural-hash -> failure-probability memo.
//
// Candidate moves in steepest-descent mapping search overwhelmingly
// generate fault trees isomorphic to ones already scored (only one
// merge differs per candidate, and symmetric replicas produce
// identical trees), so the DSE loop re-derives the same exact BDD
// probability thousands of times.  This cache keys evaluations at two
// granularities (see engine.h): whole canonical trees
// (ftree::FaultTree::structural_hash() mixed with the mission time) and
// — when modularization is on — individual fault-tree modules
// (ftree::Module::subtree_hash, salted apart from tree keys).  Either
// way a hit returns a bitwise-identical probability without touching
// the BDD layer.
//
// Bounded FIFO eviction keeps memory flat on long explorations; a
// cached value is always exactly what a fresh evaluation would compute,
// so eviction affects speed, never results.  Thread-safe: lookups and
// inserts take a mutex, which is negligible next to a fault-tree->BDD
// compilation and keeps worker-owned BDD managers lock-free where it
// matters.
//
// The hit/miss/eviction ledger lives in the process-global obs metrics
// registry ("engine.cache.*"), so `asilkit stats` and --metrics
// snapshots see cache behaviour without extra plumbing.  Stats() stays
// a per-instance view: each cache remembers the registry values at
// construction (and at clear()) and reports the delta — exact whenever
// one cache is active at a time, which every search/exploration flow
// guarantees (one engine per search).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "core/sync.h"
#include "obs/metrics.h"

namespace asilkit::engine {

/// The BDD-derived quantities of one evaluation (everything
/// analysis::ProbabilityResult cannot recompute cheaply from the tree).
/// An entry describes either a whole tree (modules = module count) or a
/// single module (modules = 1, fields cover the local region only).
struct EvalValue {
    double failure_probability = 0.0;
    std::size_t bdd_nodes = 0;
    std::size_t bdd_total_nodes = 0;
    std::size_t variables = 0;
    std::size_t modules = 1;
};

class EvalCache {
public:
    /// `capacity` bounds the number of cached evaluations; 0 disables
    /// the cache entirely (every lookup misses, inserts are dropped).
    explicit EvalCache(std::size_t capacity);

    [[nodiscard]] std::optional<EvalValue> lookup(std::uint64_t key);

    /// Inserting an existing key overwrites (the value is identical by
    /// construction — concurrent workers may race on the same miss).
    void insert(std::uint64_t key, const EvalValue& value);

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t size = 0;
        std::size_t capacity = 0;

        [[nodiscard]] double hit_rate() const noexcept {
            const std::uint64_t total = hits + misses;
            return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
        }
    };
    [[nodiscard]] Stats stats() const;

    void clear();

private:
    std::size_t capacity_;  ///< immutable after construction: read lock-free
    mutable core::Mutex mutex_;
    std::unordered_map<std::uint64_t, EvalValue> map_ GUARDED_BY(mutex_);
    /// Insertion order, oldest first.
    std::deque<std::uint64_t> fifo_ GUARDED_BY(mutex_);
    // Registry-backed counters ("engine.cache.hits" etc.) plus the
    // registry values captured at construction/clear(); stats() reports
    // the delta so per-instance accounting stays exact.  The counters
    // are process-global atomics (unguarded by design); the snapshot
    // bases move only under mutex_.
    obs::Counter& hits_;
    obs::Counter& misses_;
    obs::Counter& evictions_;
    std::uint64_t hits_base_ GUARDED_BY(mutex_) = 0;
    std::uint64_t misses_base_ GUARDED_BY(mutex_) = 0;
    std::uint64_t evictions_base_ GUARDED_BY(mutex_) = 0;
};

}  // namespace asilkit::engine


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/asilkit_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/asilkit_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/dot.cpp" "src/io/CMakeFiles/asilkit_io.dir/dot.cpp.o" "gcc" "src/io/CMakeFiles/asilkit_io.dir/dot.cpp.o.d"
  "/root/repo/src/io/graphml.cpp" "src/io/CMakeFiles/asilkit_io.dir/graphml.cpp.o" "gcc" "src/io/CMakeFiles/asilkit_io.dir/graphml.cpp.o.d"
  "/root/repo/src/io/json.cpp" "src/io/CMakeFiles/asilkit_io.dir/json.cpp.o" "gcc" "src/io/CMakeFiles/asilkit_io.dir/json.cpp.o.d"
  "/root/repo/src/io/model_diff.cpp" "src/io/CMakeFiles/asilkit_io.dir/model_diff.cpp.o" "gcc" "src/io/CMakeFiles/asilkit_io.dir/model_diff.cpp.o.d"
  "/root/repo/src/io/model_json.cpp" "src/io/CMakeFiles/asilkit_io.dir/model_json.cpp.o" "gcc" "src/io/CMakeFiles/asilkit_io.dir/model_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/asilkit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ftree/CMakeFiles/asilkit_ftree.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asilkit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

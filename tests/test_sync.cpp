// Runtime semantics of the annotated sync primitives (core/sync.h) and
// stress coverage for the ThreadPool lifecycle they guard.  The
// COMPILE-TIME half of the contract — that a GUARDED_BY violation fails
// the build — is exercised by the Clang-gated negative-compile ctest
// cases (see tests/negative/ and tests/CMakeLists.txt); these tests pin
// down that the wrappers still behave exactly like the std primitives
// they veneer.
#include "core/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/thread_pool.h"

namespace asilkit {
namespace {

TEST(SyncMutex, TryLockReflectsOwnership) {
    core::Mutex mu;
    ASSERT_TRUE(mu.try_lock());
    // A second owner must be refused while the lock is held (probe from
    // another thread: relocking a std::mutex on the same thread is UB).
    bool other_got_it = true;
    std::thread probe([&] { other_got_it = mu.try_lock(); });
    probe.join();
    EXPECT_FALSE(other_got_it);
    mu.unlock();

    std::thread again([&] {
        other_got_it = mu.try_lock();
        if (other_got_it) mu.unlock();
    });
    again.join();
    EXPECT_TRUE(other_got_it);
}

TEST(SyncMutex, MutexLockProvidesMutualExclusion) {
    core::Mutex mu;
    std::size_t counter = 0;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIncrements = 2000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::size_t i = 0; i < kIncrements; ++i) {
                const core::MutexLock lock(mu);
                ++counter;
            }
        });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncSharedMutex, WriterExcludesReadersAndWriters) {
    core::SharedMutex mu;
    mu.lock();
    bool got_shared = true;
    bool got_exclusive = true;
    std::thread probe([&] {
        got_shared = mu.try_lock_shared();
        if (got_shared) mu.unlock_shared();
        got_exclusive = mu.try_lock();
        if (got_exclusive) mu.unlock();
    });
    probe.join();
    EXPECT_FALSE(got_shared);
    EXPECT_FALSE(got_exclusive);
    mu.unlock();
}

TEST(SyncSharedMutex, ReadersShareButExcludeWriters) {
    core::SharedMutex mu;
    const core::ReaderMutexLock reader(mu);
    bool got_shared = false;
    bool got_exclusive = true;
    std::thread probe([&] {
        got_shared = mu.try_lock_shared();
        if (got_shared) mu.unlock_shared();
        got_exclusive = mu.try_lock();
        if (got_exclusive) mu.unlock();
    });
    probe.join();
    EXPECT_TRUE(got_shared);
    EXPECT_FALSE(got_exclusive);
}

TEST(SyncSharedMutex, SharedMutexLockIsExclusive) {
    core::SharedMutex mu;
    const core::SharedMutexLock writer(mu);
    bool got_shared = true;
    std::thread probe([&] {
        got_shared = mu.try_lock_shared();
        if (got_shared) mu.unlock_shared();
    });
    probe.join();
    EXPECT_FALSE(got_shared);
}

TEST(SyncCondVar, WaitReleasesAndReacquiresTheMutex) {
    // Producer/consumer through the annotated CondVar: the consumer
    // waits with the explicit-loop convention, the producer flips the
    // flag under the mutex.  If wait() failed to release `mu` the
    // producer would deadlock; if it failed to re-acquire, the guarded
    // read after wake would race (TSan job covers that half).
    core::Mutex mu;
    core::CondVar cv;
    bool ready = false;
    int payload = 0;

    std::thread consumer([&] {
        mu.lock();
        while (!ready) cv.wait(mu);
        const int seen = payload;
        mu.unlock();
        EXPECT_EQ(seen, 42);
    });

    {
        const core::MutexLock lock(mu);
        payload = 42;
        ready = true;
    }
    cv.notify_one();
    consumer.join();
}

TEST(SyncCondVar, NotifyAllWakesEveryWaiter) {
    core::Mutex mu;
    core::CondVar cv;
    bool go = false;
    std::atomic<int> awake{0};

    constexpr int kWaiters = 4;
    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int i = 0; i < kWaiters; ++i) {
        waiters.emplace_back([&] {
            mu.lock();
            while (!go) cv.wait(mu);
            mu.unlock();
            awake.fetch_add(1, std::memory_order_relaxed);
        });
    }
    {
        const core::MutexLock lock(mu);
        go = true;
    }
    cv.notify_all();
    for (std::thread& th : waiters) th.join();
    EXPECT_EQ(awake.load(), kWaiters);
}

TEST(SyncCondVar, WaitForTimesOutWhenNeverNotified) {
    core::Mutex mu;
    core::CondVar cv;
    mu.lock();
    const auto before = std::chrono::steady_clock::now();
    const bool notified = cv.wait_for(mu, std::chrono::milliseconds(10));
    const auto elapsed = std::chrono::steady_clock::now() - before;
    mu.unlock();
    EXPECT_FALSE(notified);
    EXPECT_GE(elapsed, std::chrono::milliseconds(10));
}

TEST(SyncCondVar, WaitForWakesOnNotify) {
    // The obs sampler's tick loop: a long timed wait cut short by
    // notify (its stop path).  Loop on the predicate — wait_for may
    // also report spurious wakeups as true.
    core::Mutex mu;
    core::CondVar cv;
    bool stop = false;

    const auto before = std::chrono::steady_clock::now();
    std::thread waiter([&] {
        mu.lock();
        while (!stop) (void)cv.wait_for(mu, std::chrono::seconds(60));
        mu.unlock();
    });

    {
        const core::MutexLock lock(mu);
        stop = true;
    }
    cv.notify_one();
    waiter.join();
    // Woken by the notify, not by the 60 s timeout expiring.
    EXPECT_LT(std::chrono::steady_clock::now() - before, std::chrono::seconds(30));
}

// ---- ThreadPool lifecycle under the annotated lock discipline ----

class ThreadPoolStress : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadPoolStress, RepeatedBatchesCoverEveryIndexExactlyOnce) {
    engine::ThreadPool pool(GetParam());
    constexpr std::size_t kCount = 257;  // not a multiple of any thread count
    for (int round = 0; round < 50; ++round) {
        std::vector<std::atomic<int>> hits(kCount);
        for (auto& h : hits) h.store(0, std::memory_order_relaxed);
        pool.parallel_for(kCount, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kCount; ++i) {
            ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
        }
    }
}

TEST_P(ThreadPoolStress, ExceptionDrainsBatchAndPoolStaysUsable) {
    engine::ThreadPool pool(GetParam());
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> executed{0};
        constexpr std::size_t kCount = 101;
        try {
            pool.parallel_for(kCount, [&](std::size_t i) {
                executed.fetch_add(1, std::memory_order_relaxed);
                if (i == 37) throw std::runtime_error("task 37 failed");
            });
            FAIL() << "parallel_for must rethrow the task exception";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "task 37 failed");
        }
        // The contract: the batch drains fully even when a task throws,
        // so no index is silently skipped.
        EXPECT_EQ(executed.load(), kCount);

        // And the pool must remain usable for the next batch.
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(10, [&](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 45u);
    }
}

TEST_P(ThreadPoolStress, ImmediateDestructionAfterWorkIsClean) {
    // Construct, run one batch, destroy — repeatedly.  Exercises the
    // startup/shutdown handshake (stopping_ + wake_workers_ broadcast)
    // that the annotations now verify statically.
    for (int round = 0; round < 25; ++round) {
        engine::ThreadPool pool(GetParam());
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(16, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 136u);
    }
}

TEST_P(ThreadPoolStress, DestructionWithoutAnyBatchIsClean) {
    for (int round = 0; round < 25; ++round) {
        const engine::ThreadPool pool(GetParam());
        EXPECT_GE(pool.thread_count(), 1u);
    }
}

TEST_P(ThreadPoolStress, EmptyBatchCompletesImmediately) {
    engine::ThreadPool pool(GetParam());
    bool ran = false;
    pool.parallel_for(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolStress, ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                             return "t" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace asilkit

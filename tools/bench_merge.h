// Merge logic behind tools/bench_to_json, factored out so the tests can
// drive it directly (tests/test_bench_merge.cpp) without spawning the
// tool.
//
// The tracked BENCH_*.json files accumulate over re-runs, so every
// merge here is REPLACE-by-key, newest input wins:
//   * benchmarks merge by "name" — a re-run of the same benchmark
//     replaces the stale entry in place (original position kept, so
//     diffs stay small); unseen names append in input order,
//   * metrics summaries merge key-wise — a newer snapshot replaces the
//     gauges it reports and leaves keys only the older run had,
//   * an existing output file acts as the base, letting partial re-runs
//     refresh a subset of a tracked file.
#pragma once

#include <string>

#include "io/json.h"

namespace asilkit::bench {

// google-benchmark reports real_time in the unit named by "time_unit".
inline double to_nanoseconds(double value, const std::string& unit) {
    if (unit == "ns") return value;
    if (unit == "us") return value * 1e3;
    if (unit == "ms") return value * 1e6;
    if (unit == "s") return value * 1e9;
    return value;
}

/// One raw google-benchmark document -> array of compact entries
/// ({"name", "ns_per_op", "cache_hit_rate", extras...}); repetition
/// aggregates ("_mean" etc.) are skipped so re-runs diff cleanly.
inline io::Json compact_benchmarks(const io::Json& raw) {
    io::Json benchmarks = io::Json::array();
    for (const io::Json& b : raw.at("benchmarks").as_array()) {
        if (b.contains("run_type") && b.at("run_type").as_string() != "iteration") {
            continue;
        }
        io::Json entry = io::Json::object();
        entry["name"] = b.at("name").as_string();
        entry["ns_per_op"] =
            to_nanoseconds(b.at("real_time").as_number(), b.at("time_unit").as_string());
        entry["cache_hit_rate"] =
            b.contains("cache_hit_rate") ? b.at("cache_hit_rate").as_number() : 0.0;
        if (b.contains("evals")) entry["evals"] = b.at("evals").as_number();
        if (b.contains("engine_threads")) {
            entry["engine_threads"] = b.at("engine_threads").as_number();
        }
        // Lint pre-filter counters (bench_lint) and persistent-
        // compilation counters (bench_bdd_compile).
        for (const char* key : {"findings", "rejects_per_sec", "lint_rejections",
                                "memo_hit_rate", "gc_freed_nodes", "batch_lanes"}) {
            if (b.contains(key)) entry[key] = b.at(key).as_number();
        }
        benchmarks.push_back(std::move(entry));
    }
    return benchmarks;
}

/// Merges `update` entries into the `base` benchmark array by "name":
/// an entry whose name already exists replaces that entry in place;
/// new names append in update order.
inline void merge_benchmarks(io::Json& base, const io::Json& update) {
    io::JsonArray& entries = base.as_array();
    for (const io::Json& fresh : update.as_array()) {
        const std::string& name = fresh.at("name").as_string();
        bool replaced = false;
        for (io::Json& existing : entries) {
            if (existing.at("name").as_string() == name) {
                existing = fresh;
                replaced = true;
                break;
            }
        }
        if (!replaced) entries.push_back(fresh);
    }
}

/// Selected gauges/counters of an obs metrics snapshot, folded into the
/// tracked bench file.  Missing ids simply drop the derived field.
inline io::Json metrics_summary(const io::Json& snapshot) {
    io::Json summary = io::Json::object();
    if (snapshot.contains("gauges")) {
        const io::Json& gauges = snapshot.at("gauges");
        if (gauges.contains("bdd.node_high_water")) {
            summary["bdd_node_high_water"] = gauges.at("bdd.node_high_water").as_number();
        }
    }
    if (snapshot.contains("counters")) {
        const io::Json& counters = snapshot.at("counters");
        if (counters.contains("bdd.apply_hits") && counters.contains("bdd.apply_lookups")) {
            const double lookups = counters.at("bdd.apply_lookups").as_number();
            if (lookups > 0) {
                summary["bdd_apply_hit_rate"] =
                    counters.at("bdd.apply_hits").as_number() / lookups;
            }
        }
        if (counters.contains("engine.cache.hits") &&
            counters.contains("engine.cache.misses")) {
            const double total = counters.at("engine.cache.hits").as_number() +
                                 counters.at("engine.cache.misses").as_number();
            if (total > 0) {
                summary["engine_cache_hit_rate"] =
                    counters.at("engine.cache.hits").as_number() / total;
            }
        }
    }
    return summary;
}

/// Key-wise merge of two metrics summaries: `update` replaces the keys
/// it has values for; keys only `base` knows survive.
inline void merge_metrics(io::Json& base, const io::Json& update) {
    for (const auto& [key, value] : update.as_object()) {
        base[key] = value;
    }
}

/// Compact summary of a sampler TimeSeriesSnapshot JSON (as written by
/// `--sample-out`): tick/series counts plus the last sampled value of
/// each series — enough to track telemetry coverage without committing
/// full rings to the repo.
inline io::Json timeseries_summary(const io::Json& ts) {
    io::Json summary = io::Json::object();
    summary["ticks"] = ts.at("ticks").as_number();
    summary["period_ms"] = ts.at("period_ms").as_number();
    io::Json last = io::Json::object();
    for (const io::Json& series : ts.at("series").as_array()) {
        const io::JsonArray& points = series.at("points").as_array();
        if (points.empty()) continue;
        last[series.at("id").as_string()] = points.back().as_array()[1];
    }
    summary["series"] = static_cast<std::uint64_t>(last.as_object().size());
    summary["last"] = std::move(last);
    return summary;
}

}  // namespace asilkit::bench

// The Expand() transformation (paper Section VII-A, Fig. 5).
//
// Expand(n) substitutes application node n with a redundant block:
//
//            +--> c_in_1 --> n_1 --> c_out_1 --+
//   p --> s -+                                 +-> m --> q
//            +--> c_in_2 --> n_2 --> c_out_2 --+
//
// A splitter is added per input edge and a merger per output edge; each
// branch holds one replica of n connected through fresh communication
// nodes (for a 1-input/1-output functional node that is 7 extra nodes).
// Expanding a COMMUNICATION node differs slightly: each branch carries a
// single communication node, and new communication nodes are inserted
// between the neighbours and the splitter/merger.
//
// The replicas receive decomposed ASIL tags X(Y) chosen from the Fig. 2
// catalogue by the configured strategy; splitters and mergers keep the
// original level Y (they manage the redundancy, so the full requirement
// applies to them).  Resources: every new node gets a dedicated new
// resource of the matching kind and level ("one new resource per new
// application node", the paper's pre-mapping-optimisation assumption),
// and each branch's resources are placed at a fresh (or caller-provided)
// location so the branches stay CCF-independent.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/decomposition.h"
#include "model/architecture.h"

namespace asilkit::transform {

struct ExpandOptions {
    DecompositionStrategy strategy = DecompositionStrategy::BB;
    /// Number of redundant branches (>= 2).  The ISO catalogue is two-way;
    /// more branches are produced by repeated application: the strongest
    /// branch level so far is decomposed again, so e.g. BB on an ASIL D
    /// node with branches=3 yields levels {B, A, A}  (D -> B+B, B -> A+A),
    /// and the sum rule of Eq. 4 still covers the original level.
    std::size_t branches = 2;
    /// Level assigned to the new splitters/mergers; defaults to the
    /// expanded node's original level.
    std::optional<Asil> splitter_merger_asil;
    /// Uniform draws in [0,1) consumed by the RND strategy (one per
    /// two-way split, so branches-1 values are used; missing entries
    /// default to 0).  Callers own the random stream so explorations stay
    /// deterministic.
    std::vector<double> rng_draws;
    /// Locations for the branches' new resources; when empty, fresh
    /// locations named after the node are created.  Size must be 0 or
    /// `branches`.
    std::vector<LocationId> branch_locations;
    /// Location for the new splitter/merger resources; invalid -> the
    /// expanded node's first location, or a fresh one.
    LocationId management_location;

    /// Convenience for the common single-draw case.
    void set_rng_draw(double draw) { rng_draws.assign(1, draw); }
};

/// The branch ASIL levels the strategy produces for `parent` with the
/// given branch count (descending order), by repeated two-way splitting
/// of the strongest branch.  Exposed for tests and the advisor.
[[nodiscard]] std::vector<Asil> branch_levels(Asil parent, DecompositionStrategy strategy,
                                              std::size_t branches,
                                              std::span<const double> rng_draws = {});

struct ExpandResult {
    DecompositionPattern pattern;          ///< the first Fig. 2 pattern applied
    std::vector<Asil> branch_levels;       ///< assigned level per branch
    std::vector<NodeId> splitters;         ///< one per original input edge
    std::vector<NodeId> mergers;           ///< one per original output edge
    std::vector<std::vector<NodeId>> branches;  ///< all nodes of each branch
    std::vector<NodeId> replicas;          ///< the n_1 / n_2 replica nodes
    std::size_t nodes_added = 0;           ///< net growth of the app graph
};

/// Replaces `node` with a redundant block of `options.branches` parallel
/// branches.  Preconditions: `node` is Functional or Communication, has
/// >=1 input and >=1 output, and its level is decomposable (not QM).
/// Throws TransformError.
ExpandResult expand(ArchitectureModel& m, NodeId node, const ExpandOptions& options = {});

}  // namespace asilkit::transform

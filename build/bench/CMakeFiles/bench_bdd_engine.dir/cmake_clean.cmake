file(REMOVE_RECURSE
  "CMakeFiles/bench_bdd_engine.dir/bench_bdd_engine.cpp.o"
  "CMakeFiles/bench_bdd_engine.dir/bench_bdd_engine.cpp.o.d"
  "bench_bdd_engine"
  "bench_bdd_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bdd_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Structural and safety validation of an architecture model.
//
// Validation is advisory: it returns a report instead of throwing, because
// intermediate states during a transformation sequence are allowed to be
// imperfect (e.g. before mapping optimisation), and because several checks
// are warnings by the paper's own reading (an under-implemented ASIL is a
// design smell the explorer visualises, not a programming error).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "model/architecture.h"

namespace asilkit {

enum class IssueSeverity : std::uint8_t { Warning, Error };

enum class IssueCode : std::uint8_t {
    UnmappedNode,          ///< application node with no resource
    IncompatibleMapping,   ///< node kind cannot run on resource kind
    UnderImplementedAsil,  ///< effective ASIL below the requirement level
    UnplacedResource,      ///< resource with no physical location
    BadSplitterDegree,     ///< splitter without >=1 input and >=2 outputs
    BadMergerDegree,       ///< merger without >=2 inputs and >=1 output
    IllFormedBlock,        ///< redundant block structure broken
    InvalidDecomposition,  ///< block ASIL sum below the inherited level
    UnreachableActuator,   ///< actuator not fed by any sensor
    DanglingSensor,        ///< sensor with no path to any actuator
};

[[nodiscard]] std::string_view to_string(IssueCode c) noexcept;
[[nodiscard]] std::string_view to_string(IssueSeverity s) noexcept;

struct ValidationIssue {
    IssueSeverity severity = IssueSeverity::Warning;
    IssueCode code = IssueCode::UnmappedNode;
    std::string message;
};

std::ostream& operator<<(std::ostream& os, const ValidationIssue& issue);

struct ValidationReport {
    std::vector<ValidationIssue> issues;

    [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
    [[nodiscard]] std::size_t error_count() const noexcept;
    [[nodiscard]] std::size_t warning_count() const noexcept;
    [[nodiscard]] bool has(IssueCode c) const noexcept;
};

/// Runs every check; see IssueCode for the list.
[[nodiscard]] ValidationReport validate(const ArchitectureModel& m);

/// Throws ModelError with a combined message if validate() reports errors.
void validate_or_throw(const ArchitectureModel& m);

}  // namespace asilkit

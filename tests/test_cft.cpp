// Component fault trees: fragment assembly, dirty tracking and the
// incremental builder's exactness contract (docs/ftree.md).
#include "ftree/cft.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ftree/builder.h"
#include "ftree/modules.h"
#include "model/architecture.h"
#include "scenarios/ecotwin.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::ftree {
namespace {

/// Bitwise arena equality: same events (names, rates, indices), same
/// gates (names, kinds, child lists), same top.  Stricter than
/// isomorphism on purpose — the exactness contract promises the
/// incremental path produces the *identical* tree, not an equivalent
/// one.
void expect_identical_trees(const FaultTree& a, const FaultTree& b) {
    ASSERT_EQ(a.basic_events().size(), b.basic_events().size());
    for (std::size_t i = 0; i < a.basic_events().size(); ++i) {
        EXPECT_EQ(a.basic_events()[i].name, b.basic_events()[i].name) << i;
        EXPECT_EQ(a.basic_events()[i].lambda, b.basic_events()[i].lambda) << i;
    }
    ASSERT_EQ(a.gates().size(), b.gates().size());
    for (std::size_t i = 0; i < a.gates().size(); ++i) {
        EXPECT_EQ(a.gates()[i].name, b.gates()[i].name) << i;
        EXPECT_EQ(a.gates()[i].kind, b.gates()[i].kind) << i;
        EXPECT_EQ(a.gates()[i].children, b.gates()[i].children) << i;
    }
    ASSERT_EQ(a.has_top(), b.has_top());
    if (a.has_top()) EXPECT_TRUE(a.top() == b.top());
}

void expect_assembly_matches(const ArchitectureModel& m, const FtBuildOptions& options) {
    std::unordered_map<std::uint32_t, ComponentFragment> fragments;
    for (const NodeId n : m.app().node_ids()) {
        fragments.emplace(n.value(), build_fragment(m, n, options));
    }
    const FtBuildResult assembled = assemble_fault_tree(
        m, options, [&](NodeId n) { return &fragments.at(n.value()); });
    const FtBuildResult full = build_fault_tree(m, options);

    expect_identical_trees(assembled.tree, full.tree);
    EXPECT_EQ(assembled.warnings, full.warnings);
    EXPECT_EQ(assembled.approximated_blocks, full.approximated_blocks);
    EXPECT_EQ(assembled.cycles_cut, full.cycles_cut);
}

TEST(ComponentFragments, AssemblyIsBitwiseIdenticalToFullBuild) {
    std::vector<ArchitectureModel> models;
    models.push_back(scenarios::fig3_camera_gps_fusion());
    models.push_back(scenarios::fig3_with_shared_ecu_ccf());
    models.push_back(scenarios::ecotwin_lateral_control());
    {
        ArchitectureModel expanded = scenarios::ecotwin_lateral_control();
        transform::expand(expanded, expanded.find_app_node("lateral_control"));
        models.push_back(std::move(expanded));
    }
    models.push_back(scenarios::chain_1in_2out());

    for (const ArchitectureModel& m : models) {
        for (const bool approximate : {false, true}) {
            for (const bool locations : {false, true}) {
                FtBuildOptions options;
                options.approximate = approximate;
                options.include_location_events = locations;
                SCOPED_TRACE(m.name() + (approximate ? " approx" : " exact") +
                             (locations ? " +loc" : " -loc"));
                expect_assembly_matches(m, options);
            }
        }
    }
}

TEST(ComponentFragments, NoResourceWarningSurvivesAssembly) {
    ArchitectureModel m("unmapped");
    const LocationId zone = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s = m.add_node_with_dedicated_resource(
        {"sens", NodeKind::Sensor, AsilTag{Asil::B}, {}}, zone);
    const NodeId a = m.add_node_with_dedicated_resource(
        {"act", NodeKind::Actuator, AsilTag{Asil::B}, {}}, zone);
    const NodeId orphan = m.add_app_node({"orphan", NodeKind::Functional, AsilTag{Asil::B}, {}});
    m.connect_app(s, orphan);
    m.connect_app(orphan, a);
    expect_assembly_matches(m, {});
}

TEST(ComponentFragments, FragmentKeyIgnoresUnrelatedEdits) {
    ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const FtBuildOptions options;
    const NodeId sensor = m.find_app_node("camera");
    const std::uint64_t before = fragment_key(m, sensor, options);

    // An edit elsewhere in the model must not move this node's key.
    ArchitectureModel other = m;
    const ResourceId act_hw = other.find_resource("steering_actuator_hw");
    ASSERT_TRUE(act_hw.valid());
    other.resources().node(act_hw).lambda_override = 4.2e-9;
    EXPECT_EQ(fragment_key(other, sensor, options), before);

    // An edit to its own resource must.
    ArchitectureModel own = m;
    const ResourceId cam_hw = own.mapped_resources(sensor).front();
    own.resources().node(cam_hw).lambda_override = 4.2e-9;
    EXPECT_NE(fragment_key(own, sensor, options), before);
}

std::vector<std::uint32_t> sorted_values(std::vector<NodeId> ids) {
    std::vector<std::uint32_t> out;
    out.reserve(ids.size());
    for (const NodeId n : ids) out.push_back(n.value());
    std::sort(out.begin(), out.end());
    return out;
}

// Satellite: rate, ASIL and connectivity edits each dirty exactly the
// expected fragment set — no over-, no under-invalidation.
TEST(DirtyFragments, RateEditDirtiesExactlyTheHostedNodes) {
    const ArchitectureModel before = scenarios::ecotwin_lateral_control();
    ArchitectureModel after = before;
    const ResourceId r = after.find_resource("lateral_control_hw");
    ASSERT_TRUE(r.valid());
    after.resources().node(r).lambda_override = 7.5e-8;
    EXPECT_EQ(sorted_values(dirty_fragments(before, after, {})),
              sorted_values(after.nodes_on_resource(r)));
    EXPECT_FALSE(after.nodes_on_resource(r).empty());
}

TEST(DirtyFragments, ResourceAsilEditDirtiesExactlyTheHostedNodes) {
    // ASIL readiness selects the Table-I decade, so raising it changes
    // the hosted nodes' intrinsic rates — and nothing else.
    const ArchitectureModel before = scenarios::ecotwin_lateral_control();
    ArchitectureModel after = before;
    const ResourceId r = after.find_resource("world_model_hw");
    ASSERT_TRUE(r.valid());
    after.resources().node(r).asil = Asil::B;
    EXPECT_EQ(sorted_values(dirty_fragments(before, after, {})),
              sorted_values(after.nodes_on_resource(r)));
}

TEST(DirtyFragments, NodeAsilEditDirtiesExactlyThatNode) {
    const ArchitectureModel before = scenarios::ecotwin_lateral_control();
    ArchitectureModel after = before;
    const NodeId n = after.find_app_node("lateral_control");
    after.app().node(n).asil = AsilTag{Asil::B};
    EXPECT_EQ(sorted_values(dirty_fragments(before, after, {})),
              sorted_values({n}));
}

TEST(DirtyFragments, ConnectivityEditDirtiesExactlyTheSink) {
    // A new channel changes only the sink's inport wiring: its failure
    // gate gains an input, every other fragment is untouched.
    const ArchitectureModel before = scenarios::ecotwin_lateral_control();
    ArchitectureModel after = before;
    const NodeId from = after.find_app_node("camera");
    const NodeId to = after.find_app_node("lateral_control");
    after.connect_app(from, to);
    EXPECT_EQ(sorted_values(dirty_fragments(before, after, {})),
              sorted_values({to}));
}

TEST(DirtyFragments, MappingEditDirtiesExactlyTheRemappedNode) {
    const ArchitectureModel before = scenarios::ecotwin_lateral_control();
    ArchitectureModel after = before;
    const NodeId n = after.find_app_node("lateral_control");
    const ResourceId extra = after.find_resource("world_model_hw");
    ASSERT_TRUE(extra.valid());
    after.map_node(n, extra);
    EXPECT_EQ(sorted_values(dirty_fragments(before, after, {})),
              sorted_values({n}));
}

TEST(DirtyFragments, ErasedNodeCountsAsDirty) {
    const ArchitectureModel before = scenarios::chain_1in_2out();
    ArchitectureModel after = before;
    const NodeId n = after.find_app_node("n");
    after.erase_app_node(n, /*drop_dedicated_resources=*/true);
    const std::vector<std::uint32_t> dirty =
        sorted_values(dirty_fragments(before, after, {}));
    EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(), n.value()));
}

TEST(DirtyFragments, IdenticalModelsAreClean) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    EXPECT_TRUE(dirty_fragments(m, m, {}).empty());
}

/// Full-rebuild reference for one model: canonical tree + hashes +
/// module hashes.
struct Reference {
    FaultTree canonical;
    std::uint64_t structural = 0;
    std::uint64_t shape = 0;
    std::vector<std::uint64_t> module_hashes;
};

Reference reference_of(const ArchitectureModel& m, const FtBuildOptions& options) {
    Reference ref;
    ref.canonical = canonical_form(build_fault_tree(m, options).tree);
    ref.structural = ref.canonical.structural_hash();
    ref.shape = ref.canonical.shape_hash();
    for (const Module& mod : find_modules(ref.canonical).modules) {
        ref.module_hashes.push_back(mod.subtree_hash);
    }
    return ref;
}

void expect_matches_reference(const IncrementalTreeBuilder::Prepared& prep,
                              const Reference& ref) {
    ASSERT_NE(prep.canonical, nullptr);
    ASSERT_NE(prep.modules, nullptr);
    expect_identical_trees(*prep.canonical, ref.canonical);
    EXPECT_EQ(prep.structural_hash, ref.structural);
    EXPECT_EQ(prep.shape_hash, ref.shape);
    std::vector<std::uint64_t> module_hashes;
    for (const Module& mod : prep.modules->modules) module_hashes.push_back(mod.subtree_hash);
    EXPECT_EQ(module_hashes, ref.module_hashes);
}

TEST(IncrementalTreeBuilder, TracksEditsAndStaysExact) {
    FtBuildOptions options;
    IncrementalTreeBuilder builder;

    ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const std::size_t nodes = m.app().node_ids().size();

    // Cold start: every fragment is built once.
    expect_matches_reference(builder.prepare(m, options), reference_of(m, options));
    EXPECT_EQ(builder.last_pass().fragments_built, nodes);
    EXPECT_EQ(builder.last_pass().fragments_reused, 0u);
    EXPECT_FALSE(builder.last_pass().memo_hit);

    // Rate edit: only the hosted fragments regenerate.
    const ResourceId r = m.find_resource("lateral_control_hw");
    ASSERT_TRUE(r.valid());
    m.resources().node(r).lambda_override = 7.5e-8;
    expect_matches_reference(builder.prepare(m, options), reference_of(m, options));
    EXPECT_EQ(builder.last_pass().fragments_built, m.nodes_on_resource(r).size());
    EXPECT_EQ(builder.last_pass().fragments_reused,
              nodes - m.nodes_on_resource(r).size());
    EXPECT_FALSE(builder.last_pass().memo_hit);

    // Connectivity edit: only the sink regenerates.
    m.connect_app(m.find_app_node("camera"), m.find_app_node("lateral_control"));
    expect_matches_reference(builder.prepare(m, options), reference_of(m, options));
    EXPECT_EQ(builder.last_pass().fragments_built, 1u);
    EXPECT_EQ(builder.last_pass().fragments_reused, nodes - 1);
}

TEST(IncrementalTreeBuilder, RevisitedCompositionHitsTheMemo) {
    FtBuildOptions options;
    IncrementalTreeBuilder builder;

    // A -> B -> A: the walk of a search that tries a move, tries
    // another, and re-scores the first — the steady state the memo
    // exists for.
    ArchitectureModel a = scenarios::ecotwin_lateral_control();
    ArchitectureModel b = a;
    b.resources().node(b.find_resource("lateral_control_hw")).lambda_override = 7.5e-8;

    const IncrementalTreeBuilder::Prepared first = builder.prepare(a, options);
    EXPECT_FALSE(builder.last_pass().memo_hit);
    (void)builder.prepare(b, options);
    EXPECT_FALSE(builder.last_pass().memo_hit);

    const IncrementalTreeBuilder::Prepared again = builder.prepare(a, options);
    EXPECT_TRUE(builder.last_pass().memo_hit);
    EXPECT_EQ(builder.last_pass().fragments_built, 0u);
    EXPECT_EQ(builder.last_pass().fragments_reused, a.app().node_ids().size());
    // The memo serves the same immutable tree by reference.
    EXPECT_EQ(again.canonical.get(), first.canonical.get());
    EXPECT_EQ(again.modules.get(), first.modules.get());
    expect_matches_reference(again, reference_of(a, options));
}

TEST(IncrementalTreeBuilder, DistinctOptionsNeverShareMemoEntries) {
    IncrementalTreeBuilder builder;
    ArchitectureModel m = scenarios::fig3_camera_gps_fusion();

    FtBuildOptions exact;
    FtBuildOptions approx;
    approx.approximate = true;

    (void)builder.prepare(m, exact);
    const IncrementalTreeBuilder::Prepared a = builder.prepare(m, approx);
    EXPECT_FALSE(builder.last_pass().memo_hit);
    expect_matches_reference(a, reference_of(m, approx));
    const IncrementalTreeBuilder::Prepared e = builder.prepare(m, exact);
    EXPECT_TRUE(builder.last_pass().memo_hit);
    expect_matches_reference(e, reference_of(m, exact));
}

/// The same entangled-sharing model built under a node/edge declaration
/// permutation.  Two shared ECUs carry the SAME Table-I rate and the
/// SAME reference count, so only the context refinement in
/// canonical_form can order their events deterministically — the
/// regression the shuffled build pins down.
ArchitectureModel entangled(bool shuffled) {
    ArchitectureModel m(shuffled ? "entangled-shuffled" : "entangled");
    const LocationId zone = m.add_location({"zone", kDefaultLocationLambda, {}});

    AppNode sens{"sens", NodeKind::Sensor, AsilTag{Asil::B}, {}};
    AppNode f1{"f1", NodeKind::Functional, AsilTag{Asil::B}, {}};
    AppNode f2{"f2", NodeKind::Functional, AsilTag{Asil::B}, {}};
    AppNode f3{"f3", NodeKind::Functional, AsilTag{Asil::B}, {}};
    AppNode act{"act", NodeKind::Actuator, AsilTag{Asil::B}, {}};

    NodeId n_sens, n_f1, n_f2, n_f3, n_act;
    if (shuffled) {
        n_act = m.add_app_node(act);
        n_f3 = m.add_app_node(f3);
        n_f1 = m.add_app_node(f1);
        n_sens = m.add_app_node(sens);
        n_f2 = m.add_app_node(f2);
    } else {
        n_sens = m.add_app_node(sens);
        n_f1 = m.add_app_node(f1);
        n_f2 = m.add_app_node(f2);
        n_f3 = m.add_app_node(f3);
        n_act = m.add_app_node(act);
    }

    Resource sens_hw;
    sens_hw.name = "sens_hw";
    sens_hw.kind = ResourceKind::Sensor;
    sens_hw.asil = Asil::B;
    Resource act_hw;
    act_hw.name = "act_hw";
    act_hw.kind = ResourceKind::Actuator;
    act_hw.asil = Asil::B;
    // The entangled pair: ecu_a hosts {f1, f2}, ecu_b hosts {f2, f3} —
    // same kind, same ASIL, hence the same Table-I rate and (in the
    // tree) the same reference count.  Their events are distinguishable
    // only by which gates share them.
    Resource ecu_a;
    ecu_a.name = "ecu_a";
    ecu_a.kind = ResourceKind::Functional;
    ecu_a.asil = Asil::B;
    Resource ecu_b;
    ecu_b.name = "ecu_b";
    ecu_b.kind = ResourceKind::Functional;
    ecu_b.asil = Asil::B;

    ResourceId r_sens, r_act, r_a, r_b;
    if (shuffled) {
        r_b = m.add_resource(ecu_b);
        r_act = m.add_resource(act_hw);
        r_a = m.add_resource(ecu_a);
        r_sens = m.add_resource(sens_hw);
    } else {
        r_sens = m.add_resource(sens_hw);
        r_a = m.add_resource(ecu_a);
        r_b = m.add_resource(ecu_b);
        r_act = m.add_resource(act_hw);
    }
    for (const ResourceId r : {r_sens, r_a, r_b, r_act}) m.place_resource(r, zone);

    if (shuffled) {
        m.map_node(n_f2, r_b);
        m.map_node(n_act, r_act);
        m.map_node(n_f3, r_b);
        m.map_node(n_f1, r_a);
        m.map_node(n_sens, r_sens);
        m.map_node(n_f2, r_a);
        m.connect_app(n_f3, n_act);
        m.connect_app(n_sens, n_f1);
        m.connect_app(n_f2, n_f3);
        m.connect_app(n_f1, n_f2);
    } else {
        m.map_node(n_sens, r_sens);
        m.map_node(n_f1, r_a);
        m.map_node(n_f2, r_a);
        m.map_node(n_f2, r_b);
        m.map_node(n_f3, r_b);
        m.map_node(n_act, r_act);
        m.connect_app(n_sens, n_f1);
        m.connect_app(n_f1, n_f2);
        m.connect_app(n_f2, n_f3);
        m.connect_app(n_f3, n_act);
    }
    return m;
}

// Satellite: structural_hash / canonical_form must be invariant under
// the component and edge declaration order of the source model.
TEST(DeclarationOrder, ShuffledIsomorphicModelHashesEqual) {
    for (const bool approximate : {false, true}) {
        FtBuildOptions options;
        options.approximate = approximate;
        const FaultTree a =
            canonical_form(build_fault_tree(entangled(false), options).tree);
        const FaultTree b =
            canonical_form(build_fault_tree(entangled(true), options).tree);
        EXPECT_EQ(a.structural_hash(), b.structural_hash()) << approximate;
        EXPECT_EQ(a.shape_hash(), b.shape_hash()) << approximate;
        EXPECT_TRUE(identical_shape(a, b)) << approximate;
    }
}

}  // namespace
}  // namespace asilkit::ftree

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ecotwin_trajectory.dir/bench_fig12_ecotwin_trajectory.cpp.o"
  "CMakeFiles/bench_fig12_ecotwin_trajectory.dir/bench_fig12_ecotwin_trajectory.cpp.o.d"
  "bench_fig12_ecotwin_trajectory"
  "bench_fig12_ecotwin_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ecotwin_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "ftree/fault_tree.h"

#include <gtest/gtest.h>

#include "ftree/modules.h"

namespace asilkit::ftree {
namespace {

TEST(FaultTree, BasicEventsDedupByName) {
    FaultTree ft;
    const FtRef a = ft.add_basic_event("e", 1e-6);
    const FtRef b = ft.add_basic_event("e", 1e-6);
    EXPECT_EQ(a, b);
    EXPECT_EQ(ft.basic_events().size(), 1u);
}

TEST(FaultTree, ConflictingLambdaRejected) {
    FaultTree ft;
    ft.add_basic_event("e", 1e-6);
    EXPECT_THROW((void)ft.add_basic_event("e", 2e-6), AnalysisError);
}

TEST(FaultTree, GateConstruction) {
    FaultTree ft;
    const FtRef e1 = ft.add_basic_event("e1", 1e-6);
    const FtRef e2 = ft.add_basic_event("e2", 1e-6);
    const FtRef g = ft.add_gate("g", GateKind::Or, {e1});
    ft.add_child(g, e2);
    EXPECT_EQ(ft.gate(g).children.size(), 2u);
    EXPECT_EQ(ft.gate(g).kind, GateKind::Or);
    EXPECT_EQ(ft.gate(g).name, "g");
}

TEST(FaultTree, AddChildRequiresGate) {
    FaultTree ft;
    const FtRef e = ft.add_basic_event("e", 1e-6);
    EXPECT_THROW((void)ft.add_child(e, e), AnalysisError);
}

TEST(FaultTree, TopEventRequired) {
    FaultTree ft;
    EXPECT_FALSE(ft.has_top());
    EXPECT_THROW((void)ft.top(), AnalysisError);
    const FtRef e = ft.add_basic_event("e", 1e-6);
    ft.set_top(e);
    EXPECT_TRUE(ft.has_top());
    EXPECT_EQ(ft.top(), e);
}

TEST(FaultTree, AccessorsValidate) {
    FaultTree ft;
    EXPECT_THROW((void)ft.basic_event(0), AnalysisError);
    EXPECT_THROW((void)ft.gate(0), AnalysisError);
    const FtRef e = ft.add_basic_event("e", 1e-6);
    EXPECT_THROW((void)ft.gate(e), AnalysisError);  // wrong-kind FtRef
    const FtRef g = ft.add_gate("g", GateKind::And, {e});
    EXPECT_THROW((void)ft.basic_event(g), AnalysisError);
}

TEST(FaultTree, FindBasicEvent) {
    FaultTree ft;
    const FtRef e = ft.add_basic_event("needle", 1e-6);
    EXPECT_EQ(ft.find_basic_event("needle"), e);
    EXPECT_TRUE(ft.has_basic_event("needle"));
    EXPECT_FALSE(ft.has_basic_event("hay"));
    EXPECT_THROW((void)ft.find_basic_event("hay"), AnalysisError);
}

TEST(FaultTree, StatsOnSimpleTree) {
    FaultTree ft;
    const FtRef e1 = ft.add_basic_event("e1", 1e-6);
    const FtRef e2 = ft.add_basic_event("e2", 1e-6);
    const FtRef g = ft.add_gate("g", GateKind::Or, {e1, e2});
    ft.set_top(g);
    const FaultTreeStats s = ft.stats();
    EXPECT_EQ(s.basic_events, 2u);
    EXPECT_EQ(s.gates, 1u);
    EXPECT_EQ(s.dag_nodes, 3u);
    EXPECT_EQ(s.expanded_nodes, 3u);
    EXPECT_EQ(s.paths, 2u);
    EXPECT_EQ(s.depth, 2u);
}

TEST(FaultTree, StatsCountSharedSubtreeOncePerDag) {
    FaultTree ft;
    const FtRef e = ft.add_basic_event("shared", 1e-6);
    const FtRef g1 = ft.add_gate("g1", GateKind::Or, {e});
    const FtRef g2 = ft.add_gate("g2", GateKind::Or, {e});
    const FtRef top = ft.add_gate("top", GateKind::And, {g1, g2});
    ft.set_top(top);
    const FaultTreeStats s = ft.stats();
    EXPECT_EQ(s.dag_nodes, 4u);       // shared event counted once
    EXPECT_EQ(s.expanded_nodes, 5u);  // but appears twice in the tree view
    EXPECT_EQ(s.paths, 2u);
}

TEST(FaultTree, StatsEmptyWithoutTop) {
    const FaultTree ft;
    EXPECT_EQ(ft.stats().dag_nodes, 0u);
}

TEST(FaultTree, StatsIgnoreUnreachableNodes) {
    FaultTree ft;
    const FtRef e = ft.add_basic_event("e", 1e-6);
    ft.add_basic_event("unreachable", 1e-6);
    const FtRef g = ft.add_gate("g", GateKind::Or, {e});
    ft.add_gate("dead", GateKind::And, {e});
    ft.set_top(g);
    EXPECT_EQ(ft.stats().basic_events, 1u);
    EXPECT_EQ(ft.stats().gates, 1u);
}

TEST(FaultTree, PathsGrowExponentiallyWithAndChains) {
    // Chain of k 2-way gates: paths double per level (Section V blow-up).
    FaultTree ft;
    FtRef current = ft.add_basic_event("seed", 1e-6);
    for (int k = 0; k < 10; ++k) {
        const FtRef left = ft.add_gate("l" + std::to_string(k), GateKind::Or, {current});
        const FtRef right = ft.add_gate("r" + std::to_string(k), GateKind::Or, {current});
        current = ft.add_gate("j" + std::to_string(k), GateKind::And, {left, right});
    }
    ft.set_top(current);
    EXPECT_EQ(ft.stats().paths, 1024u);
}

TEST(FaultTree, ReachableBasicEvents) {
    FaultTree ft;
    const FtRef e1 = ft.add_basic_event("e1", 1e-6);
    const FtRef e2 = ft.add_basic_event("e2", 1e-6);
    ft.add_basic_event("e3", 1e-6);
    const FtRef g = ft.add_gate("g", GateKind::Or, {e1, e2, e1});
    const auto reachable = ft.reachable_basic_events(g);
    EXPECT_EQ(reachable, (std::vector<std::uint32_t>{0, 1}));
}

TEST(FaultTree, GateKindNames) {
    EXPECT_EQ(to_string(GateKind::Or), "OR");
    EXPECT_EQ(to_string(GateKind::And), "AND");
}

// ---- structural hash & canonical form: degenerate shapes -------------------

TEST(StructuralHashDegenerate, SingleBasicEventTop) {
    // A tree that is one basic event: the hash must abstract the name
    // away but keep the rate.
    FaultTree a;
    a.set_top(a.add_basic_event("only", 3e-7));
    FaultTree b;
    b.set_top(b.add_basic_event("renamed", 3e-7));
    EXPECT_EQ(a.structural_hash(), b.structural_hash());

    FaultTree c;
    c.set_top(c.add_basic_event("only", 4e-7));
    EXPECT_NE(a.structural_hash(), c.structural_hash());
}

TEST(StructuralHashDegenerate, GateWithOneChild) {
    // OR(e) and AND(e) denote the same boolean function but are distinct
    // structures — and both differ from the bare event.
    FaultTree plain;
    plain.set_top(plain.add_basic_event("e", 1e-7));

    FaultTree unary_or;
    unary_or.set_top(
        unary_or.add_gate("g", GateKind::Or, {unary_or.add_basic_event("e", 1e-7)}));
    FaultTree unary_and;
    unary_and.set_top(
        unary_and.add_gate("g", GateKind::And, {unary_and.add_basic_event("e", 1e-7)}));

    EXPECT_NE(unary_or.structural_hash(), unary_and.structural_hash());
    EXPECT_NE(plain.structural_hash(), unary_or.structural_hash());
    // Canonicalising a unary gate is a no-op structurally.
    EXPECT_EQ(canonical_form(unary_or).structural_hash(), unary_or.structural_hash());
}

TEST(StructuralHashDegenerate, SharedEventUnderAndVsOr) {
    auto shared_pair = [](GateKind kind) {
        FaultTree t;
        const FtRef e = t.add_basic_event("e", 1e-7);
        t.set_top(t.add_gate("top", kind, {e, e}));
        return t;
    };
    const FaultTree under_and = shared_pair(GateKind::And);
    const FaultTree under_or = shared_pair(GateKind::Or);
    EXPECT_NE(under_and.structural_hash(), under_or.structural_hash());

    // The sharing itself is visible under both kinds: AND(e, e) != AND(e, f).
    FaultTree distinct;
    const FtRef d1 = distinct.add_basic_event("e", 1e-7);
    const FtRef d2 = distinct.add_basic_event("f", 1e-7);
    distinct.set_top(distinct.add_gate("top", GateKind::And, {d1, d2}));
    EXPECT_NE(under_and.structural_hash(), distinct.structural_hash());
    EXPECT_NE(canonical_form(under_and).structural_hash(),
              canonical_form(distinct).structural_hash());
}

TEST(StructuralHashDegenerate, StableAcrossNodeIdRenumbering) {
    // The same logical tree built in two different insertion orders gets
    // different node indices; first-occurrence numbering must erase that.
    FaultTree forward;
    {
        const FtRef a = forward.add_basic_event("a", 1e-7);
        const FtRef b = forward.add_basic_event("b", 2e-7);
        const FtRef c = forward.add_basic_event("c", 3e-7);
        const FtRef left = forward.add_gate("left", GateKind::Or, {a, b});
        forward.set_top(forward.add_gate("top", GateKind::And, {left, c}));
    }
    FaultTree backward;
    {
        const FtRef c = backward.add_basic_event("c", 3e-7);
        const FtRef b = backward.add_basic_event("b", 2e-7);
        const FtRef a = backward.add_basic_event("a", 1e-7);
        backward.add_gate("decoy", GateKind::Or, {c});  // shifts gate indices
        const FtRef left = backward.add_gate("left", GateKind::Or, {a, b});
        backward.set_top(backward.add_gate("top", GateKind::And, {left, c}));
    }
    EXPECT_EQ(forward.structural_hash(), backward.structural_hash());
    EXPECT_EQ(canonical_form(forward).structural_hash(),
              canonical_form(backward).structural_hash());
}

// ---- modularization --------------------------------------------------------

TEST(Modules, IndependentBranchesAreModules) {
    // AND(OR(a, b), OR(c, d)): both ORs share nothing, so the
    // decomposition is {OR(a,b), OR(c,d), top}.
    FaultTree ft;
    const FtRef a = ft.add_basic_event("a", 1e-7);
    const FtRef b = ft.add_basic_event("b", 2e-7);
    const FtRef c = ft.add_basic_event("c", 3e-7);
    const FtRef d = ft.add_basic_event("d", 4e-7);
    const FtRef left = ft.add_gate("left", GateKind::Or, {a, b});
    const FtRef right = ft.add_gate("right", GateKind::Or, {c, d});
    const FtRef top = ft.add_gate("top", GateKind::And, {left, right});
    ft.set_top(top);

    const ModuleDecomposition dec = find_modules(ft);
    ASSERT_EQ(dec.size(), 3u);
    EXPECT_EQ(dec.top().root, top);
    EXPECT_EQ(dec.top().child_modules.size(), 2u);
    EXPECT_EQ(dec.top().basic_events, 0u);  // both children are pseudo leaves
    ASSERT_TRUE(dec.module_of_gate.contains(left.index));
    ASSERT_TRUE(dec.module_of_gate.contains(right.index));
    EXPECT_EQ(dec.modules[dec.module_of_gate.at(left.index)].basic_events, 2u);
}

TEST(Modules, SharedEventKeepsRegionTogether) {
    // AND(OR(a, s), OR(b, s)): the shared event s glues both branches to
    // the top region — the top is the only module.
    FaultTree ft;
    const FtRef a = ft.add_basic_event("a", 1e-7);
    const FtRef b = ft.add_basic_event("b", 2e-7);
    const FtRef s = ft.add_basic_event("s", 3e-7);
    const FtRef left = ft.add_gate("left", GateKind::Or, {a, s});
    const FtRef right = ft.add_gate("right", GateKind::Or, {b, s});
    ft.set_top(ft.add_gate("top", GateKind::And, {left, right}));

    const ModuleDecomposition dec = find_modules(ft);
    ASSERT_EQ(dec.size(), 1u);
    EXPECT_EQ(dec.top().basic_events, 3u);
    EXPECT_TRUE(dec.top().child_modules.empty());
}

TEST(Modules, NestedModulesComposeBottomUp) {
    // OR(AND(OR(a, b), c), d): three nested modules, children listed
    // before parents.
    FaultTree ft;
    const FtRef a = ft.add_basic_event("a", 1e-7);
    const FtRef b = ft.add_basic_event("b", 2e-7);
    const FtRef c = ft.add_basic_event("c", 3e-7);
    const FtRef d = ft.add_basic_event("d", 4e-7);
    const FtRef inner = ft.add_gate("inner", GateKind::Or, {a, b});
    const FtRef mid = ft.add_gate("mid", GateKind::And, {inner, c});
    const FtRef top = ft.add_gate("top", GateKind::Or, {mid, d});
    ft.set_top(top);

    const ModuleDecomposition dec = find_modules(ft);
    ASSERT_EQ(dec.size(), 3u);
    const Module& inner_m = dec.modules[dec.module_of_gate.at(inner.index)];
    const Module& mid_m = dec.modules[dec.module_of_gate.at(mid.index)];
    EXPECT_TRUE(inner_m.child_modules.empty());
    ASSERT_EQ(mid_m.child_modules.size(), 1u);
    EXPECT_EQ(mid_m.child_modules.front(), dec.module_of_gate.at(inner.index));
    ASSERT_EQ(dec.top().child_modules.size(), 1u);
    EXPECT_EQ(dec.top().child_modules.front(), dec.module_of_gate.at(mid.index));
    // Children-before-parents order.
    EXPECT_LT(dec.module_of_gate.at(inner.index), dec.module_of_gate.at(mid.index));
}

TEST(Modules, SharedGateIsStillAModule) {
    // g = OR(a, b) referenced twice by the top: g's subtree is reachable
    // only through g, so g is a module whose pseudo-variable occurs
    // twice in the top region.
    FaultTree ft;
    const FtRef a = ft.add_basic_event("a", 1e-7);
    const FtRef b = ft.add_basic_event("b", 2e-7);
    const FtRef g = ft.add_gate("g", GateKind::Or, {a, b});
    ft.set_top(ft.add_gate("top", GateKind::And, {g, g}));

    const ModuleDecomposition dec = find_modules(ft);
    ASSERT_EQ(dec.size(), 2u);
    ASSERT_EQ(dec.top().child_modules.size(), 1u);  // one pseudo leaf, used twice
    EXPECT_EQ(dec.top().child_modules.front(), dec.module_of_gate.at(g.index));
}

TEST(Modules, SingleBasicEventTop) {
    FaultTree ft;
    ft.set_top(ft.add_basic_event("only", 5e-7));
    const ModuleDecomposition dec = find_modules(ft);
    ASSERT_EQ(dec.size(), 1u);
    EXPECT_EQ(dec.top().basic_events, 1u);
    EXPECT_TRUE(dec.top().child_modules.empty());
}

TEST(Modules, SubtreeHashIsContextFree) {
    // The same module subtree embedded in two different trees must carry
    // the same subtree_hash — that is what lets the engine replay it
    // across candidate architectures.
    auto sub = [](FaultTree& t) {
        const FtRef a = t.add_basic_event("sub_a", 1e-7);
        const FtRef b = t.add_basic_event("sub_b", 2e-7);
        return t.add_gate("sub", GateKind::Or, {a, b});
    };
    FaultTree host1;
    {
        const FtRef s = sub(host1);
        const FtRef c = host1.add_basic_event("c", 3e-7);
        host1.set_top(host1.add_gate("top", GateKind::And, {s, c}));
    }
    FaultTree host2;
    {
        const FtRef x = host2.add_basic_event("x", 9e-7);
        const FtRef y = host2.add_basic_event("y", 8e-7);
        const FtRef other = host2.add_gate("other", GateKind::And, {x, y});
        const FtRef s = sub(host2);
        host2.set_top(host2.add_gate("top", GateKind::Or, {other, s}));
    }
    const ModuleDecomposition d1 = find_modules(host1);
    const ModuleDecomposition d2 = find_modules(host2);
    std::uint64_t h1 = 0;
    std::uint64_t h2 = 0;
    for (const auto& [gate, idx] : d1.module_of_gate) {
        if (host1.gate(gate).name == "sub") h1 = d1.modules[idx].subtree_hash;
    }
    for (const auto& [gate, idx] : d2.module_of_gate) {
        if (host2.gate(gate).name == "sub") h2 = d2.modules[idx].subtree_hash;
    }
    ASSERT_NE(h1, 0u);
    EXPECT_EQ(h1, h2);
    // And the hash sees the content: the top modules of the two hosts
    // are different trees.
    EXPECT_NE(d1.top().subtree_hash, d2.top().subtree_hash);
}

TEST(CanonicalForm, ConstructionOrderOfTiedSharedEventsDoesNotChangeHashes) {
    // Regression: two DISTINCT shared events with the same lambda and
    // the same reference count tie in the bottom-up ordering hashes;
    // before the context refinement, the stable sort fell back to
    // construction order, so isomorphic trees built in different arena
    // orders canonicalised differently.  The entanglement below (a is
    // shared by or1/and_c, b by or1/and_d) is only resolvable through
    // each event's parent-gate context.
    auto build = [](bool swapped) {
        FaultTree t;
        FtRef a{};
        FtRef b{};
        if (swapped) {
            b = t.add_basic_event("b", 1e-7);
            a = t.add_basic_event("a", 1e-7);
        } else {
            a = t.add_basic_event("a", 1e-7);
            b = t.add_basic_event("b", 1e-7);
        }
        const FtRef c = t.add_basic_event("c", 2e-7);
        const FtRef d = t.add_basic_event("d", 3e-7);
        const FtRef or1 = swapped ? t.add_gate("or1", GateKind::Or, {b, a})
                                  : t.add_gate("or1", GateKind::Or, {a, b});
        const FtRef and_c = t.add_gate("and_c", GateKind::And, {a, c});
        const FtRef and_d = t.add_gate("and_d", GateKind::And, {b, d});
        t.set_top(t.add_gate("top", GateKind::Or, {or1, and_c, and_d}));
        return t;
    };
    const FaultTree c1 = canonical_form(build(false));
    const FaultTree c2 = canonical_form(build(true));
    EXPECT_EQ(c1.structural_hash(), c2.structural_hash());
    EXPECT_EQ(c1.shape_hash(), c2.shape_hash());
    EXPECT_TRUE(identical_shape(c1, c2));
}

}  // namespace
}  // namespace asilkit::ftree

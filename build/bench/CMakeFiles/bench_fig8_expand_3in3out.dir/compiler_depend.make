# Empty compiler generated dependencies file for bench_fig8_expand_3in3out.
# This may be replaced when dependencies are built.

#include "scenarios/synthetic.h"

#include <random>
#include <string>
#include <vector>

#include "scenarios/builder.h"

namespace asilkit::scenarios {

ArchitectureModel synthetic_model(const SyntheticOptions& options) {
    ScenarioBuilder b("synthetic-" + std::to_string(options.seed));
    std::mt19937 rng(options.seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    const Asil level = options.level;

    const LocationId zone_a = b.loc("zone_a");
    const LocationId zone_b = b.loc("zone_b");
    const LocationId zone_c = b.loc("zone_c");
    const LocationId zones[] = {zone_a, zone_b, zone_c};
    auto pick_zone = [&]() { return zones[rng() % 3]; };

    // Sensors feed the first layer through explicit communication nodes.
    std::vector<NodeId> previous;
    for (std::size_t i = 0; i < options.sensors; ++i) {
        const LocationId at = pick_zone();
        const NodeId s = b.sensor("s" + std::to_string(i), level, at);
        const NodeId c = b.comm("sc" + std::to_string(i), level, at);
        b.link(s, c);
        previous.push_back(c);
    }

    for (std::size_t layer = 0; layer < options.layers; ++layer) {
        std::vector<NodeId> current;
        for (std::size_t i = 0; i < options.width; ++i) {
            const LocationId at = pick_zone();
            const std::string tag = std::to_string(layer) + "_" + std::to_string(i);
            const NodeId f = b.func("f" + tag, level, at);
            // Primary input keeps the graph connected; optional extras add
            // fan-in.
            b.link(previous[rng() % previous.size()], f);
            if (previous.size() > 1 && coin(rng) < options.extra_edge_probability) {
                b.link(previous[rng() % previous.size()], f);
            }
            const NodeId c = b.comm("c" + tag, level, at);
            b.link(f, c);
            current.push_back(c);
        }
        previous = std::move(current);
    }

    for (std::size_t i = 0; i < options.actuators; ++i) {
        const NodeId a = b.actuator("a" + std::to_string(i), level, pick_zone());
        b.link(previous[rng() % previous.size()], a);
        // Every layer output must reach some actuator to avoid dangling
        // chains: the first actuator absorbs the rest.
        if (i == 0) {
            for (NodeId c : previous) {
                if (!b.model().app().find_edge(c, a).valid()) b.link(c, a);
            }
        }
    }
    return b.take();
}

}  // namespace asilkit::scenarios

#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/sync.h"

namespace asilkit::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// Hard per-thread cap: ~1M events * 48 B keeps a runaway trace under
/// ~50 MB per thread; beyond it events are counted as dropped.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct Event {
    const char* name;
    const char* cat;
    const char* arg_key;  // nullptr = no argument
    double arg_value;
    std::uint64_t ts_ns;  // since session epoch
    std::uint32_t tid;
    char ph;  // 'B', 'E', 'I'
};

struct ThreadBuffer;

/// Global tracer state.  Leaked (never destroyed) so thread-local
/// buffer destructors may flush into it during shutdown regardless of
/// static destruction order.
struct TraceState {
    std::atomic<std::uint64_t> dropped{0};
    /// Session epoch as Clock ticks since the clock's own epoch.
    /// Atomic, not mutex-guarded: record() reads it on every event while
    /// start_tracing() may rewrite it from another thread — as a plain
    /// time_point that was a data race the thread-safety audit flushed
    /// (TSan never saw it because sessions usually start before workers
    /// trace).
    std::atomic<Clock::rep> epoch{Clock::now().time_since_epoch().count()};
    core::Mutex mutex;
    std::vector<ThreadBuffer*> buffers GUARDED_BY(mutex);
    /// Events of exited threads.
    std::vector<Event> orphans GUARDED_BY(mutex);
    std::uint32_t next_tid GUARDED_BY(mutex) = 0;
};

TraceState& state() {
    static TraceState* instance = new TraceState();
    return *instance;
}

/// Per-thread event buffer.  Its mutex is uncontended on the record
/// path (only the owning thread pushes); a drain locks it briefly to
/// move the events out.
struct ThreadBuffer {
    core::Mutex mutex;
    std::vector<Event> events GUARDED_BY(mutex);
    // `tid` and `registered` are owner-thread-confined: written once by
    // the owning thread (under the global mutex, which orders them for
    // the drain path) and thereafter read only by that thread, so they
    // carry no GUARDED_BY contract.
    std::uint32_t tid = 0;
    bool registered = false;

    ~ThreadBuffer() {
        TraceState& s = state();
        const core::MutexLock global(s.mutex);
        if (registered) {
            std::erase(s.buffers, this);
            const core::MutexLock local(mutex);
            s.orphans.insert(s.orphans.end(), events.begin(), events.end());
        }
    }
};

thread_local ThreadBuffer t_buffer;

std::string json_escape(const char* s) {
    std::string out;
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/// Collects (and consumes) every buffered event, sorted by timestamp.
/// Stable sort: same-timestamp events of one thread keep record order,
/// so a zero-duration span still exports B before E.
std::vector<Event> drain_events() {
    TraceState& s = state();
    std::vector<Event> all;
    {
        const core::MutexLock global(s.mutex);
        all = std::move(s.orphans);
        s.orphans.clear();
        for (ThreadBuffer* b : s.buffers) {
            const core::MutexLock local(b->mutex);
            all.insert(all.end(), b->events.begin(), b->events.end());
            b->events.clear();
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Event& a, const Event& b) { return a.ts_ns < b.ts_ns; });
    return all;
}

void clear_events() {
    TraceState& s = state();
    const core::MutexLock global(s.mutex);
    s.orphans.clear();
    for (ThreadBuffer* b : s.buffers) {
        const core::MutexLock local(b->mutex);
        b->events.clear();
    }
    s.dropped.store(0, std::memory_order_relaxed);
}

}  // namespace

namespace detail {

std::atomic<bool> g_tracing{false};

void record(char ph, const char* name, const char* cat, const char* arg_key,
            double arg_value) noexcept {
    TraceState& s = state();
    ThreadBuffer& b = t_buffer;
    if (!b.registered) {
        // Register before taking the local mutex: the drain path locks
        // global-then-local, so the record path must never hold the
        // local mutex while waiting on the global one.
        const core::MutexLock global(s.mutex);
        b.tid = s.next_tid++;
        s.buffers.push_back(&b);
        b.registered = true;
    }
    const auto since = Clock::now().time_since_epoch() -
                       Clock::duration(s.epoch.load(std::memory_order_relaxed));
    // Clamp: an event racing a session restart may observe the new epoch
    // after its own clock read; it belongs to the cleared session anyway.
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(since).count();
    const auto ts = static_cast<std::uint64_t>(ns < 0 ? 0 : ns);
    const core::MutexLock local(b.mutex);
    if (b.events.size() >= kMaxEventsPerThread) {
        s.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (b.events.capacity() == 0) b.events.reserve(4096);
    b.events.push_back(Event{name, cat, arg_key, arg_value, ts, b.tid, ph});
}

}  // namespace detail

void start_tracing() {
    clear_events();
    state().epoch.store(Clock::now().time_since_epoch().count(), std::memory_order_relaxed);
    detail::g_tracing.store(true, std::memory_order_relaxed);
}

void stop_tracing() { detail::g_tracing.store(false, std::memory_order_relaxed); }

std::uint64_t trace_event_count() {
    TraceState& s = state();
    const core::MutexLock global(s.mutex);
    std::uint64_t n = s.orphans.size();
    for (ThreadBuffer* b : s.buffers) {
        const core::MutexLock local(b->mutex);
        n += b->events.size();
    }
    return n;
}

std::uint64_t trace_dropped_count() {
    return state().dropped.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> snapshot_events() {
    TraceState& s = state();
    std::vector<TraceEvent> all;
    {
        const core::MutexLock global(s.mutex);
        all.reserve(s.orphans.size());
        for (const Event& e : s.orphans) {
            all.push_back(TraceEvent{e.name, e.cat, e.ts_ns, e.tid, e.ph});
        }
        for (ThreadBuffer* b : s.buffers) {
            const core::MutexLock local(b->mutex);
            for (const Event& e : b->events) {
                all.push_back(TraceEvent{e.name, e.cat, e.ts_ns, e.tid, e.ph});
            }
        }
    }
    std::stable_sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
        return a.ts_ns < b.ts_ns;
    });
    return all;
}

void write_trace(std::ostream& os) {
    const std::vector<Event> events = drain_events();
    os << "{\"traceEvents\":[";
    bool first = true;
    char buf[64];
    for (const Event& e : events) {
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"" << json_escape(e.cat)
           << "\",\"ph\":\"" << e.ph << "\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":";
        // Trace-event timestamps are microseconds; keep ns resolution
        // via the fractional part.
        std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(e.ts_ns) / 1000.0);
        os << buf;
        if (e.arg_key != nullptr) {
            std::snprintf(buf, sizeof(buf), "%.17g", e.arg_value);
            os << ",\"args\":{\"" << json_escape(e.arg_key) << "\":" << buf << "}";
        }
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
       << state().dropped.load(std::memory_order_relaxed) << "}}";
}

std::string trace_to_json() {
    std::ostringstream os;
    write_trace(os);
    return os.str();
}

}  // namespace asilkit::obs

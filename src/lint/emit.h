// Lint report emitters: human text, compact JSON, and SARIF 2.1.0.
//
// The SARIF emitter declares every built-in rule in the tool driver's
// rule table (so consumers can render the catalogue even for a clean
// run) and anchors each result to the model element via a SARIF logical
// location; fix-it hints travel in the result property bag.
#pragma once

#include <string>

#include "io/json.h"
#include "lint/lint.h"

namespace asilkit::lint {

/// One line per diagnostic (plus fix-it lines) and a trailing
/// "N errors, M warnings, K notes" summary.  `model_name` heads the
/// report when non-empty.
[[nodiscard]] std::string to_text(const LintReport& report, const std::string& model_name = {});

/// {"model", "summary": {errors, warnings, notes}, "diagnostics": [...]}.
[[nodiscard]] io::Json to_json(const LintReport& report, const std::string& model_name = {});

/// A complete SARIF 2.1.0 document for the run.
[[nodiscard]] io::Json to_sarif(const LintReport& report);

}  // namespace asilkit::lint

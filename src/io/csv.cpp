#include "io/csv.h"

#include <cstdio>
#include <fstream>

#include "core/error.h"

namespace asilkit::io {
namespace {

bool needs_quoting(const std::string& cell) {
    return cell.find_first_of(",\"\n\r") != std::string::npos;
}

void write_cell(std::string& out, const std::string& cell) {
    if (!needs_quoting(cell)) {
        out += cell;
        return;
    }
    out += '"';
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw IoError("csv: header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size()) {
        throw IoError("csv: row width " + std::to_string(cells.size()) + " != header width " +
                      std::to_string(header_.size()));
    }
    rows_.push_back(std::move(cells));
}

std::string CsvWriter::number(double value) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", value);
    return buf;
}

std::string CsvWriter::to_string() const {
    std::string out;
    for (std::size_t i = 0; i < header_.size(); ++i) {
        if (i) out += ',';
        write_cell(out, header_[i]);
    }
    out += '\n';
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) out += ',';
            write_cell(out, row[i]);
        }
        out += '\n';
    }
    return out;
}

void CsvWriter::save(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open '" + path + "' for writing");
    out << to_string();
    if (!out) throw IoError("write to '" + path + "' failed");
}

}  // namespace asilkit::io

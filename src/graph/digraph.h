// A small, self-contained directed-graph container.
//
// All three layers of the architecture model are instances of this
// template.  Design constraints that drove it:
//   * stable strongly-typed ids: transformations hold on to node ids across
//     insertions and unrelated erasures;
//   * payloads by value: node/edge data are plain structs;
//   * cheap predecessor *and* successor iteration: the fault-tree builder
//     walks the application graph backwards (actuators to sensors), the
//     transformations walk it forwards;
//   * erasure keeps the container compact enough for linear scans, so
//     storage is a slot map (free-listed vector) with O(1) insert/erase.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/ids.h"

namespace asilkit::graph {

/// Directed multigraph with value-type payloads and stable ids.
///
/// NodeIdT / EdgeIdT are StrongId instantiations; their 32-bit value is an
/// index into the slot vectors.  Erased slots are recycled; ids are *not*
/// generation-checked, so holding an id across an erase of that same
/// element is a precondition violation (checked: contains() and the
/// throwing accessors catch stale ids that point at freed slots).
template <typename NodeData, typename EdgeData, typename NodeIdT, typename EdgeIdT>
class Digraph {
public:
    using node_id = NodeIdT;
    using edge_id = EdgeIdT;
    using node_data = NodeData;
    using edge_data = EdgeData;

    struct Edge {
        node_id source;
        node_id sink;
        EdgeData data;
    };

    // ---- nodes ----------------------------------------------------------

    node_id add_node(NodeData data) {
        const auto idx = allocate_slot(node_live_, node_free_);
        if (idx == nodes_.size()) {
            nodes_.push_back(std::move(data));
            out_edges_.emplace_back();
            in_edges_.emplace_back();
        } else {
            nodes_[idx] = std::move(data);
            out_edges_[idx].clear();
            in_edges_[idx].clear();
        }
        return node_id{static_cast<typename node_id::value_type>(idx)};
    }

    [[nodiscard]] bool contains(node_id n) const noexcept {
        return n.valid() && n.value() < nodes_.size() && node_live_[n.value()];
    }

    /// Throws ModelError unless `n` is a live node; for callers that want
    /// the precondition check without reading the payload.
    void require(node_id n) const { check_node(n); }
    void require(edge_id e) const { check_edge(e); }

    [[nodiscard]] const NodeData& node(node_id n) const {
        check_node(n);
        return nodes_[n.value()];
    }

    [[nodiscard]] NodeData& node(node_id n) {
        check_node(n);
        return nodes_[n.value()];
    }

    /// Removes a node and every incident edge.
    void erase_node(node_id n) {
        check_node(n);
        // Copy: erase_edge mutates the adjacency lists we are iterating.
        auto outs = out_edges_[n.value()];
        for (edge_id e : outs) erase_edge(e);
        auto ins = in_edges_[n.value()];
        for (edge_id e : ins) erase_edge(e);
        node_live_[n.value()] = false;
        node_free_.push_back(n.value());
    }

    [[nodiscard]] std::size_t node_count() const noexcept {
        return nodes_.size() - node_free_.size();
    }

    /// Live node ids in ascending id order.
    [[nodiscard]] std::vector<node_id> node_ids() const {
        std::vector<node_id> out;
        out.reserve(node_count());
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (node_live_[i]) out.push_back(node_id{static_cast<typename node_id::value_type>(i)});
        }
        return out;
    }

    // ---- edges ----------------------------------------------------------

    edge_id add_edge(node_id source, node_id sink, EdgeData data = {}) {
        check_node(source);
        check_node(sink);
        const auto idx = allocate_slot(edge_live_, edge_free_);
        Edge e{source, sink, std::move(data)};
        if (idx == edges_.size()) {
            edges_.push_back(std::move(e));
        } else {
            edges_[idx] = std::move(e);
        }
        const edge_id id{static_cast<typename edge_id::value_type>(idx)};
        out_edges_[source.value()].push_back(id);
        in_edges_[sink.value()].push_back(id);
        return id;
    }

    [[nodiscard]] bool contains(edge_id e) const noexcept {
        return e.valid() && e.value() < edges_.size() && edge_live_[e.value()];
    }

    [[nodiscard]] const Edge& edge(edge_id e) const {
        check_edge(e);
        return edges_[e.value()];
    }

    [[nodiscard]] EdgeData& edge_data_ref(edge_id e) {
        check_edge(e);
        return edges_[e.value()].data;
    }

    void erase_edge(edge_id e) {
        check_edge(e);
        const Edge& ed = edges_[e.value()];
        auto& outs = out_edges_[ed.source.value()];
        outs.erase(std::remove(outs.begin(), outs.end(), e), outs.end());
        auto& ins = in_edges_[ed.sink.value()];
        ins.erase(std::remove(ins.begin(), ins.end(), e), ins.end());
        edge_live_[e.value()] = false;
        edge_free_.push_back(e.value());
    }

    [[nodiscard]] std::size_t edge_count() const noexcept {
        return edges_.size() - edge_free_.size();
    }

    [[nodiscard]] std::vector<edge_id> edge_ids() const {
        std::vector<edge_id> out;
        out.reserve(edge_count());
        for (std::size_t i = 0; i < edges_.size(); ++i) {
            if (edge_live_[i]) out.push_back(edge_id{static_cast<typename edge_id::value_type>(i)});
        }
        return out;
    }

    /// Returns the edge source->sink if one exists (first match).
    [[nodiscard]] edge_id find_edge(node_id source, node_id sink) const {
        check_node(source);
        for (edge_id e : out_edges_[source.value()]) {
            if (edges_[e.value()].sink == sink) return e;
        }
        return edge_id{};
    }

    // ---- adjacency ------------------------------------------------------

    [[nodiscard]] const std::vector<edge_id>& out_edges(node_id n) const {
        check_node(n);
        return out_edges_[n.value()];
    }

    [[nodiscard]] const std::vector<edge_id>& in_edges(node_id n) const {
        check_node(n);
        return in_edges_[n.value()];
    }

    [[nodiscard]] std::vector<node_id> successors(node_id n) const {
        check_node(n);
        std::vector<node_id> out;
        out.reserve(out_edges_[n.value()].size());
        for (edge_id e : out_edges_[n.value()]) out.push_back(edges_[e.value()].sink);
        return out;
    }

    [[nodiscard]] std::vector<node_id> predecessors(node_id n) const {
        check_node(n);
        std::vector<node_id> out;
        out.reserve(in_edges_[n.value()].size());
        for (edge_id e : in_edges_[n.value()]) out.push_back(edges_[e.value()].source);
        return out;
    }

    [[nodiscard]] std::size_t in_degree(node_id n) const { return in_edges(n).size(); }
    [[nodiscard]] std::size_t out_degree(node_id n) const { return out_edges(n).size(); }

    /// Capacity of the id space (max id value + 1); useful for dense
    /// per-node scratch arrays in algorithms.
    [[nodiscard]] std::size_t node_capacity() const noexcept { return nodes_.size(); }

    void clear() {
        nodes_.clear();
        edges_.clear();
        node_live_.clear();
        edge_live_.clear();
        node_free_.clear();
        edge_free_.clear();
        out_edges_.clear();
        in_edges_.clear();
    }

private:
    static std::size_t allocate_slot(std::vector<bool>& live, std::vector<std::uint32_t>& free_list) {
        if (!free_list.empty()) {
            const std::size_t idx = free_list.back();
            free_list.pop_back();
            live[idx] = true;
            return idx;
        }
        live.push_back(true);
        return live.size() - 1;
    }

    void check_node(node_id n) const {
        if (!contains(n)) {
            throw ModelError("graph: node id " + (n.valid() ? std::to_string(n.value()) : std::string("<invalid>")) +
                             " is not in the graph");
        }
    }

    void check_edge(edge_id e) const {
        if (!contains(e)) {
            throw ModelError("graph: edge id " + (e.valid() ? std::to_string(e.value()) : std::string("<invalid>")) +
                             " is not in the graph");
        }
    }

    std::vector<NodeData> nodes_;
    std::vector<Edge> edges_;
    std::vector<bool> node_live_;
    std::vector<bool> edge_live_;
    std::vector<std::uint32_t> node_free_;
    std::vector<std::uint32_t> edge_free_;
    std::vector<std::vector<edge_id>> out_edges_;
    std::vector<std::vector<edge_id>> in_edges_;
};

}  // namespace asilkit::graph

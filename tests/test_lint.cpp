#include "lint/lint.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "io/sarif.h"
#include "lint/emit.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::lint {
namespace {

// ---- fixtures --------------------------------------------------------------

/// sensor -> c_in -> n -> c_out -> actuator, all ASIL D, fully mapped
/// and placed: triggers no rule.
ArchitectureModel clean_chain() { return scenarios::chain_1in_1out(); }

/// Branches at A(D) + A(D) under an inherited D requirement: triggers
/// asil.decomposition.under-achieved AND .invalid-pattern (A+A only
/// reaches B, and no Fig. 2 pattern sequence produces D -> A+A).
ArchitectureModel weak_block() {
    ArchitectureModel m("weak-block");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    auto add = [&](const char* name, NodeKind kind, AsilTag tag) {
        return m.add_node_with_dedicated_resource({name, kind, tag, {}}, loc);
    };
    const NodeId sens = add("sens", NodeKind::Sensor, AsilTag{Asil::D});
    const NodeId split = add("split", NodeKind::Splitter, AsilTag{Asil::D});
    const NodeId b1 = add("b1", NodeKind::Functional, AsilTag{Asil::A, Asil::D});
    const NodeId b2 = add("b2", NodeKind::Functional, AsilTag{Asil::A, Asil::D});
    const NodeId merge = add("merge", NodeKind::Merger, AsilTag{Asil::D});
    const NodeId act = add("act", NodeKind::Actuator, AsilTag{Asil::D});
    m.connect_app(sens, split);
    m.connect_app(split, b1);
    m.connect_app(split, b2);
    m.connect_app(b1, merge);
    m.connect_app(b2, merge);
    m.connect_app(merge, act);
    return m;
}

/// splitter wired straight to the merger on both outputs: a well-formed
/// block whose branches are all empty.
ArchitectureModel dead_pair() {
    ArchitectureModel m("dead-pair");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    auto add = [&](const char* name, NodeKind kind) {
        return m.add_node_with_dedicated_resource({name, kind, AsilTag{Asil::D}, {}}, loc);
    };
    const NodeId sens = add("sens", NodeKind::Sensor);
    const NodeId split = add("split", NodeKind::Splitter);
    const NodeId merge = add("merge", NodeKind::Merger);
    const NodeId act = add("act", NodeKind::Actuator);
    m.connect_app(sens, split);
    m.connect_app(split, merge);
    m.connect_app(split, merge);
    m.connect_app(merge, act);
    return m;
}

/// sensor -> c1 -> c2 -> actuator: a directly reducible pair.
ArchitectureModel comm_pair() {
    ArchitectureModel m("comm-pair");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s =
        m.add_node_with_dedicated_resource({"sens", NodeKind::Sensor, AsilTag{Asil::D}, {}}, loc);
    const NodeId c1 = m.add_node_with_dedicated_resource(
        {"c1", NodeKind::Communication, AsilTag{Asil::D}, {}}, loc);
    const NodeId c2 = m.add_node_with_dedicated_resource(
        {"c2", NodeKind::Communication, AsilTag{Asil::D}, {}}, loc);
    const NodeId a =
        m.add_node_with_dedicated_resource({"act", NodeKind::Actuator, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(s, c1);
    m.connect_app(c1, c2);
    m.connect_app(c2, a);
    return m;
}

// ---- the non-triggering fixture for every rule id --------------------------

TEST(Lint, CleanFig3TriggersNoRule) {
    const LintReport report = run_lint(scenarios::fig3_camera_gps_fusion());
    for (const auto& rule : RuleRegistry::builtin().rules()) {
        EXPECT_FALSE(report.has(rule->info().id)) << rule->info().id;
    }
    EXPECT_TRUE(report.clean());
    EXPECT_TRUE(report.diagnostics.empty());
}

TEST(Lint, CleanChainTriggersNoRule) {
    const LintReport report = run_lint(clean_chain());
    for (const auto& rule : RuleRegistry::builtin().rules()) {
        EXPECT_FALSE(report.has(rule->info().id)) << rule->info().id;
    }
    EXPECT_TRUE(report.clean());
}

// ---- one triggering fixture per rule ----------------------------------------

TEST(LintRules, UnmappedNode) {
    ArchitectureModel m = clean_chain();
    m.add_app_node({"orphan", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("map.unmapped-node"));
    EXPECT_GE(report.error_count(), 1u);
}

TEST(LintRules, IncompatibleMapping) {
    ArchitectureModel m = clean_chain();
    // Mutate the resource kind after mapping (map_node itself refuses
    // incompatible pairs, but a loaded or edited model can carry them).
    const NodeId n = m.find_app_node("n");
    m.resources().node(m.mapped_resources(n).front()).kind = ResourceKind::Sensor;
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("map.incompatible-mapping"));
}

TEST(LintRules, UnderImplementedAsil) {
    ArchitectureModel m = clean_chain();
    const NodeId n = m.find_app_node("n");
    m.resources().node(m.mapped_resources(n).front()).asil = Asil::A;
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("map.under-implemented-asil"));
    EXPECT_EQ(report.error_count(), 0u);  // warning by default
}

TEST(LintRules, UnplacedResource) {
    ArchitectureModel m = clean_chain();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("map.unplaced-resource"));
}

TEST(LintRules, BadSplitterDegree) {
    ArchitectureModel m = clean_chain();
    const LocationId loc = m.find_location("front");
    const NodeId s =
        m.add_node_with_dedicated_resource({"bad_split", NodeKind::Splitter, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(m.find_app_node("c_in"), s);  // 1 input, 0 outputs
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("app.bad-splitter-degree"));
}

TEST(LintRules, BadMergerDegree) {
    ArchitectureModel m = clean_chain();
    const LocationId loc = m.find_location("front");
    const NodeId g =
        m.add_node_with_dedicated_resource({"bad_merge", NodeKind::Merger, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(m.find_app_node("c_in"), g);
    m.connect_app(g, m.find_app_node("c_out"));  // only 1 input
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("app.bad-merger-degree"));
}

TEST(LintRules, IllFormedBlock) {
    ArchitectureModel m("bad-block");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    const NodeId s1 =
        m.add_node_with_dedicated_resource({"s1", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const NodeId s2 =
        m.add_node_with_dedicated_resource({"s2", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const NodeId merge =
        m.add_node_with_dedicated_resource({"merge", NodeKind::Merger, AsilTag{Asil::D}, {}}, loc);
    const NodeId act =
        m.add_node_with_dedicated_resource({"act", NodeKind::Actuator, AsilTag{Asil::D}, {}}, loc);
    m.connect_app(s1, merge);
    m.connect_app(s2, merge);
    m.connect_app(merge, act);
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("app.ill-formed-block"));
    EXPECT_GE(report.error_count(), 1u);
}

TEST(LintRules, UnderAchievedDecomposition) {
    const LintReport report = run_lint(weak_block());
    EXPECT_TRUE(report.has("asil.decomposition.under-achieved"));
}

TEST(LintRules, UnreachableActuator) {
    ArchitectureModel m = clean_chain();
    const LocationId loc = m.find_location("front");
    m.add_node_with_dedicated_resource({"lonely_act", NodeKind::Actuator, AsilTag{Asil::B}, {}}, loc);
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("app.unreachable-actuator"));
}

TEST(LintRules, DanglingSensor) {
    ArchitectureModel m = clean_chain();
    const LocationId loc = m.find_location("front");
    m.add_node_with_dedicated_resource({"lonely_sensor", NodeKind::Sensor, AsilTag{Asil::B}, {}}, loc);
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("app.dangling-sensor"));
}

TEST(LintRules, InvalidPatternFromTagSanity) {
    ArchitectureModel m = clean_chain();
    // "ASIL D(B)": the assigned level may never exceed the origin.
    m.app().node(m.find_app_node("n")).asil = AsilTag{Asil::D, Asil::B};
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("asil.decomposition.invalid-pattern"));
}

TEST(LintRules, InvalidPatternFromCatalogue) {
    // D -> A+A is not derivable from the Fig. 2 catalogue.
    const LintReport report = run_lint(weak_block());
    EXPECT_TRUE(report.has("asil.decomposition.invalid-pattern"));
    EXPECT_GE(report.error_count(), 1u);
}

TEST(LintRules, SharedResourceBranch) {
    const LintReport report = run_lint(scenarios::fig3_with_shared_ecu_ccf());
    EXPECT_TRUE(report.has("ccf.shared-resource-branch"));
    EXPECT_GE(report.error_count(), 1u);
}

TEST(LintRules, SharedLocationBranch) {
    ArchitectureModel m = clean_chain();
    const LocationId shared = m.add_location({"shared_bay", kDefaultLocationLambda, {}});
    transform::ExpandOptions options;
    options.branch_locations = {shared, shared};
    transform::expand(m, m.find_app_node("n"), options);
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("ccf.shared-location-branch"));
    EXPECT_FALSE(report.has("ccf.shared-resource-branch"));
}

TEST(LintRules, SharedEnvironmentBranch) {
    ArchitectureModel m = clean_chain();
    Environment noisy;
    noisy.vibration_zone = 3;
    const LocationId bay1 = m.add_location({"bay1", kDefaultLocationLambda, noisy});
    const LocationId bay2 = m.add_location({"bay2", kDefaultLocationLambda, noisy});
    transform::ExpandOptions options;
    options.branch_locations = {bay1, bay2};
    transform::expand(m, m.find_app_node("n"), options);
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("ccf.shared-environment-branch"));
    EXPECT_FALSE(report.has("ccf.shared-location-branch"));
}

TEST(LintRules, PathInconsistency) {
    ArchitectureModel m = clean_chain();
    // n produces at A, c_out consumes at D: the channel under-delivers.
    m.app().node(m.find_app_node("n")).asil = AsilTag{Asil::A};
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("asil.propagation.path-inconsistency"));
}

TEST(LintRules, PathIntoBlockBoundaryIsNotInconsistent) {
    // Decomposed branch levels legitimately drop below the merger's
    // level: the expanded chain must stay silent.
    ArchitectureModel m = clean_chain();
    transform::expand(m, m.find_app_node("n"));
    const LintReport report = run_lint(m);
    EXPECT_FALSE(report.has("asil.propagation.path-inconsistency"));
}

TEST(LintRules, DeadSplitterMerger) {
    const LintReport report = run_lint(dead_pair());
    EXPECT_TRUE(report.has("transform.dead-splitter-merger"));
}

TEST(LintRules, ReduciblePair) {
    const LintReport report = run_lint(comm_pair());
    EXPECT_TRUE(report.has("transform.reducible-pair"));
    EXPECT_GE(report.note_count(), 1u);
    EXPECT_TRUE(report.clean());  // notes do not dirty a model
}

TEST(LintRules, EffectiveAsilRegression) {
    ArchitectureModel m = clean_chain();
    transform::expand(m, m.find_app_node("n"));
    const std::vector<RedundantBlock> blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 1u);
    // Implement the merger on hardware below the inherited D.
    const NodeId merger = blocks.front().merger;
    m.resources().node(m.mapped_resources(merger).front()).asil = Asil::B;
    const LintReport report = run_lint(m);
    EXPECT_TRUE(report.has("map.effective-asil-regression"));
}

// ---- registry / severities --------------------------------------------------

TEST(LintRegistry, BuiltinIdsAreUniqueAndWellFormed) {
    const RuleRegistry& registry = RuleRegistry::builtin();
    EXPECT_GE(registry.rules().size(), 18u);
    std::set<std::string_view> ids;
    for (const auto& rule : registry.rules()) {
        const RuleInfo& info = rule->info();
        EXPECT_TRUE(ids.insert(info.id).second) << "duplicate id " << info.id;
        EXPECT_NE(info.id.find('.'), std::string_view::npos) << info.id;
        EXPECT_FALSE(info.summary.empty()) << info.id;
        EXPECT_FALSE(info.layers.empty()) << info.id;
        EXPECT_NE(registry.find(info.id), nullptr);
    }
    EXPECT_EQ(registry.find("no.such-rule"), nullptr);
}

TEST(LintRegistry, DuplicateIdThrows) {
    class Dummy final : public Rule {
    public:
        [[nodiscard]] const RuleInfo& info() const noexcept override {
            static const RuleInfo kInfo{"dup.rule", Severity::Note, "app", "dummy"};
            return kInfo;
        }
        void run(const LintContext&, std::vector<Finding>&) const override {}
    };
    RuleRegistry registry;
    registry.add(std::make_unique<Dummy>());
    EXPECT_THROW((void)registry.add(std::make_unique<Dummy>()), ModelError);
}

TEST(LintSeverity, StringRoundTrip) {
    EXPECT_EQ(severity_from_string("off"), Severity::Off);
    EXPECT_EQ(severity_from_string("note"), Severity::Note);
    EXPECT_EQ(severity_from_string("warning"), Severity::Warning);
    EXPECT_EQ(severity_from_string("error"), Severity::Error);
    EXPECT_EQ(to_string(Severity::Warning), "warning");
    EXPECT_THROW((void)severity_from_string("fatal"), IoError);
}

// ---- configuration ----------------------------------------------------------

TEST(LintConfigTest, OverrideDisablesRule) {
    ArchitectureModel m = clean_chain();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    LintOptions options;
    options.config =
        lint_config_from_json_text(R"({"rules": {"map.unplaced-resource": "off"}})");
    const LintReport report = run_lint(m, options);
    EXPECT_FALSE(report.has("map.unplaced-resource"));
    EXPECT_TRUE(report.clean());
}

TEST(LintConfigTest, OverridePromotesSeverity) {
    ArchitectureModel m = clean_chain();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    LintOptions options;
    options.config =
        lint_config_from_json_text(R"({"rules": {"map.unplaced-resource": "error"}})");
    const LintReport report = run_lint(m, options);
    EXPECT_TRUE(report.has("map.unplaced-resource"));
    EXPECT_GE(report.error_count(), 1u);
    EXPECT_EQ(report.warning_count(), 0u);
}

TEST(LintConfigTest, UnknownRuleIdRejected) {
    EXPECT_THROW((void)lint_config_from_json_text(R"({"rules": {"map.tpyo": "off"}})"), IoError);
}

TEST(LintConfigTest, ErrorsOnlySkipsWarningRules) {
    ArchitectureModel m = clean_chain();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});  // warning
    m.add_app_node({"orphan", NodeKind::Functional, AsilTag{Asil::B}, {}});    // error
    LintOptions options;
    options.errors_only = true;
    const LintReport report = run_lint(m, options);
    EXPECT_TRUE(report.has("map.unmapped-node"));
    EXPECT_FALSE(report.has("map.unplaced-resource"));
    for (const Diagnostic& d : report.diagnostics) EXPECT_EQ(d.severity, Severity::Error);
}

TEST(LintConfigTest, StructuralErrorCount) {
    EXPECT_EQ(structural_error_count(clean_chain()), 0u);
    ArchitectureModel m = clean_chain();
    m.add_app_node({"orphan", NodeKind::Functional, AsilTag{Asil::B}, {}});
    EXPECT_GE(structural_error_count(m), 1u);
}

// ---- diagnostics / determinism ----------------------------------------------

TEST(LintReportTest, DiagnosticsCarryLocationAndFixit) {
    ArchitectureModel m = clean_chain();
    m.add_app_node({"orphan", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const LintReport report = run_lint(m);
    ASSERT_FALSE(report.diagnostics.empty());
    bool found = false;
    for (const Diagnostic& d : report.diagnostics) {
        if (d.rule_id != "map.unmapped-node") continue;
        found = true;
        EXPECT_EQ(d.location.layer, Layer::Application);
        EXPECT_EQ(d.location.name, "orphan");
        EXPECT_EQ(d.location.qualified_name(), "app:orphan");
        EXPECT_NE(d.fixit.find("map_node"), std::string::npos);
        std::ostringstream os;
        os << d;
        EXPECT_NE(os.str().find("map.unmapped-node"), std::string::npos);
    }
    EXPECT_TRUE(found);
}

TEST(LintReportTest, OrderIsDeterministic) {
    ArchitectureModel m = weak_block();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    const std::string first = to_text(run_lint(m), m.name());
    const std::string second = to_text(run_lint(m), m.name());
    EXPECT_EQ(first, second);
}

// ---- emitters ----------------------------------------------------------------

TEST(LintEmit, TextSummaryLine) {
    ArchitectureModel m = clean_chain();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    const std::string text = to_text(run_lint(m), m.name());
    EXPECT_NE(text.find(m.name()), std::string::npos);
    EXPECT_NE(text.find("map.unplaced-resource"), std::string::npos);
    EXPECT_NE(text.find("0 errors, 1 warnings, 0 notes"), std::string::npos);
}

TEST(LintEmit, JsonShape) {
    ArchitectureModel m = clean_chain();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    const io::Json doc = to_json(run_lint(m), m.name());
    EXPECT_EQ(doc.at("model").as_string(), m.name());
    EXPECT_EQ(doc.at("summary").at("warnings").as_int(), 1);
    ASSERT_EQ(doc.at("diagnostics").size(), 1u);
    const io::Json& entry = doc.at("diagnostics").as_array().front();
    EXPECT_EQ(entry.at("rule").as_string(), "map.unplaced-resource");
    EXPECT_EQ(entry.at("severity").as_string(), "warning");
    EXPECT_EQ(entry.at("element").as_string(), "spare");
}

/// The acceptance test: the SARIF emitter's output must satisfy the
/// required-properties subset of the SARIF 2.1.0 schema.  (No network /
/// jsonschema dependency: the constraints below are transcribed from
/// sarif-schema-2.1.0.json — required members, enum values, types.)
TEST(LintEmit, SarifValidatesAgainstSchema210) {
    ArchitectureModel m = weak_block();
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    const LintReport report = run_lint(m);
    ASSERT_FALSE(report.diagnostics.empty());

    // Validate what a consumer parses, not the in-memory tree.
    const io::Json doc = io::Json::parse(to_sarif(report).dump(2));
    const std::set<std::string> kLevels{"none", "note", "warning", "error"};

    // sarifLog: required ["version"]; $schema must be the 2.1.0 URI.
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.at("$schema").as_string(), io::kSarifSchemaUri);
    EXPECT_EQ(doc.at("version").as_string(), "2.1.0");

    // runs: array of run objects; run requires "tool".
    ASSERT_TRUE(doc.at("runs").is_array());
    ASSERT_EQ(doc.at("runs").size(), 1u);
    const io::Json& run = doc.at("runs").as_array().front();

    // tool requires "driver"; toolComponent requires "name".
    const io::Json& driver = run.at("tool").at("driver");
    EXPECT_FALSE(driver.at("name").as_string().empty());
    EXPECT_FALSE(driver.at("version").as_string().empty());

    // reportingDescriptor requires "id"; the whole catalogue is declared.
    ASSERT_TRUE(driver.at("rules").is_array());
    EXPECT_EQ(driver.at("rules").size(), RuleRegistry::builtin().rules().size());
    std::vector<std::string> declared_ids;
    for (const io::Json& rule : driver.at("rules").as_array()) {
        declared_ids.push_back(rule.at("id").as_string());
        EXPECT_FALSE(rule.at("shortDescription").at("text").as_string().empty());
        EXPECT_TRUE(kLevels.contains(rule.at("defaultConfiguration").at("level").as_string()));
    }

    // result requires "message"; level is the schema enum; ruleIndex must
    // agree with the driver rule table; logical locations carry the
    // model anchor.
    ASSERT_TRUE(run.at("results").is_array());
    EXPECT_EQ(run.at("results").size(), report.diagnostics.size());
    for (const io::Json& result : run.at("results").as_array()) {
        EXPECT_FALSE(result.at("message").at("text").as_string().empty());
        EXPECT_TRUE(kLevels.contains(result.at("level").as_string()));
        const std::string& rule_id = result.at("ruleId").as_string();
        const auto index = static_cast<std::size_t>(result.at("ruleIndex").as_int());
        ASSERT_LT(index, declared_ids.size());
        EXPECT_EQ(declared_ids[index], rule_id);
        ASSERT_TRUE(result.at("locations").is_array());
        const io::Json& logical =
            result.at("locations").as_array().front().at("logicalLocations").as_array().front();
        EXPECT_NE(logical.at("fullyQualifiedName").as_string().find(':'), std::string::npos);
        EXPECT_FALSE(logical.at("kind").as_string().empty());
    }
}

TEST(LintEmit, SarifCleanRunStillDeclaresCatalogue) {
    const io::Json doc = to_sarif(run_lint(clean_chain()));
    const io::Json& run = doc.at("runs").as_array().front();
    EXPECT_EQ(run.at("results").size(), 0u);
    EXPECT_EQ(run.at("tool").at("driver").at("rules").size(),
              RuleRegistry::builtin().rules().size());
}

}  // namespace
}  // namespace asilkit::lint

# Empty dependencies file for bench_fig7_expand_1in2out.
# This may be replaced when dependencies are built.

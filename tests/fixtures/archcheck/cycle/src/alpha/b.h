#pragma once
#include "alpha/a.h"
inline int alpha_b() { return 2; }

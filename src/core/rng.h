// Counter-based (stateless) random number generation.
//
// A sequential generator (mt19937) owns a mutable state, so parallel
// consumers either share it (contention + nondeterminism) or split it
// (results depend on the split).  A counter-based generator has no
// state at all: every 64-bit output is a pure function of
// (key, counter, stream), so any worker can produce any word of the
// random field in any order and the field is bitwise identical at every
// thread count, block size and visitation order.  This is what makes
// the Monte Carlo engine (analysis::SimEngine) deterministic by
// construction instead of by careful scheduling.
//
// Construction: the splitmix64 finalizer (core/hash.h) is a full-
// avalanche bijection; `counter_word` applies it twice over an affine
// combination of the inputs — once to decorrelate the counter walk
// (this round alone is exactly the splitmix64 generator, whose output
// quality is well studied), and once more to decorrelate parallel
// streams that differ only in the stream index.  Philox-style designs
// buy provable guarantees with more rounds; two mix64 rounds are ample
// for simulation use and keep the word cost at ~10 ALU ops.
#pragma once

#include <cstdint>

#include "core/hash.h"

namespace asilkit::core {

/// The golden-ratio increment of the splitmix64 sequence.
inline constexpr std::uint64_t kRngGamma = 0x9E3779B97F4A7C15ull;

/// The `counter`-th word of the stream identified by (key, stream).
/// Pure function; uniform over the full 64-bit range.
[[nodiscard]] constexpr std::uint64_t counter_word(std::uint64_t key, std::uint64_t counter,
                                                   std::uint64_t stream) noexcept {
    // Round 1: splitmix64 with the caller's key folded into the state —
    // walking `counter` walks the splitmix sequence.
    std::uint64_t x = hash::mix64(key + counter * kRngGamma);
    // Round 2: fold the stream id in through a second full-avalanche
    // mix so streams with adjacent ids share no structure.
    return hash::mix64(x ^ (stream + 0xD1B54A32D192ED03ull) * 0xEB44ACCAB455D165ull);
}

/// Uniform double in [0, 1) from one counter word (53 mantissa bits).
[[nodiscard]] constexpr double counter_uniform(std::uint64_t key, std::uint64_t counter,
                                               std::uint64_t stream) noexcept {
    return static_cast<double>(counter_word(key, counter, stream) >> 11) * 0x1.0p-53;
}

}  // namespace asilkit::core

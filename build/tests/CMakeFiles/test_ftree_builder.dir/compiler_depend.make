# Empty compiler generated dependencies file for test_ftree_builder.
# This may be replaced when dependencies are built.

#include "ftree/fault_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <ostream>
#include <tuple>
#include <unordered_set>

#include "core/hash.h"

namespace asilkit::ftree {

std::string_view to_string(GateKind k) noexcept {
    return k == GateKind::Or ? "OR" : "AND";
}

std::ostream& operator<<(std::ostream& os, const FaultTreeStats& s) {
    return os << "{basic_events=" << s.basic_events << ", gates=" << s.gates
              << ", dag_nodes=" << s.dag_nodes << ", expanded_nodes=" << s.expanded_nodes
              << ", paths=" << s.paths << ", depth=" << s.depth << "}";
}

FtRef FaultTree::add_basic_event(std::string name, double lambda) {
    if (auto it = basic_by_name_.find(name); it != basic_by_name_.end()) {
        const BasicEvent& existing = basics_[it->second];
        if (existing.lambda != lambda) {
            throw AnalysisError("basic event '" + name + "' re-added with lambda " +
                                std::to_string(lambda) + " != " + std::to_string(existing.lambda));
        }
        return FtRef{FtRef::Kind::Basic, it->second};
    }
    const auto index = static_cast<std::uint32_t>(basics_.size());
    basic_by_name_.emplace(name, index);
    basics_.push_back(BasicEvent{std::move(name), lambda});
    return FtRef{FtRef::Kind::Basic, index};
}

FtRef FaultTree::add_gate(std::string name, GateKind kind, std::vector<FtRef> children) {
    const auto index = static_cast<std::uint32_t>(gates_.size());
    gates_.push_back(Gate{std::move(name), kind, std::move(children)});
    return FtRef{FtRef::Kind::Gate, index};
}

void FaultTree::add_child(FtRef gate_ref, FtRef child) {
    if (gate_ref.kind != FtRef::Kind::Gate || gate_ref.index >= gates_.size()) {
        throw AnalysisError("add_child: parent is not a valid gate");
    }
    gates_[gate_ref.index].children.push_back(child);
}

void FaultTree::set_top(FtRef top) {
    top_ = top;
    has_top_ = true;
}

FtRef FaultTree::top() const {
    if (!has_top_) throw AnalysisError("fault tree has no top event");
    return top_;
}

const BasicEvent& FaultTree::basic_event(std::uint32_t index) const {
    if (index >= basics_.size()) throw AnalysisError("basic event index out of range");
    return basics_[index];
}

const Gate& FaultTree::gate(std::uint32_t index) const {
    if (index >= gates_.size()) throw AnalysisError("gate index out of range");
    return gates_[index];
}

const BasicEvent& FaultTree::basic_event(FtRef r) const {
    if (r.kind != FtRef::Kind::Basic) throw AnalysisError("FtRef is not a basic event");
    return basic_event(r.index);
}

const Gate& FaultTree::gate(FtRef r) const {
    if (r.kind != FtRef::Kind::Gate) throw AnalysisError("FtRef is not a gate");
    return gate(r.index);
}

FtRef FaultTree::find_basic_event(std::string_view name) const {
    if (auto it = basic_by_name_.find(std::string(name)); it != basic_by_name_.end()) {
        return FtRef{FtRef::Kind::Basic, it->second};
    }
    throw AnalysisError("no basic event named '" + std::string(name) + "'");
}

bool FaultTree::has_basic_event(std::string_view name) const noexcept {
    return basic_by_name_.contains(std::string(name));
}

FaultTreeStats FaultTree::stats() const {
    FaultTreeStats s;
    if (!has_top_) return s;
    constexpr std::uint64_t kCap = std::uint64_t{1} << 62;
    auto sat_add = [kCap](std::uint64_t a, std::uint64_t b) {
        return a > kCap - std::min(b, kCap) ? kCap : a + b;
    };

    struct Memo {
        std::uint64_t expanded = 0;
        std::uint64_t paths = 0;
        std::size_t depth = 0;
    };
    std::unordered_map<std::uint64_t, Memo> memo;  // key: kind<<32|index
    std::unordered_set<std::uint64_t> dag_seen;
    auto key = [](FtRef r) {
        return (static_cast<std::uint64_t>(r.kind) << 32) | r.index;
    };

    std::function<Memo(FtRef)> visit = [&](FtRef r) -> Memo {
        if (auto it = memo.find(key(r)); it != memo.end()) return it->second;
        dag_seen.insert(key(r));
        Memo m;
        if (r.kind == FtRef::Kind::Basic) {
            m = Memo{1, 1, 1};
        } else {
            m.expanded = 1;
            m.paths = 0;
            m.depth = 1;
            for (FtRef c : gates_[r.index].children) {
                const Memo cm = visit(c);
                m.expanded = sat_add(m.expanded, cm.expanded);
                m.paths = sat_add(m.paths, cm.paths);
                m.depth = std::max(m.depth, cm.depth + 1);
            }
        }
        memo[key(r)] = m;
        return m;
    };
    const Memo top_memo = visit(top_);
    for (std::uint64_t k : dag_seen) {
        if ((k >> 32) == static_cast<std::uint64_t>(FtRef::Kind::Basic)) {
            ++s.basic_events;
        } else {
            ++s.gates;
        }
    }
    s.dag_nodes = s.basic_events + s.gates;
    s.expanded_nodes = top_memo.expanded;
    s.paths = top_memo.paths;
    s.depth = top_memo.depth;
    return s;
}

std::uint64_t FaultTree::structural_hash() const {
    const FtRef root = top();  // throws when the tree has no top event
    // Basic events are numbered by first occurrence in this depth-first
    // traversal, which abstracts names away while preserving the sharing
    // pattern (one event referenced from two gates hashes differently
    // from two equal-rate events referenced once each).
    std::unordered_map<std::uint32_t, std::uint64_t> basic_id;
    std::unordered_map<std::uint32_t, std::uint64_t> gate_memo;
    std::function<std::uint64_t(FtRef)> visit = [&](FtRef r) -> std::uint64_t {
        if (r.kind == FtRef::Kind::Basic) {
            const auto [it, inserted] = basic_id.try_emplace(r.index, basic_id.size());
            const double lambda = basics_[r.index].lambda;
            std::uint64_t lambda_bits;
            static_assert(sizeof(lambda_bits) == sizeof(lambda));
            std::memcpy(&lambda_bits, &lambda, sizeof(lambda_bits));
            return hash::combine(hash::combine(0x6261736963ull /* "basic" */, it->second),
                                 lambda_bits);
        }
        if (auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const Gate& g = gates_[r.index];
        std::uint64_t h = hash::combine(0x67617465ull /* "gate" */,
                                        static_cast<std::uint64_t>(g.kind));
        for (FtRef c : g.children) h = hash::combine(h, visit(c));
        gate_memo.emplace(r.index, h);
        return h;
    };
    return visit(root);
}

std::uint64_t FaultTree::shape_hash() const {
    const FtRef root = top();  // throws when the tree has no top event
    // Mirrors structural_hash() — first-occurrence event numbering keeps
    // the sharing pattern — with the lambda bits omitted, so rate-only
    // variants of one structure hash equal.
    std::unordered_map<std::uint32_t, std::uint64_t> basic_id;
    std::unordered_map<std::uint32_t, std::uint64_t> gate_memo;
    std::function<std::uint64_t(FtRef)> visit = [&](FtRef r) -> std::uint64_t {
        if (r.kind == FtRef::Kind::Basic) {
            const auto [it, inserted] = basic_id.try_emplace(r.index, basic_id.size());
            return hash::combine(0x7368617065ull /* "shape" */, it->second);
        }
        if (auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const Gate& g = gates_[r.index];
        std::uint64_t h = hash::combine(0x67617465ull /* "gate" */,
                                        static_cast<std::uint64_t>(g.kind));
        for (FtRef c : g.children) h = hash::combine(h, visit(c));
        gate_memo.emplace(r.index, h);
        return h;
    };
    return visit(root);
}

bool identical_shape(const FaultTree& a, const FaultTree& b) {
    if (a.has_top() != b.has_top()) return false;
    if (a.has_top() && a.top() != b.top()) return false;
    if (a.basic_events().size() != b.basic_events().size()) return false;
    if (a.gates().size() != b.gates().size()) return false;
    for (std::size_t g = 0; g < a.gates().size(); ++g) {
        const Gate& ga = a.gates()[g];
        const Gate& gb = b.gates()[g];
        if (ga.kind != gb.kind || ga.children != gb.children) return false;
    }
    return true;
}

FaultTree canonical_form(const FaultTree& ft) {
    const FtRef root = ft.top();

    // Phase 0: reference counts (how many parent slots point at each
    // node, duplicates included).  They feed the ordering hash so that a
    // branch containing a *shared* event — e.g. the single resource
    // event a candidate merge creates — orders differently from a
    // pristine branch whose events carry the same rates.  Without this,
    // mirror merges in redundant branches tie under a sharing-blind hash
    // and stable sort keeps them apart.  The same walk records each
    // event's parent gates for the phase-1.5 context refinement.
    std::unordered_map<std::uint32_t, std::uint32_t> basic_refs;
    std::unordered_map<std::uint32_t, std::uint32_t> gate_refs;
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> basic_parents;
    {
        std::vector<FtRef> stack{root};
        std::unordered_set<std::uint32_t> visited;
        ++gate_refs[root.index];  // root counts as referenced once
        while (!stack.empty()) {
            const FtRef r = stack.back();
            stack.pop_back();
            if (r.kind == FtRef::Kind::Basic) continue;
            if (!visited.insert(r.index).second) continue;
            for (FtRef c : ft.gate(r.index).children) {
                if (c.kind == FtRef::Kind::Basic) {
                    ++basic_refs[c.index];
                    basic_parents[c.index].push_back(r.index);
                } else {
                    ++gate_refs[c.index];
                    stack.push_back(c);
                }
            }
        }
    }

    // Phase 1: bottom-up ordering hashes, one rate-blind and one
    // rate-inclusive per node.  Child hashes are sorted before
    // combining, so both are invariant under child permutation — they
    // only *order* children; the final structural_hash() of the rebuilt
    // tree is what captures sharing exactly.
    //
    // Children sort primarily by the rate-blind hash (shape + sharing),
    // with the rate-inclusive hash as tiebreaker.  Rates therefore only
    // order siblings that shape and sharing cannot separate — so a
    // rate-only perturbation (the iterative-DSE regime: one
    // lambda_override nudged per round) almost never reorders children,
    // and the perturbed variants canonicalise to *index-identical*
    // shapes.  That shape stability is what the engine's batched
    // multi-lambda evaluation and the persistent compiler's subtree
    // memo key on (see shape_hash()/identical_shape()).  Sorting by the
    // rate-inclusive hash alone would make every lambda nudge reshuffle
    // siblings into an unrelated order.
    std::unordered_map<std::uint32_t, std::uint64_t> gate_prelim;
    std::function<std::uint64_t(FtRef)> prelim = [&](FtRef r) -> std::uint64_t {
        if (r.kind == FtRef::Kind::Basic) {
            const double lambda = ft.basic_event(r.index).lambda;
            std::uint64_t lambda_bits;
            std::memcpy(&lambda_bits, &lambda, sizeof(lambda_bits));
            return hash::combine(hash::combine(0x6576656E74ull /* "event" */, lambda_bits),
                                 basic_refs[r.index]);
        }
        if (auto it = gate_prelim.find(r.index); it != gate_prelim.end()) return it->second;
        const Gate& g = ft.gate(r.index);
        std::vector<std::uint64_t> child_hashes;
        child_hashes.reserve(g.children.size());
        for (FtRef c : g.children) child_hashes.push_back(prelim(c));
        std::sort(child_hashes.begin(), child_hashes.end());
        std::uint64_t h =
            hash::combine(0x67617465ull /* "gate" */, static_cast<std::uint64_t>(g.kind));
        h = hash::combine(h, gate_refs[r.index]);
        for (const std::uint64_t ch : child_hashes) h = hash::combine(h, ch);
        gate_prelim.emplace(r.index, h);
        return h;
    };
    std::unordered_map<std::uint32_t, std::uint64_t> gate_shape;
    std::function<std::uint64_t(FtRef)> shape_prelim = [&](FtRef r) -> std::uint64_t {
        if (r.kind == FtRef::Kind::Basic) {
            // Reference counts, not rates: a branch containing a
            // *shared* event (the single resource event a candidate
            // merge creates) must still order apart from a pristine
            // branch of the same shape.
            return hash::combine(0x7368617065ull /* "shape" */, basic_refs[r.index]);
        }
        if (auto it = gate_shape.find(r.index); it != gate_shape.end()) return it->second;
        const Gate& g = ft.gate(r.index);
        std::vector<std::uint64_t> child_hashes;
        child_hashes.reserve(g.children.size());
        for (FtRef c : g.children) child_hashes.push_back(shape_prelim(c));
        std::sort(child_hashes.begin(), child_hashes.end());
        std::uint64_t h =
            hash::combine(0x67617465ull /* "gate" */, static_cast<std::uint64_t>(g.kind));
        h = hash::combine(h, gate_refs[r.index]);
        for (const std::uint64_t ch : child_hashes) h = hash::combine(h, ch);
        gate_shape.emplace(r.index, h);
        return h;
    };

    // Phase 1.5: context refinement.  The phase-1 hashes see an event as
    // (rate, ref count) — two *distinct* shared events with equal rates
    // and equal ref counts tie, and the stable sort then falls back to
    // construction order.  Construction order is declaration order of
    // the source model, so two isomorphic models declared in different
    // component/edge order could canonicalise into trees whose event
    // first-occurrence patterns differ — different structural_hash for
    // the same structure.  One Weisfeiler–Leman-style round breaks the
    // tie by context: each event is refined with the sorted multiset of
    // its parent gates' phase-1 hashes, so events shared into different
    // regions order apart by content, not by declaration order.  The
    // rate-blind refinement uses rate-blind parent hashes, keeping the
    // primary sort key rate-blind — a lambda nudge still cannot reorder
    // siblings that shape and sharing separate (the property the batched
    // multi-lambda evaluation keys on).
    prelim(root);        // populate gate_prelim for every reachable gate
    shape_prelim(root);  // populate gate_shape likewise
    auto context_sig = [&](const std::vector<std::uint32_t>& parents,
                           const std::unordered_map<std::uint32_t, std::uint64_t>& gate_hash) {
        std::vector<std::uint64_t> hs;
        hs.reserve(parents.size());
        for (const std::uint32_t g : parents) hs.push_back(gate_hash.at(g));
        std::sort(hs.begin(), hs.end());
        std::uint64_t h = 0x637478ull /* "ctx" */;
        for (const std::uint64_t ph : hs) h = hash::combine(h, ph);
        return h;
    };
    std::unordered_map<std::uint32_t, std::uint64_t> refined_gate;
    std::function<std::uint64_t(FtRef)> refined = [&](FtRef r) -> std::uint64_t {
        if (r.kind == FtRef::Kind::Basic) {
            return hash::combine(prelim(r), context_sig(basic_parents[r.index], gate_prelim));
        }
        if (auto it = refined_gate.find(r.index); it != refined_gate.end()) return it->second;
        const Gate& g = ft.gate(r.index);
        std::vector<std::uint64_t> child_hashes;
        child_hashes.reserve(g.children.size());
        for (FtRef c : g.children) child_hashes.push_back(refined(c));
        std::sort(child_hashes.begin(), child_hashes.end());
        std::uint64_t h =
            hash::combine(0x67617465ull /* "gate" */, static_cast<std::uint64_t>(g.kind));
        h = hash::combine(h, gate_refs[r.index]);
        for (const std::uint64_t ch : child_hashes) h = hash::combine(h, ch);
        refined_gate.emplace(r.index, h);
        return h;
    };
    std::unordered_map<std::uint32_t, std::uint64_t> refined_shape_gate;
    std::function<std::uint64_t(FtRef)> refined_shape = [&](FtRef r) -> std::uint64_t {
        if (r.kind == FtRef::Kind::Basic) {
            return hash::combine(shape_prelim(r), context_sig(basic_parents[r.index], gate_shape));
        }
        if (auto it = refined_shape_gate.find(r.index); it != refined_shape_gate.end()) {
            return it->second;
        }
        const Gate& g = ft.gate(r.index);
        std::vector<std::uint64_t> child_hashes;
        child_hashes.reserve(g.children.size());
        for (FtRef c : g.children) child_hashes.push_back(refined_shape(c));
        std::sort(child_hashes.begin(), child_hashes.end());
        std::uint64_t h =
            hash::combine(0x67617465ull /* "gate" */, static_cast<std::uint64_t>(g.kind));
        h = hash::combine(h, gate_refs[r.index]);
        for (const std::uint64_t ch : child_hashes) h = hash::combine(h, ch);
        refined_shape_gate.emplace(r.index, h);
        return h;
    };

    // Phase 2: rebuild with children stably sorted by their refined
    // (rate-blind, rate-inclusive) hash pair.  Stability keeps full
    // ties (identical subtree shapes, sharing, rates and context) in
    // original order — those never produce a false cache hit because the
    // final order-dependent hash still separates them.
    FaultTree out;
    std::unordered_map<std::uint32_t, FtRef> basic_map;
    std::unordered_map<std::uint32_t, FtRef> gate_map;
    std::function<FtRef(FtRef)> rebuild = [&](FtRef r) -> FtRef {
        if (r.kind == FtRef::Kind::Basic) {
            if (auto it = basic_map.find(r.index); it != basic_map.end()) return it->second;
            const BasicEvent& e = ft.basic_event(r.index);
            const FtRef added = out.add_basic_event(e.name, e.lambda);
            basic_map.emplace(r.index, added);
            return added;
        }
        if (auto it = gate_map.find(r.index); it != gate_map.end()) return it->second;
        const Gate& g = ft.gate(r.index);
        std::vector<std::tuple<std::uint64_t, std::uint64_t, std::size_t>> order;
        order.reserve(g.children.size());
        for (std::size_t i = 0; i < g.children.size(); ++i) {
            order.emplace_back(refined_shape(g.children[i]), refined(g.children[i]), i);
        }
        std::stable_sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
            if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
            return std::get<1>(a) < std::get<1>(b);
        });
        std::vector<FtRef> children;
        children.reserve(order.size());
        for (const auto& [sh, h, i] : order) children.push_back(rebuild(g.children[i]));
        const FtRef added = out.add_gate(g.name, g.kind, std::move(children));
        gate_map.emplace(r.index, added);
        return added;
    };
    out.set_top(rebuild(root));
    return out;
}

std::vector<std::uint32_t> FaultTree::reachable_basic_events(FtRef root) const {
    std::vector<std::uint32_t> out;
    std::unordered_set<std::uint64_t> seen;
    auto key = [](FtRef r) {
        return (static_cast<std::uint64_t>(r.kind) << 32) | r.index;
    };
    std::vector<FtRef> stack{root};
    while (!stack.empty()) {
        const FtRef r = stack.back();
        stack.pop_back();
        if (!seen.insert(key(r)).second) continue;
        if (r.kind == FtRef::Kind::Basic) {
            out.push_back(r.index);
        } else {
            for (FtRef c : gate(r.index).children) stack.push_back(c);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace asilkit::ftree

// Persistent-manager tests: mark-and-compact collection (pin contract,
// unique-table rebuild, memo invalidation), the batched multi-lambda
// probability kernel (bitwise vs sequential, property vs brute force),
// the forced-collision regression for the probability memo, and the
// PersistentBddCompiler subtree memo.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <random>
#include <span>
#include <vector>

#include "bdd/bdd.h"
#include "bdd/from_fault_tree.h"
#include "ftree/fault_tree.h"
#include "ftree/modules.h"
#include "helpers.h"

namespace asilkit::bdd {
namespace {

/// The same tree with every failure rate scaled: shape-identical by
/// construction (indices preserved), rates free — the "rate-only
/// candidate variant" the persistent compiler is built for.
ftree::FaultTree scale_rates(const ftree::FaultTree& ft, double factor) {
    ftree::FaultTree out;
    for (const ftree::BasicEvent& b : ft.basic_events()) {
        (void)out.add_basic_event(b.name, b.lambda * factor);
    }
    std::vector<ftree::FtRef> gate_refs;
    for (const ftree::Gate& g : ft.gates()) {
        gate_refs.push_back(out.add_gate(g.name, g.kind, {}));
    }
    for (std::size_t i = 0; i < ft.gates().size(); ++i) {
        for (const ftree::FtRef c : ft.gates()[i].children) out.add_child(gate_refs[i], c);
    }
    if (ft.has_top()) out.set_top(ft.top());
    return out;
}

// ---- generational collection ------------------------------------------------

TEST(BddGc, CollectCompactsAndPreservesPinnedRoots) {
    BddManager mgr(6);
    const BddRef f = mgr.apply_or(mgr.apply_and(mgr.variable(0), mgr.variable(1)),
                                  mgr.apply_and(mgr.variable(2), mgr.variable(3)));
    const std::vector<double> p{0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    const double prob_before = mgr.probability(f, p);
    const std::size_t f_nodes = mgr.node_count(f);
    const BddManager::PinId pin = mgr.pin(f);

    // Unpinned garbage: dies at the next collection.
    (void)mgr.apply_or(mgr.apply_and(mgr.variable(4), mgr.variable(5)), mgr.variable(0));
    (void)mgr.apply_and(mgr.variable(3), mgr.variable(5));

    const std::size_t size_before = mgr.size();
    const BddManager::GcResult gc = mgr.collect();
    EXPECT_EQ(gc.live_nodes + gc.freed_nodes, size_before);
    EXPECT_GT(gc.freed_nodes, 0u);
    EXPECT_EQ(mgr.size(), gc.live_nodes);
    EXPECT_EQ(mgr.gc_collections(), 1u);

    const BddRef f2 = mgr.pinned(pin);
    EXPECT_EQ(mgr.node_count(f2), f_nodes);
    // The probability memo was dropped at collection (node numbering
    // changed); the recomputed value must be bitwise what it was.
    EXPECT_EQ(mgr.probability(f2, p), prob_before);

    // Only the pinned subgraph survived: the arena is exactly as large
    // as a fresh manager's reachable set for the same function.
    BddManager fresh(6);
    const BddRef g = fresh.apply_or(fresh.apply_and(fresh.variable(0), fresh.variable(1)),
                                    fresh.apply_and(fresh.variable(2), fresh.variable(3)));
    EXPECT_EQ(mgr.size(), fresh.node_count(g));

    mgr.unpin(pin);
    EXPECT_THROW((void)mgr.pinned(pin), AnalysisError);
}

TEST(BddGc, UniqueTableRebuildKeepsHashConsing) {
    BddManager mgr(4);
    const BddRef f = mgr.apply_or(mgr.apply_and(mgr.variable(0), mgr.variable(1)),
                                  mgr.variable(2));
    const BddManager::PinId pin = mgr.pin(f);
    (void)mgr.apply_and(mgr.variable(2), mgr.variable(3));  // garbage
    (void)mgr.collect();
    // Re-deriving the pinned function must hash-cons onto the surviving
    // (renumbered) nodes, not allocate duplicates.
    const std::size_t size_after_gc = mgr.size();
    const BddRef rebuilt = mgr.apply_or(mgr.apply_and(mgr.variable(0), mgr.variable(1)),
                                        mgr.variable(2));
    EXPECT_EQ(rebuilt, mgr.pinned(pin));
    // The derivation allocates only the build intermediates that died at
    // the collection (standalone leaves, the bare AND) — everything in
    // the pinned subgraph is found in the rebuilt unique table, so a
    // second collection is back to exactly the pinned subgraph.
    const BddManager::GcResult again = mgr.collect();
    EXPECT_EQ(again.live_nodes, size_after_gc);
    EXPECT_EQ(mgr.size(), size_after_gc);
}

TEST(BddGc, PinTicketsRecycleAndValidate) {
    BddManager mgr(2);
    const BddManager::PinId a = mgr.pin(mgr.variable(0));
    const BddManager::PinId b = mgr.pin(mgr.variable(1));
    EXPECT_NE(a, b);
    mgr.unpin(a);
    const BddManager::PinId c = mgr.pin(kTrue);  // pinning a terminal is legal
    EXPECT_EQ(c, a);                             // free-list recycling
    EXPECT_EQ(mgr.pinned(c), kTrue);
    EXPECT_THROW(mgr.unpin(99), AnalysisError);
    mgr.unpin(b);
    mgr.unpin(c);
}

TEST(BddGc, ThresholdPollingContract) {
    BddManager mgr(8);
    EXPECT_FALSE(mgr.gc_due());  // 0 disables the trigger
    mgr.set_gc_threshold(4);
    EXPECT_EQ(mgr.gc_threshold(), 4u);
    BddRef acc = mgr.variable(0);
    for (std::uint32_t v = 1; v < 8; ++v) acc = mgr.apply_or(acc, mgr.variable(v));
    EXPECT_TRUE(mgr.gc_due());
    const BddManager::PinId pin = mgr.pin(acc);
    (void)mgr.collect();
    // The OR chain is all live, so compaction cannot get under the
    // threshold here — gc_due() keeps reporting, collect() still works.
    EXPECT_EQ(mgr.size(), mgr.node_count(mgr.pinned(pin)));
    mgr.unpin(pin);
}

TEST(BddGc, EnsureVariablesWidensWithoutDisturbingDiagrams) {
    BddManager mgr(2);
    const BddRef f = mgr.apply_and(mgr.variable(0), mgr.variable(1));
    mgr.ensure_variables(5);
    EXPECT_EQ(mgr.variable_count(), 5u);
    const BddRef g = mgr.apply_or(f, mgr.variable(4));
    const std::vector<double> p{0.5, 0.5, 0.0, 0.0, 0.25};
    EXPECT_NEAR(mgr.probability(g, p), 0.25 + 0.75 * 0.25, 1e-12);
    mgr.ensure_variables(3);  // never shrinks
    EXPECT_EQ(mgr.variable_count(), 5u);
}

// ---- batched multi-lambda kernel --------------------------------------------

TEST(BatchKernel, MatchesSequentialProbabilityBitwise) {
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    for (std::uint32_t seed = 0; seed < 20; ++seed) {
        const ftree::FaultTree ft = testing::random_fault_tree(seed, 4 + seed % 9, 2 + seed % 5);
        const CompiledFaultTree compiled = compile_fault_tree(ft);
        const std::size_t nvars = compiled.event_of_var.size();
        std::vector<ProbVector> lanes(5, ProbVector(nvars));
        for (ProbVector& lane : lanes) {
            for (double& v : lane) v = dist(rng);
        }
        const std::vector<double> batch = compiled.manager.probability_batch(compiled.root, lanes);
        ASSERT_EQ(batch.size(), lanes.size());
        for (std::size_t j = 0; j < lanes.size(); ++j) {
            // Bitwise: the per-node Shannon expression is a pure function
            // of the canonical diagram, whatever the sweep extent.
            EXPECT_EQ(batch[j], compiled.manager.probability(compiled.root, lanes[j]))
                << "seed " << seed << " lane " << j;
        }
    }
}

TEST(BatchKernel, PropertyMatchesBruteForcePerLane) {
    const double factors[] = {1.0, 1.25, 1.5, 2.0};
    for (std::uint32_t seed = 0; seed < 12; ++seed) {
        const ftree::FaultTree base = testing::random_fault_tree(seed, 3 + seed % 8, 2 + seed % 4);
        const CompiledFaultTree compiled = compile_fault_tree(base);
        std::vector<ftree::FaultTree> variants;
        std::vector<ProbVector> lanes;
        for (const double factor : factors) {
            variants.push_back(scale_rates(base, factor));
            ProbVector lane;
            for (const std::uint32_t event : compiled.event_of_var) {
                lane.push_back(
                    basic_event_probability(variants.back().basic_event(event).lambda, 1.0));
            }
            lanes.push_back(std::move(lane));
        }
        const std::vector<double> batch = compiled.manager.probability_batch(compiled.root, lanes);
        for (std::size_t j = 0; j < variants.size(); ++j) {
            EXPECT_NEAR(batch[j], testing::brute_force_probability(variants[j]), 1e-10)
                << "seed " << seed << " lane " << j;
        }
    }
}

TEST(BatchKernel, TerminalFastPaths) {
    BddManager mgr(2);
    const std::vector<ProbVector> lanes{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}};
    const std::vector<double> ones = mgr.probability_batch(kTrue, lanes);
    const std::vector<double> zeros = mgr.probability_batch(kFalse, lanes);
    for (const double v : ones) EXPECT_EQ(v, 1.0);
    for (const double v : zeros) EXPECT_EQ(v, 0.0);
}

TEST(BatchKernel, ValidatesLanes) {
    BddManager mgr(3);
    const BddRef f = mgr.apply_or(mgr.variable(0), mgr.variable(2));
    EXPECT_THROW((void)mgr.probability_batch(f, {}), AnalysisError);
    const std::vector<ProbVector> ragged{{0.1, 0.2, 0.3}, {0.1, 0.2}};
    EXPECT_THROW((void)mgr.probability_batch(f, ragged), AnalysisError);
    // Lanes may be shorter than variable_count(), but never shorter than
    // the reachable variables (f tests variable 2).
    const std::vector<ProbVector> shallow{{0.1, 0.2}, {0.3, 0.4}};
    EXPECT_THROW((void)mgr.probability_batch(f, shallow), AnalysisError);
    const BddRef g = mgr.variable(0);
    const std::vector<double> ok = mgr.probability_batch(g, shallow);
    EXPECT_EQ(ok[0], 0.1);
    EXPECT_EQ(ok[1], 0.3);
}

// ---- probability memo: forced fingerprint collision -------------------------
//
// probability() used to trust a 64-bit chained fingerprint of the
// probability vector (key = mix64(key ^ bits), seeded mix64(n)).  mix64
// is an invertible bijection, so a second vector colliding with any
// given one can be constructed outright — and the memo then served the
// FIRST vector's per-node probabilities for the second.  The memo now
// compares a retained copy of the vector bit-for-bit.

TEST(ProbabilityMemo, SurvivesForcedFingerprintCollision) {
    BddManager mgr(2);
    const BddRef f = mgr.variable(0);
    const auto bits = [](double d) { return std::bit_cast<std::uint64_t>(d); };

    const double a1 = 0.25;
    const double a2 = 0.5;
    const double b1 = 0.75;
    // Choose b2 so (b1, b2) collides with (a1, a2) under the retired
    // fingerprint: equal chain state before the final mix64.
    const std::uint64_t k0 = detail::mix64(2);
    const double b2 = std::bit_cast<double>(detail::mix64(k0 ^ bits(a1)) ^
                                            detail::mix64(k0 ^ bits(b1)) ^ bits(a2));

    const auto retired_fingerprint = [&](double p1, double p2) {
        std::uint64_t key = detail::mix64(2);  // mix64(variable_count)
        key = detail::mix64(key ^ bits(p1));
        key = detail::mix64(key ^ bits(p2));
        return key;
    };
    ASSERT_EQ(retired_fingerprint(a1, a2), retired_fingerprint(b1, b2));

    // f only tests variable 0, so the second lane's garbage double is
    // never read — but the vectors differ, so the memo must not replay.
    const std::vector<double> va{a1, a2};
    const std::vector<double> vb{b1, b2};
    EXPECT_EQ(mgr.probability(f, va), 0.25);
    EXPECT_EQ(mgr.probability(f, vb), 0.75);  // a stale memo returns 0.25
    EXPECT_EQ(mgr.probability(f, va), 0.25);
}

// ---- PersistentBddCompiler --------------------------------------------------

TEST(PersistentCompiler, RateVariantsHitSubtreeMemo) {
    const ftree::FaultTree ft = testing::random_fault_tree(7, 10, 6);
    PersistentBddCompiler comp;
    const PersistentBddCompiler::CompileResult first = comp.compile(ft);
    EXPECT_GT(first.nodes_allocated, 0u);
    const PersistentBddCompiler::Stats s1 = comp.stats();
    EXPECT_EQ(s1.memo_hits, 0u);
    EXPECT_GT(s1.memo_misses, 0u);

    // A rate-only variant is a 100 % memo hit: same diagram, same root,
    // zero allocation — the memo keys are rate-blind.
    const PersistentBddCompiler::CompileResult second = comp.compile(scale_rates(ft, 1.5));
    EXPECT_EQ(second.root, first.root);
    EXPECT_EQ(second.event_of_var, first.event_of_var);
    EXPECT_EQ(second.nodes_allocated, 0u);
    const PersistentBddCompiler::Stats s2 = comp.stats();
    EXPECT_GT(s2.memo_hits, s1.memo_hits);
    EXPECT_EQ(s2.memo_misses, s1.memo_misses);
}

TEST(PersistentCompiler, CompileMatchesFreshManagerBitwise) {
    PersistentBddCompiler comp;
    for (std::uint32_t seed = 0; seed < 10; ++seed) {
        const ftree::FaultTree ft = testing::random_fault_tree(seed, 4 + seed % 8, 2 + seed % 5);
        const PersistentBddCompiler::CompileResult res = comp.compile(ft);
        const std::vector<ProbVector> lanes{
            PersistentBddCompiler::variable_probabilities(ft, res.event_of_var, 1.0)};
        const double persistent = comp.manager().probability_batch(res.root, lanes).front();

        const CompiledFaultTree fresh = compile_fault_tree(ft);
        const double reference =
            fresh.manager.probability(fresh.root, fresh.variable_probabilities(ft, 1.0));
        EXPECT_EQ(persistent, reference) << "seed " << seed;
    }
}

TEST(PersistentCompiler, ModuleEvaluationMatchesFreshBitwise) {
    PersistentBddCompiler comp;
    for (std::uint32_t seed = 0; seed < 8; ++seed) {
        const ftree::FaultTree ft =
            ftree::canonical_form(testing::random_fault_tree(seed, 6 + seed % 6, 3 + seed % 4));
        const ftree::ModuleDecomposition dec = ftree::find_modules(ft);
        std::vector<double> module_prob(dec.size());
        std::vector<double> child_probs;
        for (std::size_t i = 0; i < dec.size(); ++i) {
            child_probs.clear();
            for (const std::uint32_t child : dec.modules[i].child_modules) {
                child_probs.push_back(module_prob[child]);
            }
            const ModuleEvalResult fresh = evaluate_module(ft, dec, i, child_probs, 1.0);
            const ModuleEvalResult persistent =
                comp.evaluate_module(ft, dec, i, child_probs, 1.0);
            EXPECT_EQ(persistent.probability, fresh.probability)
                << "seed " << seed << " module " << i;
            EXPECT_EQ(persistent.bdd_nodes, fresh.bdd_nodes);
            EXPECT_EQ(persistent.variables, fresh.variables);
            module_prob[i] = fresh.probability;
        }
    }
}

TEST(PersistentCompiler, LanesMatchPerLaneEvaluationBitwise) {
    const ftree::FaultTree base = testing::random_fault_tree(11, 8, 5);
    const double factors[] = {1.0, 1.25, 1.5, 2.0};
    std::vector<ftree::FaultTree> canon;
    for (const double factor : factors) {
        canon.push_back(ftree::canonical_form(scale_rates(base, factor)));
    }
    const std::size_t k = canon.size();
    for (std::size_t j = 1; j < k; ++j) {
        ASSERT_TRUE(ftree::identical_shape(canon.front(), canon[j]))
            << "rate-only variants must canonicalise index-identically";
    }
    std::vector<ftree::ModuleDecomposition> decs;
    for (const ftree::FaultTree& ft : canon) decs.push_back(ftree::find_modules(ft));
    const std::size_t nmodules = decs.front().size();

    PersistentBddCompiler comp;
    std::vector<std::vector<double>> batched(k, std::vector<double>(nmodules));
    std::vector<std::vector<double>> reference(k, std::vector<double>(nmodules));
    std::vector<const ftree::FaultTree*> trees;
    for (const ftree::FaultTree& ft : canon) trees.push_back(&ft);
    for (std::size_t i = 0; i < nmodules; ++i) {
        std::vector<std::vector<double>> child_probs(k);
        std::vector<std::span<const double>> spans;
        for (std::size_t j = 0; j < k; ++j) {
            for (const std::uint32_t child : decs[j].modules[i].child_modules) {
                child_probs[j].push_back(batched[j][child]);
            }
            spans.emplace_back(child_probs[j]);
        }
        const std::vector<ModuleEvalResult> lanes =
            comp.evaluate_module_lanes(trees, decs.front(), i, spans, 1.0);
        ASSERT_EQ(lanes.size(), k);
        for (std::size_t j = 0; j < k; ++j) {
            batched[j][i] = lanes[j].probability;
            std::vector<double> ref_children;
            for (const std::uint32_t child : decs[j].modules[i].child_modules) {
                ref_children.push_back(reference[j][child]);
            }
            const ModuleEvalResult ref =
                evaluate_module(canon[j], decs[j], i, ref_children, 1.0);
            reference[j][i] = ref.probability;
            EXPECT_EQ(batched[j][i], reference[j][i]) << "module " << i << " lane " << j;
        }
    }
}

TEST(PersistentCompiler, CollectionsDoNotChangeResults) {
    PersistentBddCompiler tiny({.gc_node_threshold = 32});
    PersistentBddCompiler big;  // default threshold: never reached here
    for (std::uint32_t seed = 0; seed < 20; ++seed) {
        const ftree::FaultTree ft = testing::random_fault_tree(seed, 5 + seed % 9, 3 + seed % 5);
        const PersistentBddCompiler::CompileResult rt = tiny.compile(ft);
        const PersistentBddCompiler::CompileResult rb = big.compile(ft);
        const std::vector<ProbVector> lanes{
            PersistentBddCompiler::variable_probabilities(ft, rt.event_of_var, 1.0)};
        EXPECT_EQ(tiny.manager().probability_batch(rt.root, lanes).front(),
                  big.manager().probability_batch(rb.root, lanes).front())
            << "seed " << seed;
    }
    EXPECT_GT(tiny.stats().collections, 0u);
    EXPECT_EQ(big.stats().collections, 0u);
}

}  // namespace
}  // namespace asilkit::bdd

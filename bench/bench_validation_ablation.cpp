// Ablation: cross-validation and optimisation quality.
//
// 1. Monte Carlo vs BDD — two independent implementations of the
//    top-event probability must agree within the sampling confidence
//    interval (run at inflated rates where sampling can resolve the
//    probability; the BDD is exact at every scale).
// 2. Mapping heuristic vs search — the greedy in-branch optimiser
//    (Sec. VII-B) compared with the capacity-constrained local search on
//    the same expanded architecture.
#include "bench_util.h"

#include "analysis/probability.h"
#include "analysis/simulation.h"
#include "cost/cost_analysis.h"
#include "explore/mapping_opt.h"
#include "explore/mapping_search.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

void print_report() {
    bench::heading("Monte Carlo vs BDD on the Fig. 3 system (rates x1e5)");
    const ArchitectureModel fig3 = scenarios::fig3_camera_gps_fusion();
    analysis::SimulationOptions sim;
    sim.trials = 200000;
    sim.rate_scale = 1e5;
    const analysis::SimulationResult mc = analysis::simulate_failure_probability(fig3, sim);
    analysis::ProbabilityOptions exact_options;
    exact_options.mission_hours = 1e5;
    const double exact =
        analysis::analyze_failure_probability(fig3, exact_options).failure_probability;
    bench::row("BDD (exact)", exact);
    bench::row("Monte Carlo estimate", mc.estimate);
    std::printf("  %-46s [%.6g, %.6g]\n", "95%% confidence interval", mc.ci95_low, mc.ci95_high);
    bench::row("consistent", mc.consistent_with(exact) ? "yes" : "NO");

    bench::heading("Mapping: greedy in-branch sharing vs local search");
    auto expanded = [] {
        ArchitectureModel m = scenarios::chain_n_stages(4);
        for (int i = 1; i <= 4; ++i) transform::expand(m, m.find_app_node("f" + std::to_string(i)));
        return m;
    };
    {
        ArchitectureModel m = expanded();
        const double p0 = analysis::analyze_failure_probability(m).failure_probability;
        const auto metric = cost::CostMetric::exponential_metric1();
        const double c0 = cost::total_cost(m, metric);
        explore::optimize_mapping(m);
        std::printf("  %-22s P %.4g -> %.4g, cost %.6g -> %.6g, %zu resources\n", "greedy",
                    p0, analysis::analyze_failure_probability(m).failure_probability, c0,
                    cost::total_cost(m, metric), m.resources().node_count());
    }
    {
        ArchitectureModel m = expanded();
        explore::MappingSearchOptions options;
        options.max_nodes_per_resource = 4;
        const auto r = explore::search_mapping(m, options);
        std::printf("  %-22s P %.4g -> %.4g, cost %.6g -> %.6g, %zu resources (%zu merges)\n",
                    "search (cap 4)", r.probability_before, r.probability_after, r.cost_before,
                    r.cost_after, m.resources().node_count(), r.merges);
    }
    bench::note("the search also consolidates the trunk (capacity permitting), which the");
    bench::note("greedy pass leaves untouched: lower probability AND lower cost.");
}

void BM_MonteCarlo100k(benchmark::State& state) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    analysis::SimulationOptions options;
    options.trials = 100000;
    options.rate_scale = 1e5;
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::simulate_failure_probability(m, options));
    }
    state.SetLabel("100k trials");
}
BENCHMARK(BM_MonteCarlo100k)->Unit(benchmark::kMillisecond);

void BM_MappingSearch(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        ArchitectureModel m = scenarios::chain_n_stages(4);
        for (int i = 1; i <= 4; ++i) transform::expand(m, m.find_app_node("f" + std::to_string(i)));
        state.ResumeTiming();
        benchmark::DoNotOptimize(explore::search_mapping(m));
    }
}
BENCHMARK(BM_MappingSearch)->Unit(benchmark::kMillisecond);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

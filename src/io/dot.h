// Graphviz DOT export for the three model layers and for fault trees.
//
// Shapes encode node kinds (sensors: house, actuators: inverted house,
// splitters/mergers: triangles, communication: ellipse, functional: box);
// labels carry the ASIL tag.  Fault trees render gates as OR/AND boxes
// and basic events as circles with their lambda.
#pragma once

#include <string>

#include "ftree/fault_tree.h"
#include "model/architecture.h"

namespace asilkit::io {

[[nodiscard]] std::string app_graph_to_dot(const ArchitectureModel& m);
[[nodiscard]] std::string resource_graph_to_dot(const ArchitectureModel& m);
[[nodiscard]] std::string physical_graph_to_dot(const ArchitectureModel& m);
[[nodiscard]] std::string fault_tree_to_dot(const ftree::FaultTree& ft);

void save_text_file(const std::string& text, const std::string& path);

}  // namespace asilkit::io

#include "explore/mapping_opt.h"

#include <gtest/gtest.h>

#include "analysis/ccf.h"
#include "analysis/probability.h"
#include "model/blocks.h"
#include "model/validation.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::explore {
namespace {

ArchitectureModel expanded_chain() {
    ArchitectureModel m = scenarios::chain_1in_1out();
    transform::expand(m, m.find_app_node("n"));
    return m;
}

TEST(MappingOpt, SharesResourcesInsideBranches) {
    ArchitectureModel m = expanded_chain();
    const std::size_t before = m.resources().node_count();
    const MappingOptimizeResult r = optimize_mapping(m);
    EXPECT_EQ(r.resources_before, before);
    EXPECT_LT(r.resources_after, before);
    EXPECT_GE(r.groups_merged, 2u);  // comm group per branch
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(MappingOpt, BranchCommsShareOneBus) {
    ArchitectureModel m = expanded_chain();
    optimize_mapping(m);
    // c_in_n_1 and c_out_n_1 (branch 1) now map onto the same resource.
    const NodeId cin = m.find_app_node("c_in_n_1");
    const NodeId cout = m.find_app_node("c_out_n_1");
    ASSERT_TRUE(cin.valid());
    ASSERT_TRUE(cout.valid());
    EXPECT_EQ(m.mapped_resources(cin), m.mapped_resources(cout));
}

TEST(MappingOpt, NeverSharesAcrossBranches) {
    ArchitectureModel m = expanded_chain();
    optimize_mapping(m);
    const NodeId b1 = m.find_app_node("c_in_n_1");
    const NodeId b2 = m.find_app_node("c_in_n_2");
    EXPECT_NE(m.mapped_resources(b1), m.mapped_resources(b2));
    // The optimisation must not create common cause faults.
    EXPECT_TRUE(analysis::analyze_ccf(m).independent());
}

TEST(MappingOpt, SharedResourceCoversStrongestRequirement) {
    // Branch nodes at mixed levels: the shared resource is the max so no
    // node's effective ASIL (Eq. 3) degrades.
    ArchitectureModel m = scenarios::chain_1in_1out();
    transform::ExpandOptions options;
    options.strategy = DecompositionStrategy::AC;  // branches C(D) and A(D)
    transform::expand(m, m.find_app_node("n"), options);
    const Asil eff_before = m.effective_asil(m.find_app_node("n_1"));
    optimize_mapping(m);
    const NodeId n1 = m.find_app_node("n_1");
    EXPECT_EQ(m.effective_asil(n1), eff_before);
    for (ResourceId r : m.mapped_resources(m.find_app_node("c_in_n_1"))) {
        EXPECT_GE(asil_value(m.resources().node(r).asil), asil_value(Asil::C));
    }
}

TEST(MappingOpt, LowersCostKeepsProbability) {
    // Fig. 9 / point C -> D: fewer resources, (almost) unchanged failure
    // probability because branch events sit under the merger's AND.
    ArchitectureModel m = expanded_chain();
    const double p_before = analysis::analyze_failure_probability(m).failure_probability;
    const std::size_t res_before = m.resources().node_count();
    optimize_mapping(m);
    const double p_after = analysis::analyze_failure_probability(m).failure_probability;
    EXPECT_LT(m.resources().node_count(), res_before);
    EXPECT_NEAR(p_after, p_before, 0.05 * p_before);
}

TEST(MappingOpt, SharedMappingLowersProbabilityVsDedicated) {
    // Paper Fig. 9: per-node resources 8.29e-9 vs shared 4.26e-9 — fewer
    // base events in series lowers the probability.  Reproduce on a
    // series chain consolidated via include_non_branch_nodes.
    ArchitectureModel m = scenarios::chain_n_stages(4);
    const double dedicated = analysis::analyze_failure_probability(m).failure_probability;
    MappingOptimizeOptions options;
    options.include_non_branch_nodes = true;
    optimize_mapping(m, options);
    const double shared = analysis::analyze_failure_probability(m).failure_probability;
    EXPECT_LT(shared, 0.6 * dedicated);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(MappingOpt, NonBranchNodesUntouchedByDefault) {
    ArchitectureModel m = expanded_chain();
    optimize_mapping(m);
    // Trunk nodes keep their dedicated hardware.
    EXPECT_TRUE(m.find_resource("c_in_hw").valid());
    EXPECT_TRUE(m.find_resource("c_out_hw").valid());
    EXPECT_TRUE(m.find_resource("sens_hw").valid());
}

TEST(MappingOpt, SensorsAndManagementKeepDedicatedHardware) {
    ArchitectureModel m = expanded_chain();
    MappingOptimizeOptions options;
    options.include_non_branch_nodes = true;
    optimize_mapping(m, options);
    EXPECT_TRUE(m.find_resource("sens_hw").valid());
    EXPECT_TRUE(m.find_resource("act_hw").valid());
    EXPECT_TRUE(m.find_resource("split_n_hw").valid());
    EXPECT_TRUE(m.find_resource("merge_n_hw").valid());
}

TEST(MappingOpt, IdempotentSecondRun) {
    ArchitectureModel m = expanded_chain();
    optimize_mapping(m);
    const std::size_t after_first = m.resources().node_count();
    const MappingOptimizeResult second = optimize_mapping(m);
    EXPECT_EQ(second.resources_after, after_first);
}

TEST(MappingOpt, NoBlocksNoChangesByDefault) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const std::size_t before = m.resources().node_count();
    const MappingOptimizeResult r = optimize_mapping(m);
    EXPECT_EQ(r.groups_merged, 0u);
    EXPECT_EQ(m.resources().node_count(), before);
}

}  // namespace
}  // namespace asilkit::explore

// Reduced Ordered Binary Decision Diagram (ROBDD) engine.
//
// The paper converts the generated fault tree into a BDD through an
// If-Then-Else (ITE) structure: every basic event b becomes ITE(b, 1, 0),
// OR gates combine operands with <op> = "+" and AND gates with "*", using
// the two ITE composition rules (paper Eqs. 1 and 2) that recurse on the
// smaller variable.  That construction is exactly Bryant's apply()
// algorithm; this manager implements it with the two standard dynamic
// programming tables:
//   * a unique table hash-consing (var, high, low) triples, which makes
//     equality O(1) and keeps the diagram reduced, and
//   * an apply cache memoising (op, f, g) results, which bounds apply()
//     by O(|f|*|g|) instead of the naive exponential recursion the paper
//     describes (Section V reports that cost growing exponentially with
//     the number of redundant blocks).
//
// Both tables are open-addressing flat tables with power-of-two capacity
// (linear probing, grow-by-rehash, no tombstones — entries are never
// individually erased), and nodes live in a contiguous arena indexed by
// BddRef.  Probing uses a full 64-bit splitmix64-style finalizer so that
// the near-identical (var, high, low) / (f, g) keys produced by
// incremental construction do not cluster in power-of-two tables.
//
// The exact top-event probability is evaluated on the BDD by the
// Shannon expansion P(f) = p_v * P(f_high) + (1 - p_v) * P(f_low), which
// — unlike summing rates on the fault tree — is exact for repeated events.
// probability() is memoised across calls: the arena is append-only and
// children always precede parents, so per-node probabilities are computed
// in one bottom-up sweep and cached until the probability vector changes.
// probability_batch() runs the same sweep over k probability vectors at
// once (SoA layout, one node visit per k lanes) — the kernel behind the
// engine's rate-only candidate batching.
//
// Managers may also live across many queries (see PersistentBddCompiler
// in from_fault_tree.h): ensure_variables() widens the variable order,
// pin()/collect() implement a mark-and-compact garbage collection that
// renumbers live nodes while preserving the children-precede-parents
// arena invariant.  See docs/bdd.md for the lifecycle contract.
//
// A manager is NOT thread-safe; concurrent evaluation uses one manager
// per worker (see engine/), which keeps the apply hot path lock-free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.h"
#include "core/hash.h"

namespace asilkit::bdd {

/// Handle to a BDD node within a manager.  0 and 1 are the terminals.
using BddRef = std::uint32_t;

inline constexpr BddRef kFalse = 0;
inline constexpr BddRef kTrue = 1;

enum class BddOp : std::uint8_t { Or, And };

namespace detail {

/// splitmix64 finalizer (see core/hash.h).  Used for every table probe
/// so that keys differing in a few low bits land far apart in
/// power-of-two tables (the old multiply-then-add scheme let small
/// (f, g) deltas collide after the mask).
using asilkit::hash::mix64;

/// Mix of a (var, high, low) node triple.
[[nodiscard]] constexpr std::uint64_t mix_node_key(std::uint32_t var, std::uint32_t high,
                                                   std::uint32_t low) noexcept {
    const std::uint64_t hl = (static_cast<std::uint64_t>(high) << 32) | low;
    return mix64(mix64(hl) ^ var);
}

}  // namespace detail

/// One per-variable probability vector (a "rate lane") of the batched
/// multi-lambda sweep.
using ProbVector = std::vector<double>;

class BddManager {
public:
    /// `variable_count` fixes the variable order: variable 0 is tested
    /// first (the paper orders variables by a top-down, left-to-right
    /// traversal of the fault tree so that events nearest the top event
    /// come first).
    explicit BddManager(std::uint32_t variable_count);

    [[nodiscard]] std::uint32_t variable_count() const noexcept { return variable_count_; }

    /// Widens the variable order to at least `count` variables (new
    /// variables sort after every existing one, so existing diagrams are
    /// untouched).  Persistent managers compile trees of varying sizes;
    /// a fresh-per-tree manager never needs this.
    void ensure_variables(std::uint32_t count);

    /// The BDD for a single variable: ITE(var, 1, 0).
    [[nodiscard]] BddRef variable(std::uint32_t var);

    /// Reduced node (var, high, low); returns `high` when high == low.
    [[nodiscard]] BddRef make(std::uint32_t var, BddRef high, BddRef low);

    [[nodiscard]] BddRef apply(BddOp op, BddRef f, BddRef g);
    [[nodiscard]] BddRef apply_or(BddRef f, BddRef g) { return apply(BddOp::Or, f, g); }
    [[nodiscard]] BddRef apply_and(BddRef f, BddRef g) { return apply(BddOp::And, f, g); }
    [[nodiscard]] BddRef apply_not(BddRef f);

    /// Exact probability that the function is true, given independent
    /// per-variable probabilities (size must equal variable_count()).
    /// Memoised: repeated calls with the same probability vector reuse
    /// the bottom-up sweep (only nodes created since are evaluated).
    /// The memo is trusted only after comparing the retained copy of the
    /// previous vector bit-for-bit — a fingerprint alone could collide
    /// and silently serve stale per-node probabilities.
    [[nodiscard]] double probability(BddRef f, std::span<const double> var_probability) const;

    /// Batched Shannon sweep: evaluates `f` under k probability vectors
    /// ("lanes", all the same length) in one pass over the reachable
    /// subgraph, values held in a node-major SoA block so each node visit
    /// serves every lane from one cache line.  Returns one probability
    /// per lane, each bitwise identical to `probability(f, lanes[j])` on
    /// a manager holding only f's subgraph: the per-node expression
    /// `p * P(high) + (1 - p) * P(low)` is a pure function of the
    /// canonical diagram, so lane count, node numbering and sweep extent
    /// never change the doubles.  Every reachable variable must be
    /// < lanes[j].size(); unlike probability(), the lanes may be shorter
    /// than variable_count() (persistent managers host many diagrams).
    [[nodiscard]] std::vector<double> probability_batch(BddRef f,
                                                        std::span<const ProbVector> lanes) const;

    /// Number of interior nodes reachable from `f` (terminals excluded).
    [[nodiscard]] std::size_t node_count(BddRef f) const;

    // ---- Generational collection --------------------------------------
    //
    // The arena is append-only between collections; collect() is a
    // mark-and-compact pass over the pinned roots.  BddRefs are arena
    // indices, so collection renumbers every surviving node: any ref
    // held across a collect() MUST be registered with pin() and re-read
    // through pinned() afterwards.  Callers that instead key refs in
    // external memo tables (the subtree compile memo) clear those tables
    // at the safe point before collecting.  collect() must never run
    // while an apply()/compile recursion is on the stack.

    /// Ticket for a root that must survive collect().
    using PinId = std::uint32_t;

    /// Registers `f` as a GC root; everything reachable from it survives
    /// collection.  Pinning a terminal is allowed (and trivially cheap).
    [[nodiscard]] PinId pin(BddRef f);
    void unpin(PinId id);
    /// The pinned root's current ref (renumbered by any collect() since
    /// pin() was called).
    [[nodiscard]] BddRef pinned(PinId id) const;

    /// Interior-node high-water mark at which gc_due() starts reporting
    /// true.  0 (the default) disables the trigger; collect() itself
    /// always works.  The manager never collects behind the caller's
    /// back — callers poll gc_due() at safe points (no refs on the
    /// stack) and invoke collect() themselves.
    void set_gc_threshold(std::size_t interior_nodes) noexcept { gc_threshold_ = interior_nodes; }
    [[nodiscard]] std::size_t gc_threshold() const noexcept { return gc_threshold_; }
    [[nodiscard]] bool gc_due() const noexcept {
        return gc_threshold_ != 0 && size() >= gc_threshold_;
    }

    struct GcResult {
        std::size_t live_nodes = 0;   ///< interior nodes surviving
        std::size_t freed_nodes = 0;  ///< interior nodes reclaimed
    };

    /// Mark-and-compact collection: marks everything reachable from the
    /// pinned roots, renumbers survivors in ascending old-ref order
    /// (children precede parents before the sweep, the renumbering is
    /// monotone, so they still do afterwards — the invariant the
    /// probability sweeps rely on), rebuilds the unique table over the
    /// survivors, and drops the apply caches and the probability memo
    /// (their keys/extents reference old refs).  Pinned refs are
    /// remapped in place; reports bdd.gc.* counters and a "bdd_gc" span.
    GcResult collect();

    /// Collections performed over this manager's lifetime.
    [[nodiscard]] std::uint64_t gc_collections() const noexcept { return gc_collections_; }

    /// Total interior nodes ever created in this manager.
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size() - 2; }

    /// Evaluates f under a complete truth assignment (for property tests
    /// against brute-force enumeration).
    [[nodiscard]] bool evaluate(BddRef f, const std::vector<bool>& assignment) const;

    struct NodeView {
        std::uint32_t var;
        BddRef high;
        BddRef low;
    };
    [[nodiscard]] NodeView node(BddRef f) const;
    [[nodiscard]] static bool is_terminal(BddRef f) noexcept { return f <= kTrue; }

    /// Folds this manager's local instrumentation tallies (apply-cache
    /// lookups/hits, table resizes, nodes created) into the process-
    /// global obs registry ("bdd.*" ids) and zeroes them, and updates
    /// the bdd.node_high_water / bdd.unique_load_factor gauges.  Called
    /// at natural completion points (end of a module evaluation, end of
    /// a whole-tree analysis); cheap enough to call per evaluation —
    /// a handful of relaxed atomic adds.  Const because observability
    /// never changes observable BDD state (same argument as the
    /// probability memo); tallies are plain members written only by the
    /// owning thread (a manager is single-threaded by contract).
    void flush_obs() const;

private:
    /// Arena slot.  Nodes are append-only and children are created before
    /// their parents, so `high < ref` and `low < ref` for every interior
    /// node — the invariant the memoised probability sweep relies on.
    struct Node {
        std::uint32_t var;
        BddRef high;
        BddRef low;
    };

    /// Open-addressing unique table.  Stores only node refs: the key
    /// (var, high, low) is read back from the arena, keeping a slot at
    /// 4 bytes.  kFalse (never hash-consed) marks an empty slot.
    struct UniqueTable {
        std::vector<BddRef> slots;
        std::size_t entries = 0;
    };

    /// Open-addressing apply cache, one per operation so the packed
    /// (f, g) pair is the whole key.  key == 0 marks an empty slot
    /// (terminal operands never reach the cache, so f >= 2 and the
    /// packed key is always >= 2^33).
    struct ApplyCache {
        struct Slot {
            std::uint64_t key = 0;
            BddRef result = kFalse;
        };
        std::vector<Slot> slots;
        std::size_t entries = 0;
    };

    [[nodiscard]] BddRef unique_lookup_or_insert(std::uint32_t var, BddRef high, BddRef low);
    void unique_grow();
    // Members (not statics): growing a table is an observable event the
    // tracer marks and the resize tallies count.
    [[nodiscard]] BddRef* apply_slot(ApplyCache& cache, std::uint64_t key);
    void apply_grow(ApplyCache& cache);

    [[nodiscard]] std::uint32_t var_of(BddRef f) const noexcept {
        // Terminals sort after every variable.
        return f <= kTrue ? variable_count_ : nodes_[f].var;
    }

    std::uint32_t variable_count_;
    std::vector<Node> nodes_;  // contiguous arena; [0]=false, [1]=true
    UniqueTable unique_;
    ApplyCache apply_cache_[2];  // indexed by BddOp

    // GC roots: pins_[id] is the (collection-remapped) root, or
    // kUnpinned for a recycled ticket.
    static constexpr BddRef kUnpinned = ~BddRef{0};
    std::vector<BddRef> pins_;
    std::vector<PinId> pin_free_;
    std::size_t gc_threshold_ = 0;
    std::uint64_t gc_collections_ = 0;

    // probability() memo: per-node probabilities under the retained
    // prob_vec_, valid for refs < prob_valid_.  The retained copy is
    // compared bit-for-bit before the memo is trusted (a 64-bit
    // fingerprint could collide).  Mutable because memoisation does not
    // change observable state; the manager is single-threaded by
    // contract.
    mutable std::vector<double> prob_memo_;
    mutable std::size_t prob_valid_ = 0;
    mutable std::vector<double> prob_vec_;

    // probability_batch() scratch, reused across calls so the gather
    // costs O(reachable), not O(arena): visit stamps bump an epoch
    // instead of clearing, positions are valid only for the current
    // epoch's refs.
    mutable std::vector<std::uint64_t> batch_stamp_;
    mutable std::uint64_t batch_epoch_ = 0;
    mutable std::vector<std::uint32_t> batch_pos_;
    mutable std::vector<BddRef> batch_refs_;
    mutable std::vector<double> batch_values_;
    mutable std::vector<double> batch_probs_;
    // The gathered order is reused while the diagram cannot have
    // changed: same root, same GC generation, unchanged (append-only)
    // arena size.  This is the persistent steady state — a memo-hit
    // module swept for candidate after candidate without allocating.
    mutable BddRef batch_cached_root_ = kFalse;
    mutable std::uint64_t batch_cached_generation_ = 0;
    mutable std::size_t batch_cached_arena_ = 0;
    mutable std::uint32_t batch_cached_max_var_ = 0;

    // Local observability tallies: plain (non-atomic) increments on the
    // apply hot path — a manager is single-threaded, so the only cost is
    // one register add next to a hash probe.  flush_obs() folds them
    // into the global registry and zeroes them.
    struct ObsTally {
        std::uint64_t apply_lookups = 0;
        std::uint64_t apply_hits = 0;
        std::uint64_t unique_resizes = 0;
        std::uint64_t apply_resizes = 0;
        std::uint64_t gc_collections = 0;
        std::uint64_t gc_nodes_freed = 0;
        /// Arena growth banked by collect() (compaction moves the flush
        /// baseline, so growth-since-last-flush is captured here first).
        std::uint64_t nodes_created = 0;
    };
    mutable ObsTally obs_tally_;
    mutable std::size_t obs_nodes_flushed_ = 0;  // arena size at last flush
};

}  // namespace asilkit::bdd

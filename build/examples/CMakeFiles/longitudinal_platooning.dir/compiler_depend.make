# Empty compiler generated dependencies file for longitudinal_platooning.
# This may be replaced when dependencies are built.

// Fig. 1: the headline study — cost vs failure-probability curves for
// different ASIL-decomposition strategies (BB, AC, RND) combined with
// different cost metrics, on the lateral-control application.  The paper
// plots curve families BB-1/BB-2/AC-1/AC-2/RND-3; the trajectory of each
// runs 1 (ideal) -> 2 (max expansion) -> 3 (connected/reduced/remapped).
#include "bench_util.h"

#include <vector>

#include "explore/driver.h"
#include "explore/pareto.h"
#include "scenarios/ecotwin.h"

using namespace asilkit;

namespace {

void print_report() {
    bench::heading("Fig. 1: strategy x metric curve family on the lateral control app");
    const ArchitectureModel model = scenarios::ecotwin_lateral_control();
    const auto nodes = scenarios::ecotwin_decision_nodes();

    struct Config {
        DecompositionStrategy strategy;
        cost::CostMetric metric;
    };
    const Config configs[] = {
        {DecompositionStrategy::BB, cost::CostMetric::exponential_metric1()},
        {DecompositionStrategy::BB, cost::CostMetric::exponential_metric2()},
        {DecompositionStrategy::AC, cost::CostMetric::exponential_metric1()},
        {DecompositionStrategy::AC, cost::CostMetric::exponential_metric2()},
        {DecompositionStrategy::RND, cost::CostMetric::linear_metric3()},
    };

    std::printf("  %-26s %-12s %-13s %-12s %-13s %-12s %-13s\n", "curve", "cost(1)", "P(1)",
                "cost(2)", "P(2)", "cost(3)", "P(3)");
    std::vector<explore::TradeoffPoint> all;
    for (const Config& config : configs) {
        explore::ExplorationOptions options;
        options.strategy = config.strategy;
        options.metric = config.metric;
        options.probability.approximate = true;
        options.rng_seed = 2019;
        const auto result = explore::run_exploration(model, nodes, options);
        std::size_t b_index = 0;
        for (std::size_t i = 0; i < result.curve.points.size(); ++i) {
            if (result.curve.points[i].label.rfind("expand(", 0) == 0) b_index = i;
        }
        const auto& p1 = result.curve.points.front();
        const auto& p2 = result.curve.points[b_index];
        const auto& p3 = result.curve.points.back();
        std::printf("  %-26s %-12.6g %-13.4g %-12.6g %-13.4g %-12.6g %-13.4g\n",
                    result.curve.name.c_str(), p1.cost, p1.failure_probability, p2.cost,
                    p2.failure_probability, p3.cost, p3.failure_probability);
        for (const auto& p : result.curve.points) all.push_back(p);
    }

    bench::heading("Pareto front over all visited architectures");
    for (const auto& p : explore::pareto_front(all)) {
        std::printf("  cost=%-12.6g P(fail)=%-12.4g (%s)\n", p.cost, p.failure_probability,
                    p.label.c_str());
    }
    bench::note("shape checks (paper): expansion climbs up-right, connect/reduce walks");
    bench::note("down-left, the final point returns near the ideal system's corner;");
    bench::note("steeper metrics (x20) amplify the cost excursion, linear metrics");
    bench::note("flatten it; AC endpoints cost more than BB under exponential metrics.");
}

void BM_OneCurve(benchmark::State& state) {
    const ArchitectureModel model = scenarios::ecotwin_lateral_control();
    const auto nodes = scenarios::ecotwin_decision_nodes();
    explore::ExplorationOptions options;
    options.probability.approximate = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(explore::run_exploration(model, nodes, options));
    }
}
BENCHMARK(BM_OneCurve)->Unit(benchmark::kMillisecond);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

// Mapping search (paper Section VII-B closing remark: "Advanced mapping
// algorithms can be used to identify the minimum set of necessary
// resources to achieve the minimum failure probability for the system,
// but we defer these techniques to future work").
//
// A steepest-descent local search over resource-merge moves: two
// resources of the same kind hosting nodes of the same *region* (the same
// redundant branch, or both outside any branch) may be merged when the
// combined utilisation stays within capacity.  Every candidate move is
// evaluated on the real objective — exact BDD failure probability first,
// architecture cost second — and the best improving move is applied until
// a local optimum is reached.  Cross-branch merges are never candidates:
// they would introduce the Common Cause Faults the CCF analysis rejects.
#pragma once

#include <cstddef>

#include "analysis/probability.h"
#include "cost/cost_metric.h"
#include "model/architecture.h"

namespace asilkit::explore {

struct MappingSearchOptions {
    /// Capacity limit: a shared resource may host at most this many
    /// application nodes (models ECU utilisation / bus load headroom).
    std::size_t max_nodes_per_resource = 4;
    cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    analysis::ProbabilityOptions probability{};
    std::size_t max_iterations = 200;
    /// Also consider merging resources of trunk (non-branch) nodes.
    bool include_non_branch_nodes = true;
};

struct MappingSearchResult {
    std::size_t merges = 0;
    std::size_t iterations = 0;
    double probability_before = 0.0;
    double probability_after = 0.0;
    double cost_before = 0.0;
    double cost_after = 0.0;
    bool reached_local_optimum = false;
};

/// Runs the search in place; the model's mapping (and resource set) is
/// modified, the application graph is not.
MappingSearchResult search_mapping(ArchitectureModel& m, const MappingSearchOptions& options = {});

}  // namespace asilkit::explore

file(REMOVE_RECURSE
  "CMakeFiles/asilkit_bdd.dir/bdd.cpp.o"
  "CMakeFiles/asilkit_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/asilkit_bdd.dir/from_fault_tree.cpp.o"
  "CMakeFiles/asilkit_bdd.dir/from_fault_tree.cpp.o.d"
  "libasilkit_bdd.a"
  "libasilkit_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// GraphML export for interoperability with graph tools (yEd, Gephi,
// NetworkX).  Node attributes carry kind, ASIL tag and FSR (application
// layer) or kind/ASIL/lambda (resource layer), so downstream tooling can
// style by criticality.
#pragma once

#include <string>

#include "model/architecture.h"

namespace asilkit::io {

[[nodiscard]] std::string app_graph_to_graphml(const ArchitectureModel& m);
[[nodiscard]] std::string resource_graph_to_graphml(const ArchitectureModel& m);

}  // namespace asilkit::io

#include "explore/driver.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "explore/pareto.h"
#include "transform/connect.h"
#include "transform/expand.h"
#include "transform/reduce.h"
#include "model/blocks.h"
#include "model/validation.h"
#include "scenarios/ecotwin.h"
#include "scenarios/micro.h"

namespace asilkit::explore {
namespace {

ExplorationOptions fast_options() {
    ExplorationOptions options;
    options.probability.approximate = true;
    return options;
}

TEST(Driver, RecordsInitialPointFirst) {
    const ArchitectureModel m = scenarios::chain_two_stages();
    const ExplorationResult r = run_exploration(m, {"n1"}, fast_options());
    ASSERT_GE(r.curve.points.size(), 2u);
    EXPECT_EQ(r.curve.points.front().label, "initial");
    EXPECT_EQ(r.curve.points[1].label, "expand(n1)");
}

TEST(Driver, UnknownNodeNameThrows) {
    const ArchitectureModel m = scenarios::chain_two_stages();
    EXPECT_THROW((void)run_exploration(m, {"does_not_exist"}, fast_options()), TransformError);
}

TEST(Driver, InputModelIsNotMutated) {
    const ArchitectureModel m = scenarios::chain_two_stages();
    const std::size_t nodes = m.app().node_count();
    (void)run_exploration(m, {"n1", "n2"}, fast_options());
    EXPECT_EQ(m.app().node_count(), nodes);
}

TEST(Driver, FullPipelineOnTwoStages) {
    const ArchitectureModel m = scenarios::chain_two_stages();
    const ExplorationResult r = run_exploration(m, {"n1", "n2"}, fast_options());
    EXPECT_EQ(r.expansions, 2u);
    EXPECT_EQ(r.connects, 1u);
    EXPECT_EQ(validate(r.final_model).error_count(), 0u);
    // One merged block remains.
    const auto blocks = find_redundant_blocks(r.final_model);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(block_asil(r.final_model, blocks.front()), Asil::D);
    EXPECT_EQ(r.curve.points.back().label, "mapping-optimized");
}

TEST(Driver, EcotwinTrajectoryMatchesPaperShape) {
    // Fig. 12 qualitative shape:
    //  - B (max expansion) costs more than A and fails more often than A,
    //  - connect phase decreases cost and probability monotonically,
    //  - D (final) costs less than B and is close to A's probability.
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const ExplorationResult r =
        run_exploration(m, scenarios::ecotwin_decision_nodes(), fast_options());

    const TradeoffPoint& a = r.curve.points.front();
    // Point B: last expand(...) point.
    std::size_t b_index = 0;
    for (std::size_t i = 0; i < r.curve.points.size(); ++i) {
        if (r.curve.points[i].label.rfind("expand(", 0) == 0) b_index = i;
    }
    const TradeoffPoint& b = r.curve.points[b_index];
    const TradeoffPoint& d = r.curve.points.back();

    EXPECT_GT(b.cost, a.cost);
    EXPECT_GT(b.failure_probability, a.failure_probability);
    for (std::size_t i = b_index + 1; i < r.curve.points.size(); ++i) {
        EXPECT_LE(r.curve.points[i].cost, r.curve.points[i - 1].cost + 1e-9)
            << r.curve.points[i].label;
        EXPECT_LE(r.curve.points[i].failure_probability,
                  r.curve.points[i - 1].failure_probability + 1e-20)
            << r.curve.points[i].label;
    }
    EXPECT_LT(d.cost, b.cost);
    EXPECT_LT(d.failure_probability, 1.5 * a.failure_probability);
}

TEST(Driver, EcotwinConnectsWholeDecisionChain) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const ExplorationResult r =
        run_exploration(m, scenarios::ecotwin_decision_nodes(), fast_options());
    EXPECT_EQ(r.expansions, scenarios::ecotwin_decision_nodes().size());
    EXPECT_EQ(r.connects, r.expansions - 1);  // chain fuses into one block
    EXPECT_EQ(validate(r.final_model).error_count(), 0u);
}

TEST(Driver, FinalEcotwinUsesDOnlyForRedundancyManagement) {
    // The paper's headline conclusion: after the flow, general-purpose
    // ASIL D parts appear only where unavoidable (sensing trunk, steering
    // output); the decision functionality itself runs on ASIL B hardware,
    // with D reserved for splitters/mergers.
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const ExplorationResult r =
        run_exploration(m, scenarios::ecotwin_decision_nodes(), fast_options());
    const ArchitectureModel& final_model = r.final_model;
    for (const RedundantBlock& block : find_redundant_blocks(final_model)) {
        for (const Branch& branch : block.branches) {
            for (NodeId n : branch.nodes) {
                for (ResourceId res : final_model.mapped_resources(n)) {
                    const Resource& hw = final_model.resources().node(res);
                    if (hw.kind == ResourceKind::Functional ||
                        hw.kind == ResourceKind::Communication) {
                        // Sensing branches keep their (original) D parts;
                        // decision branches must be B or lower.
                        if (final_model.app().node(n).asil.is_decomposed()) {
                            EXPECT_LE(asil_value(hw.asil), asil_value(Asil::B))
                                << hw.name << " implements decomposed node "
                                << final_model.app().node(n).name;
                        }
                    }
                }
            }
        }
    }
}

TEST(Driver, RndStrategyIsSeedDeterministic) {
    const ArchitectureModel m = scenarios::chain_two_stages();
    ExplorationOptions options = fast_options();
    options.strategy = DecompositionStrategy::RND;
    options.rng_seed = 7;
    const ExplorationResult r1 = run_exploration(m, {"n1", "n2"}, options);
    const ExplorationResult r2 = run_exploration(m, {"n1", "n2"}, options);
    ASSERT_EQ(r1.curve.points.size(), r2.curve.points.size());
    for (std::size_t i = 0; i < r1.curve.points.size(); ++i) {
        EXPECT_DOUBLE_EQ(r1.curve.points[i].cost, r2.curve.points[i].cost);
        EXPECT_DOUBLE_EQ(r1.curve.points[i].failure_probability,
                         r2.curve.points[i].failure_probability);
    }
}

TEST(Driver, PhasesCanBeDisabled) {
    const ArchitectureModel m = scenarios::chain_two_stages();
    ExplorationOptions options = fast_options();
    options.run_connect_reduce = false;
    options.run_mapping_optimization = false;
    const ExplorationResult r = run_exploration(m, {"n1", "n2"}, options);
    EXPECT_EQ(r.connects, 0u);
    EXPECT_EQ(r.mapping_groups_merged, 0u);
    EXPECT_EQ(r.curve.points.back().label, "expand(n2)");
}

TEST(Driver, CurveNameIdentifiesConfiguration) {
    const ArchitectureModel m = scenarios::chain_two_stages();
    ExplorationOptions options = fast_options();
    options.strategy = DecompositionStrategy::AC;
    options.metric = cost::CostMetric::linear_metric3();
    const ExplorationResult r = run_exploration(m, {"n1"}, options);
    EXPECT_EQ(r.curve.name, "AC/linear-metric-3");
}

TEST(Driver, ApproximateAndExactAgreeOnEcotwin) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    ExplorationOptions exact = fast_options();
    exact.probability.approximate = false;
    const ExplorationResult ra =
        run_exploration(m, scenarios::ecotwin_decision_nodes(), fast_options());
    const ExplorationResult re =
        run_exploration(m, scenarios::ecotwin_decision_nodes(), exact);
    ASSERT_EQ(ra.curve.points.size(), re.curve.points.size());
    for (std::size_t i = 0; i < ra.curve.points.size(); ++i) {
        const double pa = ra.curve.points[i].failure_probability;
        const double pe = re.curve.points[i].failure_probability;
        EXPECT_NEAR(pa, pe, 0.001 * pe) << ra.curve.points[i].label;
    }
}


TEST(Driver, CoarseRecordingSkipsPerConnectPoints) {
    const ArchitectureModel m = scenarios::chain_two_stages();
    ExplorationOptions options = fast_options();
    options.record_each_connect = false;
    const ExplorationResult r = run_exploration(m, {"n1", "n2"}, options);
    bool has_connect_point = false;
    bool has_phase_point = false;
    for (const auto& p : r.curve.points) {
        if (p.label.rfind("connect#", 0) == 0) has_connect_point = true;
        if (p.label == "connected+reduced") has_phase_point = true;
    }
    EXPECT_FALSE(has_connect_point);
    EXPECT_TRUE(has_phase_point);
}

TEST(Driver, TrunkConsolidationLowersCostFurther) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    ExplorationOptions plain = fast_options();
    ExplorationOptions consolidated = fast_options();
    consolidated.trunk_consolidation = true;
    const auto r_plain = run_exploration(m, scenarios::ecotwin_decision_nodes(), plain);
    const auto r_cons = run_exploration(m, scenarios::ecotwin_decision_nodes(), consolidated);
    EXPECT_LT(r_cons.curve.back().cost, r_plain.curve.back().cost);
    EXPECT_LE(r_cons.curve.back().failure_probability,
              r_plain.curve.back().failure_probability);
    EXPECT_EQ(validate(r_cons.final_model).error_count(), 0u);
}

TEST(Driver, ThreeWayStrategyViaExpandOptionsStillConnects) {
    // The driver uses 2-way expansion; verify manually-built 3-way blocks
    // also pass through connect_all when counts/levels match.
    ArchitectureModel m = scenarios::chain_two_stages();
    transform::ExpandOptions options;
    options.branches = 3;
    transform::expand(m, m.find_app_node("n1"), options);
    transform::expand(m, m.find_app_node("n2"), options);
    transform::reduce_all(m);
    EXPECT_EQ(transform::connect_all(m), 1u);
    const auto blocks = find_redundant_blocks(m);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks.front().branches.size(), 3u);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(Pareto, DominanceRules) {
    TradeoffPoint cheap_safe{"a", 10.0, 1e-9, 0, 0, 0, 0, 0};
    TradeoffPoint pricey_risky{"b", 20.0, 2e-9, 0, 0, 0, 0, 0};
    TradeoffPoint cheap_risky{"c", 10.0, 2e-9, 0, 0, 0, 0, 0};
    EXPECT_TRUE(dominates(cheap_safe, pricey_risky));
    EXPECT_TRUE(dominates(cheap_safe, cheap_risky));
    EXPECT_FALSE(dominates(cheap_safe, cheap_safe));
    EXPECT_FALSE(dominates(pricey_risky, cheap_safe));
    // Incomparable pair.
    TradeoffPoint pricey_safe{"d", 20.0, 0.5e-9, 0, 0, 0, 0, 0};
    EXPECT_FALSE(dominates(cheap_safe, pricey_safe));
    EXPECT_FALSE(dominates(pricey_safe, cheap_safe));
}

TEST(Pareto, FrontExtractsNonDominatedSortedByCost) {
    std::vector<TradeoffPoint> points{
        {"a", 10.0, 1e-9, 0, 0, 0, 0, 0},  {"b", 20.0, 2e-9, 0, 0, 0, 0, 0},
        {"c", 5.0, 3e-9, 0, 0, 0, 0, 0},   {"d", 30.0, 0.5e-9, 0, 0, 0, 0, 0},
        {"e", 10.0, 1e-9, 0, 0, 0, 0, 0},  // duplicate of a
    };
    const auto front = pareto_front(points);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].label, "c");
    EXPECT_EQ(front[1].label, "a");
    EXPECT_EQ(front[2].label, "d");
}

TEST(Pareto, EmptyInput) {
    EXPECT_TRUE(pareto_front({}).empty());
}

}  // namespace
}  // namespace asilkit::explore

#include "ftree/fault_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <ostream>
#include <unordered_set>

namespace asilkit::ftree {

std::string_view to_string(GateKind k) noexcept {
    return k == GateKind::Or ? "OR" : "AND";
}

std::ostream& operator<<(std::ostream& os, const FaultTreeStats& s) {
    return os << "{basic_events=" << s.basic_events << ", gates=" << s.gates
              << ", dag_nodes=" << s.dag_nodes << ", expanded_nodes=" << s.expanded_nodes
              << ", paths=" << s.paths << ", depth=" << s.depth << "}";
}

FtRef FaultTree::add_basic_event(std::string name, double lambda) {
    if (auto it = basic_by_name_.find(name); it != basic_by_name_.end()) {
        const BasicEvent& existing = basics_[it->second];
        if (existing.lambda != lambda) {
            throw AnalysisError("basic event '" + name + "' re-added with lambda " +
                                std::to_string(lambda) + " != " + std::to_string(existing.lambda));
        }
        return FtRef{FtRef::Kind::Basic, it->second};
    }
    const auto index = static_cast<std::uint32_t>(basics_.size());
    basic_by_name_.emplace(name, index);
    basics_.push_back(BasicEvent{std::move(name), lambda});
    return FtRef{FtRef::Kind::Basic, index};
}

FtRef FaultTree::add_gate(std::string name, GateKind kind, std::vector<FtRef> children) {
    const auto index = static_cast<std::uint32_t>(gates_.size());
    gates_.push_back(Gate{std::move(name), kind, std::move(children)});
    return FtRef{FtRef::Kind::Gate, index};
}

void FaultTree::add_child(FtRef gate_ref, FtRef child) {
    if (gate_ref.kind != FtRef::Kind::Gate || gate_ref.index >= gates_.size()) {
        throw AnalysisError("add_child: parent is not a valid gate");
    }
    gates_[gate_ref.index].children.push_back(child);
}

void FaultTree::set_top(FtRef top) {
    top_ = top;
    has_top_ = true;
}

FtRef FaultTree::top() const {
    if (!has_top_) throw AnalysisError("fault tree has no top event");
    return top_;
}

const BasicEvent& FaultTree::basic_event(std::uint32_t index) const {
    if (index >= basics_.size()) throw AnalysisError("basic event index out of range");
    return basics_[index];
}

const Gate& FaultTree::gate(std::uint32_t index) const {
    if (index >= gates_.size()) throw AnalysisError("gate index out of range");
    return gates_[index];
}

const BasicEvent& FaultTree::basic_event(FtRef r) const {
    if (r.kind != FtRef::Kind::Basic) throw AnalysisError("FtRef is not a basic event");
    return basic_event(r.index);
}

const Gate& FaultTree::gate(FtRef r) const {
    if (r.kind != FtRef::Kind::Gate) throw AnalysisError("FtRef is not a gate");
    return gate(r.index);
}

FtRef FaultTree::find_basic_event(std::string_view name) const {
    if (auto it = basic_by_name_.find(std::string(name)); it != basic_by_name_.end()) {
        return FtRef{FtRef::Kind::Basic, it->second};
    }
    throw AnalysisError("no basic event named '" + std::string(name) + "'");
}

bool FaultTree::has_basic_event(std::string_view name) const noexcept {
    return basic_by_name_.contains(std::string(name));
}

FaultTreeStats FaultTree::stats() const {
    FaultTreeStats s;
    if (!has_top_) return s;
    constexpr std::uint64_t kCap = std::uint64_t{1} << 62;
    auto sat_add = [kCap](std::uint64_t a, std::uint64_t b) {
        return a > kCap - std::min(b, kCap) ? kCap : a + b;
    };

    struct Memo {
        std::uint64_t expanded = 0;
        std::uint64_t paths = 0;
        std::size_t depth = 0;
    };
    std::unordered_map<std::uint64_t, Memo> memo;  // key: kind<<32|index
    std::unordered_set<std::uint64_t> dag_seen;
    auto key = [](FtRef r) {
        return (static_cast<std::uint64_t>(r.kind) << 32) | r.index;
    };

    std::function<Memo(FtRef)> visit = [&](FtRef r) -> Memo {
        if (auto it = memo.find(key(r)); it != memo.end()) return it->second;
        dag_seen.insert(key(r));
        Memo m;
        if (r.kind == FtRef::Kind::Basic) {
            m = Memo{1, 1, 1};
        } else {
            m.expanded = 1;
            m.paths = 0;
            m.depth = 1;
            for (FtRef c : gates_[r.index].children) {
                const Memo cm = visit(c);
                m.expanded = sat_add(m.expanded, cm.expanded);
                m.paths = sat_add(m.paths, cm.paths);
                m.depth = std::max(m.depth, cm.depth + 1);
            }
        }
        memo[key(r)] = m;
        return m;
    };
    const Memo top_memo = visit(top_);
    for (std::uint64_t k : dag_seen) {
        if ((k >> 32) == static_cast<std::uint64_t>(FtRef::Kind::Basic)) {
            ++s.basic_events;
        } else {
            ++s.gates;
        }
    }
    s.dag_nodes = s.basic_events + s.gates;
    s.expanded_nodes = top_memo.expanded;
    s.paths = top_memo.paths;
    s.depth = top_memo.depth;
    return s;
}

std::vector<std::uint32_t> FaultTree::reachable_basic_events(FtRef root) const {
    std::vector<std::uint32_t> out;
    std::unordered_set<std::uint64_t> seen;
    auto key = [](FtRef r) {
        return (static_cast<std::uint64_t>(r.kind) << 32) | r.index;
    };
    std::vector<FtRef> stack{root};
    while (!stack.empty()) {
        const FtRef r = stack.back();
        stack.pop_back();
        if (!seen.insert(key(r)).second) continue;
        if (r.kind == FtRef::Kind::Basic) {
            out.push_back(r.index);
        } else {
            for (FtRef c : gate(r.index).children) stack.push_back(c);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace asilkit::ftree

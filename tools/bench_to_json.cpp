// Converts google-benchmark --benchmark_out JSON into the compact
// BENCH_dse.json the repository tracks for the DSE engine.  Accepts any
// number of raw inputs (last argument is the output), merging their
// benchmark lists so one tracked file can cover several bench binaries:
//
//   bench_mapping_search --benchmark_out=raw1.json --benchmark_out_format=json
//   bench_modularization --benchmark_out=raw2.json --benchmark_out_format=json
//   bench_to_json raw1.json raw2.json BENCH_dse.json
//
// Output: {"benchmarks": [{"name", "ns_per_op", "cache_hit_rate",
// "evals"?, "threads"?}, ...], "context": {...}} — one entry per timing,
// aggregate rows ("_mean" etc.) skipped so re-runs diff cleanly.  The
// context is taken from the first input.
//
// Merge semantics (tools/bench_merge.h): everything is replace-by-key,
// newest wins.  If the output file already exists it seeds the merge,
// so a partial re-run refreshes just the benchmarks it actually ran;
// later inputs override earlier ones benchmark-by-benchmark.
//
// Optional telemetry side-channels:
//   --metrics snapshot.json   obs registry snapshot (repeatable; later
//                             snapshots replace same-keyed summary
//                             gauges) -> top-level "metrics" object
//   --timeseries ts.json      sampler --sample-out snapshot -> compact
//                             top-level "timeseries" summary
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_merge.h"
#include "io/json.h"

int main(int argc, char** argv) {
    std::vector<std::string> metrics_paths;
    std::string timeseries_path;
    std::vector<char*> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
            metrics_paths.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--timeseries") == 0 && i + 1 < argc) {
            timeseries_path = argv[++i];
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() < 2) {
        std::fprintf(stderr,
                     "usage: %s [--metrics snapshot.json]... [--timeseries ts.json] "
                     "<google-benchmark.json> [more.json...] <out.json>\n",
                     argv[0]);
        return 2;
    }
    try {
        namespace io = asilkit::io;
        namespace bench = asilkit::bench;

        io::Json out = io::Json::object();
        // An existing output seeds the merge: partial re-runs refresh
        // only what they measured.
        if (std::ifstream probe(files.back()); probe.good()) {
            out = io::load_json_file(files.back());
        }
        if (!out.contains("benchmarks")) out["benchmarks"] = io::Json::array();
        if (!out.contains("context")) out["context"] = io::Json::object();

        for (std::size_t input = 0; input + 1 < files.size(); ++input) {
            const io::Json raw = io::load_json_file(files[input]);
            if (raw.contains("context")) {
                const io::Json& ctx = raw.at("context");
                for (const char* key : {"date", "host_name", "num_cpus", "mhz_per_cpu",
                                        "library_build_type"}) {
                    if (ctx.contains(key)) out["context"][key] = ctx.at(key);
                }
            }
            bench::merge_benchmarks(out["benchmarks"], bench::compact_benchmarks(raw));
        }

        for (const std::string& path : metrics_paths) {
            if (!out.contains("metrics")) out["metrics"] = io::Json::object();
            bench::merge_metrics(out["metrics"],
                                 bench::metrics_summary(io::load_json_file(path)));
        }
        if (!timeseries_path.empty()) {
            out["timeseries"] =
                bench::timeseries_summary(io::load_json_file(timeseries_path));
        }

        io::save_json_file(out, files.back());
        std::printf("wrote %s (%zu benchmarks)\n", files.back(),
                    out.at("benchmarks").size());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_to_json: %s\n", e.what());
        return 1;
    }
}

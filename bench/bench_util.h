// Shared helpers for the benchmark harness: every bench binary prints the
// table/figure it regenerates (paper value next to measured value where
// the paper states one) before running its google-benchmark timings.
//
// Timing discipline: benchmarks that use time_batch() pay exactly one
// steady_clock read pair per repetition (register them with
// ->UseManualTime()); per-repetition latency detail flows into an obs
// histogram only when detail mode is on, so the measured loop stays
// clock-read-minimal by default.  Every bench binary also accepts
//   --trace out.json       Chrome/Perfetto trace of the whole run
//   --metrics out.json     metrics-registry snapshot (enables detail mode)
//   --sample-out ts.json   run the obs time-series sampler alongside the
//                          benchmarks; write the ring-buffered series on exit
//   --sample-ndjson f      append one metrics line per sampler tick
//   --sample-period MS     sampler period (default 250 for bench runs)
//   --openmetrics-out f    rewrite an OpenMetrics exposition per tick
// stripped from argv before google-benchmark sees them.  The sampler
// only reads registry atomics from its own thread, so timings are
// unaffected beyond ambient CPU sharing.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace asilkit::bench {

inline void heading(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::string& label, const std::string& value) {
    std::printf("  %-46s %s\n", label.c_str(), value.c_str());
}

inline void row(const std::string& label, double value) {
    std::printf("  %-46s %.6g\n", label.c_str(), value);
}

/// "label: paper=X measured=Y" comparison row.
inline void compare(const std::string& label, const std::string& paper, double measured) {
    std::printf("  %-34s paper=%-12s measured=%.6g\n", label.c_str(), paper.c_str(), measured);
}

inline void compare(const std::string& label, const std::string& paper,
                    const std::string& measured) {
    std::printf("  %-34s paper=%-12s measured=%s\n", label.c_str(), paper.c_str(),
                measured.c_str());
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

/// Runs `fn` once per benchmark repetition with exactly one
/// steady_clock read pair around it, reported through
/// state.SetIterationTime — register the benchmark with
/// ->UseManualTime().  This replaces google-benchmark's default
/// double sampling (CPU clock + wall clock per interval) with the
/// minimal timing the DSE benches need; per-repetition latency lands
/// in the obs histogram `hist_id` only in detail mode (--metrics), so
/// the default measured loop contains no extra instrumentation.
template <typename Fn>
void time_batch(benchmark::State& state, const char* hist_id, Fn&& fn) {
    obs::Histogram* hist =
        obs::detail_enabled()
            ? &obs::Registry::global().histogram(hist_id, obs::latency_bounds_ns())
            : nullptr;
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const auto stop = std::chrono::steady_clock::now();
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
        state.SetIterationTime(ns * 1e-9);
        if (hist != nullptr) hist->observe(ns);
    }
}

/// Handles the shared --trace/--metrics options of every bench binary:
/// strips them from argv (google-benchmark rejects unknown flags),
/// starts tracing/detail mode, and writes the requested files in
/// finish().
class ObsArgs {
public:
    ObsArgs(int& argc, char** argv) {
        std::string sample_period;
        std::string sample_ndjson;
        std::string openmetrics_out;
        int w = 1;
        for (int r = 1; r < argc; ++r) {
            const std::string arg = argv[r];
            std::string* value = nullptr;
            if (arg == "--trace") value = &trace_path_;
            if (arg == "--metrics") value = &metrics_path_;
            if (arg == "--sample-out") value = &sample_out_;
            if (arg == "--sample-ndjson") value = &sample_ndjson;
            if (arg == "--sample-period") value = &sample_period;
            if (arg == "--openmetrics-out") value = &openmetrics_out;
            if (value != nullptr && r + 1 < argc) {
                *value = argv[++r];
                continue;
            }
            argv[w++] = argv[r];
        }
        argc = w;
        if (!metrics_path_.empty()) obs::set_detail_enabled(true);
        if (!trace_path_.empty()) obs::start_tracing();
        if (!sample_out_.empty() || !sample_ndjson.empty() || !openmetrics_out.empty()) {
            obs::set_detail_enabled(true);
            obs::TimeSeriesOptions options;
            options.period = std::chrono::milliseconds(250);  // bench runs are short
            if (!sample_period.empty()) {
                options.period = std::chrono::milliseconds(std::stoul(sample_period));
                if (options.period.count() <= 0) options.period = std::chrono::milliseconds(1);
            }
            options.ndjson_path = sample_ndjson;
            options.openmetrics_path = openmetrics_out;
            sampler_.emplace(options);
            sampler_->start();
        }
    }

    void finish() {
        if (sampler_) {
            sampler_->stop();
            sampler_->sample_now();  // final state lands in the rings
            if (!sample_out_.empty()) {
                std::ofstream out(sample_out_);
                out << sampler_->snapshot().to_json() << "\n";
                std::printf("wrote time series to %s (%llu ticks)\n", sample_out_.c_str(),
                            static_cast<unsigned long long>(sampler_->ticks()));
            }
        }
        if (!trace_path_.empty()) {
            obs::stop_tracing();
            const std::size_t events = obs::trace_event_count();  // drained by write_trace
            std::ofstream out(trace_path_);
            obs::write_trace(out);
            std::printf("wrote trace to %s (%zu events)\n", trace_path_.c_str(), events);
        }
        if (!metrics_path_.empty()) {
            std::ofstream out(metrics_path_);
            out << obs::Registry::global().snapshot().to_json() << "\n";
            std::printf("wrote metrics snapshot to %s\n", metrics_path_.c_str());
        }
    }

private:
    std::string trace_path_;
    std::string metrics_path_;
    std::string sample_out_;
    std::optional<obs::TimeSeriesSampler> sampler_;
};

}  // namespace asilkit::bench

/// Prints the report, then runs any registered google-benchmark timings.
/// --trace/--metrics (see ObsArgs) cover the report AND the timings.
#define ASILKIT_BENCH_MAIN(print_report)                 \
    int main(int argc, char** argv) {                    \
        asilkit::bench::ObsArgs obs_args(argc, argv);    \
        print_report();                                  \
        benchmark::Initialize(&argc, argv);              \
        if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
        benchmark::RunSpecifiedBenchmarks();             \
        benchmark::Shutdown();                           \
        obs_args.finish();                               \
        return 0;                                        \
    }

# Empty compiler generated dependencies file for asilkit_cli_lib.
# This may be replaced when dependencies are built.

#include "graph/digraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "graph/algorithms.h"

namespace asilkit::graph {
namespace {

struct NodePayload {
    std::string name;
};
struct EdgePayload {
    int weight = 0;
};

struct TestNodeTag {};
struct TestEdgeTag {};
using TestGraph = Digraph<NodePayload, EdgePayload, StrongId<TestNodeTag>, StrongId<TestEdgeTag>>;
using NId = StrongId<TestNodeTag>;

TEST(Digraph, StartsEmpty) {
    TestGraph g;
    EXPECT_EQ(g.node_count(), 0u);
    EXPECT_EQ(g.edge_count(), 0u);
    EXPECT_TRUE(g.node_ids().empty());
}

TEST(Digraph, AddAndReadNodes) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    EXPECT_EQ(g.node_count(), 2u);
    EXPECT_EQ(g.node(a).name, "a");
    EXPECT_EQ(g.node(b).name, "b");
    EXPECT_TRUE(g.contains(a));
    EXPECT_NE(a, b);
}

TEST(Digraph, AddEdgesAndAdjacency) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    const auto c = g.add_node({"c"});
    g.add_edge(a, b, {1});
    g.add_edge(a, c, {2});
    g.add_edge(b, c, {3});
    EXPECT_EQ(g.edge_count(), 3u);
    EXPECT_EQ(g.out_degree(a), 2u);
    EXPECT_EQ(g.in_degree(c), 2u);
    EXPECT_EQ(g.successors(a), (std::vector<NId>{b, c}));
    EXPECT_EQ(g.predecessors(c), (std::vector<NId>{a, b}));
}

TEST(Digraph, FindEdge) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    const auto e = g.add_edge(a, b);
    EXPECT_EQ(g.find_edge(a, b), e);
    EXPECT_FALSE(g.find_edge(b, a).valid());
}

TEST(Digraph, EraseEdge) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    const auto e = g.add_edge(a, b);
    g.erase_edge(e);
    EXPECT_EQ(g.edge_count(), 0u);
    EXPECT_EQ(g.out_degree(a), 0u);
    EXPECT_EQ(g.in_degree(b), 0u);
    EXPECT_FALSE(g.contains(e));
}

TEST(Digraph, EraseNodeRemovesIncidentEdges) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    const auto c = g.add_node({"c"});
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, b);
    g.erase_node(b);
    EXPECT_EQ(g.node_count(), 2u);
    EXPECT_EQ(g.edge_count(), 0u);
    EXPECT_FALSE(g.contains(b));
    EXPECT_TRUE(g.contains(a));
}

TEST(Digraph, SlotReuseAfterErase) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    g.add_node({"b"});
    g.erase_node(a);
    const auto c = g.add_node({"c"});
    EXPECT_EQ(c.value(), a.value());  // slot recycled
    EXPECT_EQ(g.node(c).name, "c");
    EXPECT_EQ(g.node_count(), 2u);
}

TEST(Digraph, SelfLoopAllowed) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    g.add_edge(a, a);
    EXPECT_EQ(g.successors(a), (std::vector<NId>{a}));
    g.erase_node(a);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, ParallelEdgesAllowed) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    g.add_edge(a, b, {1});
    g.add_edge(a, b, {2});
    EXPECT_EQ(g.edge_count(), 2u);
    EXPECT_EQ(g.out_degree(a), 2u);
}

TEST(Digraph, AccessInvalidNodeThrows) {
    TestGraph g;
    EXPECT_THROW((void)g.node(NId{0}), ModelError);
    EXPECT_THROW((void)g.node(NId{}), ModelError);
    const auto a = g.add_node({"a"});
    g.erase_node(a);
    EXPECT_THROW((void)g.node(a), ModelError);
    EXPECT_THROW((void)g.successors(a), ModelError);
}

TEST(Digraph, EdgeToInvalidNodeThrows) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    EXPECT_THROW((void)g.add_edge(a, NId{5}), ModelError);
}

TEST(Digraph, NodeIdsAscending) {
    TestGraph g;
    g.add_node({"a"});
    const auto b = g.add_node({"b"});
    g.add_node({"c"});
    g.erase_node(b);
    const auto ids = g.node_ids();
    EXPECT_EQ(ids.size(), 2u);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(Digraph, Clear) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    g.add_edge(a, b);
    g.clear();
    EXPECT_EQ(g.node_count(), 0u);
    EXPECT_EQ(g.edge_count(), 0u);
}

// ---- algorithms -----------------------------------------------------------

TestGraph diamond() {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    const auto c = g.add_node({"c"});
    const auto d = g.add_node({"d"});
    g.add_edge(a, b);
    g.add_edge(a, c);
    g.add_edge(b, d);
    g.add_edge(c, d);
    return g;
}

TEST(Algorithms, AcyclicGraphHasNoCycle) {
    const TestGraph g = diamond();
    EXPECT_FALSE(has_cycle(g));
}

TEST(Algorithms, DetectsCycle) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    const auto c = g.add_node({"c"});
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, a);
    EXPECT_TRUE(has_cycle(g));
}

TEST(Algorithms, DetectsSelfLoopCycle) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    g.add_edge(a, a);
    EXPECT_TRUE(has_cycle(g));
}

TEST(Algorithms, TopologicalOrderRespectsEdges) {
    const TestGraph g = diamond();
    const auto order = topological_order(g);
    ASSERT_EQ(order.size(), 4u);
    auto position = [&](NId n) {
        return std::find(order.begin(), order.end(), n) - order.begin();
    };
    for (auto e : g.edge_ids()) {
        EXPECT_LT(position(g.edge(e).source), position(g.edge(e).sink));
    }
}

TEST(Algorithms, TopologicalOrderThrowsOnCycle) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    g.add_edge(a, b);
    g.add_edge(b, a);
    EXPECT_THROW((void)topological_order(g), ModelError);
}

TEST(Algorithms, Reachability) {
    TestGraph g = diamond();
    const auto ids = g.node_ids();
    const auto from_a = reachable_from(g, ids[0]);
    EXPECT_EQ(from_a.size(), 4u);
    const auto from_b = reachable_from(g, ids[1]);
    EXPECT_EQ(from_b.size(), 2u);  // b, d
    const auto to_d = reaching(g, ids[3]);
    EXPECT_EQ(to_d.size(), 4u);
    const auto to_b = reaching(g, ids[1]);
    EXPECT_EQ(to_b.size(), 2u);  // a, b
}

TEST(Algorithms, CountPathsDiamond) {
    const TestGraph g = diamond();
    const auto ids = g.node_ids();
    EXPECT_EQ(count_paths(g, ids[0], ids[3]), 2u);
    EXPECT_EQ(count_paths(g, ids[1], ids[3]), 1u);
    EXPECT_EQ(count_paths(g, ids[3], ids[0]), 0u);
}

TEST(Algorithms, CountPathsGrowsExponentiallyWithDiamondChain) {
    // k chained diamonds have 2^k source->sink paths: the effect that
    // motivates the paper's Section V approximation.
    TestGraph g;
    auto head = g.add_node({"head"});
    const auto source = head;
    for (int k = 0; k < 10; ++k) {
        const auto left = g.add_node({"l"});
        const auto right = g.add_node({"r"});
        const auto join = g.add_node({"j"});
        g.add_edge(head, left);
        g.add_edge(head, right);
        g.add_edge(left, join);
        g.add_edge(right, join);
        head = join;
    }
    EXPECT_EQ(count_paths(g, source, head), 1024u);
}

TEST(Algorithms, CountPathsIgnoresBackEdges) {
    TestGraph g;
    const auto a = g.add_node({"a"});
    const auto b = g.add_node({"b"});
    const auto c = g.add_node({"c"});
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, b);  // cycle b->c->b
    EXPECT_EQ(count_paths(g, a, c), 1u);
}

TEST(Algorithms, RandomEditSequenceKeepsInvariants) {
    std::mt19937 rng(7);
    TestGraph g;
    std::vector<NId> live;
    for (int step = 0; step < 500; ++step) {
        const auto action = rng() % 4;
        if (action == 0 || live.size() < 2) {
            live.push_back(g.add_node({"n"}));
        } else if (action == 1) {
            g.add_edge(live[rng() % live.size()], live[rng() % live.size()]);
        } else if (action == 2 && !live.empty()) {
            const std::size_t i = rng() % live.size();
            g.erase_node(live[i]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
            const auto edges = g.edge_ids();
            if (!edges.empty()) g.erase_edge(edges[rng() % edges.size()]);
        }
        // Invariants: counts agree with id enumerations, adjacency is
        // symmetric between in/out views.
        EXPECT_EQ(g.node_ids().size(), g.node_count());
        EXPECT_EQ(g.edge_ids().size(), g.edge_count());
        std::size_t out_total = 0;
        std::size_t in_total = 0;
        for (auto n : g.node_ids()) {
            out_total += g.out_degree(n);
            in_total += g.in_degree(n);
        }
        EXPECT_EQ(out_total, g.edge_count());
        EXPECT_EQ(in_total, g.edge_count());
    }
}

}  // namespace
}  // namespace asilkit::graph

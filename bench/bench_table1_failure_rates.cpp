// Table I: resource failure rates (failures/hour) by kind and ASIL.
//
// Regenerates the paper's table from the FailureRates implementation and
// times the rate lookups used on the fault-tree generation hot path.
#include "bench_util.h"

#include "model/failure_rates.h"

using namespace asilkit;

namespace {

void print_report() {
    bench::heading("Table I: resource failure rates (failures/hour)");
    std::printf("  %-20s %-10s %-10s %-10s %-10s %-10s\n", "Resource type", "QM", "A", "B", "C",
                "D");
    const FailureRates rates = FailureRates::table1();
    auto print_kind = [&](const char* label, ResourceKind kind) {
        std::printf("  %-20s ", label);
        for (Asil a : kAllAsilLevels) std::printf("%-10.0e ", rates.rate(kind, a));
        std::printf("\n");
    };
    print_kind("Splitter or Merger", ResourceKind::Splitter);
    print_kind("Other (functional)", ResourceKind::Functional);
    print_kind("Other (comm)", ResourceKind::Communication);
    print_kind("Other (sensor)", ResourceKind::Sensor);
    print_kind("Other (actuator)", ResourceKind::Actuator);
    bench::row("physical location rate", rates.location_rate());
    bench::note("paper Table I reads '10e-6' style entries as powers of ten;");
    bench::note("splitter/merger hardware is one decade more reliable per level.");
}

void BM_RateLookup(benchmark::State& state) {
    const FailureRates rates;
    std::size_t i = 0;
    for (auto _ : state) {
        const auto kind = kAllResourceKinds[i % kResourceKindCount];
        const auto asil = kAllAsilLevels[i % kAsilLevelCount];
        benchmark::DoNotOptimize(rates.rate(kind, asil));
        ++i;
    }
}
BENCHMARK(BM_RateLookup);

void BM_ResourceRateWithOverride(benchmark::State& state) {
    const FailureRates rates;
    Resource r{"ecu", ResourceKind::Functional, Asil::D, 3.3e-9, {}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(rates.resource_rate(r));
    }
}
BENCHMARK(BM_ResourceRateWithOverride);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

// Basic-event importance measures (extension beyond the paper's text).
//
// For each basic event i with probability p_i and top-event probability
// Q = P(top):
//   * Birnbaum       B_i  = P(top | i occurred) - P(top | i did not),
//                    the partial derivative dQ/dp_i;
//   * Criticality    C_i  = B_i * p_i / Q, the probability the event is
//                    critical AND failed given the system failed;
//   * Fussell-Vesely FV_i = 1 - P(top | p_i = 0) / Q, the fraction of
//                    system failure probability flowing through i.
// All three are evaluated exactly on the BDD by re-running the Shannon
// probability recursion with the conditioned probability vector.
#pragma once

#include <string>
#include <vector>

#include "ftree/fault_tree.h"

namespace asilkit::analysis {

struct ImportanceEntry {
    std::string event;
    double probability = 0.0;
    double birnbaum = 0.0;
    double criticality = 0.0;
    double fussell_vesely = 0.0;
};

/// One entry per basic event reachable from the top gate, sorted by
/// descending Birnbaum importance.
[[nodiscard]] std::vector<ImportanceEntry> importance_measures(const ftree::FaultTree& ft,
                                                               double mission_hours = 1.0);

}  // namespace asilkit::analysis

#include "core/asil.h"

#include <array>
#include <cctype>
#include <ostream>

namespace asilkit {
namespace {

constexpr std::array<std::string_view, kAsilLevelCount> kShortNames = {
    "QM", "A", "B", "C", "D"};

[[nodiscard]] std::string to_upper(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    return out;
}

}  // namespace

std::string_view to_string(Asil a) noexcept {
    return kShortNames[static_cast<std::size_t>(a)];
}

std::string to_long_string(Asil a) {
    if (a == Asil::QM) return "QM";
    return "ASIL " + std::string(to_string(a));
}

std::optional<Asil> asil_from_string(std::string_view text) noexcept {
    std::string upper = to_upper(text);
    std::string_view s = upper;
    if (s.starts_with("ASIL")) {
        s.remove_prefix(4);
        while (!s.empty() && (s.front() == ' ' || s.front() == '_' || s.front() == '-')) {
            s.remove_prefix(1);
        }
    }
    for (Asil a : kAllAsilLevels) {
        if (s == to_string(a)) return a;
    }
    return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, Asil a) { return os << to_string(a); }

std::string to_string(const AsilTag& tag) {
    std::string out{to_string(tag.level)};
    if (tag.is_decomposed()) {
        out += '(';
        out += to_string(tag.inherited);
        out += ')';
    }
    return out;
}

std::ostream& operator<<(std::ostream& os, const AsilTag& tag) {
    return os << to_string(tag);
}

}  // namespace asilkit

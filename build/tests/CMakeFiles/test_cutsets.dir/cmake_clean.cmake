file(REMOVE_RECURSE
  "CMakeFiles/test_cutsets.dir/test_cutsets.cpp.o"
  "CMakeFiles/test_cutsets.dir/test_cutsets.cpp.o.d"
  "test_cutsets"
  "test_cutsets.pdb"
  "test_cutsets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cutsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

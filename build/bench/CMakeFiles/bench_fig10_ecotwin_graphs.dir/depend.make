# Empty dependencies file for bench_fig10_ecotwin_graphs.
# This may be replaced when dependencies are built.

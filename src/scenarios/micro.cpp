#include "scenarios/micro.h"

#include "scenarios/builder.h"

namespace asilkit::scenarios {

ArchitectureModel chain_1in_1out() {
    ScenarioBuilder b("chain-1in-1out");
    const LocationId front = b.loc("front");
    const LocationId center = b.loc("center");
    const NodeId s = b.sensor("sens", Asil::D, front);
    const NodeId cin = b.comm("c_in", Asil::D, front);
    const NodeId n = b.func("n", Asil::D, center);
    const NodeId cout = b.comm("c_out", Asil::D, center);
    const NodeId a = b.actuator("act", Asil::D, center);
    b.chain({s, cin, n, cout, a});
    return b.take();
}

ArchitectureModel chain_1in_2out() {
    ScenarioBuilder b("chain-1in-2out");
    const LocationId front = b.loc("front");
    const LocationId center = b.loc("center");
    const LocationId rear = b.loc("rear");
    const NodeId s = b.sensor("sens", Asil::D, front);
    const NodeId cin = b.comm("c_in", Asil::D, front);
    const NodeId n = b.func("n", Asil::D, center);
    const NodeId c1 = b.comm("c_out1", Asil::D, center);
    const NodeId c2 = b.comm("c_out2", Asil::D, center);
    const NodeId a1 = b.actuator("act1", Asil::D, center);
    const NodeId a2 = b.actuator("act2", Asil::D, rear);
    b.chain({s, cin, n, c1, a1});
    b.link(n, c2);
    b.link(c2, a2);
    return b.take();
}

ArchitectureModel chain_3in_3out() {
    ScenarioBuilder b("chain-3in-3out");
    const LocationId front = b.loc("front");
    const LocationId center = b.loc("center");
    const LocationId rear = b.loc("rear");
    const NodeId n = b.func("n", Asil::D, center);
    for (int i = 1; i <= 3; ++i) {
        const NodeId s = b.sensor("sens" + std::to_string(i), Asil::D, front);
        const NodeId c = b.comm("c_in" + std::to_string(i), Asil::D, front);
        b.chain({s, c, n});
    }
    for (int i = 1; i <= 3; ++i) {
        const NodeId c = b.comm("c_out" + std::to_string(i), Asil::D, rear);
        const NodeId a = b.actuator("act" + std::to_string(i), Asil::D, rear);
        b.chain({n, c, a});
    }
    return b.take();
}

ArchitectureModel chain_two_stages() {
    ScenarioBuilder b("chain-two-stages");
    const LocationId front = b.loc("front");
    const LocationId center = b.loc("center");
    const NodeId s = b.sensor("sens", Asil::D, front);
    const NodeId c0 = b.comm("c0", Asil::D, front);
    const NodeId n1 = b.func("n1", Asil::D, center);
    const NodeId cmid = b.comm("c_mid", Asil::D, center);
    const NodeId n2 = b.func("n2", Asil::D, center);
    const NodeId c5 = b.comm("c5", Asil::D, center);
    const NodeId a = b.actuator("act", Asil::D, center);
    b.chain({s, c0, n1, cmid, n2, c5, a});
    return b.take();
}

ArchitectureModel chain_n_stages(std::size_t stages, Asil level) {
    ScenarioBuilder b("chain-" + std::to_string(stages) + "-stages");
    const LocationId front = b.loc("front");
    const LocationId center = b.loc("center");
    NodeId prev = b.sensor("sens", level, front);
    {
        const NodeId c = b.comm("c0", level, front);
        b.link(prev, c);
        prev = c;
    }
    for (std::size_t i = 1; i <= stages; ++i) {
        const NodeId f = b.func("f" + std::to_string(i), level, center);
        const NodeId c = b.comm("c" + std::to_string(i), level, center);
        b.link(prev, f);
        b.link(f, c);
        prev = c;
    }
    const NodeId a = b.actuator("act", level, center);
    b.link(prev, a);
    return b.take();
}

}  // namespace asilkit::scenarios

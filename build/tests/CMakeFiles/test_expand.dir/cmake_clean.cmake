file(REMOVE_RECURSE
  "CMakeFiles/test_expand.dir/test_expand.cpp.o"
  "CMakeFiles/test_expand.dir/test_expand.cpp.o.d"
  "test_expand"
  "test_expand.pdb"
  "test_expand[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

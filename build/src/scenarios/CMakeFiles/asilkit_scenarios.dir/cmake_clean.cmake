file(REMOVE_RECURSE
  "CMakeFiles/asilkit_scenarios.dir/builder.cpp.o"
  "CMakeFiles/asilkit_scenarios.dir/builder.cpp.o.d"
  "CMakeFiles/asilkit_scenarios.dir/ecotwin.cpp.o"
  "CMakeFiles/asilkit_scenarios.dir/ecotwin.cpp.o.d"
  "CMakeFiles/asilkit_scenarios.dir/fig3.cpp.o"
  "CMakeFiles/asilkit_scenarios.dir/fig3.cpp.o.d"
  "CMakeFiles/asilkit_scenarios.dir/longitudinal.cpp.o"
  "CMakeFiles/asilkit_scenarios.dir/longitudinal.cpp.o.d"
  "CMakeFiles/asilkit_scenarios.dir/micro.cpp.o"
  "CMakeFiles/asilkit_scenarios.dir/micro.cpp.o.d"
  "CMakeFiles/asilkit_scenarios.dir/synthetic.cpp.o"
  "CMakeFiles/asilkit_scenarios.dir/synthetic.cpp.o.d"
  "libasilkit_scenarios.a"
  "libasilkit_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for asilkit_core.
# This may be replaced when dependencies are built.

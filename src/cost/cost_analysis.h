// Architecture cost calculation (paper Section VI).
//
// The cost of an architecture is the sum of the metric cost of its
// resources.  Only resources that actually implement application nodes
// count by default (MapG-used), so removing a node together with its
// dedicated hardware — as Connect()/Reduce() do — lowers the total.
#pragma once

#include <string>
#include <vector>

#include "cost/cost_metric.h"
#include "model/architecture.h"

namespace asilkit::cost {

struct CostOptions {
    /// Count every resource in the resource graph, including unused spares.
    bool include_unused_resources = false;
};

struct CostBreakdownEntry {
    ResourceId resource;
    std::string name;
    ResourceKind kind = ResourceKind::Functional;
    Asil asil = Asil::QM;
    double cost = 0.0;
};

struct CostReport {
    double total = 0.0;
    std::vector<CostBreakdownEntry> breakdown;  ///< descending by cost
    /// Per-kind subtotal, indexed by static_cast<size_t>(ResourceKind).
    std::array<double, kResourceKindCount> by_kind{};
};

[[nodiscard]] double total_cost(const ArchitectureModel& m, const CostMetric& metric,
                                const CostOptions& options = {});

[[nodiscard]] CostReport cost_report(const ArchitectureModel& m, const CostMetric& metric,
                                     const CostOptions& options = {});

/// Total cost after merging resource `from` into `into` (the merge raises
/// `into` to the cheapest feasible ASIL — asil_max of the pair, per Eq. 3
/// — and removes `from`), given the pre-merge `current_total` under the
/// same metric and default CostOptions.  This mirrors the bookkeeping of
/// explore::search_mapping's apply_merge exactly, so the value is both an
/// admissible lower bound for pruning and the exact post-merge total.
[[nodiscard]] double merged_total_cost(double current_total, const CostMetric& metric,
                                       const Resource& into, const Resource& from);

}  // namespace asilkit::cost

#include "ftree/fault_tree.h"

#include <gtest/gtest.h>

namespace asilkit::ftree {
namespace {

TEST(FaultTree, BasicEventsDedupByName) {
    FaultTree ft;
    const FtRef a = ft.add_basic_event("e", 1e-6);
    const FtRef b = ft.add_basic_event("e", 1e-6);
    EXPECT_EQ(a, b);
    EXPECT_EQ(ft.basic_events().size(), 1u);
}

TEST(FaultTree, ConflictingLambdaRejected) {
    FaultTree ft;
    ft.add_basic_event("e", 1e-6);
    EXPECT_THROW(ft.add_basic_event("e", 2e-6), AnalysisError);
}

TEST(FaultTree, GateConstruction) {
    FaultTree ft;
    const FtRef e1 = ft.add_basic_event("e1", 1e-6);
    const FtRef e2 = ft.add_basic_event("e2", 1e-6);
    const FtRef g = ft.add_gate("g", GateKind::Or, {e1});
    ft.add_child(g, e2);
    EXPECT_EQ(ft.gate(g).children.size(), 2u);
    EXPECT_EQ(ft.gate(g).kind, GateKind::Or);
    EXPECT_EQ(ft.gate(g).name, "g");
}

TEST(FaultTree, AddChildRequiresGate) {
    FaultTree ft;
    const FtRef e = ft.add_basic_event("e", 1e-6);
    EXPECT_THROW(ft.add_child(e, e), AnalysisError);
}

TEST(FaultTree, TopEventRequired) {
    FaultTree ft;
    EXPECT_FALSE(ft.has_top());
    EXPECT_THROW(ft.top(), AnalysisError);
    const FtRef e = ft.add_basic_event("e", 1e-6);
    ft.set_top(e);
    EXPECT_TRUE(ft.has_top());
    EXPECT_EQ(ft.top(), e);
}

TEST(FaultTree, AccessorsValidate) {
    FaultTree ft;
    EXPECT_THROW(ft.basic_event(0), AnalysisError);
    EXPECT_THROW(ft.gate(0), AnalysisError);
    const FtRef e = ft.add_basic_event("e", 1e-6);
    EXPECT_THROW(ft.gate(e), AnalysisError);  // wrong-kind FtRef
    const FtRef g = ft.add_gate("g", GateKind::And, {e});
    EXPECT_THROW(ft.basic_event(g), AnalysisError);
}

TEST(FaultTree, FindBasicEvent) {
    FaultTree ft;
    const FtRef e = ft.add_basic_event("needle", 1e-6);
    EXPECT_EQ(ft.find_basic_event("needle"), e);
    EXPECT_TRUE(ft.has_basic_event("needle"));
    EXPECT_FALSE(ft.has_basic_event("hay"));
    EXPECT_THROW(ft.find_basic_event("hay"), AnalysisError);
}

TEST(FaultTree, StatsOnSimpleTree) {
    FaultTree ft;
    const FtRef e1 = ft.add_basic_event("e1", 1e-6);
    const FtRef e2 = ft.add_basic_event("e2", 1e-6);
    const FtRef g = ft.add_gate("g", GateKind::Or, {e1, e2});
    ft.set_top(g);
    const FaultTreeStats s = ft.stats();
    EXPECT_EQ(s.basic_events, 2u);
    EXPECT_EQ(s.gates, 1u);
    EXPECT_EQ(s.dag_nodes, 3u);
    EXPECT_EQ(s.expanded_nodes, 3u);
    EXPECT_EQ(s.paths, 2u);
    EXPECT_EQ(s.depth, 2u);
}

TEST(FaultTree, StatsCountSharedSubtreeOncePerDag) {
    FaultTree ft;
    const FtRef e = ft.add_basic_event("shared", 1e-6);
    const FtRef g1 = ft.add_gate("g1", GateKind::Or, {e});
    const FtRef g2 = ft.add_gate("g2", GateKind::Or, {e});
    const FtRef top = ft.add_gate("top", GateKind::And, {g1, g2});
    ft.set_top(top);
    const FaultTreeStats s = ft.stats();
    EXPECT_EQ(s.dag_nodes, 4u);       // shared event counted once
    EXPECT_EQ(s.expanded_nodes, 5u);  // but appears twice in the tree view
    EXPECT_EQ(s.paths, 2u);
}

TEST(FaultTree, StatsEmptyWithoutTop) {
    const FaultTree ft;
    EXPECT_EQ(ft.stats().dag_nodes, 0u);
}

TEST(FaultTree, StatsIgnoreUnreachableNodes) {
    FaultTree ft;
    const FtRef e = ft.add_basic_event("e", 1e-6);
    ft.add_basic_event("unreachable", 1e-6);
    const FtRef g = ft.add_gate("g", GateKind::Or, {e});
    ft.add_gate("dead", GateKind::And, {e});
    ft.set_top(g);
    EXPECT_EQ(ft.stats().basic_events, 1u);
    EXPECT_EQ(ft.stats().gates, 1u);
}

TEST(FaultTree, PathsGrowExponentiallyWithAndChains) {
    // Chain of k 2-way gates: paths double per level (Section V blow-up).
    FaultTree ft;
    FtRef current = ft.add_basic_event("seed", 1e-6);
    for (int k = 0; k < 10; ++k) {
        const FtRef left = ft.add_gate("l" + std::to_string(k), GateKind::Or, {current});
        const FtRef right = ft.add_gate("r" + std::to_string(k), GateKind::Or, {current});
        current = ft.add_gate("j" + std::to_string(k), GateKind::And, {left, right});
    }
    ft.set_top(current);
    EXPECT_EQ(ft.stats().paths, 1024u);
}

TEST(FaultTree, ReachableBasicEvents) {
    FaultTree ft;
    const FtRef e1 = ft.add_basic_event("e1", 1e-6);
    const FtRef e2 = ft.add_basic_event("e2", 1e-6);
    ft.add_basic_event("e3", 1e-6);
    const FtRef g = ft.add_gate("g", GateKind::Or, {e1, e2, e1});
    const auto reachable = ft.reachable_basic_events(g);
    EXPECT_EQ(reachable, (std::vector<std::uint32_t>{0, 1}));
}

TEST(FaultTree, GateKindNames) {
    EXPECT_EQ(to_string(GateKind::Or), "OR");
    EXPECT_EQ(to_string(GateKind::And), "AND");
}

}  // namespace
}  // namespace asilkit::ftree

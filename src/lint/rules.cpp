// The built-in rule catalogue (see docs/lint.md for the table).
//
// Ten rules port the model/validation.h checks 1:1 (same trigger
// conditions, now with stable ids, locations and fix-its); the remaining
// rules cover cross-layer soundness the validator cannot express.  Every
// rule is purely structural — no fault tree, no BDD — so the whole
// catalogue runs in (near-)linear time over the model.
#include <algorithm>
#include <set>
#include <unordered_set>

#include "core/decomposition.h"
#include "graph/algorithms.h"
#include "lint/lint.h"
#include "transform/reduce.h"

namespace asilkit::lint {
namespace {

/// A rule defined by static metadata plus a stateless check function.
class CheckRule final : public Rule {
public:
    using CheckFn = void (*)(const LintContext&, std::vector<Finding>&);

    CheckRule(const RuleInfo& info, CheckFn check) : info_(info), check_(check) {}

    [[nodiscard]] const RuleInfo& info() const noexcept override { return info_; }
    void run(const LintContext& ctx, std::vector<Finding>& out) const override {
        check_(ctx, out);
    }

private:
    RuleInfo info_;
    CheckFn check_;
};

// ---- ported validator rules ------------------------------------------------

void check_unmapped_node(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    for (NodeId n : m.app().node_ids()) {
        if (!m.mapped_resources(n).empty()) continue;
        const AppNode& node = m.app().node(n);
        out.push_back({"application node '" + node.name + "' is not mapped to any resource",
                       ModelLocation::app_node(m, n),
                       "map_node('" + node.name + "') onto an " +
                           to_long_string(node.asil.level) + "-ready " +
                           std::string(to_string(default_resource_kind(node.kind))) +
                           " resource"});
    }
}

void check_incompatible_mapping(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        for (ResourceId r : m.mapped_resources(n)) {
            const Resource& res = m.resources().node(r);
            if (mapping_compatible(node.kind, res.kind)) continue;
            out.push_back({"node '" + node.name + "' (" + std::string(to_string(node.kind)) +
                               ") mapped on incompatible resource '" + res.name + "' (" +
                               std::string(to_string(res.kind)) + ")",
                           ModelLocation::app_node(m, n),
                           "remap '" + node.name + "' onto a " +
                               std::string(to_string(default_resource_kind(node.kind))) +
                               " resource"});
        }
    }
}

void check_under_implemented_asil(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        if (m.mapped_resources(n).empty()) continue;  // map.unmapped-node covers it
        const Asil eff = m.effective_asil(n);
        if (asil_value(eff) >= asil_value(node.asil.level)) continue;
        out.push_back({"node '" + node.name + "' requires " + to_long_string(node.asil.level) +
                           " but its mapping only provides " + to_long_string(eff),
                       ModelLocation::app_node(m, n),
                       "remap '" + node.name + "' onto " + to_long_string(node.asil.level) +
                           "-ready resources, or raise the readiness of its current ones"});
    }
}

void check_unplaced_resource(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    for (ResourceId r : m.resources().node_ids()) {
        if (!m.resource_locations(r).empty()) continue;
        const std::string& name = m.resources().node(r).name;
        out.push_back({"resource '" + name + "' has no physical location",
                       ModelLocation::resource(m, r),
                       "place_resource('" + name + "') at a physical-layer location"});
    }
}

void check_splitter_degree(const LintContext& ctx, std::vector<Finding>& out) {
    const AppGraph& g = ctx.model().app();
    for (NodeId n : g.node_ids()) {
        const AppNode& node = g.node(n);
        if (node.kind != NodeKind::Splitter) continue;
        if (g.in_degree(n) >= 1 && g.out_degree(n) >= 2) continue;
        out.push_back({"splitter '" + node.name + "' must have >=1 input and >=2 outputs",
                       ModelLocation::app_node(ctx.model(), n),
                       "rewire '" + node.name + "' into a redundant block, or erase the leftover"});
    }
}

void check_merger_degree(const LintContext& ctx, std::vector<Finding>& out) {
    const AppGraph& g = ctx.model().app();
    for (NodeId n : g.node_ids()) {
        const AppNode& node = g.node(n);
        if (node.kind != NodeKind::Merger) continue;
        if (g.in_degree(n) >= 2 && g.out_degree(n) >= 1) continue;
        out.push_back({"merger '" + node.name + "' must have >=2 inputs and >=1 output",
                       ModelLocation::app_node(ctx.model(), n),
                       "rewire '" + node.name + "' into a redundant block, or erase the leftover"});
    }
}

void check_ill_formed_block(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    for (const RedundantBlock& block : ctx.blocks()) {
        if (block.well_formed) continue;
        const std::string& merger_name = m.app().node(block.merger).name;
        for (const std::string& why : block.issues) {
            out.push_back({"block at merger '" + merger_name + "': " + why,
                           ModelLocation::app_node(m, block.merger),
                           "restore the splitter/branches/merger structure (re-run "
                           "transform::Expand, or erase the stray edges)"});
        }
    }
}

/// Strongest inherited level among a block's redundancy-management nodes:
/// the level Y the original FSR was written at (shared by the ported
/// under-achieved rule and the new pattern / Eq. 3 rules).
Asil block_inherited(const ArchitectureModel& m, const RedundantBlock& block) {
    Asil inherited = m.app().node(block.merger).asil.inherited;
    for (NodeId s : block.splitters) {
        inherited = asil_max(inherited, m.app().node(s).asil.inherited);
    }
    return inherited;
}

void check_under_achieved_decomposition(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    for (const RedundantBlock& block : ctx.blocks()) {
        if (!block.well_formed) continue;
        const Asil inherited = block_inherited(m, block);
        const Asil achieved = block_asil(m, block);
        if (asil_value(achieved) >= asil_value(inherited)) continue;
        const std::string& merger_name = m.app().node(block.merger).name;
        out.push_back({"block at merger '" + merger_name + "' achieves " +
                           to_long_string(achieved) + " but inherits a " +
                           to_long_string(inherited) + " requirement",
                       ModelLocation::app_node(m, block.merger),
                       "raise the branch implementations (remap onto stronger hardware) or "
                       "re-Expand with pattern " +
                           to_string(decompositions_of(inherited).front())});
    }
}

void check_unreachable_actuator(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    const AppGraph& g = m.app();
    std::unordered_set<NodeId> fed;  // nodes reachable from any sensor
    for (NodeId n : g.node_ids()) {
        if (g.node(n).kind != NodeKind::Sensor) continue;
        for (NodeId reached : graph::reachable_from(g, n)) fed.insert(reached);
    }
    for (NodeId a : g.node_ids()) {
        if (g.node(a).kind != NodeKind::Actuator || fed.contains(a)) continue;
        out.push_back({"actuator '" + g.node(a).name + "' is not fed by any sensor",
                       ModelLocation::app_node(m, a),
                       "connect_app a sensing path into '" + g.node(a).name + "'"});
    }
}

void check_dangling_sensor(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    const AppGraph& g = m.app();
    std::unordered_set<NodeId> feeding;  // nodes reaching any actuator
    for (NodeId n : g.node_ids()) {
        if (g.node(n).kind != NodeKind::Actuator) continue;
        for (NodeId reaching : graph::reaching(g, n)) feeding.insert(reaching);
    }
    for (NodeId s : g.node_ids()) {
        if (g.node(s).kind != NodeKind::Sensor || feeding.contains(s)) continue;
        out.push_back({"sensor '" + g.node(s).name + "' does not reach any actuator",
                       ModelLocation::app_node(m, s),
                       "connect_app '" + g.node(s).name +
                           "' toward an actuator, or erase_app_node it"});
    }
}

// ---- new cross-layer rules -------------------------------------------------

void check_invalid_pattern(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    // Tag sanity: the assigned level X of an "ASIL X(Y)" tag can never
    // exceed the origin level Y.
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        if (asil_value(node.asil.level) <= asil_value(node.asil.inherited)) continue;
        out.push_back({"node '" + node.name + "' carries ASIL " + to_string(node.asil) +
                           ": the assigned level cannot exceed the original requirement",
                       ModelLocation::app_node(m, n),
                       "retag '" + node.name + "' as " +
                           to_string(AsilTag{node.asil.inherited})});
    }
    // Catalogue validity per block: the branch requirement levels must be
    // derivable from the Fig. 2 patterns for the inherited parent level.
    for (const RedundantBlock& block : ctx.blocks()) {
        if (!block.well_formed || block.branches.size() < 2) continue;
        const Asil parent = block_inherited(m, block);
        std::vector<Asil> branch_levels;
        branch_levels.reserve(block.branches.size());
        for (const Branch& b : block.branches) {
            // An empty branch (splitter wired straight to the merger) is
            // neutral, matching branch_asil(): bounded by the splitter.
            Asil level = Asil::D;
            for (NodeId n : b.nodes) level = asil_min(level, m.app().node(n).asil.level);
            branch_levels.push_back(level);
        }
        if (is_valid_decomposition(parent, branch_levels)) continue;
        const std::string& merger_name = m.app().node(block.merger).name;
        std::string levels_text;
        for (Asil level : branch_levels) {
            if (!levels_text.empty()) levels_text += "+";
            levels_text += to_string(level);
        }
        out.push_back({"block at merger '" + merger_name + "' decomposes an inherited " +
                           to_long_string(parent) + " requirement into " + levels_text +
                           ", which no sequence of Fig. 2 catalogue patterns produces",
                       ModelLocation::app_node(m, block.merger),
                       "re-Expand with pattern " +
                           to_string(decompositions_of(parent).front())});
    }
}

void emit_ccf_findings(const LintContext& ctx, analysis::CcfKind kind, const char* fixit_verb,
                       std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    for (const analysis::CcfFinding& f : ctx.ccf().findings) {
        if (f.kind != kind) continue;
        std::string branches;
        for (std::size_t i : f.branch_indices) {
            if (!branches.empty()) branches += ", ";
            branches += std::to_string(i);
        }
        out.push_back({f.message, ModelLocation::app_node(m, f.merger),
                       std::string(fixit_verb) + " (branches {" + branches + "} currently share '" +
                           f.subject + "')"});
    }
}

void check_shared_resource_branch(const LintContext& ctx, std::vector<Finding>& out) {
    emit_ccf_findings(ctx, analysis::CcfKind::SharedResource,
                      "remap one branch onto a disjoint resource set", out);
}

void check_shared_location_branch(const LintContext& ctx, std::vector<Finding>& out) {
    emit_ccf_findings(ctx, analysis::CcfKind::SharedLocation,
                      "place_resource the branch hardware at distinct locations", out);
}

void check_shared_environment_branch(const LintContext& ctx, std::vector<Finding>& out) {
    emit_ccf_findings(ctx, analysis::CcfKind::SharedEnvironment,
                      "move one branch out of the shared environmental zone", out);
}

void check_path_inconsistency(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    const AppGraph& g = m.app();
    for (NodeId u : g.node_ids()) {
        const AppNode& from = g.node(u);
        // A merger re-establishes the inherited level on its output, and
        // edges entering redundancy management legitimately carry the
        // decomposed (lower) branch levels.
        if (from.kind == NodeKind::Merger) continue;
        for (NodeId v : g.successors(u)) {
            const AppNode& to = g.node(v);
            if (to.kind == NodeKind::Merger || to.kind == NodeKind::Splitter) continue;
            if (asil_value(from.asil.level) >= asil_value(to.asil.level)) continue;
            out.push_back({"channel '" + from.name + "' -> '" + to.name + "': data required at " +
                               to_long_string(to.asil.level) + " is produced at " +
                               to_long_string(from.asil.level),
                           ModelLocation::app_node(m, u),
                           "raise '" + from.name + "' to " + to_long_string(to.asil.level) +
                               ", or Expand('" + from.name + "') into redundant branches"});
        }
    }
}

void check_dead_splitter_merger(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    for (const RedundantBlock& block : ctx.blocks()) {
        if (!block.well_formed || block.branches.empty()) continue;
        const bool all_empty = std::all_of(block.branches.begin(), block.branches.end(),
                                           [](const Branch& b) { return b.nodes.empty(); });
        if (!all_empty) continue;
        const std::string& merger_name = m.app().node(block.merger).name;
        out.push_back({"block at merger '" + merger_name +
                           "' has only empty branches: the merger compares copies of a single "
                           "data path, so the pair adds hardware without redundancy",
                       ModelLocation::app_node(m, block.merger),
                       "remove the dead pair (transform::Reduce after rewiring), or Expand the "
                       "branches with real replicas"});
    }
}

void check_reducible_pair(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    const AppGraph& g = m.app();
    for (NodeId u : g.node_ids()) {
        for (NodeId v : g.successors(u)) {
            if (!transform::can_reduce(m, u, v)) continue;
            out.push_back({"communication pair '" + g.node(u).name + "' -> '" + g.node(v).name +
                               "' carries the same information twice",
                           ModelLocation::app_node(m, u),
                           "transform::Reduce('" + g.node(u).name + "', '" + g.node(v).name +
                               "')"});
        }
    }
}

void check_effective_asil_regression(const LintContext& ctx, std::vector<Finding>& out) {
    const ArchitectureModel& m = ctx.model();
    for (const RedundantBlock& block : ctx.blocks()) {
        if (!block.well_formed) continue;
        const Asil inherited = block_inherited(m, block);
        std::vector<NodeId> management = block.splitters;
        management.push_back(block.merger);
        for (NodeId n : management) {
            if (m.mapped_resources(n).empty()) continue;  // map.unmapped-node covers it
            const Asil eff = m.effective_asil(n);
            if (asil_value(eff) >= asil_value(inherited)) continue;
            const AppNode& node = m.app().node(n);
            out.push_back(
                {"redundancy-management node '" + node.name + "' of the block at merger '" +
                     m.app().node(block.merger).name + "' is implemented at effective " +
                     to_long_string(eff) + " (Eq. 3), below the inherited " +
                     to_long_string(inherited) +
                     " requirement the decomposition must be assessed at",
                 ModelLocation::app_node(m, n),
                 "remap '" + node.name + "' onto " + to_long_string(inherited) +
                     "-ready hardware"});
        }
    }
}

void register_rule(RuleRegistry& registry, const RuleInfo& info, CheckRule::CheckFn check) {
    registry.add(std::make_unique<CheckRule>(info, check));
}

RuleRegistry make_builtin_registry() {
    RuleRegistry r;
    // Ported validator checks (model/validation.h IssueCode order).
    register_rule(r,
                  {"map.unmapped-node", Severity::Error, "mapping",
                   "application node with no implementing resource"},
                  check_unmapped_node);
    register_rule(r,
                  {"map.incompatible-mapping", Severity::Error, "mapping",
                   "node kind cannot run on the mapped resource kind"},
                  check_incompatible_mapping);
    register_rule(r,
                  {"map.under-implemented-asil", Severity::Warning, "mapping",
                   "effective ASIL (Eq. 3) below the node's requirement"},
                  check_under_implemented_asil);
    register_rule(r,
                  {"map.unplaced-resource", Severity::Warning, "resource+physical",
                   "resource hosted at no physical location"},
                  check_unplaced_resource);
    register_rule(r,
                  {"app.bad-splitter-degree", Severity::Error, "app",
                   "splitter without >=1 input and >=2 outputs"},
                  check_splitter_degree);
    register_rule(r,
                  {"app.bad-merger-degree", Severity::Error, "app",
                   "merger without >=2 inputs and >=1 output"},
                  check_merger_degree);
    register_rule(r,
                  {"app.ill-formed-block", Severity::Error, "app",
                   "redundant block structure broken (overlap / missing splitter)"},
                  check_ill_formed_block);
    register_rule(r,
                  {"asil.decomposition.under-achieved", Severity::Warning, "app+mapping",
                   "block ASIL (Eq. 4) below the inherited requirement"},
                  check_under_achieved_decomposition);
    register_rule(r,
                  {"app.unreachable-actuator", Severity::Warning, "app",
                   "actuator not fed by any sensor"},
                  check_unreachable_actuator);
    register_rule(r,
                  {"app.dangling-sensor", Severity::Warning, "app",
                   "sensor with no path to any actuator"},
                  check_dangling_sensor);
    // Cross-layer rules beyond the validator.
    register_rule(r,
                  {"asil.decomposition.invalid-pattern", Severity::Error, "app",
                   "decomposition tags outside the Fig. 2 catalogue"},
                  check_invalid_pattern);
    register_rule(r,
                  {"ccf.shared-resource-branch", Severity::Error, "app+resource",
                   "decomposed branches share a hardware resource"},
                  check_shared_resource_branch);
    register_rule(r,
                  {"ccf.shared-location-branch", Severity::Warning, "app+resource+physical",
                   "decomposed branches share a physical location"},
                  check_shared_location_branch);
    register_rule(r,
                  {"ccf.shared-environment-branch", Severity::Warning, "app+resource+physical",
                   "decomposed branches share an environmental stressor zone"},
                  check_shared_environment_branch);
    register_rule(r,
                  {"asil.propagation.path-inconsistency", Severity::Warning, "app",
                   "channel feeds a higher-ASIL consumer from a lower-ASIL producer"},
                  check_path_inconsistency);
    register_rule(r,
                  {"transform.dead-splitter-merger", Severity::Warning, "app",
                   "splitter/merger pair whose branches are all empty"},
                  check_dead_splitter_merger);
    register_rule(r,
                  {"transform.reducible-pair", Severity::Note, "app+resource",
                   "consecutive communication pair Reduce() would collapse"},
                  check_reducible_pair);
    register_rule(r,
                  {"map.effective-asil-regression", Severity::Warning, "app+resource+mapping",
                   "mapping drops redundancy management below the inherited level"},
                  check_effective_asil_regression);
    return r;
}

}  // namespace

const RuleRegistry& RuleRegistry::builtin() {
    static const RuleRegistry registry = make_builtin_registry();
    return registry;
}

}  // namespace asilkit::lint

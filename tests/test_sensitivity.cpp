#include "analysis/sensitivity.h"

#include <gtest/gtest.h>

#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::analysis {
namespace {

TEST(Sensitivity, RateSweepIsMonotone) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    RateSweepOptions options;
    options.kind = ResourceKind::Functional;
    options.asil = Asil::D;
    const auto points = sweep_failure_rate(m, options);
    ASSERT_EQ(points.size(), options.multipliers.size());
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].failure_probability, points[i - 1].failure_probability);
        EXPECT_GT(points[i].parameter, points[i - 1].parameter);
    }
}

TEST(Sensitivity, RateSweepAtUnityMatchesBaseline) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    RateSweepOptions options;
    options.multipliers = {1.0};
    const auto points = sweep_failure_rate(m, options);
    const double baseline = analyze_failure_probability(m).failure_probability;
    ASSERT_EQ(points.size(), 1u);
    EXPECT_DOUBLE_EQ(points[0].failure_probability, baseline);
}

TEST(Sensitivity, SweepOfAbsentClassIsFlat) {
    const ArchitectureModel m = scenarios::chain_1in_1out();  // all ASIL D
    RateSweepOptions options;
    options.kind = ResourceKind::Functional;
    options.asil = Asil::QM;  // no QM hardware in the model
    options.multipliers = {0.1, 10.0};
    const auto points = sweep_failure_rate(m, options);
    EXPECT_DOUBLE_EQ(points[0].failure_probability, points[1].failure_probability);
}

TEST(Sensitivity, MissionSweepIsMonotoneAndLinearAtSmallRates) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    MissionSweepOptions options;
    const auto points = sweep_mission_time(m, options);
    ASSERT_EQ(points.size(), options.hours.size());
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].failure_probability, points[i - 1].failure_probability);
    }
    // lambda*t << 1: P ~ t, so P(10h)/P(1h) ~ 10.
    EXPECT_NEAR(points[1].failure_probability / points[0].failure_probability, 10.0, 0.01);
}

TEST(Sensitivity, TornadoRanksSeriesDominatorsFirst) {
    // Fig. 3: the ASIL B sensors dominate the system failure probability;
    // the tornado must rank (Sensor, B) above everything else.
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const auto entries = tornado(m);
    ASSERT_FALSE(entries.empty());
    EXPECT_EQ(entries.front().kind, ResourceKind::Sensor);
    EXPECT_EQ(entries.front().asil, Asil::B);
    for (const auto& e : entries) {
        EXPECT_LE(e.low, e.high) << to_string(e.kind);
        EXPECT_GE(e.swing(), 0.0);
    }
    // Sorted by descending swing.
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_GE(entries[i - 1].swing(), entries[i].swing());
    }
}

TEST(Sensitivity, TornadoCoversOnlyPresentClasses) {
    const ArchitectureModel m = scenarios::chain_1in_1out();  // all ASIL D
    const auto entries = tornado(m);
    for (const auto& e : entries) {
        EXPECT_EQ(e.asil, Asil::D);
    }
    // Functional, Communication, Sensor, Actuator at D: 4 classes.
    EXPECT_EQ(entries.size(), 4u);
}

TEST(Sensitivity, BranchRatesBarelyMatterAfterDecomposition) {
    // After expansion, the branch-class rate (Functional, B) sits under
    // the AND: scaling it x10 must move P far less than scaling the
    // series (Communication, D) class.
    ArchitectureModel m = scenarios::chain_1in_1out();
    transform::expand(m, m.find_app_node("n"));
    const auto entries = tornado(m);
    double branch_swing = -1.0;
    double series_swing = -1.0;
    for (const auto& e : entries) {
        if (e.kind == ResourceKind::Functional && e.asil == Asil::B) branch_swing = e.swing();
        if (e.kind == ResourceKind::Communication && e.asil == Asil::D) series_swing = e.swing();
    }
    ASSERT_GE(branch_swing, 0.0);
    ASSERT_GE(series_swing, 0.0);
    EXPECT_LT(branch_swing, 0.01 * series_swing);
}

}  // namespace
}  // namespace asilkit::analysis

#include "explore/advisor.h"

#include <algorithm>
#include <ostream>

#include "cost/cost_analysis.h"
#include "transform/expand.h"

namespace asilkit::explore {

std::ostream& operator<<(std::ostream& os, const ExpansionAdvice& a) {
    return os << "expand(" << a.node << "): dP=" << a.delta_probability
              << ", dCost=" << a.delta_cost << (a.recommended ? " [recommended]" : "");
}

std::vector<ExpansionAdvice> advise_expansions(const ArchitectureModel& m,
                                               const AdvisorOptions& options) {
    const double p_before =
        analysis::analyze_failure_probability(m, options.probability).failure_probability;
    const double c_before = cost::total_cost(m, options.metric);

    std::vector<ExpansionAdvice> advice;
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        if (node.kind != NodeKind::Functional && node.kind != NodeKind::Communication) continue;
        if (node.asil.level == Asil::QM) continue;
        if (m.app().in_degree(n) < 1 || m.app().out_degree(n) < 1) continue;

        ArchitectureModel trial = m;
        transform::ExpandOptions expand_options;
        expand_options.strategy = options.strategy;
        expand_options.branches = options.branches;
        transform::expand(trial, n, expand_options);

        ExpansionAdvice entry;
        entry.node = node.name;
        entry.kind = node.kind;
        entry.delta_probability =
            analysis::analyze_failure_probability(trial, options.probability).failure_probability -
            p_before;
        entry.delta_cost = cost::total_cost(trial, options.metric) - c_before;
        const bool safer = entry.delta_probability < 0.0;
        const bool cheap_enough_risk =
            entry.delta_cost < 0.0 &&
            entry.delta_probability <= options.probability_tolerance * p_before;
        entry.recommended = safer || cheap_enough_risk;
        advice.push_back(std::move(entry));
    }
    std::sort(advice.begin(), advice.end(), [](const ExpansionAdvice& a, const ExpansionAdvice& b) {
        if (a.delta_probability != b.delta_probability) {
            return a.delta_probability < b.delta_probability;
        }
        return a.delta_cost < b.delta_cost;
    });
    return advice;
}

}  // namespace asilkit::explore

file(REMOVE_RECURSE
  "CMakeFiles/ecotwin_lateral_control.dir/ecotwin_lateral_control.cpp.o"
  "CMakeFiles/ecotwin_lateral_control.dir/ecotwin_lateral_control.cpp.o.d"
  "ecotwin_lateral_control"
  "ecotwin_lateral_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecotwin_lateral_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

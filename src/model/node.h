// Application-layer node types.
//
// The application graph G = (N, E) describes the functional view: what the
// vehicle does, independent of which ECU or wire implements it.
// Communication is explicit (its own node kind) because channels carry
// their own ASIL requirements and are mapped onto buses/links.  Splitter
// and merger are the two special kinds that delimit redundant blocks:
// a splitter replicates its input onto its outputs, a merger compares its
// redundant inputs and forwards exactly one correct value.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/asil.h"

namespace asilkit {

enum class NodeKind : std::uint8_t {
    Sensor,
    Actuator,
    Functional,
    Communication,
    Splitter,
    Merger,
};

inline constexpr int kNodeKindCount = 6;

inline constexpr NodeKind kAllNodeKinds[kNodeKindCount] = {
    NodeKind::Sensor,    NodeKind::Actuator, NodeKind::Functional,
    NodeKind::Communication, NodeKind::Splitter, NodeKind::Merger};

[[nodiscard]] std::string_view to_string(NodeKind k) noexcept;
std::ostream& operator<<(std::ostream& os, NodeKind k);

/// One application node: a named function with an ASIL requirement derived
/// from the Functional Safety Requirement it implements.
struct AppNode {
    std::string name;
    NodeKind kind = NodeKind::Functional;
    AsilTag asil{Asil::QM};
    /// Id of the Functional Safety Requirement this node traces to
    /// (e.g. "FSR-LAT-01"); empty = not assigned.  Transformations carry
    /// the FSR onto replicas and management nodes, preserving
    /// requirement-to-architecture traceability across decompositions.
    std::string fsr;
};

/// Application-layer edge payload.  Channels are pure precedence/dataflow
/// relations; bandwidth or latency annotations would live here.
struct Channel {
    std::string label;
};

}  // namespace asilkit

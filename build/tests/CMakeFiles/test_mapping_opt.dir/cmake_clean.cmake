file(REMOVE_RECURSE
  "CMakeFiles/test_mapping_opt.dir/test_mapping_opt.cpp.o"
  "CMakeFiles/test_mapping_opt.dir/test_mapping_opt.cpp.o.d"
  "test_mapping_opt"
  "test_mapping_opt.pdb"
  "test_mapping_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

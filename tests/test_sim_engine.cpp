// Vectorized Monte Carlo engine (analysis::SimEngine): determinism,
// statistical agreement with the exact BDD pipeline, and the
// importance-sampling estimator's soundness at unscaled automotive
// rates (docs/simulation.md).
#include "analysis/sim_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/probability.h"
#include "analysis/simulation.h"
#include "ftree/builder.h"
#include "helpers.h"
#include "scenarios/ecotwin.h"
#include "scenarios/fig3.h"

namespace asilkit::analysis {
namespace {

/// Bitwise equality of two simulation results — the determinism
/// contract compares doubles by value identity, not tolerance.
void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& what) {
    EXPECT_EQ(a.failures, b.failures) << what;
    EXPECT_EQ(a.trials, b.trials) << what;
    EXPECT_EQ(a.estimate, b.estimate) << what;
    EXPECT_EQ(a.std_error, b.std_error) << what;
    EXPECT_EQ(a.ci95_low, b.ci95_low) << what;
    EXPECT_EQ(a.ci95_high, b.ci95_high) << what;
    EXPECT_EQ(a.ess, b.ess) << what;
    EXPECT_EQ(a.importance_sampled, b.importance_sampled) << what;
}

TEST(SimEngine, BitwiseIdenticalAcrossThreadCounts) {
    const ftree::FaultTree ft = testing::random_fault_tree(11, 10, 7);
    const SimEngine engine(ft);
    SimulationOptions options;
    options.trials = 200000;
    options.seed = 99;
    options.threads = 1;
    const SimulationResult reference = engine.run(options);
    EXPECT_GT(reference.failures, 0u);
    for (const unsigned threads : {2u, 4u, 8u}) {
        options.threads = threads;
        expect_identical(engine.run(options), reference,
                         "threads " + std::to_string(threads));
    }
}

TEST(SimEngine, BitwiseIdenticalAcrossBlockSizes) {
    const ftree::FaultTree ft = testing::random_fault_tree(12, 9, 6);
    const SimEngine engine(ft);
    SimulationOptions options;
    options.trials = 150000;  // deliberately no multiple of any block
    options.seed = 5;
    options.threads = 4;
    options.block_trials = 1u << 16;
    const SimulationResult reference = engine.run(options);
    for (const std::uint64_t block : {std::uint64_t{1}, std::uint64_t{4096},
                                      std::uint64_t{5000}, std::uint64_t{1} << 20}) {
        options.block_trials = block;
        expect_identical(engine.run(options), reference,
                         "block_trials " + std::to_string(block));
    }
}

TEST(SimEngine, ImportanceSamplingDeterministicAcrossThreadsAndBlocks) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const ftree::FaultTree ft = ftree::build_fault_tree(m).tree;
    const SimEngine engine(ft);
    SimulationOptions options;
    options.trials = 100000;
    options.seed = 1234;
    options.importance_sampling = true;
    options.threads = 1;
    const SimulationResult reference = engine.run(options);
    EXPECT_TRUE(reference.importance_sampled);
    for (const unsigned threads : {2u, 4u, 8u}) {
        options.threads = threads;
        options.block_trials = threads * 4096;
        expect_identical(engine.run(options), reference,
                         "IS threads " + std::to_string(threads));
    }
}

TEST(SimEngine, WrapperAndEngineAgreeBitwise) {
    const ftree::FaultTree ft = testing::random_fault_tree(3, 8, 5);
    SimulationOptions options;
    options.trials = 50000;
    options.seed = 77;
    expect_identical(simulate_fault_tree(ft, options), SimEngine(ft).run(options), "wrapper");
}

TEST(SimEngine, SingleEventMaskMatchesBernoulliLaw) {
    // Mean check of the bit-sliced Bernoulli masks across a spread of
    // probabilities, including values that are not dyadic rationals.
    for (const double p : {0.5, 0.25, 0.1, 0.031, 0.731}) {
        ftree::FaultTree ft;
        ft.set_top(ft.add_basic_event("e", -std::log(1.0 - p)));
        SimulationOptions options;
        options.trials = 400000;
        options.seed = static_cast<std::uint64_t>(p * 1e6);
        const SimulationResult r = SimEngine(ft).run(options);
        EXPECT_TRUE(r.consistent_with(p)) << "p=" << p << " estimate=" << r.estimate;
        EXPECT_NEAR(r.estimate, p, 6.0 * std::sqrt(p * (1.0 - p) / 400000.0)) << "p=" << p;
    }
}

TEST(SimEngine, VarianceOfBernoulliMaskMatchesBinomial) {
    // Carve the run into fixed windows and compare the spread of
    // per-window failure counts against Binomial(window, p).
    ftree::FaultTree ft;
    const double p = 0.2;
    ft.set_top(ft.add_basic_event("e", -std::log(1.0 - p)));
    const SimEngine engine(ft);
    const std::uint64_t window = 4096;
    const std::uint64_t windows = 64;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::uint64_t w = 0; w < windows; ++w) {
        SimulationOptions options;
        options.trials = window;
        options.seed = 9000 + w;  // independent windows via the key
        const auto f = static_cast<double>(engine.run(options).failures);
        sum += f;
        sum_sq += f * f;
    }
    const double mean = sum / static_cast<double>(windows);
    const double variance = sum_sq / static_cast<double>(windows) - mean * mean;
    const double expected_mean = static_cast<double>(window) * p;
    const double expected_var = static_cast<double>(window) * p * (1.0 - p);
    // Mean of `windows` binomials: sigma = sqrt(var/windows).
    EXPECT_NEAR(mean, expected_mean, 5.0 * std::sqrt(expected_var / windows));
    // Sample variance concentrates ~ sqrt(2/windows) relative.
    EXPECT_NEAR(variance, expected_var, 5.0 * expected_var * std::sqrt(2.0 / windows));
}

TEST(SimEngine, ThreeEstimatorsAgreeWithExactBddOnRandomTrees) {
    // The cross-validation triangle: naive oracle, bit-parallel kernel
    // and importance-sampled kernel must all bracket the exact BDD value
    // on trees small enough for exactness.
    for (std::uint32_t seed = 1; seed <= 6; ++seed) {
        const ftree::FaultTree ft = testing::random_fault_tree(seed, 8, 5);
        const double exact = fault_tree_probability(ft);
        SimulationOptions options;
        options.trials = 120000;
        options.seed = seed;

        options.engine = SimEngineKind::Naive;
        const SimulationResult naive = simulate_fault_tree(ft, options);
        EXPECT_TRUE(naive.consistent_with(exact)) << "naive seed " << seed << ": " << exact
                                                  << " vs " << naive.estimate;

        options.engine = SimEngineKind::BitParallel;
        const SimulationResult vectorized = simulate_fault_tree(ft, options);
        EXPECT_TRUE(vectorized.consistent_with(exact))
            << "bit-parallel seed " << seed << ": " << exact << " vs " << vectorized.estimate;

        options.importance_sampling = true;
        const SimulationResult weighted = simulate_fault_tree(ft, options);
        EXPECT_TRUE(weighted.consistent_with(exact))
            << "IS seed " << seed << ": " << exact << " vs [" << weighted.ci95_low << ", "
            << weighted.ci95_high << "]";
        EXPECT_TRUE(weighted.importance_sampled);
        EXPECT_GT(weighted.ess, 0.0);
        EXPECT_LE(weighted.ess, static_cast<double>(options.trials) * (1.0 + 1e-9));
    }
}

TEST(SimEngine, ImportanceSamplingBracketsExactAtUnscaledAutomotiveRates) {
    // The rare-event headline: at rate_scale = 1 the EcoTwin top-event
    // probability sits far below naive reach (~1e-8 over one hour), yet
    // the biased estimator must produce a finite, non-degenerate CI that
    // brackets the exact BDD value.
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const ftree::FaultTree ft = ftree::build_fault_tree(m).tree;
    const double exact = fault_tree_probability(ft);
    ASSERT_GT(exact, 0.0);
    ASSERT_LT(exact, 1e-4);  // genuinely rare: naive would see ~0 failures

    SimulationOptions options;
    options.trials = 1u << 20;
    options.seed = 2024;
    options.rate_scale = 1.0;
    options.importance_sampling = true;
    options.threads = 4;
    const SimulationResult r = SimEngine(ft).run(options);

    EXPECT_TRUE(r.importance_sampled);
    EXPECT_GT(r.failures, 0u);  // the proposal makes rare failures common
    EXPECT_TRUE(std::isfinite(r.estimate));
    EXPECT_TRUE(std::isfinite(r.std_error));
    EXPECT_GT(r.std_error, 0.0);
    EXPECT_TRUE(r.consistent_with(exact))
        << "exact " << exact << " vs [" << r.ci95_low << ", " << r.ci95_high << "]";
    // The interval must actually resolve the magnitude, not span [0, 1].
    EXPECT_LT(r.ci95_high, 100.0 * exact);
    EXPECT_GT(r.ess, 0.0);
}

TEST(SimEngine, NaiveMatchesPrePlanOracle) {
    // The naive path is the frozen oracle: same mt19937_64 stream, same
    // per-trial evaluation — so the failure count for a given seed is a
    // regression anchor for the plan-compiled rewrite.
    const ftree::FaultTree ft = testing::random_fault_tree(3, 6, 4);
    SimulationOptions options;
    options.engine = SimEngineKind::Naive;
    options.trials = 10000;
    options.seed = 42;
    const SimulationResult a = simulate_fault_tree(ft, options);
    const SimulationResult b = simulate_fault_tree(ft, options);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.ess, static_cast<double>(a.trials));
    EXPECT_FALSE(a.importance_sampled);
}

TEST(SimEngine, CertainAndImpossibleEvents) {
    ftree::FaultTree ft;
    const auto never = ft.add_basic_event("never", 0.0);
    const auto always = ft.add_basic_event("always", 1e12);  // p(1h) = 1 to double precision
    ft.set_top(ft.add_gate("top", ftree::GateKind::And, {never, always}));
    SimulationOptions options;
    options.trials = 5000;
    const SimulationResult and_result = SimEngine(ft).run(options);
    EXPECT_EQ(and_result.failures, 0u);

    ftree::FaultTree ft_or;
    const auto n2 = ft_or.add_basic_event("never", 0.0);
    const auto a2 = ft_or.add_basic_event("always", 1e12);
    ft_or.set_top(ft_or.add_gate("top", ftree::GateKind::Or, {n2, a2}));
    const SimulationResult or_result = SimEngine(ft_or).run(options);
    EXPECT_EQ(or_result.failures, options.trials);
    EXPECT_EQ(or_result.estimate, 1.0);
}

TEST(SimEngine, TrialCountsOffTheGranuleGrid) {
    // Trial counts that are not multiples of 64/4096 must count only
    // real trials — the tail word's invalid bits are masked out.
    ftree::FaultTree ft;
    ft.set_top(ft.add_basic_event("e", 1e12));  // always fails
    const SimEngine engine(ft);
    for (const std::uint64_t trials : {std::uint64_t{1}, std::uint64_t{63}, std::uint64_t{65},
                                       std::uint64_t{4097}, std::uint64_t{100001}}) {
        SimulationOptions options;
        options.trials = trials;
        const SimulationResult r = engine.run(options);
        EXPECT_EQ(r.failures, trials) << trials;
        EXPECT_EQ(r.estimate, 1.0) << trials;
    }
}

TEST(SimEngine, InvalidOptionsThrow) {
    const ftree::FaultTree ft = testing::random_fault_tree(1, 4, 3);
    const SimEngine engine(ft);
    SimulationOptions options;
    options.trials = 0;
    EXPECT_THROW((void)engine.run(options), AnalysisError);
    options.trials = 100;
    options.engine = SimEngineKind::Naive;
    options.importance_sampling = true;
    EXPECT_THROW((void)engine.run(options), AnalysisError);
    options.engine = SimEngineKind::BitParallel;
    options.is_bias = 1.5;
    EXPECT_THROW((void)engine.run(options), AnalysisError);

    const ftree::FaultTree empty;
    EXPECT_THROW(SimEngine{empty}, AnalysisError);
}

TEST(SimEngine, PlanExposesTreeDimensions) {
    const ftree::FaultTree ft = testing::random_fault_tree(2, 7, 4);
    const SimEngine engine(ft);
    EXPECT_EQ(engine.event_count(), ft.basic_events().size());
    EXPECT_EQ(engine.gate_count(), ft.gates().size());
}

}  // namespace
}  // namespace asilkit::analysis

#include "bdd/bdd.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace asilkit::bdd {

BddManager::BddManager(std::uint32_t variable_count) : variable_count_(variable_count) {
    nodes_.push_back(Node{variable_count_, kFalse, kFalse});  // terminal 0
    nodes_.push_back(Node{variable_count_, kTrue, kTrue});    // terminal 1
}

BddRef BddManager::variable(std::uint32_t var) {
    if (var >= variable_count_) throw AnalysisError("bdd: variable index out of range");
    return make(var, kTrue, kFalse);
}

BddRef BddManager::make(std::uint32_t var, BddRef high, BddRef low) {
    if (high == low) return high;  // reduction rule
    const NodeKey key{var, high, low};
    if (auto it = unique_.find(key); it != unique_.end()) return it->second;
    const auto ref = static_cast<BddRef>(nodes_.size());
    nodes_.push_back(Node{var, high, low});
    unique_.emplace(key, ref);
    return ref;
}

BddRef BddManager::apply(BddOp op, BddRef f, BddRef g) {
    // Terminal cases.
    if (op == BddOp::Or) {
        if (f == kTrue || g == kTrue) return kTrue;
        if (f == kFalse) return g;
        if (g == kFalse) return f;
        if (f == g) return f;
    } else {
        if (f == kFalse || g == kFalse) return kFalse;
        if (f == kTrue) return g;
        if (g == kTrue) return f;
        if (f == g) return f;
    }
    // Both operations are commutative: canonicalise the cache key.
    const ApplyKey key{static_cast<std::uint8_t>(op), std::min(f, g), std::max(f, g)};
    if (auto it = apply_cache_.find(key); it != apply_cache_.end()) return it->second;

    const std::uint32_t vf = var_of(f);
    const std::uint32_t vg = var_of(g);
    const std::uint32_t v = std::min(vf, vg);
    // Paper Eq. 1 (X < Y): recurse into the smaller variable only;
    // Eq. 2 (X == Y): recurse into both cofactors.
    const BddRef f_high = vf == v ? nodes_[f].high : f;
    const BddRef f_low = vf == v ? nodes_[f].low : f;
    const BddRef g_high = vg == v ? nodes_[g].high : g;
    const BddRef g_low = vg == v ? nodes_[g].low : g;

    const BddRef high = apply(op, f_high, g_high);
    const BddRef low = apply(op, f_low, g_low);
    const BddRef result = make(v, high, low);
    apply_cache_.emplace(key, result);
    return result;
}

BddRef BddManager::apply_not(BddRef f) {
    if (f == kFalse) return kTrue;
    if (f == kTrue) return kFalse;
    // Negation via Shannon expansion; memoised through the unique table
    // only (negation is rare in fault trees — used by importance
    // measures), so a local cache per call suffices.
    std::unordered_map<BddRef, BddRef> memo;
    std::function<BddRef(BddRef)> rec = [&](BddRef x) -> BddRef {
        if (x == kFalse) return kTrue;
        if (x == kTrue) return kFalse;
        if (auto it = memo.find(x); it != memo.end()) return it->second;
        const Node& n = nodes_[x];
        const BddRef r = make(n.var, rec(n.high), rec(n.low));
        memo.emplace(x, r);
        return r;
    };
    return rec(f);
}

double BddManager::probability(BddRef f, std::span<const double> var_probability) const {
    if (var_probability.size() != variable_count_) {
        throw AnalysisError("bdd: probability vector size != variable count");
    }
    std::unordered_map<BddRef, double> memo;
    std::function<double(BddRef)> rec = [&](BddRef x) -> double {
        if (x == kFalse) return 0.0;
        if (x == kTrue) return 1.0;
        if (auto it = memo.find(x); it != memo.end()) return it->second;
        const Node& n = nodes_[x];
        const double p = var_probability[n.var];
        const double result = p * rec(n.high) + (1.0 - p) * rec(n.low);
        memo.emplace(x, result);
        return result;
    };
    return rec(f);
}

std::size_t BddManager::node_count(BddRef f) const {
    std::unordered_set<BddRef> seen;
    std::vector<BddRef> stack{f};
    while (!stack.empty()) {
        const BddRef x = stack.back();
        stack.pop_back();
        if (is_terminal(x) || !seen.insert(x).second) continue;
        stack.push_back(nodes_[x].high);
        stack.push_back(nodes_[x].low);
    }
    return seen.size();
}

bool BddManager::evaluate(BddRef f, const std::vector<bool>& assignment) const {
    if (assignment.size() != variable_count_) {
        throw AnalysisError("bdd: assignment size != variable count");
    }
    BddRef x = f;
    while (!is_terminal(x)) {
        const Node& n = nodes_[x];
        x = assignment[n.var] ? n.high : n.low;
    }
    return x == kTrue;
}

BddManager::NodeView BddManager::node(BddRef f) const {
    if (is_terminal(f) || f >= nodes_.size()) {
        throw AnalysisError("bdd: node() on terminal or invalid ref");
    }
    const Node& n = nodes_[f];
    return NodeView{n.var, n.high, n.low};
}

}  // namespace asilkit::bdd

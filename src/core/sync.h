// Capability-annotated synchronization primitives.
//
// Every concurrent structure in asilkit (the engine's worker pool and
// memos, the explore layer's process-wide caches, the obs registry and
// tracer) declares its lock discipline through these wrappers so Clang's
// Thread Safety Analysis can verify it at COMPILE TIME: a guarded member
// touched without its mutex, a lock released twice, or a function called
// without a capability it requires is a -Wthread-safety error in the
// static-analysis CI job — not a TSan finding contingent on having
// executed the racy interleaving.  docs/static-analysis.md describes the
// annotation conventions; the contracts themselves live on the declaring
// headers as GUARDED_BY / REQUIRES / ACQUIRE / RELEASE attributes.
//
// Off Clang every attribute expands to nothing and each wrapper is a
// zero-overhead veneer over the std primitive it holds, so GCC builds
// (and MSVC, should it ever appear) see ordinary mutexes.  The wrappers
// deliberately mirror std semantics — Mutex is std::mutex, SharedMutex
// is std::shared_mutex, MutexLock is a scoped lock_guard — so migrating
// a structure is a type swap plus annotations, never a behaviour change.
//
// Condition-variable convention: CondVar::wait(mu) takes the Mutex the
// caller already holds (REQUIRES(mu)) and re-acquires it before
// returning, exactly like std::condition_variable::wait on a
// unique_lock.  The analysis cannot see through predicate lambdas, so
// waiting code uses the classic explicit loop —
//     while (!condition) cv.wait(mu);
// — which keeps every guarded read inside the annotated function body.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Attribute plumbing: real Clang TSA attributes when the compiler has
// them, empty otherwise.  __has_attribute guards against old Clangs.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ASILKIT_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef ASILKIT_THREAD_ANNOTATION_
#define ASILKIT_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex", ...).
#define ASILKIT_CAPABILITY(x) ASILKIT_THREAD_ANNOTATION_(capability(x))
/// Marks an RAII type that acquires in its constructor and releases in
/// its destructor.
#define ASILKIT_SCOPED_CAPABILITY ASILKIT_THREAD_ANNOTATION_(scoped_lockable)
/// Data member readable/writable only while holding the named mutex.
#define GUARDED_BY(x) ASILKIT_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer member whose POINTEE is protected by the named mutex.
#define PT_GUARDED_BY(x) ASILKIT_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function callable only while holding the listed mutexes exclusively.
#define REQUIRES(...) ASILKIT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function callable while holding the listed mutexes at least shared.
#define REQUIRES_SHARED(...) \
    ASILKIT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Function that acquires the listed mutexes (exclusively) and returns
/// holding them.
#define ACQUIRE(...) ASILKIT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
    ASILKIT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/// Function that releases the listed mutexes (no list = whatever the
/// enclosing scoped capability holds).
#define RELEASE(...) ASILKIT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
    ASILKIT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Function that acquires on success only; first argument is the
/// success return value.
#define TRY_ACQUIRE(...) ASILKIT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
    ASILKIT_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))
/// Function that must NOT be called while holding the listed mutexes
/// (deadlock documentation; checked when the caller's state is known).
#define EXCLUDES(...) ASILKIT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Asserts at runtime-contract level that the capability is held
/// (teaches the analysis without acquiring).
#define ASSERT_CAPABILITY(x) ASILKIT_THREAD_ANNOTATION_(assert_capability(x))
/// Function returning a reference to the named capability.
#define RETURN_CAPABILITY(x) ASILKIT_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch: disables the analysis for one function.  Every use
/// carries a comment explaining why the discipline holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS ASILKIT_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace asilkit::core {

/// std::mutex as a declared capability.
class ASILKIT_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
    friend class CondVar;
    std::mutex mu_;
};

/// std::shared_mutex as a declared capability: exclusive writers,
/// concurrent readers.
class ASILKIT_CAPABILITY("shared_mutex") SharedMutex {
public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex&) = delete;
    SharedMutex& operator=(const SharedMutex&) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
    void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
    [[nodiscard]] bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
        return mu_.try_lock_shared();
    }

private:
    std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (lock_guard semantics).
class ASILKIT_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mu_;
};

/// Scoped exclusive lock on a SharedMutex.
class ASILKIT_SCOPED_CAPABILITY SharedMutexLock {
public:
    explicit SharedMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~SharedMutexLock() RELEASE() { mu_.unlock(); }

    SharedMutexLock(const SharedMutexLock&) = delete;
    SharedMutexLock& operator=(const SharedMutexLock&) = delete;

private:
    SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class ASILKIT_SCOPED_CAPABILITY ReaderMutexLock {
public:
    explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
        mu_.lock_shared();
    }
    ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }

    ReaderMutexLock(const ReaderMutexLock&) = delete;
    ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

private:
    SharedMutex& mu_;
};

/// Condition variable bound to Mutex.  wait() takes the held Mutex
/// itself so the capability is visible at the call site; internally it
/// adopts the already-locked std::mutex into a unique_lock for the
/// std::condition_variable protocol and releases ownership again before
/// returning — the caller holds `mu` continuously as far as both the
/// analysis and the runtime are concerned.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Atomically releases `mu`, blocks, and re-acquires `mu` before
    /// returning.  Spurious wakeups are possible; callers loop:
    ///     while (!condition) cv.wait(mu);
    void wait(Mutex& mu) REQUIRES(mu) {
        std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
        cv_.wait(ul);
        ul.release();  // `mu` is held again; adoption must not re-unlock
    }

    /// Timed wait: releases `mu`, blocks until notified or `timeout`
    /// elapses, and re-acquires `mu` before returning.  Returns true
    /// when woken by a notification, false on timeout; spurious wakeups
    /// report true, so periodic callers re-check their predicate AND
    /// their deadline — the obs sampler treats an early wakeup as a
    /// slightly early tick, which is harmless for telemetry.
    template <typename Rep, typename Period>
    bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
        REQUIRES(mu) {
        std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
        const std::cv_status status = cv_.wait_for(ul, timeout);
        ul.release();  // `mu` is held again; adoption must not re-unlock
        return status == std::cv_status::no_timeout;
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace asilkit::core

#include "cost/cost_analysis.h"
#include "cost/cost_metric.h"

#include <gtest/gtest.h>

#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::cost {
namespace {

TEST(CostMetric, Table2Values) {
    const CostMetric m = CostMetric::exponential_metric1();
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Functional, Asil::QM), 5.0);
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Functional, Asil::D), 50000.0);
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Communication, Asil::QM), 4.0);
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Communication, Asil::C), 4000.0);
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Sensor, Asil::B), 800.0);
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Actuator, Asil::A), 80.0);
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Splitter, Asil::QM), 1.0);
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Merger, Asil::D), 10000.0);
}

TEST(CostMetric, EveryLevelIsOneDecadeInMetric1) {
    const CostMetric m = CostMetric::exponential_metric1();
    for (ResourceKind kind : kAllResourceKinds) {
        for (int level = 1; level < kAsilLevelCount; ++level) {
            EXPECT_NEAR(m.cost(kind, static_cast<Asil>(level)) /
                            m.cost(kind, static_cast<Asil>(level - 1)),
                        10.0, 1e-9);
        }
    }
}

TEST(CostMetric, Metric2IsSteeper) {
    const CostMetric m1 = CostMetric::exponential_metric1();
    const CostMetric m2 = CostMetric::exponential_metric2();
    EXPECT_EQ(m1.cost(ResourceKind::Functional, Asil::QM),
              m2.cost(ResourceKind::Functional, Asil::QM));
    EXPECT_GT(m2.cost(ResourceKind::Functional, Asil::D),
              m1.cost(ResourceKind::Functional, Asil::D));
}

TEST(CostMetric, Metric3IsLinear) {
    const CostMetric m = CostMetric::linear_metric3();
    const double qm = m.cost(ResourceKind::Functional, Asil::QM);
    const double a = m.cost(ResourceKind::Functional, Asil::A);
    const double b = m.cost(ResourceKind::Functional, Asil::B);
    EXPECT_NEAR(b - a, a - qm, 1e-9);  // constant increments
}

TEST(CostMetric, NamesAndCustomisation) {
    CostMetric m = CostMetric::exponential_metric1();
    EXPECT_EQ(m.name(), "exponential-metric-1");
    m.set_cost(ResourceKind::Sensor, Asil::D, 123.0);
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Sensor, Asil::D), 123.0);
}

TEST(CostMetric, ResourceCostHonoursOverride) {
    const CostMetric m = CostMetric::exponential_metric1();
    Resource r{"x", ResourceKind::Sensor, Asil::D, {}, {}};
    EXPECT_DOUBLE_EQ(m.resource_cost(r), 80000.0);
    r.cost_override = 0.0;
    EXPECT_DOUBLE_EQ(m.resource_cost(r), 0.0);
}

TEST(CostAnalysis, ChainCostIsHandComputable) {
    // sensor(80000) + actuator(80000) + functional(50000) + 2 comm(40000).
    const ArchitectureModel m = scenarios::chain_1in_1out();
    EXPECT_DOUBLE_EQ(total_cost(m, CostMetric::exponential_metric1()), 290000.0);
}

TEST(CostAnalysis, UnusedResourcesExcludedByDefault) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    m.add_resource({"spare", ResourceKind::Functional, Asil::D, {}, {}});
    const CostMetric metric = CostMetric::exponential_metric1();
    EXPECT_DOUBLE_EQ(total_cost(m, metric), 290000.0);
    CostOptions include_all;
    include_all.include_unused_resources = true;
    EXPECT_DOUBLE_EQ(total_cost(m, metric, include_all), 340000.0);
}

TEST(CostAnalysis, ExpansionWithCheapManagementLowersCost) {
    // Paper Section VII-A: replacing an expensive D node with B branches
    // plus dedicated splitter/merger hardware can REDUCE total cost.
    ArchitectureModel m = scenarios::chain_1in_1out();
    const CostMetric metric = CostMetric::exponential_metric1();
    const double before = total_cost(m, metric);
    transform::expand(m, m.find_app_node("n"));
    const double after = total_cost(m, metric);
    EXPECT_LT(after, before);
}

TEST(CostAnalysis, ReportBreakdownIsConsistent) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const CostReport report = cost_report(m, CostMetric::exponential_metric1());
    EXPECT_DOUBLE_EQ(report.total, 290000.0);
    EXPECT_EQ(report.breakdown.size(), 5u);
    double sum = 0.0;
    for (const auto& entry : report.breakdown) sum += entry.cost;
    EXPECT_DOUBLE_EQ(sum, report.total);
    // Sorted descending.
    for (std::size_t i = 1; i < report.breakdown.size(); ++i) {
        EXPECT_GE(report.breakdown[i - 1].cost, report.breakdown[i].cost);
    }
    double by_kind_sum = 0.0;
    for (double v : report.by_kind) by_kind_sum += v;
    EXPECT_DOUBLE_EQ(by_kind_sum, report.total);
    EXPECT_DOUBLE_EQ(report.by_kind[static_cast<std::size_t>(ResourceKind::Sensor)], 80000.0);
}

TEST(CostAnalysis, GenericExponentialBuilder) {
    std::array<double, kResourceKindCount> bases{};
    bases.fill(2.0);
    const CostMetric m = CostMetric::exponential(bases, 3.0, "tripling");
    EXPECT_EQ(m.name(), "tripling");
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Sensor, Asil::QM), 2.0);
    EXPECT_DOUBLE_EQ(m.cost(ResourceKind::Sensor, Asil::D), 2.0 * 81.0);
}

}  // namespace
}  // namespace asilkit::cost

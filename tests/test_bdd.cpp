#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <random>

#include "bdd/from_fault_tree.h"
#include "helpers.h"

namespace asilkit::bdd {
namespace {

TEST(Bdd, TerminalsAndVariables) {
    BddManager mgr(3);
    EXPECT_TRUE(BddManager::is_terminal(kFalse));
    EXPECT_TRUE(BddManager::is_terminal(kTrue));
    const BddRef x = mgr.variable(0);
    EXPECT_FALSE(BddManager::is_terminal(x));
    EXPECT_EQ(mgr.variable(0), x);  // hash-consed
    EXPECT_THROW((void)mgr.variable(3), AnalysisError);
}

TEST(Bdd, ReductionRule) {
    BddManager mgr(2);
    EXPECT_EQ(mgr.make(0, kTrue, kTrue), kTrue);
    EXPECT_EQ(mgr.make(1, kFalse, kFalse), kFalse);
}

TEST(Bdd, ApplyTerminalCases) {
    BddManager mgr(2);
    const BddRef x = mgr.variable(0);
    EXPECT_EQ(mgr.apply_or(x, kTrue), kTrue);
    EXPECT_EQ(mgr.apply_or(x, kFalse), x);
    EXPECT_EQ(mgr.apply_or(x, x), x);
    EXPECT_EQ(mgr.apply_and(x, kFalse), kFalse);
    EXPECT_EQ(mgr.apply_and(x, kTrue), x);
    EXPECT_EQ(mgr.apply_and(x, x), x);
}

TEST(Bdd, ApplyIsCommutativeAndCanonical) {
    BddManager mgr(3);
    const BddRef x = mgr.variable(0);
    const BddRef y = mgr.variable(1);
    const BddRef z = mgr.variable(2);
    EXPECT_EQ(mgr.apply_or(x, y), mgr.apply_or(y, x));
    // (x|y)&z == z&(y|x): canonical node identity, not just equivalence.
    EXPECT_EQ(mgr.apply_and(mgr.apply_or(x, y), z), mgr.apply_and(z, mgr.apply_or(y, x)));
}

TEST(Bdd, EvaluateMatchesSemantics) {
    BddManager mgr(2);
    const BddRef f = mgr.apply_or(mgr.variable(0), mgr.variable(1));
    EXPECT_TRUE(mgr.evaluate(f, {true, true}));
    EXPECT_TRUE(mgr.evaluate(f, {true, false}));
    EXPECT_TRUE(mgr.evaluate(f, {false, true}));
    EXPECT_FALSE(mgr.evaluate(f, {false, false}));
}

TEST(Bdd, NotOperator) {
    BddManager mgr(2);
    const BddRef x = mgr.variable(0);
    const BddRef not_x = mgr.apply_not(x);
    EXPECT_FALSE(mgr.evaluate(not_x, {true, false}));
    EXPECT_TRUE(mgr.evaluate(not_x, {false, false}));
    EXPECT_EQ(mgr.apply_not(kTrue), kFalse);
    EXPECT_EQ(mgr.apply_not(kFalse), kTrue);
    EXPECT_EQ(mgr.apply_not(not_x), x);  // double negation is identity
}

TEST(Bdd, ProbabilityOfSingleVariable) {
    BddManager mgr(1);
    const double p[] = {0.3};
    EXPECT_NEAR(mgr.probability(mgr.variable(0), p), 0.3, 1e-12);
    EXPECT_NEAR(mgr.probability(kTrue, p), 1.0, 1e-12);
    EXPECT_NEAR(mgr.probability(kFalse, p), 0.0, 1e-12);
}

TEST(Bdd, ProbabilityOrAnd) {
    BddManager mgr(2);
    const BddRef x = mgr.variable(0);
    const BddRef y = mgr.variable(1);
    const double p[] = {0.3, 0.5};
    EXPECT_NEAR(mgr.probability(mgr.apply_or(x, y), p), 0.3 + 0.5 - 0.15, 1e-12);
    EXPECT_NEAR(mgr.probability(mgr.apply_and(x, y), p), 0.15, 1e-12);
}

TEST(Bdd, ProbabilityHandlesRepeatedEventsExactly) {
    // (x&y) | (x&z): rare-event addition double-counts x; the BDD must not.
    BddManager mgr(3);
    const BddRef x = mgr.variable(0);
    const BddRef y = mgr.variable(1);
    const BddRef z = mgr.variable(2);
    const BddRef f = mgr.apply_or(mgr.apply_and(x, y), mgr.apply_and(x, z));
    const double p[] = {0.5, 0.5, 0.5};
    // P = P(x & (y|z)) = 0.5 * 0.75.
    EXPECT_NEAR(mgr.probability(f, p), 0.375, 1e-12);
}

TEST(Bdd, ProbabilityVectorSizeChecked) {
    BddManager mgr(2);
    const std::vector<double> wrong{0.5};
    EXPECT_THROW((void)mgr.probability(mgr.variable(0), wrong), AnalysisError);
}

TEST(Bdd, NodeCountOfSharedStructure) {
    BddManager mgr(3);
    const BddRef f =
        mgr.apply_or(mgr.apply_and(mgr.variable(0), mgr.variable(2)),
                     mgr.apply_and(mgr.variable(1), mgr.variable(2)));
    EXPECT_GE(mgr.node_count(f), 3u);
    EXPECT_LE(mgr.node_count(f), 4u);
    EXPECT_EQ(mgr.node_count(kTrue), 0u);
}

TEST(Bdd, NodeViewExposesStructure) {
    BddManager mgr(1);
    const BddRef x = mgr.variable(0);
    const auto view = mgr.node(x);
    EXPECT_EQ(view.var, 0u);
    EXPECT_EQ(view.high, kTrue);
    EXPECT_EQ(view.low, kFalse);
    EXPECT_THROW((void)mgr.node(kTrue), AnalysisError);
}

// ---- fault tree compilation -------------------------------------------------

ftree::FaultTree simple_tree() {
    ftree::FaultTree ft;
    const auto a = ft.add_basic_event("a", 0.1);  // p(1h) = 1-e^-0.1
    const auto b = ft.add_basic_event("b", 0.2);
    const auto c = ft.add_basic_event("c", 0.3);
    const auto and_bc = ft.add_gate("and_bc", ftree::GateKind::And, {b, c});
    ft.set_top(ft.add_gate("top", ftree::GateKind::Or, {a, and_bc}));
    return ft;
}

TEST(FtCompile, VariableOrderIsTopDownLeftRight) {
    const ftree::FaultTree ft = simple_tree();
    const auto order = ft_variable_order(ft);
    // BFS: a (direct child of top) first, then b, c.
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(ft.basic_event(order[0]).name, "a");
    EXPECT_EQ(ft.basic_event(order[1]).name, "b");
    EXPECT_EQ(ft.basic_event(order[2]).name, "c");
}

TEST(FtCompile, ProbabilityMatchesHandComputation) {
    const ftree::FaultTree ft = simple_tree();
    const CompiledFaultTree compiled = compile_fault_tree(ft);
    const auto probs = compiled.variable_probabilities(ft, 1.0);
    const double pa = 1.0 - std::exp(-0.1);
    const double pb = 1.0 - std::exp(-0.2);
    const double pc = 1.0 - std::exp(-0.3);
    const double expected = pa + (1.0 - pa) * pb * pc;
    EXPECT_NEAR(compiled.manager.probability(compiled.root, probs), expected, 1e-12);
}

TEST(FtCompile, EmptyGateIsConstantFalse) {
    ftree::FaultTree ft;
    ft.set_top(ft.add_gate("empty", ftree::GateKind::Or, {}));
    const CompiledFaultTree compiled = compile_fault_tree(ft);
    EXPECT_EQ(compiled.root, kFalse);
}

TEST(FtCompile, MissionTimeScalesProbability) {
    ftree::FaultTree ft;
    ft.set_top(ft.add_basic_event("e", 1e-6));
    const CompiledFaultTree compiled = compile_fault_tree(ft);
    const double p1 = compiled.manager.probability(compiled.root,
                                                   compiled.variable_probabilities(ft, 1.0));
    const double p1000 = compiled.manager.probability(
        compiled.root, compiled.variable_probabilities(ft, 1000.0));
    EXPECT_NEAR(p1, 1e-6, 1e-9);
    EXPECT_NEAR(p1000, 1e-3, 1e-6);
    EXPECT_GT(p1000, p1);
}

TEST(FtCompile, BasicEventProbability) {
    EXPECT_NEAR(basic_event_probability(1e-9, 1.0), 1e-9, 1e-15);
    EXPECT_NEAR(basic_event_probability(0.5, 1.0), 1.0 - std::exp(-0.5), 1e-12);
    EXPECT_DOUBLE_EQ(basic_event_probability(0.0, 100.0), 0.0);
}

TEST(FtCompile, CustomOrderGivesSameProbability) {
    const ftree::FaultTree ft = simple_tree();
    const auto default_order = ft_variable_order(ft);
    std::vector<std::uint32_t> reversed(default_order.rbegin(), default_order.rend());
    const CompiledFaultTree a = compile_fault_tree(ft, default_order);
    const CompiledFaultTree b = compile_fault_tree(ft, reversed);
    const double pa = a.manager.probability(a.root, a.variable_probabilities(ft, 1.0));
    const double pb = b.manager.probability(b.root, b.variable_probabilities(ft, 1.0));
    EXPECT_NEAR(pa, pb, 1e-14);
}

// ---- property tests: BDD probability == brute-force enumeration -------------

class BddProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BddProperty, MatchesBruteForceOnRandomTrees) {
    const std::uint32_t seed = GetParam();
    const ftree::FaultTree ft = testing::random_fault_tree(seed, 3 + seed % 10, 2 + seed % 6);
    const CompiledFaultTree compiled = compile_fault_tree(ft);
    const double bdd_p = compiled.manager.probability(
        compiled.root, compiled.variable_probabilities(ft, 1.0));
    const double brute = testing::brute_force_probability(ft);
    EXPECT_NEAR(bdd_p, brute, 1e-10) << "seed " << seed;
}

TEST_P(BddProperty, EvaluateAgreesWithTreeSemantics) {
    const std::uint32_t seed = GetParam();
    const ftree::FaultTree ft = testing::random_fault_tree(seed, 3 + seed % 8, 2 + seed % 5);
    const CompiledFaultTree compiled = compile_fault_tree(ft);
    const std::size_t n = ft.basic_events().size();
    std::mt19937 rng(seed ^ 0xBEEF);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<bool> tree_assignment(n);
        for (std::size_t i = 0; i < n; ++i) tree_assignment[i] = rng() & 1;
        // Permute into BDD variable order.
        std::vector<bool> bdd_assignment(compiled.event_of_var.size());
        for (std::size_t v = 0; v < compiled.event_of_var.size(); ++v) {
            bdd_assignment[v] = tree_assignment[compiled.event_of_var[v]];
        }
        EXPECT_EQ(compiled.manager.evaluate(compiled.root, bdd_assignment),
                  testing::evaluate_fault_tree(ft, ft.top(), tree_assignment))
            << "seed " << seed << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BddProperty, ::testing::Range(0u, 40u));

// ---- hash mixing regression ------------------------------------------------
//
// The unique/apply tables are power-of-two open-addressing tables, so
// only the low bits of the mixed key select a bucket.  The previous
// multiply-then-add scheme let (f, g) pairs with small deltas collide
// after masking; the splitmix64 finalizer must avalanche every input
// bit into the low bits.

TEST(BddHashMixing, SingleBitFlipAvalanches) {
    std::mt19937_64 rng(7);
    for (int sample = 0; sample < 64; ++sample) {
        const std::uint64_t x = rng();
        for (int bit = 0; bit < 64; ++bit) {
            const std::uint64_t diff = detail::mix64(x) ^ detail::mix64(x ^ (1ull << bit));
            const int flipped = std::popcount(diff);
            // Full avalanche flips ~32 bits; the old additive scheme
            // flipped a handful for low-bit deltas.
            EXPECT_GE(flipped, 12) << "x=" << x << " bit=" << bit;
            EXPECT_LE(flipped, 52) << "x=" << x << " bit=" << bit;
        }
    }
}

TEST(BddHashMixing, DenseApplyKeysSpreadAcrossPowerOfTwoBuckets) {
    // Incremental BDD construction produces (f, g) pairs from a dense
    // low range — exactly the keys that clustered under the old mix.
    constexpr std::size_t kBuckets = 4096;  // power of two, as in the tables
    std::vector<int> load(kBuckets, 0);
    for (std::uint64_t f = 2; f < 130; ++f) {
        for (std::uint64_t g = f; g < f + 32; ++g) {
            const std::uint64_t key = (f << 32) | g;
            ++load[static_cast<std::size_t>(detail::mix64(key)) & (kBuckets - 1)];
        }
    }
    const std::size_t keys = 128 * 32;
    std::size_t occupied = 0;
    int max_load = 0;
    for (const int l : load) {
        if (l > 0) ++occupied;
        max_load = std::max(max_load, l);
    }
    // With 4096 uniform keys in 4096 buckets: ~2589 occupied expected,
    // max load ~6.  A clustered mix collapses occupancy and spikes the
    // longest probe chain.
    EXPECT_GE(occupied, keys / 2);
    EXPECT_LE(max_load, 12);
}

TEST(BddHashMixing, DenseNodeKeysSpreadAcrossPowerOfTwoBuckets) {
    constexpr std::size_t kBuckets = 4096;
    std::vector<int> load(kBuckets, 0);
    std::size_t keys = 0;
    for (std::uint32_t var = 0; var < 16; ++var) {
        for (std::uint32_t high = 2; high < 18; ++high) {
            for (std::uint32_t low = 2; low < 18; ++low) {
                ++load[static_cast<std::size_t>(detail::mix_node_key(var, high, low)) &
                       (kBuckets - 1)];
                ++keys;
            }
        }
    }
    std::size_t occupied = 0;
    int max_load = 0;
    for (const int l : load) {
        if (l > 0) ++occupied;
        max_load = std::max(max_load, l);
    }
    EXPECT_GE(occupied, keys / 2);
    EXPECT_LE(max_load, 12);
}

}  // namespace
}  // namespace asilkit::bdd

#include "analysis/sensitivity.h"

#include <algorithm>
#include <set>

namespace asilkit::analysis {

std::vector<SensitivityPoint> sweep_failure_rate(const ArchitectureModel& m,
                                                 const RateSweepOptions& options) {
    std::vector<SensitivityPoint> out;
    const double base = options.probability.rates.rate(options.kind, options.asil);
    for (double multiplier : options.multipliers) {
        ProbabilityOptions p = options.probability;
        p.rates.set_rate(options.kind, options.asil, base * multiplier);
        out.push_back({multiplier, analyze_failure_probability(m, p).failure_probability});
    }
    return out;
}

std::vector<SensitivityPoint> sweep_mission_time(const ArchitectureModel& m,
                                                 const MissionSweepOptions& options) {
    std::vector<SensitivityPoint> out;
    for (double hours : options.hours) {
        ProbabilityOptions p = options.probability;
        p.mission_hours = hours;
        out.push_back({hours, analyze_failure_probability(m, p).failure_probability});
    }
    return out;
}

std::vector<TornadoEntry> tornado(const ArchitectureModel& m, double factor,
                                  const ProbabilityOptions& base) {
    // Classes present in the model (override-carrying resources excluded:
    // their rate does not come from the table).
    std::set<std::pair<ResourceKind, Asil>> classes;
    for (ResourceId r : m.used_resources()) {
        const Resource& res = m.resources().node(r);
        if (!res.lambda_override) classes.insert({res.kind, res.asil});
    }
    std::vector<TornadoEntry> out;
    for (const auto& [kind, asil] : classes) {
        const double rate = base.rates.rate(kind, asil);
        TornadoEntry entry;
        entry.kind = kind;
        entry.asil = asil;
        ProbabilityOptions low = base;
        low.rates.set_rate(kind, asil, rate / factor);
        entry.low = analyze_failure_probability(m, low).failure_probability;
        ProbabilityOptions high = base;
        high.rates.set_rate(kind, asil, rate * factor);
        entry.high = analyze_failure_probability(m, high).failure_probability;
        out.push_back(entry);
    }
    std::sort(out.begin(), out.end(), [](const TornadoEntry& a, const TornadoEntry& b) {
        return a.swing() > b.swing();
    });
    return out;
}

}  // namespace asilkit::analysis

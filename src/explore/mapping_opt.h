// Mapping optimisation (paper Section VII-B, Fig. 9).
//
// After Expand()/Connect()/Reduce(), every application node still owns a
// dedicated resource — the paper's deliberately pessimistic starting
// point.  Sharing one resource among the nodes of a redundant branch
// (one ECU running the whole branch, one bus carrying its messages)
// removes base events from the fault tree and hardware from the bill of
// materials, lowering both the failure probability and the cost (the
// paper's point C -> D step).  Sharing is only performed *within* a
// branch: cross-branch sharing would create exactly the Common Cause
// Faults the CCF analysis rejects.
#pragma once

#include <cstddef>

#include "model/architecture.h"

namespace asilkit::explore {

struct MappingOptimizeOptions {
    /// Also consolidate the functional/communication nodes that are not
    /// part of any redundant branch onto shared hardware.
    bool include_non_branch_nodes = false;
};

struct MappingOptimizeResult {
    std::size_t resources_before = 0;
    std::size_t resources_after = 0;
    std::size_t groups_merged = 0;  ///< shared resources created
};

/// Greedy in-branch resource sharing.  The shared resource's ASIL
/// readiness is the maximum level required by any node in the group, so
/// no node's effective ASIL (Eq. 3) degrades.
MappingOptimizeResult optimize_mapping(ArchitectureModel& m,
                                       const MappingOptimizeOptions& options = {});

}  // namespace asilkit::explore

#include "transform/expand.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "model/blocks.h"
#include "model/validation.h"
#include "scenarios/micro.h"

namespace asilkit::transform {
namespace {

TEST(Expand, Adds7NodesFor1In1OutFunctional) {
    // Paper Fig. 5: "this transformation adds 7 extra nodes".
    ArchitectureModel m = scenarios::chain_1in_1out();
    const std::size_t before = m.app().node_count();
    const ExpandResult r = expand(m, m.find_app_node("n"));
    EXPECT_EQ(m.app().node_count(), before + 7);
    EXPECT_EQ(r.nodes_added, 7u);
    EXPECT_EQ(r.splitters.size(), 1u);
    EXPECT_EQ(r.mergers.size(), 1u);
    EXPECT_EQ(r.replicas.size(), 2u);
    ASSERT_EQ(r.branches.size(), 2u);
    EXPECT_EQ(r.branches[0].size(), 3u);  // c_in, replica, c_out
}

TEST(Expand, OriginalNodeAndResourceRemoved) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    expand(m, m.find_app_node("n"));
    // Ids are slot-recycled, so check by name: the original node and its
    // dedicated resource are gone, the replicas exist.
    EXPECT_FALSE(m.find_app_node("n").valid());
    EXPECT_FALSE(m.find_resource("n_hw").valid());
    EXPECT_TRUE(m.find_app_node("n_1").valid());
    EXPECT_TRUE(m.find_app_node("n_2").valid());
}

TEST(Expand, StaysValid) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    expand(m, m.find_app_node("n"));
    const ValidationReport report = validate(m);
    EXPECT_EQ(report.error_count(), 0u);
    for (const auto& issue : report.issues) {
        EXPECT_NE(issue.code, IssueCode::InvalidDecomposition) << issue.message;
    }
}

TEST(Expand, BbPatternAssignsDecomposedTags) {
    ArchitectureModel m = scenarios::chain_1in_1out();  // node n is ASIL D
    const ExpandResult r = expand(m, m.find_app_node("n"));
    EXPECT_EQ(r.pattern, (DecompositionPattern{Asil::D, Asil::B, Asil::B}));
    for (NodeId replica : r.replicas) {
        const AsilTag tag = m.app().node(replica).asil;
        EXPECT_EQ(tag.level, Asil::B);
        EXPECT_EQ(tag.inherited, Asil::D);
        EXPECT_TRUE(tag.is_decomposed());
    }
}

TEST(Expand, SplitterMergerKeepOriginalLevelByDefault) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const ExpandResult r = expand(m, m.find_app_node("n"));
    for (NodeId s : r.splitters) EXPECT_EQ(m.app().node(s).asil.level, Asil::D);
    for (NodeId g : r.mergers) EXPECT_EQ(m.app().node(g).asil.level, Asil::D);
}

TEST(Expand, SplitterMergerLevelOverride) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    ExpandOptions options;
    options.splitter_merger_asil = Asil::C;
    const ExpandResult r = expand(m, m.find_app_node("n"), options);
    EXPECT_EQ(m.app().node(r.splitters[0]).asil.level, Asil::C);
    EXPECT_EQ(m.app().node(r.mergers[0]).asil.level, Asil::C);
}

TEST(Expand, AcPatternGivesAsymmetricBranches) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    ExpandOptions options;
    options.strategy = DecompositionStrategy::AC;
    const ExpandResult r = expand(m, m.find_app_node("n"), options);
    EXPECT_EQ(m.app().node(r.replicas[0]).asil.level, Asil::C);
    EXPECT_EQ(m.app().node(r.replicas[1]).asil.level, Asil::A);
}

TEST(Expand, DedicatedResourcesMatchNodeKindAndLevel) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const ExpandResult r = expand(m, m.find_app_node("n"));
    for (NodeId s : r.splitters) {
        const Resource& res = m.resources().node(m.mapped_resources(s).front());
        EXPECT_EQ(res.kind, ResourceKind::Splitter);
        EXPECT_EQ(res.asil, Asil::D);
    }
    for (NodeId replica : r.replicas) {
        const Resource& res = m.resources().node(m.mapped_resources(replica).front());
        EXPECT_EQ(res.kind, ResourceKind::Functional);
        EXPECT_EQ(res.asil, Asil::B);
    }
}

TEST(Expand, BranchesGetFreshDisjointLocations) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const ExpandResult r = expand(m, m.find_app_node("n"));
    const auto loc1 = m.node_locations(r.replicas[0]);
    const auto loc2 = m.node_locations(r.replicas[1]);
    ASSERT_EQ(loc1.size(), 1u);
    ASSERT_EQ(loc2.size(), 1u);
    EXPECT_NE(loc1[0], loc2[0]);
}

TEST(Expand, ExplicitBranchLocationsHonoured) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const LocationId bay1 = m.add_location({"bay1", kDefaultLocationLambda, {}});
    const LocationId bay2 = m.add_location({"bay2", kDefaultLocationLambda, {}});
    ExpandOptions options;
    options.branch_locations = {bay1, bay2};
    const ExpandResult r = expand(m, m.find_app_node("n"), options);
    EXPECT_EQ(m.node_locations(r.replicas[0]), (std::vector<LocationId>{bay1}));
    EXPECT_EQ(m.node_locations(r.replicas[1]), (std::vector<LocationId>{bay2}));
}

TEST(Expand, MultiInputOutputCreatesPerEdgeManagement) {
    ArchitectureModel m = scenarios::chain_3in_3out();
    const ExpandResult r = expand(m, m.find_app_node("n"));
    EXPECT_EQ(r.splitters.size(), 3u);
    EXPECT_EQ(r.mergers.size(), 3u);
    // Branch: 3 c_in + replica + 3 c_out.
    EXPECT_EQ(r.branches[0].size(), 7u);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(Expand, CommunicationNodeVariant) {
    // Expanding a communication node inserts c_pre/c_post around the
    // splitter/merger and one comm node per branch (paper Sec. VII-A).
    ArchitectureModel m = scenarios::chain_1in_1out();
    const std::size_t before = m.app().node_count();
    const ExpandResult r = expand(m, m.find_app_node("c_out"));
    EXPECT_EQ(m.app().node_count(), before + 5);  // pre+split+2 branches+merge+post -1 removed
    ASSERT_EQ(r.replicas.size(), 2u);
    for (NodeId replica : r.replicas) {
        EXPECT_EQ(m.app().node(replica).kind, NodeKind::Communication);
    }
    // c_pre exists and feeds the splitter.
    const NodeId pre = m.find_app_node("c_pre_c_out");
    ASSERT_TRUE(pre.valid());
    EXPECT_EQ(m.app().successors(pre).front(), r.splitters[0]);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(Expand, ResultingBlockIsDetectable) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const ExpandResult r = expand(m, m.find_app_node("n"));
    const RedundantBlock block = find_block_at_merger(m, r.mergers[0]);
    EXPECT_TRUE(block.well_formed);
    EXPECT_EQ(block.splitters, r.splitters);
    EXPECT_EQ(block.branches.size(), 2u);
}

TEST(Expand, BlockAsilPreservesOriginalRequirement) {
    // Property (Eq. 4): for every strategy and level, the expanded block
    // achieves at least the original ASIL.
    for (DecompositionStrategy strategy :
         {DecompositionStrategy::BB, DecompositionStrategy::AC, DecompositionStrategy::RND}) {
        for (Asil level : {Asil::A, Asil::B, Asil::C, Asil::D}) {
            ArchitectureModel m = scenarios::chain_1in_1out(/*defaults to D*/);
            const NodeId n = m.find_app_node("n");
            m.app().node(n).asil = AsilTag{level};
            m.resources().node(m.mapped_resources(n).front()).asil = level;
            ExpandOptions options;
            options.strategy = strategy;
            options.set_rng_draw(0.7);
            const ExpandResult r = expand(m, n, options);
            const RedundantBlock block = find_block_at_merger(m, r.mergers[0]);
            EXPECT_GE(asil_value(block_asil(m, block)), asil_value(level))
                << to_string(strategy) << " at " << to_string(level);
        }
    }
}

TEST(Expand, RejectsSensorsActuatorsSplittersMergers) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    EXPECT_THROW((void)expand(m, m.find_app_node("sens")), TransformError);
    EXPECT_THROW((void)expand(m, m.find_app_node("act")), TransformError);
    const ExpandResult r = expand(m, m.find_app_node("n"));
    EXPECT_THROW((void)expand(m, r.splitters[0]), TransformError);
    EXPECT_THROW((void)expand(m, r.mergers[0]), TransformError);
}

TEST(Expand, RejectsQmNodes) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const NodeId n = m.find_app_node("n");
    m.app().node(n).asil = AsilTag{Asil::QM};
    EXPECT_THROW((void)expand(m, n), TransformError);
}

TEST(Expand, RejectsDanglingNodes) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const NodeId orphan = m.add_node_with_dedicated_resource(
        {"orphan", NodeKind::Functional, AsilTag{Asil::B}, {}}, m.find_location("front"));
    EXPECT_THROW((void)expand(m, orphan), TransformError);
}

TEST(Expand, RejectsBadBranchLocationCount) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    ExpandOptions options;
    options.branch_locations = {m.find_location("front")};
    EXPECT_THROW((void)expand(m, m.find_app_node("n"), options), TransformError);
}

TEST(Expand, PreservesNeighbourEdgesAndLabels) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const NodeId cin = m.find_app_node("c_in");
    const NodeId cout = m.find_app_node("c_out");
    const ExpandResult r = expand(m, m.find_app_node("n"));
    // c_in now feeds the splitter; merger feeds c_out.
    EXPECT_EQ(m.app().successors(cin), (std::vector<NodeId>{r.splitters[0]}));
    EXPECT_EQ(m.app().predecessors(cout), (std::vector<NodeId>{r.mergers[0]}));
}

TEST(Expand, BranchLevelsByRepeatedSplitting) {
    using transform::branch_levels;
    // BB on D, 3 branches: D -> B+B, then B -> A+A  =>  {B, A, A}.
    EXPECT_EQ(branch_levels(Asil::D, DecompositionStrategy::BB, 3),
              (std::vector<Asil>{Asil::B, Asil::A, Asil::A}));
    // BB on D, 4 branches: {A, A, A, A}.
    EXPECT_EQ(branch_levels(Asil::D, DecompositionStrategy::BB, 4),
              (std::vector<Asil>{Asil::A, Asil::A, Asil::A, Asil::A}));
    // AC on D, 3 branches: D -> C+A, C -> C+QM => {C, A, QM}.
    EXPECT_EQ(branch_levels(Asil::D, DecompositionStrategy::AC, 3),
              (std::vector<Asil>{Asil::C, Asil::A, Asil::QM}));
}

TEST(Expand, BranchLevelsAlwaysCoverParent) {
    using transform::branch_levels;
    for (Asil parent : {Asil::A, Asil::B, Asil::C, Asil::D}) {
        for (DecompositionStrategy s :
             {DecompositionStrategy::BB, DecompositionStrategy::AC}) {
            for (std::size_t n = 2; n <= 4; ++n) {
                const auto levels = branch_levels(parent, s, n);
                ASSERT_EQ(levels.size(), n);
                EXPECT_TRUE(is_valid_decomposition(parent, levels))
                    << to_string(s) << " " << to_string(parent) << " n=" << n;
            }
        }
    }
}

TEST(Expand, BranchLevelsRejectsDegenerateCases) {
    EXPECT_THROW((void)transform::branch_levels(Asil::D, DecompositionStrategy::BB, 1), TransformError);
    // A -> A+QM; the QM branch cannot split again, but the A branch can,
    // so 3 branches work: {A, QM, QM}... A -> A+QM, A -> A+QM.
    EXPECT_EQ(transform::branch_levels(Asil::A, DecompositionStrategy::BB, 3),
              (std::vector<Asil>{Asil::A, Asil::QM, Asil::QM}));
}

TEST(Expand, ThreeWayExpansionBuildsThreeBranches) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    ExpandOptions options;
    options.branches = 3;
    const ExpandResult r = expand(m, m.find_app_node("n"), options);
    EXPECT_EQ(r.replicas.size(), 3u);
    EXPECT_EQ(r.branches.size(), 3u);
    EXPECT_EQ(r.branch_levels, (std::vector<Asil>{Asil::B, Asil::A, Asil::A}));
    EXPECT_EQ(m.app().node(r.replicas[0]).asil, (AsilTag{Asil::B, Asil::D}));
    EXPECT_EQ(m.app().node(r.replicas[2]).asil, (AsilTag{Asil::A, Asil::D}));

    const RedundantBlock block = find_block_at_merger(m, r.mergers[0]);
    ASSERT_TRUE(block.well_formed);
    EXPECT_EQ(block.branches.size(), 3u);
    // Eq. 4: B + A + A = D, bounded by D splitter/merger.
    EXPECT_EQ(block_asil(m, block), Asil::D);
    EXPECT_EQ(validate(m).error_count(), 0u);
}

TEST(Expand, ThreeWayBranchesGetDistinctLocations) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    ExpandOptions options;
    options.branches = 3;
    const ExpandResult r = expand(m, m.find_app_node("n"), options);
    std::vector<LocationId> locs;
    for (NodeId replica : r.replicas) {
        const auto l = m.node_locations(replica);
        ASSERT_EQ(l.size(), 1u);
        locs.push_back(l[0]);
    }
    std::sort(locs.begin(), locs.end());
    EXPECT_EQ(std::unique(locs.begin(), locs.end()), locs.end());
}

TEST(Expand, RepeatedExpansionOfReplicaWorks) {
    // A decomposed B(D) replica can itself be expanded (B -> A + A),
    // supporting the paper's "repeatedly decomposes" RND-3 curve.
    ArchitectureModel m = scenarios::chain_1in_1out();
    const ExpandResult first = expand(m, m.find_app_node("n"));
    const ExpandResult second = expand(m, first.replicas[0]);
    EXPECT_EQ(second.pattern, (DecompositionPattern{Asil::B, Asil::A, Asil::A}));
    EXPECT_EQ(validate(m).error_count(), 0u);
}

}  // namespace
}  // namespace asilkit::transform

#include "explore/pareto.h"

#include <algorithm>

namespace asilkit::explore {

bool dominates(const TradeoffPoint& a, const TradeoffPoint& b) noexcept {
    const bool no_worse = a.cost <= b.cost && a.failure_probability <= b.failure_probability;
    const bool better = a.cost < b.cost || a.failure_probability < b.failure_probability;
    return no_worse && better;
}

std::vector<TradeoffPoint> pareto_front(const std::vector<TradeoffPoint>& points) {
    std::vector<TradeoffPoint> front;
    for (const TradeoffPoint& candidate : points) {
        const bool dominated = std::any_of(points.begin(), points.end(), [&](const TradeoffPoint& other) {
            return dominates(other, candidate);
        });
        if (!dominated) front.push_back(candidate);
    }
    std::sort(front.begin(), front.end(), [](const TradeoffPoint& a, const TradeoffPoint& b) {
        if (a.cost != b.cost) return a.cost < b.cost;
        return a.failure_probability < b.failure_probability;
    });
    front.erase(std::unique(front.begin(), front.end(),
                            [](const TradeoffPoint& a, const TradeoffPoint& b) {
                                return a.cost == b.cost &&
                                       a.failure_probability == b.failure_probability;
                            }),
                front.end());
    return front;
}

}  // namespace asilkit::explore

// Umbrella header: the full asilkit public API.
//
// Individual headers are preferred in library code; this exists for
// quick-start consumers and example snippets.
#pragma once

#include "core/asil.h"             // ASIL levels, X(Y) tags
#include "core/decomposition.h"    // Fig. 2 catalogue, strategies
#include "core/error.h"            // exception hierarchy
#include "core/ids.h"              // strong id types
#include "core/version.h"

#include "graph/algorithms.h"
#include "graph/digraph.h"

#include "model/architecture.h"    // the three-layer model
#include "model/blocks.h"          // redundant-block detection, Eq. 4
#include "model/failure_rates.h"   // Table I
#include "model/validation.h"

#include "ftree/builder.h"         // automatic fault-tree generation
#include "ftree/fault_tree.h"

#include "bdd/bdd.h"               // ROBDD engine
#include "bdd/from_fault_tree.h"

#include "analysis/ccf.h"          // common-cause-fault analysis
#include "analysis/cutsets.h"      // minimal cut sets
#include "analysis/fmea.h"         // component criticality report
#include "analysis/importance.h"   // Birnbaum / Fussell-Vesely
#include "analysis/probability.h"  // exact failure probability
#include "analysis/sensitivity.h"  // rate / mission sweeps, tornado
#include "analysis/simulation.h"   // Monte Carlo cross-validation
#include "analysis/tolerance.h"    // fault-tolerance metrics
#include "analysis/traceability.h" // FSR tracing

#include "cost/cost_analysis.h"    // Table II metrics
#include "cost/cost_metric.h"

#include "engine/engine.h"         // parallel memoised candidate scoring
#include "engine/eval_cache.h"
#include "engine/thread_pool.h"

#include "transform/connect.h"     // Connect()
#include "transform/expand.h"      // Expand()
#include "transform/reduce.h"      // Reduce()

#include "explore/advisor.h"       // expansion recommendations
#include "explore/driver.h"        // the paper's experiment loop
#include "explore/mapping_opt.h"   // in-branch resource sharing
#include "explore/mapping_search.h"// capacity-constrained local search
#include "explore/pareto.h"

#include "io/csv.h"
#include "io/dot.h"
#include "io/graphml.h"
#include "io/json.h"
#include "io/model_diff.h"
#include "io/model_json.h"
#include "io/sarif.h"

#include "lint/emit.h"             // text / JSON / SARIF lint output
#include "lint/lint.h"             // cross-layer safety linter

#include "scenarios/builder.h"
#include "scenarios/ecotwin.h"
#include "scenarios/fig3.h"
#include "scenarios/longitudinal.h"
#include "scenarios/micro.h"
#include "scenarios/synthetic.h"

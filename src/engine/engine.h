// The evaluation engine: candidate scoring as a batched, parallel,
// memoised, *incremental* service.
//
// Design-space exploration (paper Section IX) and the mapping search
// evaluate thousands of candidate architectures, each requiring a
// model -> fault tree -> BDD -> exact probability pipeline.  The engine
// makes that pipeline scale:
//   * a fixed thread pool evaluates independent candidates
//     concurrently — every evaluation owns its BddManagers, so no locks
//     sit on the apply path (see thread_pool.h);
//   * every canonical tree is split into independent modules
//     (ftree/modules.h) and evaluated module-by-module: each module's
//     local region compiles to its own small BDD, nested modules enter
//     as pseudo-variables — exact, since modules share no basic events
//     with the rest of the tree;
//   * an evaluation cache memoises at two granularities: whole
//     canonical trees (a hit skips everything) and, with `modularize`
//     on, individual modules — so a candidate move that perturbs one
//     region of the tree replays every untouched module from cache and
//     recompiles only the modules its basic events intersect
//     (see eval_cache.h);
//   * with `persistent_bdd` on, every worker thread keeps ONE long-lived
//     BDD compilation service (bdd::PersistentBddCompiler): compiled
//     subtrees persist across candidates behind a structural compile
//     memo, and a mark-and-compact collection bounds the arena
//     (see docs/bdd.md);
//   * analyze_batch additionally groups candidates whose canonical
//     trees are shape-identical — rate-only variants, ubiquitous in
//     sensitivity sweeps — and pushes each group's modules through the
//     batched multi-lambda probability kernel: one compilation, one SoA
//     sweep, k results.
//
// Determinism contract: for a fixed model and options, results are
// bitwise identical regardless of thread count, cache capacity AND the
// modularize flag.  The modular evaluation order is always used, so a
// whole-tree hit, a per-module replay and a fresh evaluation all
// produce the same doubles; callers that batch through the pool reduce
// their results in input order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/sync.h"

#include "analysis/probability.h"
#include "bdd/from_fault_tree.h"
#include "engine/eval_cache.h"
#include "engine/thread_pool.h"
#include "ftree/cft.h"
#include "ftree/modules.h"
#include "model/architecture.h"
#include "obs/metrics.h"

namespace asilkit::engine {

struct EngineOptions {
    /// Evaluation lanes (including the calling thread).  0 = take the
    /// ASILKIT_THREADS environment variable, falling back to
    /// std::thread::hardware_concurrency().
    unsigned threads = 0;
    /// Maximum number of cached evaluations; 0 disables the cache.
    std::size_t cache_capacity = std::size_t{1} << 16;
    /// Memoise per fault-tree module in addition to per whole tree: on
    /// a whole-tree miss, untouched modules replay from cache and only
    /// the modules whose basic events the candidate move touched are
    /// recompiled.  Off = whole-tree keying only (the PR-1 behaviour).
    /// Never changes results — evaluation is modular either way.
    bool modularize = true;
    /// Keep one long-lived bdd::PersistentBddCompiler per worker thread
    /// instead of a fresh throwaway BddManager per module: candidates
    /// that share structure re-derive shared subtrees from the compile
    /// memo instead of reallocating them.  Never changes probabilities —
    /// only where the BDD nodes live (ProbabilityResult::bdd_total_nodes
    /// becomes an allocation delta, see docs/bdd.md).
    bool persistent_bdd = true;
    /// Interior-node high water per persistent manager at which the next
    /// compile safe point runs a mark-and-compact collection.
    /// 0 disables collection.
    std::size_t bdd_gc_node_threshold = std::size_t{1} << 20;
    /// In analyze_batch, group candidates whose canonical trees are
    /// shape-identical (rate-only variants) and evaluate each module for
    /// all lanes of a group in ONE compilation + ONE batched multi-lambda
    /// probability sweep.  Per-lane results are bitwise identical to
    /// ungrouped evaluation.  Requires persistent_bdd.
    bool batch_rate_variants = true;
    /// Generate fault trees through per-thread component-fragment
    /// builders (ftree::IncrementalTreeBuilder) instead of from scratch:
    /// a candidate edit regenerates only the fragments whose model facts
    /// changed, and a *repeat* composition — the steady state of a
    /// trade-off sweep — reuses the finished canonical tree, hashes and
    /// module decomposition by reference, constructing zero gates.
    /// Never changes results: assembled trees are bitwise identical to
    /// full rebuilds (docs/ftree.md gives the argument), so tree keys,
    /// cache traffic and probabilities are unchanged at any thread
    /// count.
    bool incremental_ftree = true;
    /// Cross-iteration / cross-branch candidate dedup: remember every
    /// evaluated canonical tree (by the same key the eval cache uses) in
    /// a non-evicting memo and serve repeats from it when the LRU cache
    /// cannot — so a trade-off sweep's branches stop re-evaluating merged
    /// shapes an earlier branch already scored, whatever the cache
    /// capacity or eviction history.  A served value is the bitwise
    /// EvalValue the evaluation produced, so results never change; hits
    /// count as tree hits and additionally as "explore.dedup_hits".
    bool candidate_dedup = true;
};

class EvalEngine {
public:
    explicit EvalEngine(const EngineOptions& options = {});

    /// Evaluation lanes actually available, env var applied.
    [[nodiscard]] unsigned threads() const noexcept { return pool_.thread_count(); }

    /// Drop-in replacement for analysis::analyze_failure_probability,
    /// memoised by the structural hash of the generated fault tree.
    /// Thread-safe: may be called concurrently from pool tasks.
    [[nodiscard]] analysis::ProbabilityResult analyze(const ArchitectureModel& m,
                                                      const analysis::ProbabilityOptions& options);

    /// Scores every model of a batch concurrently; results in input
    /// order.  Null entries are skipped (default-constructed result).
    [[nodiscard]] std::vector<analysis::ProbabilityResult> analyze_batch(
        std::span<const ArchitectureModel* const> models,
        const analysis::ProbabilityOptions& options);

    /// The pool, for callers that parallelise more than the analysis
    /// itself (e.g. building the trial model inside the task).
    [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

    /// Everything the engine counts, in one snapshot.  `cache` is the
    /// raw lookup ledger (tree + module lookups combined); the engine
    /// counters split it by granularity: a tree hit ends the evaluation,
    /// a tree miss decomposes into modules, each of which hits (replayed
    /// from a previous evaluation) or misses (recompiled).  With
    /// modularize off the module counters stay zero.
    ///
    /// The counters themselves live in the process-global obs registry
    /// (ids "engine.analyze_calls", "engine.tree_hits", ... — see
    /// docs/observability.md); this snapshot is the per-instance view,
    /// computed against the registry values captured at construction.
    struct Stats {
        EvalCache::Stats cache;
        std::uint64_t analyze_calls = 0;
        std::uint64_t tree_hits = 0;
        std::uint64_t tree_misses = 0;
        std::uint64_t module_hits = 0;
        std::uint64_t module_misses = 0;
        /// Candidates the lint pre-filter rejected before fault-tree
        /// generation (explore::search_mapping reports them here so DSE
        /// accounting stays in one snapshot).
        std::uint64_t lint_rejections = 0;
        /// Evaluations served by the non-evicting candidate memo after
        /// an LRU miss ("explore.dedup_hits"); a subset of tree_hits.
        /// Zero with candidate_dedup off or while the LRU never evicts.
        std::uint64_t dedup_hits = 0;
        /// Persistent-compilation view (zero with persistent_bdd off):
        /// gates served by / inserted into the per-thread subtree memos
        /// ("bdd.subtree_memo_*") and safe-point collections the
        /// persistent managers ran ("bdd.gc.collections").
        std::uint64_t subtree_memo_hits = 0;
        std::uint64_t subtree_memo_misses = 0;
        std::uint64_t gc_collections = 0;
        /// Batched multi-lambda kernel view (zero with batching off):
        /// shape-identical groups analyze_batch formed and the lanes
        /// they carried ("engine.batch_groups" / "engine.batch_lanes").
        std::uint64_t batch_groups = 0;
        std::uint64_t batch_lanes = 0;
        /// Incremental tree generation view (zero with incremental_ftree
        /// off): component fragments regenerated vs reused by the
        /// per-thread builders ("ftree.fragment.built" /
        /// "ftree.fragment.reused") and whole compositions served from
        /// the finished-tree memo ("ftree.memo_hits").
        std::uint64_t fragments_built = 0;
        std::uint64_t fragments_reused = 0;
        std::uint64_t ftree_memo_hits = 0;
    };
    [[nodiscard]] Stats stats() const;

    /// Adds to the lint-rejection counter; called by search layers that
    /// discard candidates before they reach analyze().
    void note_lint_rejections(std::uint64_t n) noexcept { lint_rejections_.add(n); }

    [[nodiscard]] EvalCache::Stats cache_stats() const { return cache_.stats(); }
    void clear_cache() { cache_.clear(); }

private:
    /// One model through build -> canonical -> keys, the thread-safe
    /// front half of analyze(); `finish` / `finish_group` are the back
    /// half (cache lookups, modular evaluation, inserts).
    struct PreparedModel {
        analysis::ProbabilityResult result;  ///< ft_stats / warnings filled
        /// Canonical tree, shared by reference with the incremental
        /// builders' composition memo (repeat candidates alias ONE
        /// immutable tree instead of each carrying a copy).
        std::shared_ptr<const ftree::FaultTree> canonical;
        /// Module decomposition carried over from the incremental
        /// builder; null on the full-rebuild path (finish/finish_group
        /// then compute it locally, as before).
        std::shared_ptr<const ftree::ModuleDecomposition> modules;
        std::uint64_t tree_key = 0;
        std::uint64_t shape_hash = 0;  ///< 0 unless grouping was requested
    };
    [[nodiscard]] PreparedModel prepare(const ArchitectureModel& m,
                                        const analysis::ProbabilityOptions& options,
                                        bool want_shape);
    void finish(PreparedModel& p, const analysis::ProbabilityOptions& options);
    void finish_group(std::span<PreparedModel* const> lanes,
                      const analysis::ProbabilityOptions& options);

    /// The calling thread's persistent compiler (created on first use),
    /// or nullptr with persistent_bdd off.  Each compiler is used by
    /// exactly one thread; the mutex guards only the map.
    [[nodiscard]] bdd::PersistentBddCompiler* compiler_lane();

    /// The calling thread's incremental tree builder (created on first
    /// use), or nullptr with incremental_ftree off — same lane pattern
    /// as compiler_lane().
    [[nodiscard]] ftree::IncrementalTreeBuilder* ftree_lane();

    /// Candidate memo lookup/insert; no-ops (nullopt) with the feature
    /// off.  Guarded by dedup_mutex_ — the memo sits behind the LRU, so
    /// traffic is bounded by tree misses, not lookups.
    [[nodiscard]] std::optional<EvalValue> dedup_lookup(std::uint64_t key);
    void dedup_insert(std::uint64_t key, const EvalValue& value);

    ThreadPool pool_;
    EvalCache cache_;
    bool modularize_;
    bool persistent_bdd_;
    bool batch_rate_variants_;
    bool candidate_dedup_;
    bool incremental_ftree_;
    std::size_t bdd_gc_node_threshold_;
    core::Mutex dedup_mutex_;
    std::unordered_map<std::uint64_t, EvalValue> dedup_map_ GUARDED_BY(dedup_mutex_);
    // The lane maps are guarded; the lane OBJECTS the unique_ptrs own
    // are not — each is created once under the mutex and then used by
    // exactly one thread (its key), so pointees are thread-confined by
    // construction, not by locking.
    core::Mutex compilers_mutex_;
    std::unordered_map<std::thread::id, std::unique_ptr<bdd::PersistentBddCompiler>>
        compilers_ GUARDED_BY(compilers_mutex_);
    core::Mutex ftree_lanes_mutex_;
    std::unordered_map<std::thread::id, std::unique_ptr<ftree::IncrementalTreeBuilder>>
        ftree_lanes_ GUARDED_BY(ftree_lanes_mutex_);
    // Registry-backed counters (relaxed atomic adds: analyze() runs
    // concurrently from pool tasks; stats() is a monitoring snapshot,
    // not a synchronisation point).  `base_` anchors the per-instance
    // stats() view against the process-global registry values.
    obs::Counter& analyze_calls_;
    obs::Counter& tree_hits_;
    obs::Counter& tree_misses_;
    obs::Counter& module_hits_;
    obs::Counter& module_misses_;
    obs::Counter& lint_rejections_;
    obs::Counter& dedup_hits_;
    obs::Counter& subtree_memo_hits_;
    obs::Counter& subtree_memo_misses_;
    obs::Counter& gc_collections_;
    obs::Counter& batch_groups_;
    obs::Counter& batch_lanes_;
    obs::Counter& fragments_built_;
    obs::Counter& fragments_reused_;
    obs::Counter& ftree_memo_hits_;
    Stats base_;
};

}  // namespace asilkit::engine

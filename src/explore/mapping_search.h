// Mapping search (paper Section VII-B closing remark: "Advanced mapping
// algorithms can be used to identify the minimum set of necessary
// resources to achieve the minimum failure probability for the system,
// but we defer these techniques to future work").
//
// A steepest-descent local search over resource-merge moves: two
// resources of the same kind hosting nodes of the same *region* (the same
// redundant branch, or both outside any branch) may be merged when the
// combined utilisation stays within capacity.  Every candidate move is
// evaluated on the real objective — exact BDD failure probability first,
// architecture cost second — and the best improving move is applied until
// a local optimum is reached.  Cross-branch merges are never candidates:
// they would introduce the Common Cause Faults the CCF analysis rejects.
#pragma once

#include <cstddef>
#include <cstdint>

#include "analysis/probability.h"
#include "cost/cost_metric.h"
#include "engine/engine.h"
#include "model/architecture.h"

namespace asilkit::explore {

struct MappingSearchOptions {
    /// Capacity limit: a shared resource may host at most this many
    /// application nodes (models ECU utilisation / bus load headroom).
    std::size_t max_nodes_per_resource = 4;
    cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    analysis::ProbabilityOptions probability{};
    std::size_t max_iterations = 200;
    /// Also consider merging resources of trunk (non-branch) nodes.
    bool include_non_branch_nodes = true;
    /// Candidate evaluation: thread count and eval-cache capacity.  All
    /// candidate merges of an iteration are scored as one parallel
    /// batch; the best improving move is still selected and applied
    /// serially, so the search is deterministic in the thread count.
    engine::EngineOptions engine{};
    /// Run the structural linter (lint::structural_error_count) on every
    /// candidate before fault-tree generation and reject candidates that
    /// introduce a *new* error-severity finding over the iteration's
    /// baseline.  A rejected candidate scores +infinity, which the
    /// serial selection scan can never pick — so results are bitwise
    /// identical with the pre-filter on or off, at any thread count; the
    /// filter only skips evaluations that could not have won.
    bool lint_prefilter = true;
};

struct MappingSearchResult {
    std::size_t merges = 0;
    std::size_t iterations = 0;
    double probability_before = 0.0;
    double probability_after = 0.0;
    double cost_before = 0.0;
    double cost_after = 0.0;
    bool reached_local_optimum = false;
    /// Candidate evaluations performed (engine analyze calls; equals
    /// whole-tree cache hits + misses, since every call keys the tree).
    std::uint64_t evaluations = 0;
    /// Whole-tree cache counters: a hit replays a previously scored
    /// candidate without recompiling anything.
    std::uint64_t eval_cache_hits = 0;
    std::uint64_t eval_cache_misses = 0;
    /// Per-module cache counters (zero when options.engine.modularize is
    /// off): within the eval_cache_misses above, module hits are regions
    /// replayed from earlier candidates, module misses are the regions
    /// actually recompiled.
    std::uint64_t module_cache_hits = 0;
    std::uint64_t module_cache_misses = 0;
    /// Candidates the lint pre-filter rejected before fault-tree
    /// generation (0 when options.lint_prefilter is off).
    std::uint64_t lint_rejections = 0;

    [[nodiscard]] double eval_cache_hit_rate() const noexcept {
        return evaluations == 0
                   ? 0.0
                   : static_cast<double>(eval_cache_hits) / static_cast<double>(evaluations);
    }
    /// Fraction of all cached lookups (tree + module) that hit: the
    /// share of work the caches absorbed at whichever granularity.
    [[nodiscard]] double combined_cache_hit_rate() const noexcept {
        const std::uint64_t hits = eval_cache_hits + module_cache_hits;
        const std::uint64_t total = hits + eval_cache_misses + module_cache_misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/// Runs the search in place; the model's mapping (and resource set) is
/// modified, the application graph is not.
MappingSearchResult search_mapping(ArchitectureModel& m, const MappingSearchOptions& options = {});

/// Same, but on a caller-owned engine: repeated searches (e.g. across a
/// tradeoff sweep) share the pool and the evaluation cache.  The
/// result's eval counters cover only this call.
MappingSearchResult search_mapping(ArchitectureModel& m, const MappingSearchOptions& options,
                                   engine::EvalEngine& engine);

}  // namespace asilkit::explore

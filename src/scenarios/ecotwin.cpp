#include "scenarios/ecotwin.h"

#include "scenarios/builder.h"

namespace asilkit::scenarios {
namespace {

/// A zero-lambda, zero-cost pseudo element: virtual splitters model the
/// physical environment replicating information into several sensors, and
/// their "source" is the observed scene itself — neither can fail as a
/// component, neither costs anything.
void make_virtual(ArchitectureModel& m, NodeId n) {
    for (ResourceId r : m.mapped_resources(n)) {
        Resource& res = m.resources().node(r);
        res.lambda_override = 0.0;
        res.cost_override = 0.0;
    }
}

}  // namespace

ArchitectureModel ecotwin_lateral_control() {
    ScenarioBuilder b("ecotwin-lateral-control");
    ArchitectureModel& m = b.model();

    // Physical zones of the tractor.
    const LocationId windshield = b.loc("windshield");
    const LocationId front_bumper = b.loc("front_bumper");
    const LocationId roof = b.loc("roof");
    const LocationId cabin = b.loc("cabin");
    const LocationId chassis = b.loc("chassis");
    const LocationId steering_column = b.loc("steering_column");

    const Asil D = Asil::D;

    b.set_fsr("FSR-LAT-SENSE");
    // ---- forward object sensing: three heterogeneous sensors observe the
    // same preceding truck; a virtual splitter models the scene feeding all
    // three, and the sensor-fusion node is a MERGER — the fused estimate
    // survives any single sensing-chain failure.
    const NodeId scene = b.sensor("observed_scene", D, front_bumper);
    const NodeId vsplit_scene = b.splitter("vsplit_scene", D, front_bumper);
    b.link(scene, vsplit_scene);
    make_virtual(m, scene);
    make_virtual(m, vsplit_scene);

    const NodeId fusion = b.merger("object_fusion", D, cabin);
    const struct {
        const char* sensor;
        const char* link;
        const char* proc;
        const char* objs;
        LocationId at;
    } chains[] = {
        {"camera", "cam_link", "cam_proc", "cam_objs", windshield},
        {"radar", "radar_link", "radar_proc", "radar_objs", front_bumper},
        {"lidar", "lidar_link", "lidar_proc", "lidar_objs", roof},
    };
    for (const auto& c : chains) {
        const NodeId s = b.sensor(c.sensor, D, c.at);
        const NodeId link = b.comm(c.link, D, c.at);
        const NodeId proc = b.func(c.proc, D, c.at);
        const NodeId objs = b.comm(c.objs, D, c.at);
        b.chain({vsplit_scene, s, link, proc, objs, fusion});
    }

    b.set_fsr("FSR-LAT-EGO");
    // ---- ego-state sensing: INS and wheel odometry measure the same
    // vehicle motion; same virtual-splitter + merger pattern.
    const NodeId motion = b.sensor("vehicle_motion", D, chassis);
    const NodeId vsplit_ego = b.splitter("vsplit_ego", D, chassis);
    b.link(motion, vsplit_ego);
    make_virtual(m, motion);
    make_virtual(m, vsplit_ego);

    const NodeId ego_fusion = b.merger("ego_fusion", D, cabin);
    {
        const NodeId ins = b.sensor("gps_imu", D, roof);
        const NodeId ins_link = b.comm("ins_link", D, roof);
        const NodeId ins_proc = b.func("ins_proc", D, cabin);
        const NodeId ins_out = b.comm("ins_out", D, cabin);
        b.chain({vsplit_ego, ins, ins_link, ins_proc, ins_out, ego_fusion});
        const NodeId odo = b.sensor("wheel_odometry", D, chassis);
        const NodeId odo_link = b.comm("odo_link", D, chassis);
        const NodeId odo_proc = b.func("odo_proc", D, chassis);
        const NodeId odo_out = b.comm("odo_out", D, chassis);
        b.chain({vsplit_ego, odo, odo_link, odo_proc, odo_out, ego_fusion});
    }
    const NodeId ego_out = b.comm("ego_out", D, cabin);
    b.link(ego_fusion, ego_out);

    b.set_fsr("FSR-LAT-V2V");
    // ---- V2V: the lead truck's state arrives over a single radio link.
    const NodeId v2v = b.sensor("v2v_radio", D, roof);
    const NodeId v2v_link = b.comm("v2v_link", D, cabin);
    b.chain({v2v, v2v_link});

    b.set_fsr("FSR-LAT-01");
    // ---- decision chain (the blue region of Fig. 10) -----------------------
    // Every hop between processing steps is an explicit communication node
    // (Ethernet segment, backbone, CAN), so the expandable set is
    // communication-heavy like the paper's.
    const NodeId objs_eth = b.comm("objs_eth", D, cabin);
    const NodeId objs_bb = b.comm("objs_bb", D, cabin);
    const NodeId env_model = b.func("environment_model", D, cabin);
    const NodeId env_out = b.comm("env_out", D, cabin);
    const NodeId world_model = b.func("world_model", D, cabin);
    const NodeId wm_eth = b.comm("wm_eth", D, cabin);
    const NodeId wm_can = b.comm("wm_can", D, cabin);
    const NodeId lateral_ctrl = b.func("lateral_control", D, cabin);
    const NodeId ctrl_out = b.comm("ctrl_out", D, cabin);
    const NodeId steer_plan = b.func("steer_plan", D, steering_column);
    const NodeId steer_req = b.comm("steer_req", D, steering_column);

    b.chain({fusion, objs_eth, objs_bb, env_model, env_out, world_model});
    b.link(ego_out, world_model);
    b.link(v2v_link, world_model);
    b.chain({world_model, wm_eth, wm_can, lateral_ctrl, ctrl_out, steer_plan, steer_req});

    b.set_fsr("FSR-LAT-ACT");
    // ---- actuation ----------------------------------------------------------
    const NodeId steering = b.actuator("steering_actuator", D, steering_column);
    b.link(steer_req, steering);

    return b.take();
}

std::vector<std::string> ecotwin_decision_nodes() {
    return {"objs_eth", "objs_bb",       "environment_model", "env_out",
            "world_model", "wm_eth",     "wm_can",            "lateral_control",
            "ctrl_out",    "steer_plan", "steer_req"};
}

}  // namespace asilkit::scenarios

# Empty compiler generated dependencies file for test_model_diff.
# This may be replaced when dependencies are built.

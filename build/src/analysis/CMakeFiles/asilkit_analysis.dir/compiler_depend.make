# Empty compiler generated dependencies file for asilkit_analysis.
# This may be replaced when dependencies are built.

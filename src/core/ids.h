// Strongly-typed integer identifiers for the three model layers.
//
// The three graphs of the model (application, resource, physical) each key
// their elements by a distinct id type so that a NodeId cannot silently be
// used where a ResourceId is expected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <ostream>

namespace asilkit {

/// CRTP-free strong id: a wrapped 32-bit index with a tag type.
template <typename Tag>
class StrongId {
public:
    using value_type = std::uint32_t;

    static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

    constexpr StrongId() = default;
    constexpr explicit StrongId(value_type v) noexcept : value_(v) {}

    [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
    [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

    friend constexpr bool operator==(StrongId, StrongId) = default;
    friend constexpr auto operator<=>(StrongId, StrongId) = default;

    friend std::ostream& operator<<(std::ostream& os, StrongId id) {
        if (!id.valid()) return os << "#invalid";
        return os << '#' << id.value();
    }

private:
    value_type value_ = kInvalid;
};

struct AppNodeTag {};
struct AppEdgeTag {};
struct ResourceTag {};
struct ResourceLinkTag {};
struct LocationTag {};
struct LocationLinkTag {};

using NodeId = StrongId<AppNodeTag>;          ///< Application-layer node (N).
using ChannelId = StrongId<AppEdgeTag>;       ///< Application-layer channel (E).
using ResourceId = StrongId<ResourceTag>;     ///< Resource-layer node (R).
using LinkId = StrongId<ResourceLinkTag>;     ///< Resource-layer link (L).
using LocationId = StrongId<LocationTag>;     ///< Physical-layer node (P).
using ConnectionId = StrongId<LocationLinkTag>;  ///< Physical-layer connection (C).

}  // namespace asilkit

template <typename Tag>
struct std::hash<asilkit::StrongId<Tag>> {
    std::size_t operator()(asilkit::StrongId<Tag> id) const noexcept {
        return std::hash<typename asilkit::StrongId<Tag>::value_type>{}(id.value());
    }
};

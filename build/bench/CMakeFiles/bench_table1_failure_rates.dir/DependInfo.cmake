
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_failure_rates.cpp" "bench/CMakeFiles/bench_table1_failure_rates.dir/bench_table1_failure_rates.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_failure_rates.dir/bench_table1_failure_rates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/asilkit_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/asilkit_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/asilkit_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/asilkit_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/asilkit_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/asilkit_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/asilkit_io.dir/DependInfo.cmake"
  "/root/repo/build/src/ftree/CMakeFiles/asilkit_ftree.dir/DependInfo.cmake"
  "/root/repo/build/src/scenarios/CMakeFiles/asilkit_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/asilkit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asilkit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

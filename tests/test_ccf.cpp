#include "analysis/ccf.h"

#include <gtest/gtest.h>

#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::analysis {
namespace {

TEST(Ccf, IndependentSystemHasNoFindings) {
    const CcfReport report = analyze_ccf(scenarios::fig3_camera_gps_fusion());
    EXPECT_TRUE(report.independent());
    EXPECT_TRUE(report.findings.empty());
}

TEST(Ccf, SharedEcuIsDetected) {
    // The paper's example: dfus_1 and dfus_2 mapped on the same ECU.
    const ArchitectureModel m = scenarios::fig3_with_shared_ecu_ccf();
    const CcfReport report = analyze_ccf(m);
    EXPECT_FALSE(report.independent());
    EXPECT_GE(report.count(CcfKind::SharedResource), 1u);
    bool found = false;
    for (const CcfFinding& f : report.findings) {
        if (f.kind == CcfKind::SharedResource && f.subject == "ecu1") {
            found = true;
            EXPECT_EQ(f.branch_indices.size(), 2u);
            EXPECT_EQ(f.merger, m.find_app_node("merge_dfus"));
        }
    }
    EXPECT_TRUE(found);
}

TEST(Ccf, SharedResourceBlocksApproximation) {
    const ArchitectureModel m = scenarios::fig3_with_shared_ecu_ccf();
    const CcfReport report = analyze_ccf(m);
    const NodeId merger = m.find_app_node("merge_dfus");
    EXPECT_FALSE(report.block_approximation_safe(merger));
    EXPECT_FALSE(report.block_independent(merger));
}

TEST(Ccf, SharedLocationIsDetected) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    // Expand with both branches forced into the SAME location.
    const LocationId shared = m.add_location({"shared_bay", kDefaultLocationLambda, {}});
    transform::ExpandOptions options;
    options.branch_locations = {shared, shared};
    transform::expand(m, m.find_app_node("n"), options);
    const CcfReport report = analyze_ccf(m);
    EXPECT_GE(report.count(CcfKind::SharedLocation), 1u);
    // Location sharing is a warning about independence, but it is not a
    // shared base event of a RESOURCE... except that co-located branches
    // share the location's base event, which the builder treats as a CCF
    // too: verify it is reported as location kind here.
    bool found = false;
    for (const CcfFinding& f : report.findings) {
        if (f.kind == CcfKind::SharedLocation && f.subject == "shared_bay") found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Ccf, LocationCheckCanBeDisabled) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const LocationId shared = m.add_location({"shared_bay", kDefaultLocationLambda, {}});
    transform::ExpandOptions options;
    options.branch_locations = {shared, shared};
    transform::expand(m, m.find_app_node("n"), options);
    CcfOptions ccf_options;
    ccf_options.check_locations = false;
    ccf_options.check_environment = false;
    const CcfReport report = analyze_ccf(m, ccf_options);
    EXPECT_EQ(report.count(CcfKind::SharedLocation), 0u);
}

TEST(Ccf, SharedEnvironmentZoneIsDetected) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    // Two distinct locations, but both in vibration zone 3 (e.g. both on
    // the engine block): freedom-from-interference concern.
    Environment noisy;
    noisy.vibration_zone = 3;
    const LocationId bay1 = m.add_location({"bay1", kDefaultLocationLambda, noisy});
    const LocationId bay2 = m.add_location({"bay2", kDefaultLocationLambda, noisy});
    transform::ExpandOptions options;
    options.branch_locations = {bay1, bay2};
    transform::expand(m, m.find_app_node("n"), options);
    const CcfReport report = analyze_ccf(m);
    EXPECT_EQ(report.count(CcfKind::SharedLocation), 0u);
    EXPECT_GE(report.count(CcfKind::SharedEnvironment), 1u);
    bool found = false;
    for (const CcfFinding& f : report.findings) {
        if (f.kind == CcfKind::SharedEnvironment) {
            EXPECT_EQ(f.subject, "vibration-zone-3");
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Ccf, DifferentZonesAreIndependent) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    Environment z1;
    z1.vibration_zone = 1;
    Environment z2;
    z2.vibration_zone = 2;
    const LocationId bay1 = m.add_location({"bay1", kDefaultLocationLambda, z1});
    const LocationId bay2 = m.add_location({"bay2", kDefaultLocationLambda, z2});
    transform::ExpandOptions options;
    options.branch_locations = {bay1, bay2};
    transform::expand(m, m.find_app_node("n"), options);
    const CcfReport report = analyze_ccf(m);
    EXPECT_TRUE(report.independent());
}

TEST(Ccf, ExpansionDefaultsAreIndependent) {
    // The default Expand() placement (fresh location per branch) must
    // never introduce a CCF.
    ArchitectureModel m = scenarios::chain_two_stages();
    transform::expand(m, m.find_app_node("n1"));
    transform::expand(m, m.find_app_node("n2"));
    EXPECT_TRUE(analyze_ccf(m).independent());
}

TEST(Ccf, KindNames) {
    EXPECT_EQ(to_string(CcfKind::SharedResource), "shared-resource");
    EXPECT_EQ(to_string(CcfKind::SharedLocation), "shared-location");
    EXPECT_EQ(to_string(CcfKind::SharedEnvironment), "shared-environment");
}

TEST(Ccf, BlockQueriesOnCleanModel) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const CcfReport report = analyze_ccf(m);
    const NodeId merger = m.find_app_node("merge_dfus");
    EXPECT_TRUE(report.block_independent(merger));
    EXPECT_TRUE(report.block_approximation_safe(merger));
}

}  // namespace
}  // namespace asilkit::analysis

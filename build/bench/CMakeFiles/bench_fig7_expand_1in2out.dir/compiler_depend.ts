# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig7_expand_1in2out.

# Empty compiler generated dependencies file for test_connect.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_asil.
# This may be replaced when dependencies are built.

// Evaluation-engine tests: the determinism contract (thread count and
// cache capacity never change results), eval-cache behaviour under
// forced eviction, thread-pool coverage, and the structural hash the
// cache keys on.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "analysis/probability.h"
#include "engine/eval_cache.h"
#include "engine/thread_pool.h"
#include "explore/driver.h"
#include "explore/mapping_search.h"
#include "ftree/fault_tree.h"
#include "io/model_json.h"
#include "scenarios/ecotwin.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit {
namespace {

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    engine::ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> seen(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) { seen[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i].load(), 1) << i;
}

TEST(ThreadPool, SingleThreadRunsInline) {
    engine::ThreadPool pool(1);
    EXPECT_EQ(pool.thread_count(), 1u);
    std::vector<std::size_t> order;
    pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossBatches) {
    engine::ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(17, [&](std::size_t i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 17u * 16u / 2u);
    }
}

TEST(ThreadPool, PropagatesTaskExceptions) {
    engine::ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i) {
                                       if (i == 42) throw AnalysisError("boom");
                                   }),
                 AnalysisError);
    // The pool survives a throwing batch.
    std::atomic<std::size_t> count{0};
    pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPool, SerialPathDrainsBatchBeforeRethrow) {
    // The inline single-thread path must match the parallel path: a
    // throwing task never skips the remaining indices.
    engine::ThreadPool pool(1);
    std::vector<int> ran(5, 0);
    EXPECT_THROW(pool.parallel_for(5,
                                   [&](std::size_t i) {
                                       ran[i] = 1;
                                       if (i == 1) throw AnalysisError("early");
                                   }),
                 AnalysisError);
    EXPECT_EQ(ran, (std::vector<int>{1, 1, 1, 1, 1}));
}

TEST(ThreadPool, SerialPathRethrowsFirstOfSeveralExceptions) {
    engine::ThreadPool pool(1);
    try {
        pool.parallel_for(5, [&](std::size_t i) {
            if (i == 1 || i == 3) throw AnalysisError("task " + std::to_string(i));
        });
        FAIL() << "expected AnalysisError";
    } catch (const AnalysisError& e) {
        EXPECT_STREQ(e.what(), "analysis error: task 1");  // serial runs in index order
    }
}

// ---- eval cache ------------------------------------------------------------

TEST(EvalCache, HitMissCounters) {
    engine::EvalCache cache(8);
    EXPECT_FALSE(cache.lookup(1).has_value());
    cache.insert(1, {0.5, 10, 20, 3});
    const auto v = cache.lookup(1);
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(v->failure_probability, 0.5);
    EXPECT_EQ(v->bdd_nodes, 10u);
    const auto s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(EvalCache, EvictsOldestAtCapacity) {
    engine::EvalCache cache(2);
    cache.insert(1, {0.1, 0, 0, 0});
    cache.insert(2, {0.2, 0, 0, 0});
    cache.insert(3, {0.3, 0, 0, 0});  // evicts key 1
    EXPECT_FALSE(cache.lookup(1).has_value());
    EXPECT_TRUE(cache.lookup(2).has_value());
    EXPECT_TRUE(cache.lookup(3).has_value());
    const auto s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.size, 2u);
}

TEST(EvalCache, ZeroCapacityDisables) {
    engine::EvalCache cache(0);
    cache.insert(1, {0.1, 0, 0, 0});
    EXPECT_FALSE(cache.lookup(1).has_value());
    EXPECT_EQ(cache.stats().size, 0u);
}

// ---- structural hash -------------------------------------------------------

TEST(StructuralHash, IsomorphicTreesWithDifferentNamesHashEqual) {
    ftree::FaultTree a;
    const auto a1 = a.add_basic_event("x", 1e-7);
    const auto a2 = a.add_basic_event("y", 2e-7);
    a.set_top(a.add_gate("top", ftree::GateKind::Or, {a1, a2}));

    ftree::FaultTree b;
    const auto b1 = b.add_basic_event("something_else", 1e-7);
    const auto b2 = b.add_basic_event("entirely", 2e-7);
    b.set_top(b.add_gate("other_top", ftree::GateKind::Or, {b1, b2}));

    EXPECT_EQ(a.structural_hash(), b.structural_hash());
}

TEST(StructuralHash, SharingPatternIsDistinguished) {
    // OR(a, a) vs OR(a, b) with identical rates: same shape, different
    // sharing, different probability — must hash differently.
    ftree::FaultTree shared;
    const auto s1 = shared.add_basic_event("a", 1e-7);
    shared.set_top(shared.add_gate("top", ftree::GateKind::Or, {s1, s1}));

    ftree::FaultTree distinct;
    const auto d1 = distinct.add_basic_event("a", 1e-7);
    const auto d2 = distinct.add_basic_event("b", 1e-7);
    distinct.set_top(distinct.add_gate("top", ftree::GateKind::Or, {d1, d2}));

    EXPECT_NE(shared.structural_hash(), distinct.structural_hash());
}

TEST(StructuralHash, SensitiveToGateKindAndRate) {
    auto build = [](ftree::GateKind kind, double lambda) {
        ftree::FaultTree t;
        const auto e1 = t.add_basic_event("a", lambda);
        const auto e2 = t.add_basic_event("b", 2e-7);
        t.set_top(t.add_gate("top", kind, {e1, e2}));
        return t;
    };
    const auto h_or = build(ftree::GateKind::Or, 1e-7).structural_hash();
    EXPECT_NE(h_or, build(ftree::GateKind::And, 1e-7).structural_hash());
    EXPECT_NE(h_or, build(ftree::GateKind::Or, 3e-7).structural_hash());
    EXPECT_EQ(h_or, build(ftree::GateKind::Or, 1e-7).structural_hash());
}

// ---- canonical form --------------------------------------------------------

TEST(CanonicalForm, MirroredBranchesCollapse) {
    // AND(modified-branch, pristine-branch) vs AND(pristine, modified):
    // the boolean functions are equal up to renaming disjoint events, so
    // after canonicalisation both must hash identically.
    auto branch = [](ftree::FaultTree& t, const std::string& prefix, double extra) {
        const auto e1 = t.add_basic_event(prefix + "_a", 1e-7);
        const auto e2 = t.add_basic_event(prefix + "_b", extra);
        return t.add_gate(prefix, ftree::GateKind::Or, {e1, e2});
    };
    ftree::FaultTree left;
    left.set_top(left.add_gate("top", ftree::GateKind::And,
                               {branch(left, "b1", 5e-7), branch(left, "b2", 2e-7)}));
    ftree::FaultTree right;
    right.set_top(right.add_gate("top", ftree::GateKind::And,
                                 {branch(right, "b1", 2e-7), branch(right, "b2", 5e-7)}));

    EXPECT_NE(left.structural_hash(), right.structural_hash());  // order-sensitive
    EXPECT_EQ(ftree::canonical_form(left).structural_hash(),
              ftree::canonical_form(right).structural_hash());
}

TEST(CanonicalForm, SharingStillDistinguished) {
    // Canonicalisation must not collapse OR(a, a) with OR(a, b): same
    // shape and rates, different probability.
    ftree::FaultTree shared;
    const auto s1 = shared.add_basic_event("a", 1e-7);
    shared.set_top(shared.add_gate("top", ftree::GateKind::Or, {s1, s1}));

    ftree::FaultTree distinct;
    const auto d1 = distinct.add_basic_event("a", 1e-7);
    const auto d2 = distinct.add_basic_event("b", 1e-7);
    distinct.set_top(distinct.add_gate("top", ftree::GateKind::Or, {d1, d2}));

    EXPECT_NE(ftree::canonical_form(shared).structural_hash(),
              ftree::canonical_form(distinct).structural_hash());
}

// ---- engine analyze vs the serial pipeline ---------------------------------

TEST(EvalEngine, MatchesSerialAnalysis) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    analysis::ProbabilityOptions options;
    const analysis::ProbabilityResult serial = analysis::analyze_failure_probability(m, options);

    engine::EvalEngine engine({.threads = 2, .cache_capacity = 64});
    const analysis::ProbabilityResult first = engine.analyze(m, options);
    const analysis::ProbabilityResult cached = engine.analyze(m, options);

    // The engine evaluates the canonical child order, so it may differ
    // from the paper-ordered serial pipeline by floating-point rounding —
    // but a cached replay must be bitwise identical to the first engine
    // evaluation, whatever the thread count.
    EXPECT_NEAR(serial.failure_probability, first.failure_probability,
                1e-12 * serial.failure_probability);
    EXPECT_EQ(first.failure_probability, cached.failure_probability);  // bitwise
    EXPECT_EQ(first.bdd_nodes, cached.bdd_nodes);
    EXPECT_EQ(serial.variables, cached.variables);  // regions partition the events
    EXPECT_EQ(serial.ft_stats.dag_nodes, cached.ft_stats.dag_nodes);
    EXPECT_GT(first.modules, 0u);
    EXPECT_EQ(first.modules, cached.modules);

    const auto stats = engine.stats();
    EXPECT_EQ(stats.analyze_calls, 2u);
    EXPECT_EQ(stats.tree_hits, 1u);
    EXPECT_EQ(stats.tree_misses, 1u);
    // The first (cold) evaluation recompiled every module; the tree-level
    // hit on the replay never touched the module cache.
    EXPECT_EQ(stats.module_hits, 0u);
    EXPECT_EQ(stats.module_misses, first.modules);
}

TEST(EvalEngine, MissionTimeIsPartOfTheKey) {
    const ArchitectureModel m = scenarios::chain_n_stages(3);
    engine::EvalEngine engine({.threads = 1, .cache_capacity = 64});
    analysis::ProbabilityOptions one_hour;
    analysis::ProbabilityOptions ten_hours;
    ten_hours.mission_hours = 10.0;
    const double p1 = engine.analyze(m, one_hour).failure_probability;
    const double p10 = engine.analyze(m, ten_hours).failure_probability;
    EXPECT_GT(p10, p1);  // a cache mixup would return p1 again
    EXPECT_EQ(engine.cache_stats().hits, 0u);
}

// ---- determinism: thread count never changes results -----------------------

void expect_identical_curves(const explore::TradeoffCurve& a, const explore::TradeoffCurve& b) {
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const explore::TradeoffPoint& pa = a.points[i];
        const explore::TradeoffPoint& pb = b.points[i];
        EXPECT_EQ(pa.label, pb.label);
        EXPECT_EQ(pa.cost, pb.cost);  // bitwise, not almost-equal
        EXPECT_EQ(pa.failure_probability, pb.failure_probability);
        EXPECT_EQ(pa.app_nodes, pb.app_nodes);
        EXPECT_EQ(pa.resources, pb.resources);
        EXPECT_EQ(pa.ft_dag_nodes, pb.ft_dag_nodes);
        EXPECT_EQ(pa.ft_paths, pb.ft_paths);
        EXPECT_EQ(pa.bdd_nodes, pb.bdd_nodes);
    }
}

class ExplorationDeterminism : public ::testing::TestWithParam<DecompositionStrategy> {};

TEST_P(ExplorationDeterminism, ThreadCountNeverChangesCurveOrModel) {
    explore::ExplorationOptions serial;
    serial.strategy = GetParam();
    serial.rng_seed = 1234;
    serial.probability.approximate = true;
    serial.engine = {.threads = 1, .cache_capacity = 0};

    explore::ExplorationOptions parallel = serial;
    parallel.engine = {.threads = 8, .cache_capacity = 1 << 12};

    const ArchitectureModel model = scenarios::ecotwin_lateral_control();
    const std::vector<std::string> nodes = scenarios::ecotwin_decision_nodes();
    const explore::ExplorationResult a = explore::run_exploration(model, nodes, serial);
    const explore::ExplorationResult b = explore::run_exploration(model, nodes, parallel);

    expect_identical_curves(a.curve, b.curve);
    EXPECT_EQ(io::to_json(a.final_model).dump(), io::to_json(b.final_model).dump());
}

INSTANTIATE_TEST_SUITE_P(Strategies, ExplorationDeterminism,
                         ::testing::Values(DecompositionStrategy::BB, DecompositionStrategy::RND),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(MappingSearchDeterminism, ParallelBatchMatchesSerial) {
    ArchitectureModel serial_model = scenarios::chain_n_stages(6);
    explore::MappingSearchOptions serial;
    serial.engine = {.threads = 1, .cache_capacity = 0};
    const auto r_serial = explore::search_mapping(serial_model, serial);

    ArchitectureModel parallel_model = scenarios::chain_n_stages(6);
    explore::MappingSearchOptions parallel;
    parallel.engine = {.threads = 8, .cache_capacity = 1 << 12};
    const auto r_parallel = explore::search_mapping(parallel_model, parallel);

    EXPECT_EQ(r_serial.merges, r_parallel.merges);
    EXPECT_EQ(r_serial.iterations, r_parallel.iterations);
    EXPECT_EQ(r_serial.probability_after, r_parallel.probability_after);  // bitwise
    EXPECT_EQ(r_serial.cost_after, r_parallel.cost_after);
    EXPECT_EQ(io::to_json(serial_model).dump(), io::to_json(parallel_model).dump());
}

TEST(MappingSearchDeterminism, ExpandedModelParallelMatchesSerial) {
    ArchitectureModel base = scenarios::chain_n_stages(4);
    transform::expand(base, base.find_app_node("f2"));

    ArchitectureModel serial_model = base;
    explore::MappingSearchOptions serial;
    serial.engine = {.threads = 1, .cache_capacity = 0};
    const auto r_serial = explore::search_mapping(serial_model, serial);

    ArchitectureModel parallel_model = base;
    explore::MappingSearchOptions parallel;
    parallel.engine = {.threads = 8, .cache_capacity = 1 << 12};
    const auto r_parallel = explore::search_mapping(parallel_model, parallel);

    EXPECT_EQ(r_serial.probability_after, r_parallel.probability_after);
    EXPECT_EQ(r_serial.cost_after, r_parallel.cost_after);
    EXPECT_EQ(io::to_json(serial_model).dump(), io::to_json(parallel_model).dump());
}

TEST(MappingSearchDeterminism, TinyCacheWithForcedEvictionStillExact) {
    // capacity=2 forces constant eviction mid-search; results must be
    // bitwise identical to the uncached search.
    ArchitectureModel uncached_model = scenarios::chain_n_stages(6);
    explore::MappingSearchOptions uncached;
    uncached.engine = {.threads = 1, .cache_capacity = 0};
    const auto r_uncached = explore::search_mapping(uncached_model, uncached);

    ArchitectureModel tiny_model = scenarios::chain_n_stages(6);
    explore::MappingSearchOptions tiny;
    tiny.engine = {.threads = 2, .cache_capacity = 2};
    const auto r_tiny = explore::search_mapping(tiny_model, tiny);

    EXPECT_EQ(r_uncached.probability_after, r_tiny.probability_after);
    EXPECT_EQ(r_uncached.cost_after, r_tiny.cost_after);
    EXPECT_EQ(r_uncached.merges, r_tiny.merges);
    EXPECT_EQ(io::to_json(uncached_model).dump(), io::to_json(tiny_model).dump());
}

TEST(MappingSearch, ReportsCacheCounters) {
    // Expanded nodes yield redundant branches with identical rate
    // structure: every candidate merge inside branch 1 has a mirror in
    // branch 2 whose canonical tree is the same, so within one cold
    // sweep steepest descent re-derives the mirrored candidates from
    // cache.  (Trunk-trunk candidates have no symmetry partner and
    // always miss; the incumbent's objective is carried forward instead
    // of re-evaluated, and the bound-pruned best-first loop stops at
    // the earliest chunk boundary, so many mirror partners are pruned
    // before they could hit — the rate is far lower than it was before
    // bound pruning.  Steady-state reuse across searches is covered by
    // SharedEngine below and by bench_mapping_search.)
    ArchitectureModel m = scenarios::chain_n_stages(3);
    for (const char* n : {"f1", "f2", "f3"}) transform::expand(m, m.find_app_node(n));
    explore::MappingSearchOptions options;
    options.engine = {.threads = 1, .cache_capacity = 1 << 12};
    const auto r = explore::search_mapping(m, options);
    EXPECT_EQ(r.evaluations, r.eval_cache_hits + r.eval_cache_misses);
    EXPECT_GT(r.evaluations, 0u);
    EXPECT_GT(r.eval_cache_hit_rate(), 1.0 / 8.0);
}

// ---- modularization --------------------------------------------------------

TEST(Modularize, ToggleNeverChangesSearchResults) {
    // The flag only changes caching granularity; evaluation is modular
    // either way, so the whole search must be bitwise identical — model
    // included — with modularize on and off, at any thread count.
    ArchitectureModel base = scenarios::chain_n_stages(3);
    for (const char* n : {"f1", "f2", "f3"}) transform::expand(base, base.find_app_node(n));

    ArchitectureModel off_model = base;
    explore::MappingSearchOptions off;
    off.engine = {.threads = 1, .cache_capacity = 1 << 12, .modularize = false};
    const auto r_off = explore::search_mapping(off_model, off);

    ArchitectureModel on_model = base;
    explore::MappingSearchOptions on;
    on.engine = {.threads = 4, .cache_capacity = 1 << 12, .modularize = true};
    const auto r_on = explore::search_mapping(on_model, on);

    EXPECT_EQ(r_off.probability_after, r_on.probability_after);  // bitwise
    EXPECT_EQ(r_off.probability_before, r_on.probability_before);
    EXPECT_EQ(r_off.cost_after, r_on.cost_after);
    EXPECT_EQ(r_off.merges, r_on.merges);
    EXPECT_EQ(io::to_json(off_model).dump(), io::to_json(on_model).dump());

    // Counter contract: off keeps the module counters at zero, on splits
    // every tree miss into module hits + misses.
    EXPECT_EQ(r_off.module_cache_hits + r_off.module_cache_misses, 0u);
    EXPECT_GT(r_on.module_cache_misses, 0u);
}

TEST(Modularize, UntouchedModulesReplayAcrossVariants) {
    // Two variants of the same architecture differing in one resource's
    // data-sheet failure rate: whole-tree keys differ (every evaluation
    // of the second variant misses at tree level), but the modules not
    // containing that resource's event replay from the first variant's
    // cache.  The chain tree nests downstream-outward, so perturbing the
    // actuator dirties only the outermost module(s).  Location events
    // are global shared events that glue the tree into one region, so
    // they are excluded (see docs/engine.md).
    const ArchitectureModel base_model = scenarios::chain_n_stages(4);
    ArchitectureModel variant = base_model;
    const ResourceId act_res = variant.mapped_resources(variant.find_app_node("act")).front();
    variant.resources().node(act_res).lambda_override = 2e-9;

    engine::EvalEngine engine({.threads = 1, .cache_capacity = 1 << 12, .modularize = true});
    analysis::ProbabilityOptions options;
    options.include_location_events = false;

    const auto first = engine.analyze(base_model, options);
    ASSERT_GT(first.modules, 1u) << "need a decomposable tree for this test";
    const auto second = engine.analyze(variant, options);
    EXPECT_NE(first.failure_probability, second.failure_probability);

    const auto stats = engine.stats();
    EXPECT_EQ(stats.tree_hits, 0u);
    EXPECT_EQ(stats.tree_misses, 2u);
    EXPECT_GT(stats.module_hits, 0u) << "unperturbed modules should replay";
    EXPECT_EQ(stats.module_hits + stats.module_misses, first.modules + second.modules);

    // A bitwise-identical replay of the first model hits at tree level
    // without touching the module counters again.
    const auto third = engine.analyze(base_model, options);
    EXPECT_EQ(third.failure_probability, first.failure_probability);
    const auto after = engine.stats();
    EXPECT_EQ(after.tree_hits, 1u);
    EXPECT_EQ(after.module_hits, stats.module_hits);
}

// ---- persistent compilation & the batched multi-lambda kernel --------------

TEST(Persistence, ToggleNeverChangesSearchResults) {
    // Persistent managers, the subtree compile memo and batch grouping
    // only change where BDD nodes live and how often they are rebuilt —
    // the whole search must be bitwise identical with everything off
    // (fresh throwaway managers, the PR-1 behaviour) and everything on,
    // at any thread count.
    ArchitectureModel base = scenarios::chain_n_stages(3);
    for (const char* n : {"f1", "f2", "f3"}) transform::expand(base, base.find_app_node(n));

    ArchitectureModel off_model = base;
    explore::MappingSearchOptions off;
    off.engine = {.threads = 1,
                  .cache_capacity = 1 << 12,
                  .persistent_bdd = false,
                  .batch_rate_variants = false};
    const auto r_off = explore::search_mapping(off_model, off);

    ArchitectureModel mid_model = base;
    explore::MappingSearchOptions mid;  // persistent on, grouping off
    mid.engine = {.threads = 4, .cache_capacity = 1 << 12, .batch_rate_variants = false};
    const auto r_mid = explore::search_mapping(mid_model, mid);

    ArchitectureModel on_model = base;
    explore::MappingSearchOptions on;  // defaults: persistent + batching
    on.engine = {.threads = 4, .cache_capacity = 1 << 12};
    engine::EvalEngine on_engine(on.engine);
    const auto r_on = explore::search_mapping(on_model, on, on_engine);

    for (const auto* r : {&r_mid, &r_on}) {
        EXPECT_EQ(r_off.probability_before, r->probability_before);  // bitwise
        EXPECT_EQ(r_off.probability_after, r->probability_after);
        EXPECT_EQ(r_off.cost_after, r->cost_after);
        EXPECT_EQ(r_off.merges, r->merges);
        EXPECT_EQ(r_off.iterations, r->iterations);
    }
    EXPECT_EQ(io::to_json(off_model).dump(), io::to_json(mid_model).dump());
    EXPECT_EQ(io::to_json(off_model).dump(), io::to_json(on_model).dump());

    // The persistent run actually exercised the subtree memo.
    const auto stats = on_engine.stats();
    EXPECT_GT(stats.subtree_memo_misses, 0u);
    EXPECT_GT(stats.subtree_memo_hits, 0u);
}

TEST(Persistence, ForcedCollectionsStillExact) {
    // A pathologically small GC threshold forces mark-and-compact
    // collections throughout the search; probabilities, the selected
    // mapping and the final model must not move.
    ArchitectureModel off_model = scenarios::chain_n_stages(5);
    explore::MappingSearchOptions off;
    off.engine = {.threads = 1,
                  .cache_capacity = 0,
                  .persistent_bdd = false,
                  .batch_rate_variants = false};
    const auto r_off = explore::search_mapping(off_model, off);

    ArchitectureModel gc_model = scenarios::chain_n_stages(5);
    explore::MappingSearchOptions gc;
    gc.engine = {.threads = 2, .cache_capacity = 0, .bdd_gc_node_threshold = 64};
    engine::EvalEngine gc_engine(gc.engine);
    const auto r_gc = explore::search_mapping(gc_model, gc, gc_engine);

    EXPECT_EQ(r_off.probability_after, r_gc.probability_after);  // bitwise
    EXPECT_EQ(r_off.cost_after, r_gc.cost_after);
    EXPECT_EQ(r_off.merges, r_gc.merges);
    EXPECT_EQ(io::to_json(off_model).dump(), io::to_json(gc_model).dump());
    EXPECT_GT(gc_engine.stats().gc_collections, 0u)
        << "threshold 64 must trigger collections on this workload";
}

TEST(BatchRateVariants, GroupsLanesAndMatchesSoloAnalysis) {
    // Rate-only variants of one architecture: identical canonical shape,
    // distinct tree keys.  analyze_batch must collapse them onto one
    // shape group, push the modules through the multi-lambda kernel, and
    // reproduce the solo (fresh-manager, ungrouped) probabilities
    // bitwise.
    const ArchitectureModel base = scenarios::chain_n_stages(4);
    std::vector<ArchitectureModel> variants;
    for (int v = 0; v < 4; ++v) {
        ArchitectureModel m = base;
        const ResourceId act = m.mapped_resources(m.find_app_node("act")).front();
        m.resources().node(act).lambda_override = 1e-9 * (1.0 + 0.25 * v);
        variants.push_back(std::move(m));
    }
    analysis::ProbabilityOptions options;
    options.include_location_events = false;

    engine::EvalEngine solo({.threads = 1,
                             .cache_capacity = 0,
                             .persistent_bdd = false,
                             .batch_rate_variants = false});
    std::vector<double> expected;
    expected.reserve(variants.size());
    for (const ArchitectureModel& m : variants) {
        expected.push_back(solo.analyze(m, options).failure_probability);
    }
    EXPECT_NE(expected[0], expected[1]) << "variants must differ for this test to mean anything";

    engine::EvalEngine batched({.threads = 2, .cache_capacity = 1 << 12});
    std::vector<const ArchitectureModel*> ptrs;
    for (const ArchitectureModel& m : variants) ptrs.push_back(&m);
    const auto results = batched.analyze_batch(ptrs, options);
    ASSERT_EQ(results.size(), variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
        EXPECT_EQ(results[i].failure_probability, expected[i]) << "lane " << i;  // bitwise
    }

    const auto stats = batched.stats();
    EXPECT_EQ(stats.batch_groups, 1u) << "four rate variants, one shape group";
    EXPECT_EQ(stats.batch_lanes, 4u);
}

TEST(ExplorationPersistence, CurveIdenticalWithPersistenceOff) {
    explore::ExplorationOptions off;
    off.rng_seed = 1234;
    off.probability.approximate = true;
    off.engine = {.threads = 1,
                  .cache_capacity = 0,
                  .persistent_bdd = false,
                  .batch_rate_variants = false};

    explore::ExplorationOptions on = off;
    on.engine = {.threads = 4, .cache_capacity = 1 << 12};

    const ArchitectureModel model = scenarios::ecotwin_lateral_control();
    const std::vector<std::string> nodes = scenarios::ecotwin_decision_nodes();
    const explore::ExplorationResult a = explore::run_exploration(model, nodes, off);
    const explore::ExplorationResult b = explore::run_exploration(model, nodes, on);

    expect_identical_curves(a.curve, b.curve);
    EXPECT_EQ(io::to_json(a.final_model).dump(), io::to_json(b.final_model).dump());
}

TEST(SharedEngine, AccumulatesAcrossSearches) {
    engine::EvalEngine engine({.threads = 1, .cache_capacity = 1 << 12});
    explore::MappingSearchOptions options;
    ArchitectureModel first = scenarios::chain_n_stages(5);
    const auto r1 = explore::search_mapping(first, options, engine);
    ArchitectureModel second = scenarios::chain_n_stages(5);
    const auto r2 = explore::search_mapping(second, options, engine);
    // The second identical search replays entirely from cache.
    EXPECT_GT(r2.eval_cache_hit_rate(), r1.eval_cache_hit_rate());
    EXPECT_EQ(r2.eval_cache_misses, 0u);
    EXPECT_EQ(r1.probability_after, r2.probability_after);
}

TEST(IncrementalFtree, AnalyzeMatchesFullRebuildAndMemoisesRepeats) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    for (const bool approximate : {false, true}) {
        analysis::ProbabilityOptions options;
        options.approximate = approximate;

        // The full-rebuild engine runs (and snapshots its registry
        // deltas) first: the counters are process-global, so its view
        // must close before the incremental engine adds to them.
        engine::EngineOptions off_options{.threads = 1};
        off_options.incremental_ftree = false;
        engine::EvalEngine off(off_options);
        const analysis::ProbabilityResult r_off = off.analyze(m, options);
        const engine::EvalEngine::Stats off_stats = off.stats();
        EXPECT_EQ(off_stats.fragments_built, 0u);
        EXPECT_EQ(off_stats.fragments_reused, 0u);
        EXPECT_EQ(off_stats.ftree_memo_hits, 0u);

        engine::EvalEngine on({.threads = 1});
        const analysis::ProbabilityResult r_on = on.analyze(m, options);
        EXPECT_EQ(r_on.failure_probability, r_off.failure_probability);  // bitwise
        EXPECT_EQ(r_on.ft_stats.gates, r_off.ft_stats.gates);
        EXPECT_EQ(r_on.ft_stats.basic_events, r_off.ft_stats.basic_events);
        EXPECT_EQ(r_on.warnings, r_off.warnings);
        EXPECT_EQ(r_on.approximated_blocks, r_off.approximated_blocks);

        // A repeat candidate on the warm engine serves the whole
        // composition from the finished-tree memo, zero fragments
        // rebuilt.
        const analysis::ProbabilityResult again = on.analyze(m, options);
        EXPECT_EQ(again.failure_probability, r_on.failure_probability);
        EXPECT_EQ(again.ft_stats.gates, r_on.ft_stats.gates);
        EXPECT_GT(on.stats().ftree_memo_hits, 0u);
        EXPECT_GT(on.stats().fragments_reused, 0u);
    }
}

}  // namespace
}  // namespace asilkit

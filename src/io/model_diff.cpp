#include "io/model_diff.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

namespace asilkit::io {
namespace {

/// Canonical multiset of "from -> to" channel strings.
std::multiset<std::string> channel_set(const ArchitectureModel& m) {
    std::multiset<std::string> out;
    for (ChannelId e : m.app().edge_ids()) {
        const auto& edge = m.app().edge(e);
        out.insert(m.app().node(edge.source).name + " -> " + m.app().node(edge.sink).name);
    }
    return out;
}

/// Sorted resource-name list of a node's mapping.
std::vector<std::string> mapping_names(const ArchitectureModel& m, NodeId n) {
    std::vector<std::string> out;
    for (ResourceId r : m.mapped_resources(n)) out.push_back(m.resources().node(r).name);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string> location_names(const ArchitectureModel& m, ResourceId r) {
    std::vector<std::string> out;
    for (LocationId p : m.resource_locations(r)) out.push_back(m.physical().node(p).name);
    std::sort(out.begin(), out.end());
    return out;
}

std::string join(const std::vector<std::string>& items) {
    std::string out;
    for (const std::string& item : items) {
        if (!out.empty()) out += ",";
        out += item;
    }
    return out.empty() ? "<none>" : out;
}

}  // namespace

bool ModelDiff::empty() const noexcept { return total_changes() == 0; }

std::size_t ModelDiff::total_changes() const noexcept {
    return added_nodes.size() + removed_nodes.size() + changed_nodes.size() +
           added_resources.size() + removed_resources.size() + changed_resources.size() +
           added_locations.size() + removed_locations.size() + added_channels.size() +
           removed_channels.size();
}

std::ostream& operator<<(std::ostream& os, const ModelDiff& diff) {
    auto section = [&](const char* label, const std::vector<std::string>& items,
                       const char* prefix) {
        if (items.empty()) return;
        os << label << ":\n";
        for (const std::string& item : items) os << "  " << prefix << item << "\n";
    };
    section("nodes", diff.added_nodes, "+ ");
    section("nodes", diff.removed_nodes, "- ");
    section("nodes", diff.changed_nodes, "~ ");
    section("resources", diff.added_resources, "+ ");
    section("resources", diff.removed_resources, "- ");
    section("resources", diff.changed_resources, "~ ");
    section("locations", diff.added_locations, "+ ");
    section("locations", diff.removed_locations, "- ");
    section("channels", diff.added_channels, "+ ");
    section("channels", diff.removed_channels, "- ");
    if (diff.empty()) os << "no differences\n";
    return os;
}

ModelDiff diff_models(const ArchitectureModel& before, const ArchitectureModel& after) {
    ModelDiff diff;

    // ---- application nodes -------------------------------------------------
    std::map<std::string, NodeId> before_nodes;
    for (NodeId n : before.app().node_ids()) before_nodes.emplace(before.app().node(n).name, n);
    std::map<std::string, NodeId> after_nodes;
    for (NodeId n : after.app().node_ids()) after_nodes.emplace(after.app().node(n).name, n);

    for (const auto& [name, n] : after_nodes) {
        if (!before_nodes.contains(name)) diff.added_nodes.push_back(name);
    }
    for (const auto& [name, bn] : before_nodes) {
        const auto it = after_nodes.find(name);
        if (it == after_nodes.end()) {
            diff.removed_nodes.push_back(name);
            continue;
        }
        const AppNode& b = before.app().node(bn);
        const AppNode& a = after.app().node(it->second);
        std::vector<std::string> changes;
        if (b.kind != a.kind) {
            changes.push_back("kind " + std::string(to_string(b.kind)) + " -> " +
                              std::string(to_string(a.kind)));
        }
        if (b.asil != a.asil) {
            changes.push_back("ASIL " + to_string(b.asil) + " -> " + to_string(a.asil));
        }
        if (b.fsr != a.fsr) changes.push_back("fsr '" + b.fsr + "' -> '" + a.fsr + "'");
        const auto bm = mapping_names(before, bn);
        const auto am = mapping_names(after, it->second);
        if (bm != am) changes.push_back("mapping {" + join(bm) + "} -> {" + join(am) + "}");
        if (!changes.empty()) {
            std::string summary = name + ": " + changes.front();
            for (std::size_t i = 1; i < changes.size(); ++i) summary += "; " + changes[i];
            diff.changed_nodes.push_back(std::move(summary));
        }
    }

    // ---- resources ----------------------------------------------------------
    std::map<std::string, ResourceId> before_res;
    for (ResourceId r : before.resources().node_ids()) {
        before_res.emplace(before.resources().node(r).name, r);
    }
    std::map<std::string, ResourceId> after_res;
    for (ResourceId r : after.resources().node_ids()) {
        after_res.emplace(after.resources().node(r).name, r);
    }
    for (const auto& [name, r] : after_res) {
        if (!before_res.contains(name)) diff.added_resources.push_back(name);
    }
    for (const auto& [name, br] : before_res) {
        const auto it = after_res.find(name);
        if (it == after_res.end()) {
            diff.removed_resources.push_back(name);
            continue;
        }
        const Resource& b = before.resources().node(br);
        const Resource& a = after.resources().node(it->second);
        std::vector<std::string> changes;
        if (b.kind != a.kind) {
            changes.push_back("kind " + std::string(to_string(b.kind)) + " -> " +
                              std::string(to_string(a.kind)));
        }
        if (b.asil != a.asil) {
            changes.push_back("ASIL " + std::string(to_string(b.asil)) + " -> " +
                              std::string(to_string(a.asil)));
        }
        if (b.lambda_override != a.lambda_override) changes.push_back("lambda override changed");
        const auto bl = location_names(before, br);
        const auto al = location_names(after, it->second);
        if (bl != al) changes.push_back("placement {" + join(bl) + "} -> {" + join(al) + "}");
        if (!changes.empty()) {
            std::string summary = name + ": " + changes.front();
            for (std::size_t i = 1; i < changes.size(); ++i) summary += "; " + changes[i];
            diff.changed_resources.push_back(std::move(summary));
        }
    }

    // ---- locations ------------------------------------------------------------
    std::set<std::string> before_locs;
    for (LocationId p : before.physical().node_ids()) {
        before_locs.insert(before.physical().node(p).name);
    }
    std::set<std::string> after_locs;
    for (LocationId p : after.physical().node_ids()) {
        after_locs.insert(after.physical().node(p).name);
    }
    for (const std::string& name : after_locs) {
        if (!before_locs.contains(name)) diff.added_locations.push_back(name);
    }
    for (const std::string& name : before_locs) {
        if (!after_locs.contains(name)) diff.removed_locations.push_back(name);
    }

    // ---- channels ----------------------------------------------------------------
    const auto before_channels = channel_set(before);
    const auto after_channels = channel_set(after);
    std::set_difference(after_channels.begin(), after_channels.end(), before_channels.begin(),
                        before_channels.end(), std::back_inserter(diff.added_channels));
    std::set_difference(before_channels.begin(), before_channels.end(), after_channels.begin(),
                        after_channels.end(), std::back_inserter(diff.removed_channels));
    return diff;
}

}  // namespace asilkit::io

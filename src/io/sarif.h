// Minimal SARIF 2.1.0 (Static Analysis Results Interchange Format)
// document builder.
//
// SARIF is the OASIS standard CI systems and editors (GitHub code
// scanning, VS Code, ...) consume for static-analysis findings.  This
// builder emits the required-properties subset of the 2.1.0 schema: one
// run, one tool driver with rule metadata, and one result per finding.
// asilkit findings locate model elements rather than source lines, so
// results carry SARIF *logical* locations (fullyQualifiedName + kind)
// instead of physical artifact locations; tool-specific extras (fix-it
// hints) ride in the standard property bag.
#pragma once

#include <string>
#include <vector>

#include "io/json.h"

namespace asilkit::io {

/// Canonical URI of the SARIF 2.1.0 schema, emitted as "$schema".
inline constexpr const char* kSarifSchemaUri =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json";

class SarifLog {
public:
    /// `tool_name` is required by the schema; version/uri may be empty.
    SarifLog(std::string tool_name, std::string tool_version = {},
             std::string information_uri = {});

    /// Declares one reportingDescriptor in the driver's rule table.
    /// `default_level` is a SARIF level: "none", "note", "warning", "error".
    void add_rule(const std::string& id, const std::string& short_description,
                  const std::string& default_level);

    /// Appends one result.  `rule_id` should match a declared rule (the
    /// ruleIndex is resolved automatically; unknown ids emit no index).
    /// `logical_name`/`logical_kind` describe the model element the
    /// finding is anchored to; `fixit` (optional) lands in the result's
    /// property bag as "fixit".
    void add_result(const std::string& rule_id, const std::string& level,
                    const std::string& message, const std::string& logical_name,
                    const std::string& logical_kind, const std::string& fixit = {});

    /// Appends one result anchored to a source artifact instead of a
    /// model element: physicalLocation.artifactLocation.uri = `uri`
    /// (repo-relative, '/'-separated), region.startLine = `line` when
    /// line >= 1.  Used by source-level tools (asilkit-archcheck) whose
    /// findings point at files, not architecture nodes.
    void add_result_at(const std::string& rule_id, const std::string& level,
                       const std::string& message, const std::string& uri, int line = 0);

    /// The complete SARIF document: {"$schema", "version", "runs": [...]}.
    [[nodiscard]] Json to_json() const;

private:
    std::string tool_name_;
    std::string tool_version_;
    std::string information_uri_;
    std::vector<Json> rules_;
    std::vector<std::string> rule_ids_;  ///< parallel to rules_, for ruleIndex
    std::vector<Json> results_;
};

}  // namespace asilkit::io

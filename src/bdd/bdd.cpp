#include "bdd/bdd.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::bdd {
namespace {

constexpr std::size_t kInitialTableCapacity = 1 << 10;  // power of two

/// Grow when a table passes ~70 % occupancy.
[[nodiscard]] constexpr bool over_load(std::size_t entries, std::size_t capacity) noexcept {
    return entries * 10 >= capacity * 7;
}

[[nodiscard]] constexpr std::uint64_t pack_pair(BddRef f, BddRef g) noexcept {
    return (static_cast<std::uint64_t>(f) << 32) | g;
}

/// One node's Shannon step across all lanes.  Kept out-of-line with
/// fixed-width inner blocks: in this standalone shape the -O2 cost
/// model vectorises the block loop, which it refuses to do once the
/// body is inlined into the gather/transpose control flow of
/// probability_batch.  Per-element arithmetic matches probability()
/// verbatim, so lane results stay bitwise identical.
__attribute__((noinline)) void sweep_node_lanes(const double* __restrict pv,
                                                const double* __restrict vh,
                                                const double* __restrict vl,
                                                double* __restrict ov, std::size_t k) {
    std::size_t j = 0;
    for (; j + 8 <= k; j += 8) {
        for (std::size_t u = 0; u < 8; ++u) {
            const double p = pv[j + u];
            ov[j + u] = p * vh[j + u] + (1.0 - p) * vl[j + u];
        }
    }
    for (; j < k; ++j) {
        const double p = pv[j];
        ov[j] = p * vh[j] + (1.0 - p) * vl[j];
    }
}

}  // namespace

BddManager::BddManager(std::uint32_t variable_count) : variable_count_(variable_count) {
    nodes_.push_back(Node{variable_count_, kFalse, kFalse});  // terminal 0
    nodes_.push_back(Node{variable_count_, kTrue, kTrue});    // terminal 1
    unique_.slots.assign(kInitialTableCapacity, kFalse);
    for (ApplyCache& cache : apply_cache_) {
        cache.slots.assign(kInitialTableCapacity, ApplyCache::Slot{});
    }
}

void BddManager::ensure_variables(std::uint32_t count) {
    if (count <= variable_count_) return;
    variable_count_ = count;
    // The terminal sentinels keep var == variable_count_ so terminals
    // still sort after every variable (see var_of).
    nodes_[kFalse].var = variable_count_;
    nodes_[kTrue].var = variable_count_;
}

BddRef BddManager::variable(std::uint32_t var) {
    if (var >= variable_count_) throw AnalysisError("bdd: variable index out of range");
    return make(var, kTrue, kFalse);
}

BddRef BddManager::make(std::uint32_t var, BddRef high, BddRef low) {
    if (high == low) return high;  // reduction rule
    return unique_lookup_or_insert(var, high, low);
}

BddRef BddManager::unique_lookup_or_insert(std::uint32_t var, BddRef high, BddRef low) {
    if (over_load(unique_.entries, unique_.slots.size())) unique_grow();
    const std::size_t mask = unique_.slots.size() - 1;
    std::size_t i = static_cast<std::size_t>(detail::mix_node_key(var, high, low)) & mask;
    for (;; i = (i + 1) & mask) {
        const BddRef ref = unique_.slots[i];
        if (ref == kFalse) break;  // empty slot: not present
        const Node& n = nodes_[ref];
        if (n.var == var && n.high == high && n.low == low) return ref;
    }
    const auto ref = static_cast<BddRef>(nodes_.size());
    nodes_.push_back(Node{var, high, low});
    unique_.slots[i] = ref;
    ++unique_.entries;
    return ref;
}

void BddManager::unique_grow() {
    ++obs_tally_.unique_resizes;
    obs::trace_instant("unique_grow", "bdd", "capacity",
                       static_cast<double>(unique_.slots.size() * 2));
    std::vector<BddRef> old = std::move(unique_.slots);
    unique_.slots.assign(old.size() * 2, kFalse);
    const std::size_t mask = unique_.slots.size() - 1;
    for (const BddRef ref : old) {
        if (ref == kFalse) continue;
        const Node& n = nodes_[ref];
        std::size_t i = static_cast<std::size_t>(detail::mix_node_key(n.var, n.high, n.low)) & mask;
        while (unique_.slots[i] != kFalse) i = (i + 1) & mask;
        unique_.slots[i] = ref;
    }
}

BddRef* BddManager::apply_slot(ApplyCache& cache, std::uint64_t key) {
    if (over_load(cache.entries, cache.slots.size())) apply_grow(cache);
    const std::size_t mask = cache.slots.size() - 1;
    std::size_t i = static_cast<std::size_t>(detail::mix64(key)) & mask;
    while (cache.slots[i].key != 0 && cache.slots[i].key != key) i = (i + 1) & mask;
    if (cache.slots[i].key == 0) {
        cache.slots[i].key = key;
        ++cache.entries;
    }
    return &cache.slots[i].result;
}

void BddManager::apply_grow(ApplyCache& cache) {
    ++obs_tally_.apply_resizes;
    obs::trace_instant("apply_grow", "bdd", "capacity",
                       static_cast<double>(cache.slots.size() * 2));
    std::vector<ApplyCache::Slot> old = std::move(cache.slots);
    cache.slots.assign(old.size() * 2, ApplyCache::Slot{});
    const std::size_t mask = cache.slots.size() - 1;
    for (const ApplyCache::Slot& s : old) {
        if (s.key == 0) continue;
        std::size_t i = static_cast<std::size_t>(detail::mix64(s.key)) & mask;
        while (cache.slots[i].key != 0) i = (i + 1) & mask;
        cache.slots[i] = s;
    }
}

BddRef BddManager::apply(BddOp op, BddRef f, BddRef g) {
    // Terminal cases.
    if (op == BddOp::Or) {
        if (f == kTrue || g == kTrue) return kTrue;
        if (f == kFalse) return g;
        if (g == kFalse) return f;
        if (f == g) return f;
    } else {
        if (f == kFalse || g == kFalse) return kFalse;
        if (f == kTrue) return g;
        if (g == kTrue) return f;
        if (f == g) return f;
    }
    // Both operations are commutative: canonicalise the cache key.  Both
    // operands are interior nodes here (>= 2), so the packed key is
    // nonzero and can use 0 as the empty-slot marker.
    const std::uint64_t key = pack_pair(std::min(f, g), std::max(f, g));
    ApplyCache& cache = apply_cache_[static_cast<std::size_t>(op)];
    // Plain (non-atomic) tallies on the hot path: a manager is
    // single-threaded, so these cost one register add each and are folded
    // into the global registry by flush_obs() at evaluation boundaries.
    ++obs_tally_.apply_lookups;
    {
        const std::size_t mask = cache.slots.size() - 1;
        std::size_t i = static_cast<std::size_t>(detail::mix64(key)) & mask;
        for (; cache.slots[i].key != 0; i = (i + 1) & mask) {
            if (cache.slots[i].key == key) {
                ++obs_tally_.apply_hits;
                return cache.slots[i].result;
            }
        }
    }

    const std::uint32_t vf = var_of(f);
    const std::uint32_t vg = var_of(g);
    const std::uint32_t v = std::min(vf, vg);
    // Paper Eq. 1 (X < Y): recurse into the smaller variable only;
    // Eq. 2 (X == Y): recurse into both cofactors.
    const BddRef f_high = vf == v ? nodes_[f].high : f;
    const BddRef f_low = vf == v ? nodes_[f].low : f;
    const BddRef g_high = vg == v ? nodes_[g].high : g;
    const BddRef g_low = vg == v ? nodes_[g].low : g;

    const BddRef high = apply(op, f_high, g_high);
    const BddRef low = apply(op, f_low, g_low);
    const BddRef result = make(v, high, low);
    // Insert after the recursion: the recursive calls may have grown the
    // cache, so the slot is located now (pointers would be stale).
    *apply_slot(cache, key) = result;
    return result;
}

BddRef BddManager::apply_not(BddRef f) {
    if (f == kFalse) return kTrue;
    if (f == kTrue) return kFalse;
    // Negation via Shannon expansion; memoised through the unique table
    // only (negation is rare in fault trees — used by importance
    // measures), so a local cache per call suffices.
    std::unordered_map<BddRef, BddRef> memo;
    std::function<BddRef(BddRef)> rec = [&](BddRef x) -> BddRef {
        if (x == kFalse) return kTrue;
        if (x == kTrue) return kFalse;
        if (auto it = memo.find(x); it != memo.end()) return it->second;
        const Node& n = nodes_[x];
        const BddRef r = make(n.var, rec(n.high), rec(n.low));
        memo.emplace(x, r);
        return r;
    };
    return rec(f);
}

double BddManager::probability(BddRef f, std::span<const double> var_probability) const {
    if (var_probability.size() != variable_count_) {
        throw AnalysisError("bdd: probability vector size != variable count");
    }
    // The memo is only valid under the exact probability vector it was
    // swept with.  Compare the retained copy bit-for-bit (memcmp over
    // the raw doubles): a hash fingerprint of the vector can collide and
    // would then silently serve per-node probabilities of a *different*
    // vector (regression-tested with a forced collision in
    // tests/test_bdd.cpp).  The compare is O(variables), vanishing next
    // to the O(nodes) sweep it guards.
    const bool same_vector =
        prob_vec_.size() == var_probability.size() &&
        (var_probability.empty() ||
         std::memcmp(prob_vec_.data(), var_probability.data(),
                     var_probability.size() * sizeof(double)) == 0);
    if (!same_vector || prob_memo_.size() < 2) {
        prob_vec_.assign(var_probability.begin(), var_probability.end());
        prob_memo_.assign(2, 0.0);
        prob_memo_[kTrue] = 1.0;
        prob_valid_ = 2;
    }
    // Children precede parents in the arena, so one bottom-up sweep over
    // the not-yet-evaluated suffix covers every node (including f).
    if (prob_valid_ < nodes_.size()) {
        prob_memo_.resize(nodes_.size());
        for (std::size_t i = prob_valid_; i < nodes_.size(); ++i) {
            const Node& n = nodes_[i];
            const double p = var_probability[n.var];
            prob_memo_[i] = p * prob_memo_[n.high] + (1.0 - p) * prob_memo_[n.low];
        }
        prob_valid_ = nodes_.size();
    }
    return prob_memo_[f];
}

std::vector<double> BddManager::probability_batch(BddRef f,
                                                  std::span<const ProbVector> lanes) const {
    const std::size_t k = lanes.size();
    if (k == 0) throw AnalysisError("bdd: probability_batch needs at least one lane");
    const std::size_t lane_vars = lanes.front().size();
    for (const ProbVector& lane : lanes) {
        if (lane.size() != lane_vars) {
            throw AnalysisError("bdd: probability_batch lanes differ in length");
        }
    }
    std::vector<double> out(k);
    if (f == kFalse) return out;
    if (f == kTrue) {
        std::fill(out.begin(), out.end(), 1.0);
        return out;
    }

    // Gather the reachable interior nodes.  Visit stamps are epoch-
    // bumped (no O(arena) clear) so the gather costs O(reachable) — the
    // arena of a persistent manager is much larger than any one diagram.
    // The gathered order is cached across calls: the diagram under a ref
    // is immutable while the GC generation and the (append-only) arena
    // size are unchanged, which is exactly the persistent steady state
    // (a memo-hit module swept for candidate after candidate).
    if (batch_cached_root_ != f || batch_cached_generation_ != gc_collections_ ||
        batch_cached_arena_ != nodes_.size()) {
        if (batch_stamp_.size() < nodes_.size()) {
            batch_stamp_.resize(nodes_.size(), 0);
            batch_pos_.resize(nodes_.size());
        }
        ++batch_epoch_;
        batch_refs_.clear();
        batch_refs_.push_back(f);
        batch_stamp_[f] = batch_epoch_;
        for (std::size_t head = 0; head < batch_refs_.size(); ++head) {
            const Node& n = nodes_[batch_refs_[head]];
            for (const BddRef child : {n.high, n.low}) {
                if (is_terminal(child) || batch_stamp_[child] == batch_epoch_) continue;
                batch_stamp_[child] = batch_epoch_;
                batch_refs_.push_back(child);
            }
        }
        // Ascending ref order is a topological order (children precede
        // parents in the arena), exactly like probability()'s suffix
        // sweep.
        std::sort(batch_refs_.begin(), batch_refs_.end());
        std::uint32_t max_var = 0;
        for (std::size_t i = 0; i < batch_refs_.size(); ++i) {
            const Node& n = nodes_[batch_refs_[i]];
            if (n.var > max_var) max_var = n.var;
            batch_pos_[batch_refs_[i]] = static_cast<std::uint32_t>(i + 2);
        }
        batch_pos_[kFalse] = 0;
        batch_pos_[kTrue] = 1;
        batch_cached_root_ = f;
        batch_cached_generation_ = gc_collections_;
        batch_cached_arena_ = nodes_.size();
        batch_cached_max_var_ = max_var;
    }
    if (batch_cached_max_var_ >= lane_vars) {
        throw AnalysisError("bdd: probability_batch lane shorter than reachable variables");
    }

    // Transpose the lanes to var-major so one node visit reads its k
    // probabilities from one contiguous run.
    batch_probs_.resize(lane_vars * k);
    for (std::size_t j = 0; j < k; ++j) {
        for (std::size_t v = 0; v < lane_vars; ++v) batch_probs_[v * k + j] = lanes[j][v];
    }

    // Node-major SoA sweep: slot i+2 holds node i's k per-lane values.
    // Each lane's arithmetic is the probability() expression verbatim,
    // so the results are bitwise identical to k independent sweeps.
    batch_values_.resize((batch_refs_.size() + 2) * k);
    std::fill_n(batch_values_.begin(), k, 0.0);
    std::fill_n(batch_values_.begin() + static_cast<std::ptrdiff_t>(k), k, 1.0);
    for (std::size_t i = 0; i < batch_refs_.size(); ++i) {
        const Node& n = nodes_[batch_refs_[i]];
        // The slots are provably disjoint (children precede parents, so
        // vh/vl index below slot i+2); __restrict lets the lane loop
        // vectorize.
        sweep_node_lanes(&batch_probs_[static_cast<std::size_t>(n.var) * k],
                         &batch_values_[static_cast<std::size_t>(batch_pos_[n.high]) * k],
                         &batch_values_[static_cast<std::size_t>(batch_pos_[n.low]) * k],
                         &batch_values_[(i + 2) * k], k);
    }
    const double* rv = &batch_values_[static_cast<std::size_t>(batch_pos_[f]) * k];
    std::copy_n(rv, k, out.begin());
    return out;
}

BddManager::PinId BddManager::pin(BddRef f) {
    if (f >= nodes_.size()) throw AnalysisError("bdd: pin() on invalid ref");
    if (!pin_free_.empty()) {
        const PinId id = pin_free_.back();
        pin_free_.pop_back();
        pins_[id] = f;
        return id;
    }
    const auto id = static_cast<PinId>(pins_.size());
    pins_.push_back(f);
    return id;
}

void BddManager::unpin(PinId id) {
    if (id >= pins_.size() || pins_[id] == kUnpinned) {
        throw AnalysisError("bdd: unpin() on unknown pin");
    }
    pins_[id] = kUnpinned;
    pin_free_.push_back(id);
}

BddRef BddManager::pinned(PinId id) const {
    if (id >= pins_.size() || pins_[id] == kUnpinned) {
        throw AnalysisError("bdd: pinned() on unknown pin");
    }
    return pins_[id];
}

BddManager::GcResult BddManager::collect() {
    const obs::ObsSpan span("bdd_gc", "bdd", "before", static_cast<double>(size()));
    const std::size_t before = size();
    // Bank un-flushed arena growth before compaction moves the baseline.
    if (obs_nodes_flushed_ < 2) obs_nodes_flushed_ = 2;
    if (nodes_.size() > obs_nodes_flushed_) {
        obs_tally_.nodes_created += nodes_.size() - obs_nodes_flushed_;
    }

    // Mark: everything reachable from a pinned root survives.
    std::vector<char> live(nodes_.size(), 0);
    live[kFalse] = 1;
    live[kTrue] = 1;
    std::vector<BddRef> stack;
    for (const BddRef root : pins_) {
        if (root == kUnpinned || is_terminal(root) || live[root]) continue;
        live[root] = 1;
        stack.push_back(root);
        while (!stack.empty()) {
            const Node& n = nodes_[stack.back()];
            stack.pop_back();
            for (const BddRef child : {n.high, n.low}) {
                if (live[child]) continue;
                live[child] = 1;
                stack.push_back(child);
            }
        }
    }

    // Compact: renumber survivors in ascending old-ref order.  The map
    // is monotone and children precede parents before the pass, so
    // `high < ref, low < ref` still holds afterwards; each survivor is
    // rewritten into a slot <= its old one, so reads never see a
    // clobbered node.
    std::vector<BddRef> fwd(nodes_.size(), kUnpinned);
    fwd[kFalse] = kFalse;
    fwd[kTrue] = kTrue;
    BddRef next = 2;
    for (BddRef i = 2; i < nodes_.size(); ++i) {
        if (!live[i]) continue;
        const Node& n = nodes_[i];
        nodes_[next] = Node{n.var, fwd[n.high], fwd[n.low]};
        fwd[i] = next++;
    }
    nodes_.resize(next);
    nodes_.shrink_to_fit();

    // Rebuild the unique table over the survivors (shrunk back towards
    // the initial capacity so memory stays flat across generations).
    std::size_t capacity = kInitialTableCapacity;
    while (over_load(next, capacity)) capacity *= 2;
    unique_.slots.assign(capacity, kFalse);
    unique_.entries = next - 2;
    const std::size_t mask = capacity - 1;
    for (BddRef ref = 2; ref < next; ++ref) {
        const Node& n = nodes_[ref];
        std::size_t i = static_cast<std::size_t>(detail::mix_node_key(n.var, n.high, n.low)) & mask;
        while (unique_.slots[i] != kFalse) i = (i + 1) & mask;
        unique_.slots[i] = ref;
    }

    // Apply caches and the probability memo key/extend old refs: drop
    // them wholesale (safe — both are pure memos).
    for (ApplyCache& cache : apply_cache_) {
        cache.slots.assign(kInitialTableCapacity, ApplyCache::Slot{});
        cache.entries = 0;
    }
    prob_memo_.clear();
    prob_vec_.clear();
    prob_valid_ = 0;
    // The batch scratch stamps reference old refs too; a full reset
    // keeps stale epochs from matching renumbered nodes.
    batch_stamp_.clear();
    batch_pos_.clear();
    batch_epoch_ = 0;

    for (BddRef& root : pins_) {
        if (root != kUnpinned) root = fwd[root];
    }

    GcResult result{size(), before - size()};
    ++gc_collections_;
    ++obs_tally_.gc_collections;
    obs_tally_.gc_nodes_freed += result.freed_nodes;
    // The compacted arena is smaller than anything flushed before; reset
    // the flush baseline so future growth is counted from here (the
    // freed nodes were already counted when created).
    obs_nodes_flushed_ = nodes_.size();
    static obs::Gauge& live_gauge = obs::Registry::global().gauge("bdd.gc.live_nodes");
    live_gauge.set(static_cast<double>(result.live_nodes));
    return result;
}

std::size_t BddManager::node_count(BddRef f) const {
    std::unordered_set<BddRef> seen;
    std::vector<BddRef> stack{f};
    while (!stack.empty()) {
        const BddRef x = stack.back();
        stack.pop_back();
        if (is_terminal(x) || !seen.insert(x).second) continue;
        stack.push_back(nodes_[x].high);
        stack.push_back(nodes_[x].low);
    }
    return seen.size();
}

bool BddManager::evaluate(BddRef f, const std::vector<bool>& assignment) const {
    if (assignment.size() != variable_count_) {
        throw AnalysisError("bdd: assignment size != variable count");
    }
    BddRef x = f;
    while (!is_terminal(x)) {
        const Node& n = nodes_[x];
        x = assignment[n.var] ? n.high : n.low;
    }
    return x == kTrue;
}

BddManager::NodeView BddManager::node(BddRef f) const {
    if (is_terminal(f) || f >= nodes_.size()) {
        throw AnalysisError("bdd: node() on terminal or invalid ref");
    }
    const Node& n = nodes_[f];
    return NodeView{n.var, n.high, n.low};
}

void BddManager::flush_obs() const {
    static obs::Counter& lookups = obs::Registry::global().counter("bdd.apply_lookups");
    static obs::Counter& hits = obs::Registry::global().counter("bdd.apply_hits");
    static obs::Counter& unique_resizes = obs::Registry::global().counter("bdd.unique_resizes");
    static obs::Counter& apply_resizes = obs::Registry::global().counter("bdd.apply_resizes");
    static obs::Counter& nodes_created = obs::Registry::global().counter("bdd.nodes_created");
    static obs::Counter& gc_collections = obs::Registry::global().counter("bdd.gc.collections");
    static obs::Counter& gc_nodes_freed = obs::Registry::global().counter("bdd.gc.nodes_freed");
    static obs::Gauge& high_water = obs::Registry::global().gauge("bdd.node_high_water");
    static obs::Gauge& load_factor = obs::Registry::global().gauge("bdd.unique_load_factor");

    lookups.add(obs_tally_.apply_lookups);
    hits.add(obs_tally_.apply_hits);
    unique_resizes.add(obs_tally_.unique_resizes);
    apply_resizes.add(obs_tally_.apply_resizes);
    gc_collections.add(obs_tally_.gc_collections);
    gc_nodes_freed.add(obs_tally_.gc_nodes_freed);

    // Arena growth since the last flush (first flush baselines away the
    // two terminals, which are storage, not created nodes), plus any
    // growth collect() banked before compacting.
    if (obs_nodes_flushed_ < 2) obs_nodes_flushed_ = 2;
    std::uint64_t created = obs_tally_.nodes_created;
    if (nodes_.size() > obs_nodes_flushed_) {
        created += nodes_.size() - obs_nodes_flushed_;
        obs_nodes_flushed_ = nodes_.size();
    }
    if (created != 0) nodes_created.add(created);
    obs_tally_ = ObsTally{};
    high_water.set_max(static_cast<double>(size()));
    if (!unique_.slots.empty()) {
        load_factor.set(static_cast<double>(unique_.entries) /
                        static_cast<double>(unique_.slots.size()));
    }
}

}  // namespace asilkit::bdd

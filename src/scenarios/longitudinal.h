// A second case study: the EcoTwin platoon's LONGITUDINAL control
// (cooperative adaptive cruise control — keeping the short gap to the
// lead truck that produces the fuel savings, plus emergency braking).
//
// Not a figure of the paper, but the companion function its introduction
// motivates; structurally it differs from the lateral application in
// ways that exercise other parts of the library:
//   * a feedback loop (applied acceleration -> ego dynamics -> gap
//     sensing), so the application graph is a true DCG and fault-tree
//     generation must cut a cycle;
//   * two actuators (engine torque and brake), so the fault tree has a
//     system-level OR top event;
//   * a mixed-criticality side chain (QM driver display).
#pragma once

#include <string>
#include <vector>

#include "model/architecture.h"

namespace asilkit::scenarios {

[[nodiscard]] ArchitectureModel ecotwin_longitudinal_control();

/// The single-channel decision nodes of the gap controller, in dataflow
/// order (the candidates for ASIL decomposition).
[[nodiscard]] std::vector<std::string> longitudinal_decision_nodes();

}  // namespace asilkit::scenarios

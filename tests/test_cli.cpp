#include "cli/cli.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <sstream>

#include "io/json.h"
#include "io/model_json.h"

namespace asilkit::cli {
namespace {

struct CliRun {
    int exit_code;
    std::string out;
    std::string err;
};

CliRun run(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = run_cli(args, out, err);
    return {code, out.str(), err.str()};
}

// Unique per test case: ctest runs each gtest case as its own process,
// and concurrent processes must not collide on scratch files.  Outside a
// test body (suite set-up) the pid disambiguates instead.
std::string temp_path(const std::string& name) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string prefix = info != nullptr ? std::string(info->name())
                                               : "pid" + std::to_string(::getpid());
    return ::testing::TempDir() + "/" + prefix + "_" + name;
}

/// Writes the fig3 demo model once for the read-only commands.
class CliTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        model_path_ = new std::string(temp_path("cli_fig3.json"));
        ASSERT_EQ(run({"demo", "fig3", "-o", *model_path_}).exit_code, 0);
    }
    static void TearDownTestSuite() {
        delete model_path_;
        model_path_ = nullptr;
    }
    static const std::string& model() { return *model_path_; }

private:
    static std::string* model_path_;
};

std::string* CliTest::model_path_ = nullptr;

TEST_F(CliTest, NoArgsPrintsUsageAndFails) {
    const CliRun r = run({});
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
    const CliRun r = run({"analyze", "--help"});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
    const CliRun r = run({"frobnicate"});
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, MissingFileReportsError) {
    const CliRun r = run({"analyze", "/nonexistent/model.json"});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST_F(CliTest, DemoWritesLoadableModel) {
    const std::string path = temp_path("cli_demo_longitudinal.json");
    const CliRun r = run({"demo", "longitudinal", "-o", path});
    EXPECT_EQ(r.exit_code, 0);
    const ArchitectureModel m = io::load_model(path);
    EXPECT_EQ(m.name(), "ecotwin-longitudinal-control");
}

TEST_F(CliTest, DemoUnknownScenarioFails) {
    const CliRun r = run({"demo", "warpdrive", "-o", temp_path("x.json")});
    EXPECT_EQ(r.exit_code, 1);
}

TEST_F(CliTest, ValidateCleanModel) {
    const CliRun r = run({"validate", model()});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("0 errors"), std::string::npos);
}

/// `base` (the fig3 model) plus one unplaced resource: a warning, but no
/// error.
std::string write_warning_model(const std::string& base, const std::string& path) {
    ArchitectureModel m = io::load_model(base);
    m.add_resource({"spare", ResourceKind::Functional, Asil::B, {}, {}});
    io::save_model(m, path);
    return path;
}

/// `base` plus one unmapped application node: a structural error.
std::string write_error_model(const std::string& base, const std::string& path) {
    ArchitectureModel m = io::load_model(base);
    m.add_app_node({"orphan", NodeKind::Functional, AsilTag{Asil::B}, {}});
    io::save_model(m, path);
    return path;
}

TEST_F(CliTest, ValidateWarningsPassWithoutStrict) {
    const std::string path = write_warning_model(model(), temp_path("warn.json"));
    const CliRun r = run({"validate", path});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("1 warnings"), std::string::npos);
}

TEST_F(CliTest, ValidateStrictPromotesWarnings) {
    const std::string path = write_warning_model(model(), temp_path("warn.json"));
    const CliRun r = run({"validate", path, "--strict"});
    EXPECT_EQ(r.exit_code, 1);
}

TEST_F(CliTest, ValidateStrictCleanModelStillPasses) {
    const CliRun r = run({"validate", model(), "--strict"});
    EXPECT_EQ(r.exit_code, 0);
}

TEST_F(CliTest, ValidateErrorsFailWithoutStrict) {
    const std::string path = write_error_model(model(), temp_path("err.json"));
    const CliRun r = run({"validate", path});
    EXPECT_EQ(r.exit_code, 1);
}

TEST_F(CliTest, LintCleanModelExitsZero) {
    const CliRun r = run({"lint", model()});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("0 errors, 0 warnings, 0 notes"), std::string::npos);
}

TEST_F(CliTest, LintWarningsExitThree) {
    const std::string path = write_warning_model(model(), temp_path("warn.json"));
    const CliRun r = run({"lint", path});
    EXPECT_EQ(r.exit_code, 3);
    EXPECT_NE(r.out.find("map.unplaced-resource"), std::string::npos);
}

TEST_F(CliTest, LintErrorsExitFour) {
    const std::string path = write_error_model(model(), temp_path("err.json"));
    const CliRun r = run({"lint", path});
    EXPECT_EQ(r.exit_code, 4);
    EXPECT_NE(r.out.find("map.unmapped-node"), std::string::npos);
}

TEST_F(CliTest, LintJsonFormat) {
    const std::string path = write_warning_model(model(), temp_path("warn.json"));
    const CliRun r = run({"lint", path, "--format", "json"});
    EXPECT_EQ(r.exit_code, 3);
    EXPECT_NE(r.out.find("\"diagnostics\""), std::string::npos);
    EXPECT_NE(r.out.find("\"map.unplaced-resource\""), std::string::npos);
}

TEST_F(CliTest, LintSarifToFile) {
    const std::string report_path = temp_path("report.sarif");
    const CliRun r = run({"lint", model(), "--format", "sarif", "-o", report_path});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    std::ifstream in(report_path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("sarif-schema-2.1.0.json"), std::string::npos);
    EXPECT_NE(content.str().find("\"version\": \"2.1.0\""), std::string::npos);
}

TEST_F(CliTest, LintRulesConfigSilencesWarning) {
    const std::string path = write_warning_model(model(), temp_path("warn.json"));
    const std::string config = temp_path("rules.json");
    std::ofstream(config) << R"({"rules": {"map.unplaced-resource": "off"}})";
    const CliRun r = run({"lint", path, "--rules", config});
    EXPECT_EQ(r.exit_code, 0) << r.out;
}

TEST_F(CliTest, LintUnknownRuleInConfigFails) {
    const std::string config = temp_path("bad_rules.json");
    std::ofstream(config) << R"({"rules": {"map.tpyo": "off"}})";
    const CliRun r = run({"lint", model(), "--rules", config});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("unknown rule"), std::string::npos);
}

TEST_F(CliTest, LintBadFormatFails) {
    const CliRun r = run({"lint", model(), "--format", "xml"});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("format"), std::string::npos);
}

TEST_F(CliTest, AnalyzeReportsProbabilityAndCost) {
    const CliRun r = run({"analyze", model()});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("P(system failure)"), std::string::npos);
    EXPECT_NE(r.out.find("cost"), std::string::npos);
    EXPECT_NE(r.out.find("2.08"), std::string::npos);  // ~2.08e-7
}

TEST_F(CliTest, AnalyzeApproximateAndHours) {
    const CliRun r = run({"analyze", model(), "--approximate", "--hours", "100"});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("approximated blocks: 1"), std::string::npos);
    EXPECT_NE(r.out.find("over 100 h"), std::string::npos);
}

TEST_F(CliTest, AnalyzeRejectsBadMetric) {
    const CliRun r = run({"analyze", model(), "--metric", "9"});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("metric"), std::string::npos);
}

TEST_F(CliTest, CcfCleanModelExitsZero) {
    const CliRun r = run({"ccf", model()});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("independent"), std::string::npos);
}

TEST_F(CliTest, CcfBrokenModelExitsOne) {
    const std::string path = temp_path("cli_fig3_ccf.json");
    ASSERT_EQ(run({"demo", "fig3-ccf", "-o", path}).exit_code, 0);
    const CliRun r = run({"ccf", path});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.out.find("shared-resource"), std::string::npos);
}

TEST_F(CliTest, ToleranceListsSpofs) {
    const CliRun r = run({"tolerance", model(), "--max-order", "2"});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("minimal cut order : 1"), std::string::npos);
    EXPECT_NE(r.out.find("res:camera_hw"), std::string::npos);
}

TEST_F(CliTest, AdviseRanksExpansions) {
    const CliRun r = run({"advise", model()});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("expand("), std::string::npos);
}

TEST_F(CliTest, ExpandWritesTransformedModel) {
    const std::string eco = temp_path("cli_eco.json");
    ASSERT_EQ(run({"demo", "ecotwin", "-o", eco}).exit_code, 0);
    const std::string out_path = temp_path("cli_eco_expanded.json");
    const CliRun r =
        run({"expand", eco, "--node", "world_model", "--strategy", "AC", "-o", out_path});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const ArchitectureModel m = io::load_model(out_path);
    EXPECT_FALSE(m.find_app_node("world_model").valid());
    EXPECT_TRUE(m.find_app_node("world_model_1").valid());
    EXPECT_EQ(m.app().node(m.find_app_node("world_model_1")).asil,
              (AsilTag{Asil::C, Asil::D}));
}

TEST_F(CliTest, ExpandUnknownNodeFails) {
    const CliRun r = run({"expand", model(), "--node", "nope", "-o", temp_path("x.json")});
    EXPECT_EQ(r.exit_code, 1);
}

TEST_F(CliTest, ConnectAllAfterExpansions) {
    const std::string eco = temp_path("cli_eco2.json");
    ASSERT_EQ(run({"demo", "ecotwin", "-o", eco}).exit_code, 0);
    const std::string e1 = temp_path("cli_eco2_e1.json");
    ASSERT_EQ(run({"expand", eco, "--node", "wm_eth", "-o", e1}).exit_code, 0);
    const std::string e2 = temp_path("cli_eco2_e2.json");
    ASSERT_EQ(run({"expand", e1, "--node", "wm_can", "-o", e2}).exit_code, 0);
    const std::string connected = temp_path("cli_eco2_connected.json");
    const CliRun r = run({"connect", e2, "--all", "-o", connected});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("performed 1 connect"), std::string::npos);
}

TEST_F(CliTest, ReduceWritesModel) {
    const std::string out_path = temp_path("cli_fig3_reduced.json");
    const CliRun r = run({"reduce", model(), "-o", out_path});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NO_THROW((void)io::load_model(out_path));
}

TEST_F(CliTest, ExploreProducesCurveAndCsv) {
    const std::string eco = temp_path("cli_eco3.json");
    ASSERT_EQ(run({"demo", "ecotwin", "-o", eco}).exit_code, 0);
    const std::string csv = temp_path("cli_curve.csv");
    const std::string final_model = temp_path("cli_final.json");
    const CliRun r = run({"explore", eco, "--nodes", "wm_eth,wm_can,lateral_control", "--csv",
                          csv, "-o", final_model});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("initial:"), std::string::npos);
    EXPECT_NE(r.out.find("mapping-optimized"), std::string::npos);
    std::ifstream csv_in(csv);
    std::string header;
    std::getline(csv_in, header);
    EXPECT_EQ(header, "label,cost,failure_probability");
    EXPECT_NO_THROW((void)io::load_model(final_model));
}

TEST_F(CliTest, ExportEveryLayer) {
    for (const std::string layer : {"app", "resources", "physical", "ftree"}) {
        const std::string path = temp_path("cli_" + layer + ".dot");
        const CliRun r = run({"export", model(), "--layer", layer, "-o", path});
        EXPECT_EQ(r.exit_code, 0) << layer << ": " << r.err;
        std::ifstream in(path);
        std::string first_line;
        std::getline(in, first_line);
        EXPECT_NE(first_line.find("graph"), std::string::npos) << layer;
    }
}

TEST_F(CliTest, ExportUnknownLayerFails) {
    const CliRun r = run({"export", model(), "--layer", "warp", "-o", temp_path("x.dot")});
    EXPECT_EQ(r.exit_code, 1);
}


TEST_F(CliTest, TraceReportsRequirements) {
    const std::string eco = temp_path("cli_trace_eco.json");
    ASSERT_EQ(run({"demo", "ecotwin", "-o", eco}).exit_code, 0);
    const CliRun r = run({"trace", eco});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("FSR-LAT-01"), std::string::npos);
    EXPECT_NE(r.out.find("[satisfied]"), std::string::npos);
}

TEST_F(CliTest, TraceFlagsViolations) {
    // fig3 has no FSR tags: trivially satisfied (no requirements), exit 0.
    const CliRun r = run({"trace", model()});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("without an FSR"), std::string::npos);
}

TEST_F(CliTest, FmeaRanksResources) {
    const CliRun r = run({"fmea", model()});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("camera_hw"), std::string::npos);
    EXPECT_NE(r.out.find("[SPOF]"), std::string::npos);
    // Sensors first (highest Fussell-Vesely).
    EXPECT_LT(r.out.find("camera_hw"), r.out.find("ecu1"));
}


TEST_F(CliTest, DiffReportsTransformationFootprint) {
    const std::string eco = temp_path("cli_diff_eco.json");
    ASSERT_EQ(run({"demo", "ecotwin", "-o", eco}).exit_code, 0);
    const std::string expanded = temp_path("cli_diff_expanded.json");
    ASSERT_EQ(run({"expand", eco, "--node", "world_model", "-o", expanded}).exit_code, 0);
    const CliRun r = run({"diff", eco, expanded});
    EXPECT_EQ(r.exit_code, 1);  // differences found
    EXPECT_NE(r.out.find("- world_model"), std::string::npos);
    EXPECT_NE(r.out.find("+ world_model_1"), std::string::npos);
    const CliRun same = run({"diff", eco, eco});
    EXPECT_EQ(same.exit_code, 0);
    EXPECT_NE(same.out.find("no differences"), std::string::npos);
}

TEST_F(CliTest, ExportGraphml) {
    const std::string path = temp_path("cli_app.graphml");
    const CliRun r = run({"export", model(), "--layer", "app", "--format", "graphml", "-o", path});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    std::ifstream in(path);
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_NE(first_line.find("<?xml"), std::string::npos);
    const CliRun bad = run({"export", model(), "--layer", "ftree", "--format", "graphml", "-o",
                            temp_path("x.graphml")});
    EXPECT_EQ(bad.exit_code, 1);
}

TEST_F(CliTest, StatsPrintsMetricCatalogue) {
    const CliRun r = run({"stats", model()});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("P(system failure)"), std::string::npos);
    // The analysis populated all pipeline layers of the registry.
    for (const char* id : {"engine.analyze_calls", "ftree.trees_built", "bdd.apply_lookups",
                           "bdd.node_high_water", "engine.analyze_ns"}) {
        EXPECT_NE(r.out.find(id), std::string::npos) << id;
    }
}

TEST_F(CliTest, StatsJsonFormat) {
    const CliRun r = run({"stats", model(), "--format", "json"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("\"counters\""), std::string::npos);
    EXPECT_NE(r.out.find("\"engine.analyze_calls\""), std::string::npos);
}

TEST_F(CliTest, StatsOpenMetricsFormat) {
    const CliRun r = run({"stats", model(), "--format", "openmetrics"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("# TYPE engine_analyze_calls counter\n"), std::string::npos);
    EXPECT_NE(r.out.find("engine_analyze_calls_total"), std::string::npos);
    // Exactly one terminator, at the very end of the exposition.
    EXPECT_EQ(r.out.rfind("# EOF\n"), r.out.size() - 6);
}

// `stats` with no model never analyzes: it dumps whatever the registry
// holds — possibly nothing — as a well-formed document and exits 0.
// Plain TESTs (not TEST_F) so the fixture's demo run can't populate the
// registry first when a case runs in its own ctest process.
TEST(StatsEmptyRegistry, TextExitsZero) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(run_cli({"stats"}, out, err), 0) << err.str();
}

TEST(StatsEmptyRegistry, JsonIsWellFormed) {
    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(run_cli({"stats", "--format", "json"}, out, err), 0) << err.str();
    const io::Json doc = io::Json::parse(out.str());
    EXPECT_TRUE(doc.at("counters").is_object());
    EXPECT_TRUE(doc.at("gauges").is_object());
    EXPECT_TRUE(doc.at("histograms").is_object());
}

TEST(StatsEmptyRegistry, OpenMetricsIsTerminated) {
    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(run_cli({"stats", "--format", "openmetrics"}, out, err), 0) << err.str();
    EXPECT_EQ(out.str().rfind("# EOF\n"), out.str().size() - 6);
}

TEST_F(CliTest, StatsProfilePrintsHotSpans) {
    const CliRun r = run({"stats", model(), "--profile"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    // The profile replaces the metrics document and names the analysis
    // pipeline's spans.
    EXPECT_NE(r.out.find("analyze"), std::string::npos);
    EXPECT_NE(r.out.find("evaluate_module"), std::string::npos);
    EXPECT_NE(r.out.find("edges:"), std::string::npos);
    EXPECT_EQ(r.out.find("engine.analyze_calls"), std::string::npos);
}

TEST_F(CliTest, StatsProfileOutWritesFoldedStacks) {
    const std::string folded = temp_path("cli_profile.folded");
    const CliRun r = run({"stats", model(), "--profile-out", folded});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    std::ifstream in(folded);
    ASSERT_TRUE(in.good());
    std::size_t lines = 0;
    for (std::string line; std::getline(in, line); ++lines) {
        // Brendan Gregg folded format: "root;child;leaf <self_ns>".
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_EQ(line.find_first_not_of("0123456789", space + 1), std::string::npos)
            << line;
    }
    EXPECT_GT(lines, 0u);
}

TEST_F(CliTest, StatsProfileUnknownFormatFails) {
    const CliRun r = run({"stats", model(), "--profile", "--profile-format", "bogus"});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("profile format"), std::string::npos);
}

TEST_F(CliTest, SamplerOptionsWriteTimeSeriesAndOpenMetrics) {
    const std::string ts = temp_path("cli_ts.json");
    const std::string om = temp_path("cli_om.txt");
    const CliRun r = run({"analyze", model(), "--sample-out", ts, "--sample-period",
                          "1", "--openmetrics-out", om});
    EXPECT_EQ(r.exit_code, 0) << r.err;

    std::ifstream ts_in(ts);
    ASSERT_TRUE(ts_in.good());
    std::stringstream ts_buf;
    ts_buf << ts_in.rdbuf();
    const io::Json doc = io::Json::parse(ts_buf.str());
    EXPECT_GE(doc.at("ticks").as_number(), 1.0);  // final flush tick at minimum
    EXPECT_FALSE(doc.at("series").as_array().empty());

    std::ifstream om_in(om);
    ASSERT_TRUE(om_in.good());
    std::stringstream om_buf;
    om_buf << om_in.rdbuf();
    const std::string text = om_buf.str();
    EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST_F(CliTest, WatchdogFiresFromRuleFile) {
    const std::string rules = temp_path("cli_rules.json");
    {
        std::ofstream rules_out(rules);
        rules_out << R"({"rules": [{"id": "ran", "metric": "engine.analyze_calls",
                         "op": ">=", "threshold": 1}]})";
    }
    const std::string events = temp_path("cli_watch.ndjson");
    const CliRun r = run({"analyze", model(), "--watch-rules", rules, "--watch-out",
                          events, "--sample-period", "1"});
    EXPECT_EQ(r.exit_code, 0) << r.err;

    std::ifstream in(events);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line)) << "watchdog wrote no events";
    const io::Json event = io::Json::parse(line);
    EXPECT_EQ(event.at("event").as_string(), "fire");
    EXPECT_EQ(event.at("rule").as_string(), "ran");
}

TEST_F(CliTest, MalformedWatchRulesFail) {
    const std::string rules = temp_path("cli_bad_rules.json");
    {
        std::ofstream rules_out(rules);
        rules_out << R"({"rules": [{"op": ">", "threshold": 1}]})";
    }
    const CliRun r = run({"analyze", model(), "--watch-rules", rules});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST_F(CliTest, TraceAndMetricsOptionsWriteFiles) {
    const std::string trace = temp_path("cli_trace.json");
    const std::string metrics = temp_path("cli_metrics.json");
    const CliRun r = run({"analyze", model(), "--trace", trace, "--metrics", metrics});
    EXPECT_EQ(r.exit_code, 0) << r.err;

    std::ifstream trace_in(trace);
    ASSERT_TRUE(trace_in.good());
    std::stringstream trace_buf;
    trace_buf << trace_in.rdbuf();
    const std::string t = trace_buf.str();
    EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(t.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(t.find("build_fault_tree"), std::string::npos);

    std::ifstream metrics_in(metrics);
    ASSERT_TRUE(metrics_in.good());
    std::stringstream metrics_buf;
    metrics_buf << metrics_in.rdbuf();
    EXPECT_NE(metrics_buf.str().find("\"ftree.trees_built\""), std::string::npos);
}

TEST_F(CliTest, ExploreTraceCoversAllLayers) {
    const std::string eco = temp_path("cli_eco_trace_model.json");
    ASSERT_EQ(run({"demo", "ecotwin", "-o", eco}).exit_code, 0);
    const std::string trace = temp_path("cli_explore_trace.json");
    const CliRun r =
        run({"explore", eco, "--nodes", "wm_eth,wm_can,lateral_control", "--trace", trace});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    std::ifstream in(trace);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string t = buf.str();
    for (const char* cat : {"\"cat\":\"explore\"", "\"cat\":\"engine\"", "\"cat\":\"ftree\"",
                            "\"cat\":\"bdd\""}) {
        EXPECT_NE(t.find(cat), std::string::npos) << cat;
    }
}

TEST_F(CliTest, SearchOptimizesAndStreamsFront) {
    const std::string eco = temp_path("cli_search_model.json");
    ASSERT_EQ(run({"demo", "ecotwin", "-o", eco}).exit_code, 0);
    const std::string front = temp_path("cli_search_front.ndjson");
    const std::string optimized = temp_path("cli_search_out.json");
    const CliRun r = run({"search", eco, "--approximate", "--stream-front", front, "-o",
                          optimized});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("merges"), std::string::npos);
    EXPECT_NE(r.out.find("front stream written to"), std::string::npos);
    // The stream is NDJSON: one complete JSON object per line, the first
    // being the initial state.
    std::ifstream in(front);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        const io::Json parsed = io::Json::parse(line);
        EXPECT_TRUE(parsed.is_object());
        EXPECT_TRUE(parsed.contains("cost"));
        EXPECT_TRUE(parsed.contains("failure_probability"));
        EXPECT_TRUE(parsed.contains("front_size"));
        if (lines == 0) {
            EXPECT_EQ(parsed.at("label").as_string(), "initial");
        }
        ++lines;
    }
    EXPECT_GE(lines, 1u);
    EXPECT_NO_THROW((void)io::load_model(optimized));
}

TEST_F(CliTest, ExploreStreamsFront) {
    const std::string eco = temp_path("cli_explore_front_model.json");
    ASSERT_EQ(run({"demo", "ecotwin", "-o", eco}).exit_code, 0);
    const std::string front = temp_path("cli_explore_front.ndjson");
    const CliRun r =
        run({"explore", eco, "--nodes", "wm_eth,wm_can", "--stream-front", front});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    std::ifstream in(front);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        EXPECT_TRUE(io::Json::parse(line).is_object());
        ++lines;
    }
    EXPECT_GE(lines, 1u);
}

TEST_F(CliTest, SimulateReportsEstimateAndInterval) {
    const CliRun r = run({"simulate", model(), "--trials", "20000", "--seed", "7",
                          "--rate-scale", "1e6"});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("P(system failure)"), std::string::npos);
    EXPECT_NE(r.out.find("95% CI"), std::string::npos);
    EXPECT_NE(r.out.find("effective samples"), std::string::npos);
}

TEST_F(CliTest, SimulateJsonHasEstimatorFields) {
    const CliRun r = run({"simulate", model(), "--trials", "10000", "--format", "json"});
    EXPECT_EQ(r.exit_code, 0);
    const io::Json doc = io::Json::parse(r.out);
    EXPECT_TRUE(doc.contains("estimate"));
    EXPECT_TRUE(doc.contains("ci95_high"));
    EXPECT_TRUE(doc.contains("ess"));
    EXPECT_EQ(doc.at("trials").as_number(), 10000.0);
    EXPECT_FALSE(doc.at("importance_sampled").as_bool());
}

TEST_F(CliTest, SimulateImportanceSamplingAtRealRates) {
    // Unscaled automotive rates: the plain estimator would see ~0
    // failures in 20k trials; the --is proposal must still resolve a
    // positive estimate.
    const CliRun r = run({"simulate", model(), "--trials", "20000", "--is",
                          "--format", "json"});
    EXPECT_EQ(r.exit_code, 0);
    const io::Json doc = io::Json::parse(r.out);
    EXPECT_TRUE(doc.at("importance_sampled").as_bool());
    EXPECT_GT(doc.at("estimate").as_number(), 0.0);
    EXPECT_LT(doc.at("estimate").as_number(), 1e-4);
}

TEST_F(CliTest, SimulateNaiveEngineAndBadEngine) {
    EXPECT_EQ(run({"simulate", model(), "--trials", "1000", "--engine", "naive"}).exit_code, 0);
    const CliRun bad = run({"simulate", model(), "--engine", "warp"});
    EXPECT_EQ(bad.exit_code, 1);
    EXPECT_NE(bad.err.find("unknown engine"), std::string::npos);
}

TEST_F(CliTest, OptionNeedingValueAtEndFails) {
    const CliRun r = run({"analyze", model(), "--hours"});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("needs a value"), std::string::npos);
}

}  // namespace
}  // namespace asilkit::cli

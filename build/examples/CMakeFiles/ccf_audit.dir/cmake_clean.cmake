file(REMOVE_RECURSE
  "CMakeFiles/ccf_audit.dir/ccf_audit.cpp.o"
  "CMakeFiles/ccf_audit.dir/ccf_audit.cpp.o.d"
  "ccf_audit"
  "ccf_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

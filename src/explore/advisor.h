// Expansion advisor: which node should be decomposed next?
//
// The paper's flow expands a hand-picked node set; this extension ranks
// every expandable node by the measured effect of actually expanding it
// (trial transformation on a copy, exact analysis — models are small
// enough that measuring beats estimating).  An expansion is RECOMMENDED
// when it lowers the failure probability, or when it lowers cost without
// hurting the probability beyond a configurable tolerance — the lens an
// architect needs when ASIL D parts are unavailable and the question is
// where redundancy pays.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/probability.h"
#include "core/decomposition.h"
#include "cost/cost_metric.h"
#include "model/architecture.h"

namespace asilkit::explore {

struct AdvisorOptions {
    DecompositionStrategy strategy = DecompositionStrategy::BB;
    std::size_t branches = 2;
    cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    analysis::ProbabilityOptions probability{};
    /// Accept a probability increase up to this relative amount when the
    /// expansion saves cost (0 = never trade safety for cost).
    double probability_tolerance = 0.0;
};

struct ExpansionAdvice {
    std::string node;
    NodeKind kind = NodeKind::Functional;
    double delta_probability = 0.0;  ///< after - before (negative = safer)
    double delta_cost = 0.0;         ///< after - before (negative = cheaper)
    bool recommended = false;
};

std::ostream& operator<<(std::ostream& os, const ExpansionAdvice& a);

/// One entry per expandable node (functional/communication, non-QM,
/// >=1 in and out), sorted by ascending delta_probability (best first).
[[nodiscard]] std::vector<ExpansionAdvice> advise_expansions(const ArchitectureModel& m,
                                                             const AdvisorOptions& options = {});

}  // namespace asilkit::explore

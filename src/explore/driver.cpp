#include "explore/driver.h"

#include <random>

#include "core/error.h"
#include "explore/mapping_opt.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transform/connect.h"
#include "transform/expand.h"
#include "transform/reduce.h"

namespace asilkit::explore {

ExplorationResult run_exploration(const ArchitectureModel& model,
                                  const std::vector<std::string>& nodes_to_expand,
                                  const ExplorationOptions& options) {
    engine::EvalEngine engine(options.engine);
    return run_exploration(model, nodes_to_expand, options, engine);
}

ExplorationResult run_exploration(const ArchitectureModel& model,
                                  const std::vector<std::string>& nodes_to_expand,
                                  const ExplorationOptions& options,
                                  engine::EvalEngine& engine) {
    const obs::ObsSpan span("run_exploration", "explore");
    static obs::Counter& obs_front_updates = obs::Registry::global().counter("explore.front_updates");
    ExplorationResult result;
    result.final_model = model;  // work on a copy
    ArchitectureModel& m = result.final_model;
    result.curve.name = std::string(to_string(options.strategy)) + "/" + options.metric.name();

    std::mt19937 rng(options.rng_seed);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    ParetoTracker local_tracker;
    ParetoTracker& tracker = options.front_tracker ? *options.front_tracker : local_tracker;
    auto record = [&](std::string label) {
        result.curve.points.push_back(
            measure_point(m, std::move(label), options.metric, options.probability, engine));
        const TradeoffPoint& point = result.curve.points.back();
        if (tracker.insert(point)) {
            ++result.front_updates;
            obs_front_updates.inc();
            if (options.on_front_update) options.on_front_update(point, tracker.front_size());
        }
    };

    record("initial");

    // Phase 1: Expand (A -> B).
    {
        const obs::ObsSpan expand_span("expand", "explore", "nodes",
                                       static_cast<double>(nodes_to_expand.size()));
        for (const std::string& name : nodes_to_expand) {
            const NodeId n = m.find_app_node(name);
            if (!n.valid()) {
                throw TransformError("run_exploration: no application node named '" + name +
                                     "'");
            }
            transform::ExpandOptions expand_options;
            expand_options.strategy = options.strategy;
            expand_options.splitter_merger_asil = options.splitter_merger_asil;
            expand_options.rng_draws = {uniform(rng), uniform(rng)};
            transform::expand(m, n, expand_options);
            ++result.expansions;
            record("expand(" + name + ")");
        }
    }

    // Phase 2: Connect + Reduce (B -> C).  Reducing first matters: two
    // adjacent expanded blocks leave a c_post -> c_pre communication pair
    // between them, and Connect() requires a single middle node.
    if (options.run_connect_reduce) {
        const obs::ObsSpan connect_span("connect_reduce", "explore");
        result.reductions += transform::reduce_all(m);
        for (;;) {
            const std::vector<NodeId> connectable = transform::find_connectable(m);
            if (connectable.empty()) break;
            transform::connect(m, connectable.front());
            ++result.connects;
            result.reductions += transform::reduce_all(m);
            if (options.record_each_connect) {
                record("connect#" + std::to_string(result.connects));
            }
        }
        result.reductions += transform::reduce_all(m);
        if (!options.record_each_connect || result.connects == 0) {
            record("connected+reduced");
        }
    }

    // Phase 3: mapping optimisation (C -> D).
    if (options.run_mapping_optimization) {
        const obs::ObsSpan mapping_span("mapping_optimize", "explore");
        MappingOptimizeOptions mapping_options;
        mapping_options.include_non_branch_nodes = options.trunk_consolidation;
        const MappingOptimizeResult opt = optimize_mapping(m, mapping_options);
        result.mapping_groups_merged = opt.groups_merged;
        record("mapping-optimized");
    }

    result.front = tracker.front();
    result.engine_stats = engine.stats();
    result.engine_cache = result.engine_stats.cache;
    return result;
}

}  // namespace asilkit::explore

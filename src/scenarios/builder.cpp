#include "scenarios/builder.h"

namespace asilkit::scenarios {

LocationId ScenarioBuilder::loc(const std::string& name, Environment env) {
    const LocationId existing = m_.find_location(name);
    if (existing.valid()) return existing;
    return m_.add_location(Location{name, kDefaultLocationLambda, env});
}

NodeId ScenarioBuilder::add(const std::string& name, NodeKind kind, Asil a, LocationId at) {
    return m_.add_node_with_dedicated_resource(AppNode{name, kind, AsilTag{a}, fsr_}, at);
}

NodeId ScenarioBuilder::sensor(const std::string& name, Asil a, LocationId at) {
    return add(name, NodeKind::Sensor, a, at);
}

NodeId ScenarioBuilder::actuator(const std::string& name, Asil a, LocationId at) {
    return add(name, NodeKind::Actuator, a, at);
}

NodeId ScenarioBuilder::func(const std::string& name, Asil a, LocationId at) {
    return add(name, NodeKind::Functional, a, at);
}

NodeId ScenarioBuilder::comm(const std::string& name, Asil a, LocationId at) {
    return add(name, NodeKind::Communication, a, at);
}

NodeId ScenarioBuilder::splitter(const std::string& name, Asil a, LocationId at) {
    return add(name, NodeKind::Splitter, a, at);
}

NodeId ScenarioBuilder::merger(const std::string& name, Asil a, LocationId at) {
    return add(name, NodeKind::Merger, a, at);
}

void ScenarioBuilder::chain(std::initializer_list<NodeId> nodes) {
    const NodeId* prev = nullptr;
    for (const NodeId& n : nodes) {
        if (prev) m_.connect_app(*prev, n);
        prev = &n;
    }
}

}  // namespace asilkit::scenarios

// Architecture cost calculation (paper Section VI).
//
// The cost of an architecture is the sum of the metric cost of its
// resources.  Only resources that actually implement application nodes
// count by default (MapG-used), so removing a node together with its
// dedicated hardware — as Connect()/Reduce() do — lowers the total.
#pragma once

#include <string>
#include <vector>

#include "cost/cost_metric.h"
#include "model/architecture.h"

namespace asilkit::cost {

struct CostOptions {
    /// Count every resource in the resource graph, including unused spares.
    bool include_unused_resources = false;
};

struct CostBreakdownEntry {
    ResourceId resource;
    std::string name;
    ResourceKind kind = ResourceKind::Functional;
    Asil asil = Asil::QM;
    double cost = 0.0;
};

struct CostReport {
    double total = 0.0;
    std::vector<CostBreakdownEntry> breakdown;  ///< descending by cost
    /// Per-kind subtotal, indexed by static_cast<size_t>(ResourceKind).
    std::array<double, kResourceKindCount> by_kind{};
};

[[nodiscard]] double total_cost(const ArchitectureModel& m, const CostMetric& metric,
                                const CostOptions& options = {});

[[nodiscard]] CostReport cost_report(const ArchitectureModel& m, const CostMetric& metric,
                                     const CostOptions& options = {});

}  // namespace asilkit::cost

#include "analysis/fmea.h"

#include <gtest/gtest.h>

#include "scenarios/ecotwin.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::analysis {
namespace {

TEST(Fmea, OneRowPerUsedResource) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const auto rows = fmea_report(m);
    EXPECT_EQ(rows.size(), m.used_resources().size());
}

TEST(Fmea, RowsSortedByFussellVesely) {
    const auto rows = fmea_report(scenarios::fig3_camera_gps_fusion());
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_GE(rows[i - 1].fussell_vesely, rows[i].fussell_vesely);
    }
}

TEST(Fmea, SensorsTopTheFig3Ranking) {
    const auto rows = fmea_report(scenarios::fig3_camera_gps_fusion());
    ASSERT_GE(rows.size(), 2u);
    EXPECT_EQ(rows[0].kind, ResourceKind::Sensor);
    EXPECT_EQ(rows[1].kind, ResourceKind::Sensor);
    EXPECT_GT(rows[0].fussell_vesely, 0.4);
    EXPECT_TRUE(rows[0].single_point_of_failure);
}

TEST(Fmea, BranchHardwareIsNotSpof) {
    const auto rows = fmea_report(scenarios::fig3_camera_gps_fusion());
    for (const FmeaRow& row : rows) {
        if (row.resource == "ecu1" || row.resource == "ecu2") {
            EXPECT_FALSE(row.single_point_of_failure) << row.resource;
            EXPECT_LT(row.fussell_vesely, 1e-3) << row.resource;
        }
    }
}

TEST(Fmea, ImplementsAndLambdaAreFilled) {
    const auto rows = fmea_report(scenarios::chain_1in_1out());
    for (const FmeaRow& row : rows) {
        EXPECT_FALSE(row.implements.empty()) << row.resource;
        EXPECT_GT(row.lambda, 0.0) << row.resource;
    }
}

TEST(Fmea, SharedResourceListsAllItsNodes) {
    const auto rows = fmea_report(scenarios::fig3_camera_gps_fusion());
    for (const FmeaRow& row : rows) {
        if (row.resource == "switch1") {
            EXPECT_EQ(row.implements, (std::vector<std::string>{"split_cam", "split_gps"}));
        }
        if (row.resource == "eth3") {
            EXPECT_EQ(row.implements.size(), 2u);  // c_cam1 + c_gps1
        }
    }
}

TEST(Fmea, FsrsAreTraced) {
    const auto rows = fmea_report(scenarios::ecotwin_lateral_control());
    bool found = false;
    for (const FmeaRow& row : rows) {
        if (row.resource == "world_model_hw") {
            found = true;
            EXPECT_EQ(row.fsrs, (std::vector<std::string>{"FSR-LAT-01"}));
        }
    }
    EXPECT_TRUE(found);
}

TEST(Fmea, DecompositionDemotesTheExpandedPart) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const auto before = fmea_report(m);
    double n_fv_before = -1.0;
    for (const auto& row : before) {
        if (row.resource == "n_hw") n_fv_before = row.fussell_vesely;
    }
    ASSERT_GE(n_fv_before, 0.1);
    transform::expand(m, m.find_app_node("n"));
    const auto after = fmea_report(m);
    for (const auto& row : after) {
        if (row.resource == "n_1_hw" || row.resource == "n_2_hw") {
            EXPECT_LT(row.fussell_vesely, 1e-3) << row.resource;
            EXPECT_FALSE(row.single_point_of_failure) << row.resource;
        }
    }
}

TEST(Fmea, VirtualElementsAreNotSpofs) {
    const auto rows = fmea_report(scenarios::ecotwin_lateral_control());
    for (const FmeaRow& row : rows) {
        if (row.resource == "observed_scene_hw" || row.resource == "vsplit_scene_hw") {
            EXPECT_FALSE(row.single_point_of_failure) << row.resource;
            EXPECT_DOUBLE_EQ(row.lambda, 0.0) << row.resource;
        }
    }
}

}  // namespace
}  // namespace asilkit::analysis

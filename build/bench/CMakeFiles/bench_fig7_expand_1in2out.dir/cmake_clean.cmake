file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_expand_1in2out.dir/bench_fig7_expand_1in2out.cpp.o"
  "CMakeFiles/bench_fig7_expand_1in2out.dir/bench_fig7_expand_1in2out.cpp.o.d"
  "bench_fig7_expand_1in2out"
  "bench_fig7_expand_1in2out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_expand_1in2out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

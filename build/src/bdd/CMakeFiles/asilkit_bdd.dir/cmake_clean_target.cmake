file(REMOVE_RECURSE
  "libasilkit_bdd.a"
)

// Fig. 8: expanding a node with 3 inputs and 3 outputs can RAISE the
// system failure probability (paper: 1.21e-8 -> 1.28e-8): six new
// management resources outweigh the one removed node.
//
// The sign of the delta depends on the failure-rate assignment (the
// paper's conclusion: "it is not always beneficial to introduce
// redundancy in the system, depending on the lambda values of the
// resources that are being used and the system configuration").  We show
// both regimes: under Table I's 10x-better management hardware the wide
// expansion is still (barely) beneficial; with management hardware only
// 2.5x better, it inverts — while the 1-in/1-out expansion stays
// beneficial in both.
#include "bench_util.h"

#include "analysis/probability.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

double delta_for(ArchitectureModel m, const analysis::ProbabilityOptions& options) {
    const double before = analysis::analyze_failure_probability(m, options).failure_probability;
    transform::expand(m, m.find_app_node("n"));
    const double after = analysis::analyze_failure_probability(m, options).failure_probability;
    return after - before;
}

void print_report() {
    bench::heading("Fig. 8: Expand() on a 3-input / 3-output node");

    analysis::ProbabilityOptions table1;
    ArchitectureModel wide = scenarios::chain_3in_3out();
    const double before = analysis::analyze_failure_probability(wide, table1).failure_probability;
    bench::compare("P(fail) before expansion", "1.21e-8", before);
    {
        ArchitectureModel m = scenarios::chain_3in_3out();
        transform::expand(m, m.find_app_node("n"));
        const double after = analysis::analyze_failure_probability(m, table1).failure_probability;
        bench::compare("P(fail) after (Table I rates)", "1.28e-8", after);
        bench::row("delta (Table I: 10x-better mgmt hw)", after - before);
    }

    analysis::ProbabilityOptions modest;
    modest.rates.set_rate(ResourceKind::Splitter, Asil::D, 4e-10);
    modest.rates.set_rate(ResourceKind::Merger, Asil::D, 4e-10);
    bench::heading("Sensitivity to management-hardware reliability");
    std::printf("  %-34s %-16s %-16s\n", "configuration", "delta 1-in/1-out", "delta 3-in/3-out");
    std::printf("  %-34s %-16.4g %-16.4g\n", "Table I (mgmt 10x better)",
                delta_for(scenarios::chain_1in_1out(), table1),
                delta_for(scenarios::chain_3in_3out(), table1));
    std::printf("  %-34s %-16.4g %-16.4g\n", "mgmt only 2.5x better",
                delta_for(scenarios::chain_1in_1out(), modest),
                delta_for(scenarios::chain_3in_3out(), modest));
    bench::note("the wide node's 6 management resources flip its delta positive once");
    bench::note("management hardware is less privileged — the paper's Fig. 8 regime.");
}

void BM_Fig8Pipeline(benchmark::State& state) {
    ArchitectureModel m = scenarios::chain_3in_3out();
    transform::expand(m, m.find_app_node("n"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::analyze_failure_probability(m));
    }
}
BENCHMARK(BM_Fig8Pipeline);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

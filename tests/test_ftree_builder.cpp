#include "ftree/builder.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

namespace asilkit::ftree {
namespace {

TEST(Builder, RequiresActuator) {
    ArchitectureModel m("empty");
    EXPECT_THROW((void)build_fault_tree(m), AnalysisError);
}

TEST(Builder, ChainProducesOneEventPerResourcePlusLocations) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const FtBuildResult r = build_fault_tree(m);
    const FaultTreeStats s = r.tree.stats();
    // 5 resources + 2 locations = 7 basic events; 5 node gates.
    EXPECT_EQ(s.basic_events, 7u);
    EXPECT_EQ(s.gates, 5u);
    EXPECT_TRUE(r.warnings.empty());
    EXPECT_EQ(r.cycles_cut, 0u);
}

TEST(Builder, LocationEventsCanBeDisabled) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    FtBuildOptions options;
    options.include_location_events = false;
    const FtBuildResult r = build_fault_tree(m, options);
    EXPECT_EQ(r.tree.stats().basic_events, 5u);
    for (const BasicEvent& e : r.tree.basic_events()) {
        EXPECT_EQ(e.name.rfind(kLocationEventPrefix, 0), std::string::npos) << e.name;
    }
}

TEST(Builder, EventLambdasFollowTable1) {
    const ArchitectureModel m = scenarios::chain_1in_1out();  // all ASIL D
    const FtBuildResult r = build_fault_tree(m);
    EXPECT_DOUBLE_EQ(r.tree.basic_event(r.tree.find_basic_event("res:n_hw")).lambda, 1e-9);
    EXPECT_DOUBLE_EQ(r.tree.basic_event(r.tree.find_basic_event("loc:front")).lambda, 1e-11);
}

TEST(Builder, SharedResourceYieldsOneSharedEvent) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    // Map both communication nodes onto one bus.
    const ResourceId bus = m.add_resource({"bus", ResourceKind::Communication, Asil::D, {}, {}});
    m.place_resource(bus, m.find_location("front"));
    m.remap_node(m.find_app_node("c_in"), {bus});
    m.remap_node(m.find_app_node("c_out"), {bus});
    const FtBuildResult r = build_fault_tree(m);
    // The two gates reference one "res:bus" event.
    std::size_t bus_events = 0;
    for (const BasicEvent& e : r.tree.basic_events()) {
        if (e.name == "res:bus") ++bus_events;
    }
    EXPECT_EQ(bus_events, 1u);
}

TEST(Builder, MergerUsesAndGate) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const FtBuildResult r = build_fault_tree(m);
    bool found_and = false;
    for (const Gate& g : r.tree.gates()) {
        if (g.kind == GateKind::And) {
            found_and = true;
            EXPECT_EQ(g.name, "and:merge_dfus");
            EXPECT_EQ(g.children.size(), 2u);
        }
    }
    EXPECT_TRUE(found_and);
}

TEST(Builder, NonMergerUsesOrGates) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const FtBuildResult r = build_fault_tree(m);
    for (const Gate& g : r.tree.gates()) {
        EXPECT_EQ(g.kind, GateKind::Or) << g.name;
    }
}

TEST(Builder, CyclesAreCut) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    // Feedback loop: n -> c_fb -> n (automotive control loops are DCGs).
    const NodeId n = m.find_app_node("n");
    const NodeId fb = m.add_node_with_dedicated_resource(
        {"c_fb", NodeKind::Communication, AsilTag{Asil::D}, {}}, m.find_location("center"));
    m.connect_app(n, fb);
    m.connect_app(fb, n);
    const FtBuildResult r = build_fault_tree(m);
    EXPECT_GE(r.cycles_cut, 1u);
    EXPECT_TRUE(r.tree.has_top());
}

TEST(Builder, UnmappedNodeProducesWarningNotEvent) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const NodeId n = m.find_app_node("n");
    m.remap_node(n, {});
    const FtBuildResult r = build_fault_tree(m);
    ASSERT_FALSE(r.warnings.empty());
    EXPECT_NE(r.warnings.front().find("no mapped resource"), std::string::npos);
    EXPECT_FALSE(r.tree.has_basic_event("res:n_hw"));
}

TEST(Builder, MultipleActuatorsGetSystemTop) {
    const ArchitectureModel m = scenarios::chain_1in_2out();
    const FtBuildResult r = build_fault_tree(m);
    const Gate& top = r.tree.gate(r.tree.top());
    EXPECT_EQ(top.name, "system_failure");
    EXPECT_EQ(top.children.size(), 2u);
}

// ---- approximation ----------------------------------------------------------

TEST(Approximation, ShrinksTheTree) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    const FtBuildResult exact = build_fault_tree(m);
    FtBuildOptions options;
    options.approximate = true;
    const FtBuildResult approx = build_fault_tree(m, options);
    EXPECT_EQ(approx.approximated_blocks, 1u);
    EXPECT_LT(approx.tree.stats().dag_nodes, exact.tree.stats().dag_nodes);
    EXPECT_LT(approx.tree.stats().paths, exact.tree.stats().paths);
}

TEST(Approximation, RemovesBranchEvents) {
    const ArchitectureModel m = scenarios::fig3_camera_gps_fusion();
    FtBuildOptions options;
    options.approximate = true;
    const FtBuildResult approx = build_fault_tree(m, options);
    // Branch hardware disappears from the tree ...
    EXPECT_FALSE(approx.tree.has_basic_event("res:ecu1"));
    EXPECT_FALSE(approx.tree.has_basic_event("res:ecu2"));
    // ... while series hardware and the splitters' upstreams stay.
    EXPECT_TRUE(approx.tree.has_basic_event("res:camera_hw"));
    EXPECT_TRUE(approx.tree.has_basic_event("res:gps_hw"));
    EXPECT_TRUE(approx.tree.has_basic_event("res:steering_hw"));
}

TEST(Approximation, RefusedWhenBranchesShareBaseEvents) {
    const ArchitectureModel m = scenarios::fig3_with_shared_ecu_ccf();
    FtBuildOptions options;
    options.approximate = true;
    const FtBuildResult r = build_fault_tree(m, options);
    EXPECT_EQ(r.approximated_blocks, 0u);
    ASSERT_FALSE(r.warnings.empty());
    EXPECT_NE(r.warnings.front().find("common cause"), std::string::npos);
    // Fallback to the exact expansion: the shared ECU is in the tree.
    EXPECT_TRUE(r.tree.has_basic_event("res:ecu1"));
}

TEST(Approximation, HalvesPathsPerDecomposition) {
    // Expanding k nodes of a chain multiplies the path count by ~2^k;
    // the approximation collapses it back.
    ArchitectureModel m = scenarios::chain_n_stages(4);
    for (int i = 1; i <= 4; ++i) {
        transform::expand(m, m.find_app_node("f" + std::to_string(i)));
    }
    const FtBuildResult exact = build_fault_tree(m);
    FtBuildOptions options;
    options.approximate = true;
    const FtBuildResult approx = build_fault_tree(m, options);
    EXPECT_EQ(approx.approximated_blocks, 4u);
    EXPECT_GE(exact.tree.stats().paths, 16u * approx.tree.stats().paths / 2u);
}

}  // namespace
}  // namespace asilkit::ftree

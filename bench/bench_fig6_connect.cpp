// Fig. 6: the Connect() transformation on two consecutive redundant
// blocks (paper: failure probability 5.49e-9 before, 4.26e-9 after).
#include "bench_util.h"

#include "analysis/probability.h"
#include "model/blocks.h"
#include "scenarios/micro.h"
#include "transform/connect.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

ArchitectureModel two_blocks() {
    ArchitectureModel m = scenarios::chain_two_stages();
    transform::expand(m, m.find_app_node("n1"));
    transform::expand(m, m.find_app_node("n2"));
    return m;
}

void print_report() {
    bench::heading("Fig. 6: Connect(Block1, Block2)");
    ArchitectureModel m = two_blocks();
    const double before = analysis::analyze_failure_probability(m).failure_probability;
    bench::compare("P(fail) before connect", "5.49e-9", before);

    const NodeId merger = m.find_app_node("merge_n1");
    std::string why;
    bench::row("four conditions hold", transform::can_connect(m, merger, &why) ? "yes" : why);
    const transform::ConnectResult r = transform::connect(m, merger);
    const double after = analysis::analyze_failure_probability(m).failure_probability;
    bench::compare("P(fail) after connect", "4.26e-9", after);
    bench::row("delta", before - after);
    bench::row("removed nodes", "n_m + c + f_s (" + std::to_string(r.stitched.size()) +
                                    " branch pairs stitched)");
    bench::row("blocks remaining", std::to_string(find_redundant_blocks(m).size()));
    bench::note("paper delta: -1.23e-9; ours removes the same merger + ASIL D comm +");
    bench::note("splitter series elements, so the delta matches to within the model.");
}

void BM_CanConnect(benchmark::State& state) {
    const ArchitectureModel m = two_blocks();
    const NodeId merger = m.find_app_node("merge_n1");
    for (auto _ : state) {
        benchmark::DoNotOptimize(transform::can_connect(m, merger));
    }
}
BENCHMARK(BM_CanConnect);

void BM_Connect(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        ArchitectureModel m = two_blocks();
        const NodeId merger = m.find_app_node("merge_n1");
        state.ResumeTiming();
        benchmark::DoNotOptimize(transform::connect(m, merger));
    }
}
BENCHMARK(BM_Connect);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

// The Reduce() transformation (paper Section VII-A).
//
// Two consecutive communication nodes carry the same information; the
// pair is collapsed into a single communication node whose ASIL is the
// minimum of the two.  Such pairs appear as a by-product of Expand() and
// Connect() (e.g. c_out_x -> c_pre_y chains); Reduce() trims them and
// their dedicated hardware, lowering cost with negligible effect on the
// failure probability.
#pragma once

#include <vector>

#include "model/architecture.h"

namespace asilkit::transform {

struct ReduceResult {
    NodeId kept;    ///< the surviving communication node (was `first`)
    NodeId removed; ///< the erased node (was `second`)
};

/// Collapses the pair (first -> second).  Preconditions: both are
/// communication nodes, the edge exists, `first` has no other output and
/// `second` no other input.  Throws TransformError.
ReduceResult reduce(ArchitectureModel& m, NodeId first, NodeId second);

/// True iff reduce(m, first, second) would succeed.
[[nodiscard]] bool can_reduce(const ArchitectureModel& m, NodeId first, NodeId second);

/// Collapses every reducible pair; returns the number of reductions.
std::size_t reduce_all(ArchitectureModel& m);

}  // namespace asilkit::transform

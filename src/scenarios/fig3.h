// The paper's Fig. 3 running example: a redundant camera + GPS data
// fusion system steering the vehicle.
//
// Two sensors (camera, GPS) feed two redundant data-fusion branches
// through virtual splitters implemented in the Ethernet switches; a
// merger (also in a switch) selects a correct steering command.  The
// sensor part is ASIL B(D) hardware (each source alone is B; the fused
// pair provides the D), the redundancy-management and output parts are
// ASIL D.  Mapping is deliberately non-1:1 (both splitters share switch
// sw1, the GPS coordinates ride CAN + gateway + Ethernet) to exercise
// shared base events.
//
// Paper reference values for this model: failure probability 2.04180e-7
// fph exact vs 2.04179e-7 approximated; fault tree 87 -> 51 nodes.
#pragma once

#include "model/architecture.h"

namespace asilkit::scenarios {

[[nodiscard]] ArchitectureModel fig3_camera_gps_fusion();

/// The same system with both data-fusion nodes mapped onto ONE shared ECU
/// — the paper's example of an invalid decomposition that the CCF
/// analysis must flag.
[[nodiscard]] ArchitectureModel fig3_with_shared_ecu_ccf();

}  // namespace asilkit::scenarios

// Mapping-search DSE benchmark: the parallel candidate-evaluation engine
// against the serial baseline, plus the eval-cache hit rates the engine
// earns on a symmetry-rich workload.
//
// Workload: chain_n_stages(3) with every stage expanded (three redundant
// blocks).  Steepest-descent mapping search scores every candidate merge
// per iteration; mirror merges in redundant branches collapse onto one
// canonical fault tree, so the cold sweep already replays a third of its
// evaluations from cache, and a persistent engine (the iterative-DSE
// steady state, where consecutive searches revisit the same candidate
// trees) replays almost everything.
//
// Counters exported per timing (consumed by tools/bench_to_json):
//   cache_hit_rate   aggregate eval-cache hit rate during the timing
//   evals            engine evaluations per search
//
// Thread counts honour ASILKIT_THREADS; on a single-core host the
// parallel timing degenerates to the serial one (the ISSUE's >=4x at 8
// threads needs >=8 cores — this harness reports whatever the host has).
#include "bench_util.h"

#include "explore/mapping_search.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

ArchitectureModel workload() {
    ArchitectureModel m = scenarios::chain_n_stages(3);
    for (const char* n : {"f1", "f2", "f3"}) transform::expand(m, m.find_app_node(n));
    return m;
}

explore::MappingSearchResult run_search(const engine::EngineOptions& eng) {
    ArchitectureModel m = workload();
    explore::MappingSearchOptions options;
    options.engine = eng;
    return explore::search_mapping(m, options);
}

void print_report() {
    bench::heading("Mapping-search DSE engine (chain x3, all stages expanded)");
    const auto serial = run_search({.threads = 1, .cache_capacity = 0, .candidate_dedup = false});
    bench::row("evaluations per search", static_cast<double>(serial.evaluations));
    bench::row("merges applied", static_cast<double>(serial.merges));
    bench::row("P(fail) after search", serial.probability_after);

    const auto cold = run_search({.threads = 1, .cache_capacity = 1 << 14});
    std::printf("  %-46s %.1f%%  (%llu/%llu)\n", "cold-sweep cache hit rate",
                100.0 * cold.eval_cache_hit_rate(),
                static_cast<unsigned long long>(cold.eval_cache_hits),
                static_cast<unsigned long long>(cold.evaluations));

    // Iterative DSE steady state: one engine serving repeated searches of
    // a workload family, as run_exploration does across its phases.  All
    // counters come from the engine's single stats() snapshot.
    engine::EvalEngine shared({.threads = 1, .cache_capacity = 1 << 14});
    explore::MappingSearchOptions options;
    for (int round = 0; round < 4; ++round) {
        ArchitectureModel m = workload();
        (void)explore::search_mapping(m, options, shared);
    }
    const engine::EvalEngine::Stats s = shared.stats();
    std::printf("  %-46s %.1f%%  (%llu/%llu)\n", "steady-state tree hit rate (4 searches)",
                s.analyze_calls == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(s.tree_hits) / static_cast<double>(s.analyze_calls),
                static_cast<unsigned long long>(s.tree_hits),
                static_cast<unsigned long long>(s.analyze_calls));
    std::printf("  %-46s hits=%llu misses=%llu\n", "steady-state module cache",
                static_cast<unsigned long long>(s.module_hits),
                static_cast<unsigned long long>(s.module_misses));
    bench::row("eval-cache entries live / evictions",
               std::to_string(s.cache.size) + " / " + std::to_string(s.cache.evictions));
    bench::note("determinism: identical curves and models at every thread count/cache size");
    bench::note("(asserted by tests/test_engine.cpp).");
}

// Serial baseline: one thread, no cache — every candidate pays a full
// fault-tree build + BDD compile + Shannon evaluation.
void BM_MappingSearch_Serial(benchmark::State& state) {
    std::uint64_t evals = 0;
    bench::time_batch(state, "bench.search_serial_ns", [&] {
        const auto r = run_search({.threads = 1, .cache_capacity = 0, .candidate_dedup = false});
        evals = r.evaluations;
        benchmark::DoNotOptimize(r);
    });
    state.counters["cache_hit_rate"] = 0.0;
    state.counters["evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_MappingSearch_Serial)->Unit(benchmark::kMillisecond)->UseManualTime();

// Parallel batch scoring, cache off: isolates the thread-pool speed-up.
// Thread count from ASILKIT_THREADS (default: hardware concurrency).
void BM_MappingSearch_Parallel(benchmark::State& state) {
    std::uint64_t evals = 0;
    bench::time_batch(state, "bench.search_parallel_ns", [&] {
        const auto r = run_search({.threads = 0, .cache_capacity = 0, .candidate_dedup = false});
        evals = r.evaluations;
        benchmark::DoNotOptimize(r);
    });
    state.counters["engine_threads"] = static_cast<double>(engine::resolve_thread_count(0));
    state.counters["cache_hit_rate"] = 0.0;
    state.counters["evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_MappingSearch_Parallel)->Unit(benchmark::kMillisecond)->UseManualTime();

// Cold cache, fresh engine per search: hits come only from within-sweep
// canonical-tree symmetry (mirror merges, current-state replays).
void BM_MappingSearch_ColdCache(benchmark::State& state) {
    std::uint64_t evals = 0;
    std::uint64_t hits = 0;
    bench::time_batch(state, "bench.search_cold_cache_ns", [&] {
        const auto r = run_search({.threads = 1, .cache_capacity = 1 << 14});
        evals += r.evaluations;
        hits += r.eval_cache_hits;
        benchmark::DoNotOptimize(r);
    });
    state.counters["cache_hit_rate"] =
        evals == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(evals);
    state.counters["evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_MappingSearch_ColdCache)->Unit(benchmark::kMillisecond)->UseManualTime();

// Steady state: the engine outlives the searches, as in an iterative DSE
// loop re-exploring a workload family.  After the first search the cache
// replays every evaluation, so the aggregate hit rate approaches 100%.
void BM_MappingSearch_SteadyStateCache(benchmark::State& state) {
    engine::EvalEngine shared({.threads = 1, .cache_capacity = 1 << 14});
    explore::MappingSearchOptions options;
    std::uint64_t evals = 0;
    std::uint64_t hits = 0;
    bench::time_batch(state, "bench.search_steady_state_ns", [&] {
        ArchitectureModel m = workload();
        const auto r = explore::search_mapping(m, options, shared);
        evals += r.evaluations;
        hits += r.eval_cache_hits;
        benchmark::DoNotOptimize(r);
    });
    state.counters["cache_hit_rate"] =
        evals == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(evals);
    state.counters["evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_MappingSearch_SteadyStateCache)->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

// The exploration driver: the paper's experiment loop (Section IX).
//
// Starting from an "ideal" architecture (every node at its required ASIL
// on dedicated ASIL-ready hardware), the driver replays the EcoTwin
// design flow:
//   1. Expand() each selected node (points A ... B of Fig. 12),
//   2. Connect() + Reduce() until no pair remains (... point C),
//   3. in-branch mapping optimisation (point D),
// measuring cost and failure probability after every step.  The RND
// strategy draws from a seeded generator owned by the driver, so a curve
// is a pure function of (model, node list, options).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/probability.h"
#include "core/decomposition.h"
#include "cost/cost_metric.h"
#include "engine/engine.h"
#include "explore/pareto.h"
#include "explore/tradeoff.h"
#include "model/architecture.h"

namespace asilkit::explore {

struct ExplorationOptions {
    DecompositionStrategy strategy = DecompositionStrategy::BB;
    cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    analysis::ProbabilityOptions probability{};
    /// ASIL for new splitters/mergers; nullopt keeps each expanded node's
    /// original level (the paper's configuration).
    std::optional<Asil> splitter_merger_asil;
    unsigned rng_seed = 42;  ///< consumed only by the RND strategy
    bool run_connect_reduce = true;
    bool run_mapping_optimization = true;
    /// Also consolidate trunk (non-branch) functional/communication nodes
    /// onto shared hardware during the mapping phase.
    bool trunk_consolidation = false;
    /// Record a point after every individual connect (otherwise only
    /// after the whole phase).
    bool record_each_connect = true;
    /// Evaluation engine used for every curve point (thread count and
    /// eval-cache capacity).  The flow itself is sequential; the engine
    /// memoises repeated measurements of isomorphic states, and results
    /// are bitwise identical for any thread/cache setting.
    engine::EngineOptions engine{};
    /// Anytime front streaming: every measured point is offered to a
    /// best-front-so-far; when it changes, the point and the updated
    /// front size are reported here (synchronously, in flow order).
    std::function<void(const TradeoffPoint& point, std::size_t front_size)> on_front_update;
    /// Optional caller-owned tracker to accumulate one front across
    /// several runs (a whole strategy x metric sweep); defaults to a
    /// tracker local to the run, whose front lands in
    /// ExplorationResult::front either way.
    ParetoTracker* front_tracker = nullptr;
};

struct ExplorationResult {
    TradeoffCurve curve;
    ArchitectureModel final_model;
    std::size_t expansions = 0;
    std::size_t connects = 0;
    std::size_t reductions = 0;
    std::size_t mapping_groups_merged = 0;
    /// Eval-cache counters over the whole run (hits/misses/evictions).
    engine::EvalCache::Stats engine_cache{};
    /// Full engine counters: analyze calls plus the tree/module hit-miss
    /// split (module counters are zero when options.engine.modularize is
    /// off).
    engine::EvalEngine::Stats engine_stats{};
    /// Best front so far over the measured points (ascending cost).
    /// With options.front_tracker set, this is that tracker's front —
    /// including points accumulated by earlier runs feeding it.
    std::vector<TradeoffPoint> front;
    /// Front changes streamed during this run.
    std::uint64_t front_updates = 0;
};

/// Runs the flow on a copy of `model`, expanding the nodes named in
/// `nodes_to_expand` (names, not ids: ids do not survive the expansions).
/// Unknown names throw TransformError.
[[nodiscard]] ExplorationResult run_exploration(const ArchitectureModel& model,
                                                const std::vector<std::string>& nodes_to_expand,
                                                const ExplorationOptions& options = {});

/// Same, but on a caller-owned engine: a sweep running the flow many
/// times (strategy x metric configurations, rate studies) shares the
/// pool, the evaluation cache AND the non-evicting candidate-dedup memo
/// across its branches — identical intermediate states measured by
/// different branches stop re-evaluating.  The result's engine counters
/// cover the engine's whole lifetime, not just this call.
[[nodiscard]] ExplorationResult run_exploration(const ArchitectureModel& model,
                                                const std::vector<std::string>& nodes_to_expand,
                                                const ExplorationOptions& options,
                                                engine::EvalEngine& engine);

}  // namespace asilkit::explore

#include "scenarios/fig3.h"

#include "scenarios/builder.h"

namespace asilkit::scenarios {
namespace {

ArchitectureModel build(bool shared_ecu) {
    ScenarioBuilder b(shared_ecu ? "fig3-camera-gps-shared-ecu" : "fig3-camera-gps");
    ArchitectureModel& m = b.model();

    // Physical locations (the paper's c1..c5 cable spaces / compartments).
    const LocationId front_left = b.loc("c1_front_left");
    const LocationId front_right = b.loc("c2_front_right");
    const LocationId front_center = b.loc("c3_front_center");
    const LocationId duct = b.loc("c4_duct_front_rear");
    const LocationId rear = b.loc("c5_rear");

    // Resources (hand-placed: this scenario does NOT use the 1:1 default).
    auto res = [&](const char* name, ResourceKind kind, Asil a, LocationId at) {
        const ResourceId r = m.add_resource(Resource{name, kind, a, std::nullopt, {}});
        m.place_resource(r, at);
        return r;
    };
    const ResourceId camera_hw = res("camera_hw", ResourceKind::Sensor, Asil::B, front_left);
    const ResourceId gps_hw = res("gps_hw", ResourceKind::Sensor, Asil::B, front_right);
    const ResourceId eth1 = res("eth1", ResourceKind::Communication, Asil::D, front_left);
    const ResourceId can_bus = res("can_bus", ResourceKind::Communication, Asil::D, front_right);
    const ResourceId gateway = res("can_eth_gw", ResourceKind::Communication, Asil::D, front_right);
    const ResourceId eth2 = res("eth2", ResourceKind::Communication, Asil::D, front_right);
    const ResourceId sw1 = res("switch1", ResourceKind::Communication, Asil::D, front_center);
    const ResourceId sw2 = res("switch2", ResourceKind::Communication, Asil::D, front_center);
    const ResourceId eth3 = res("eth3", ResourceKind::Communication, Asil::B, front_center);
    const ResourceId eth4 = res("eth4", ResourceKind::Communication, Asil::B, duct);
    const ResourceId ecu1 = res("ecu1", ResourceKind::Functional, Asil::B, front_center);
    const ResourceId ecu2 = res("ecu2", ResourceKind::Functional, Asil::B, rear);
    const ResourceId eth5 = res("eth5", ResourceKind::Communication, Asil::B, front_center);
    const ResourceId eth6 = res("eth6", ResourceKind::Communication, Asil::B, duct);
    const ResourceId can2 = res("can2", ResourceKind::Communication, Asil::D, front_center);
    const ResourceId steer_hw = res("steering_hw", ResourceKind::Actuator, Asil::D, front_center);

    // Application nodes.  The sensing side carries decomposed B(D) tags;
    // redundancy management and the output path are full D.
    auto node = [&](const char* name, NodeKind kind, AsilTag tag,
                    std::initializer_list<ResourceId> mapped) {
        const NodeId n = m.add_app_node(AppNode{name, kind, tag, {}});
        for (ResourceId r : mapped) m.map_node(n, r);
        return n;
    };
    const AsilTag bd{Asil::B, Asil::D};
    const AsilTag dd{Asil::D};

    const NodeId camera = node("camera", NodeKind::Sensor, bd, {camera_hw});
    const NodeId cam_stream = node("cam_stream", NodeKind::Communication, bd, {eth1});
    const NodeId split_cam = node("split_cam", NodeKind::Splitter, dd, {sw1});
    const NodeId gps = node("gps", NodeKind::Sensor, bd, {gps_hw});
    const NodeId gps_coord =
        node("gps_coord", NodeKind::Communication, bd, {can_bus, gateway, eth2});
    const NodeId split_gps = node("split_gps", NodeKind::Splitter, dd, {sw1});

    const NodeId c_c1 = node("c_cam1", NodeKind::Communication, bd, {eth3});
    const NodeId c_g1 = node("c_gps1", NodeKind::Communication, bd, {eth3});
    const NodeId dfus1 = node("dfus_1", NodeKind::Functional, bd, {ecu1});
    const NodeId com_a1 = node("com_a1", NodeKind::Communication, bd, {eth5});

    const NodeId c_c2 = node("c_cam2", NodeKind::Communication, bd, {eth4});
    const NodeId c_g2 = node("c_gps2", NodeKind::Communication, bd, {eth4});
    const NodeId dfus2 = node("dfus_2", NodeKind::Functional, bd, {shared_ecu ? ecu1 : ecu2});
    const NodeId com_a2 = node("com_a2", NodeKind::Communication, bd, {eth6});

    const NodeId merge_df = node("merge_dfus", NodeKind::Merger, dd, {sw2});
    const NodeId steer_cmd = node("steer_cmd", NodeKind::Communication, dd, {can2});
    const NodeId steering = node("steering", NodeKind::Actuator, dd, {steer_hw});

    b.chain({camera, cam_stream, split_cam});
    b.chain({gps, gps_coord, split_gps});
    b.chain({split_cam, c_c1, dfus1, com_a1, merge_df});
    b.chain({split_gps, c_g1, dfus1});
    b.chain({split_cam, c_c2, dfus2, com_a2, merge_df});
    b.chain({split_gps, c_g2, dfus2});
    b.chain({merge_df, steer_cmd, steering});

    return b.take();
}

}  // namespace

ArchitectureModel fig3_camera_gps_fusion() { return build(/*shared_ecu=*/false); }

ArchitectureModel fig3_with_shared_ecu_ccf() { return build(/*shared_ecu=*/true); }

}  // namespace asilkit::scenarios

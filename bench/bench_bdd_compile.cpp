// Ablation: persistent cross-candidate BDD compilation.
//
// The DSE loop recompiles near-identical fault trees thousands of times;
// a per-candidate throwaway BddManager pays the full apply() cost every
// time.  This bench measures the three mechanisms that remove that cost
// (see docs/bdd.md):
//   * persistent compilation — one long-lived manager + subtree compile
//     memo vs a cold manager per candidate, on a rotating-variant regime
//     (the steepest-descent access pattern: the same shapes come back
//     with perturbed rates);
//   * the mark-and-compact collection — pause time and reclaimed nodes
//     at a realistic live/garbage ratio;
//   * the batched multi-lambda probability kernel — k rate lanes in one
//     SoA sweep vs k sequential probability() calls, k = 1/8/64.
#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bdd/bdd.h"
#include "bdd/from_fault_tree.h"
#include "ftree/builder.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

ftree::FaultTree tree_with_blocks(std::size_t blocks) {
    ArchitectureModel m = scenarios::chain_n_stages(blocks);
    for (std::size_t i = 1; i <= blocks; ++i) {
        transform::expand(m, m.find_app_node("f" + std::to_string(i)));
    }
    return ftree::build_fault_tree(m).tree;
}

/// The same tree with every rate scaled: the rate-only candidate variant
/// the subtree memo is built for (indices preserved, diagram unchanged).
ftree::FaultTree scale_rates(const ftree::FaultTree& ft, double factor) {
    ftree::FaultTree out;
    for (const ftree::BasicEvent& b : ft.basic_events()) {
        (void)out.add_basic_event(b.name, b.lambda * factor);
    }
    std::vector<ftree::FtRef> gate_refs;
    for (const ftree::Gate& g : ft.gates()) {
        gate_refs.push_back(out.add_gate(g.name, g.kind, {}));
    }
    for (std::size_t i = 0; i < ft.gates().size(); ++i) {
        for (const ftree::FtRef c : ft.gates()[i].children) out.add_child(gate_refs[i], c);
    }
    if (ft.has_top()) out.set_top(ft.top());
    return out;
}

std::vector<ftree::FaultTree> rotating_variants(std::size_t blocks, std::size_t count) {
    const ftree::FaultTree base = tree_with_blocks(blocks);
    std::vector<ftree::FaultTree> variants;
    for (std::size_t v = 0; v < count; ++v) {
        variants.push_back(scale_rates(base, 1.0 + 0.05 * static_cast<double>(v)));
    }
    return variants;
}

std::vector<bdd::ProbVector> rate_lanes(const ftree::FaultTree& ft,
                                        const std::vector<std::uint32_t>& event_of_var,
                                        std::size_t k) {
    std::vector<bdd::ProbVector> lanes;
    for (std::size_t j = 0; j < k; ++j) {
        const double factor = 1.0 + 0.01 * static_cast<double>(j);
        bdd::ProbVector lane;
        lane.reserve(event_of_var.size());
        for (const std::uint32_t event : event_of_var) {
            lane.push_back(bdd::basic_event_probability(ft.basic_event(event).lambda * factor, 1.0));
        }
        lanes.push_back(std::move(lane));
    }
    return lanes;
}

/// Grows `mgr` with throwaway diagrams over its variables — the garbage
/// a candidate sweep leaves behind between collections.
void grow_garbage(bdd::BddManager& mgr, std::mt19937& rng, std::size_t ops) {
    std::uniform_int_distribution<std::uint32_t> var(0, mgr.variable_count() - 1);
    bdd::BddRef f = mgr.variable(var(rng));
    for (std::size_t i = 0; i < ops; ++i) {
        f = (rng() & 1) != 0 ? mgr.apply_or(f, mgr.variable(var(rng)))
                             : mgr.apply_and(f, mgr.variable(var(rng)));
    }
    benchmark::DoNotOptimize(f);
}

void print_report() {
    using clock = std::chrono::steady_clock;
    const auto ns_since = [](clock::time_point start) {
        return static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start).count());
    };

    bench::heading("persistent vs cold compilation (rotating rate variants, 6 blocks)");
    const std::vector<ftree::FaultTree> variants = rotating_variants(6, 8);
    constexpr int kRounds = 64;
    const auto cold_start = clock::now();
    for (int r = 0; r < kRounds; ++r) {
        benchmark::DoNotOptimize(bdd::compile_fault_tree(variants[r % variants.size()]));
    }
    const double cold_ns = ns_since(cold_start) / kRounds;

    bdd::PersistentBddCompiler comp;
    const auto warm_start = clock::now();
    for (int r = 0; r < kRounds; ++r) {
        benchmark::DoNotOptimize(comp.compile(variants[r % variants.size()]));
    }
    const double warm_ns = ns_since(warm_start) / kRounds;
    const auto stats = comp.stats();
    bench::row("cold compile (fresh manager) ns", cold_ns);
    bench::row("persistent compile ns", warm_ns);
    bench::row("speedup", cold_ns / warm_ns);
    bench::row("subtree memo hit rate",
               static_cast<double>(stats.memo_hits) /
                   static_cast<double>(stats.memo_hits + stats.memo_misses));
    bench::note("rate-only variants re-derive the whole diagram from the rate-blind");
    bench::note("subtree memo: after the first candidate every compile is one lookup.");

    bench::heading("mark-and-compact collection pause");
    bdd::BddManager mgr(64);
    std::mt19937 rng(7);
    const bdd::BddRef live = mgr.apply_or(mgr.apply_and(mgr.variable(0), mgr.variable(1)),
                                          mgr.apply_and(mgr.variable(2), mgr.variable(3)));
    const auto pin = mgr.pin(live);
    grow_garbage(mgr, rng, 200000);
    const std::size_t before = mgr.size();
    const auto gc_start = clock::now();
    const bdd::BddManager::GcResult gc = mgr.collect();
    const double gc_ns = ns_since(gc_start);
    mgr.unpin(pin);
    bench::row("arena before collect (nodes)", static_cast<double>(before));
    bench::row("freed nodes", static_cast<double>(gc.freed_nodes));
    bench::row("pause ns", gc_ns);
    bench::row("pause ns per freed node", gc_ns / static_cast<double>(gc.freed_nodes));

    bench::heading("batched multi-lambda kernel vs sequential probability (k = 64)");
    const ftree::FaultTree ft = tree_with_blocks(8);
    const bdd::CompiledFaultTree compiled = bdd::compile_fault_tree(ft);
    const std::vector<bdd::ProbVector> lanes = rate_lanes(ft, compiled.event_of_var, 64);
    const auto seq_start = clock::now();
    for (int rep = 0; rep < 32; ++rep) {
        for (const bdd::ProbVector& lane : lanes) {
            benchmark::DoNotOptimize(compiled.manager.probability(compiled.root, lane));
        }
    }
    const double seq_ns = ns_since(seq_start) / 32.0;
    const auto batch_start = clock::now();
    for (int rep = 0; rep < 32; ++rep) {
        benchmark::DoNotOptimize(compiled.manager.probability_batch(compiled.root, lanes));
    }
    const double batch_ns = ns_since(batch_start) / 32.0;
    bench::row("sequential 64 lanes ns", seq_ns);
    bench::row("batched 64 lanes ns", batch_ns);
    bench::row("speedup", seq_ns / batch_ns);
    bench::note("one reachable-subgraph gather + one SoA sweep amortises the per-call");
    bench::note("traversal; per-lane doubles are bitwise identical to probability().");
}

void BM_RotatingVariants_ColdCompile(benchmark::State& state) {
    const std::vector<ftree::FaultTree> variants =
        rotating_variants(static_cast<std::size_t>(state.range(0)), 8);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bdd::compile_fault_tree(variants[i++ % variants.size()]));
    }
    state.SetLabel(std::to_string(state.range(0)) + " blocks");
}
BENCHMARK(BM_RotatingVariants_ColdCompile)->Arg(4)->Arg(6);

void BM_RotatingVariants_PersistentCompile(benchmark::State& state) {
    const std::vector<ftree::FaultTree> variants =
        rotating_variants(static_cast<std::size_t>(state.range(0)), 8);
    bdd::PersistentBddCompiler comp;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(comp.compile(variants[i++ % variants.size()]));
    }
    const auto stats = comp.stats();
    state.counters["memo_hit_rate"] =
        static_cast<double>(stats.memo_hits) /
        static_cast<double>(stats.memo_hits + stats.memo_misses);
    state.SetLabel(std::to_string(state.range(0)) + " blocks");
}
BENCHMARK(BM_RotatingVariants_PersistentCompile)->Arg(4)->Arg(6);

void BM_GcPause(benchmark::State& state) {
    // Manual time: only the collect() call is measured; regrowing the
    // garbage between collections is setup.
    bdd::BddManager mgr(64);
    std::mt19937 rng(7);
    const bdd::BddRef live = mgr.apply_or(mgr.apply_and(mgr.variable(0), mgr.variable(1)),
                                          mgr.apply_and(mgr.variable(2), mgr.variable(3)));
    const auto pin = mgr.pin(live);
    const auto garbage_ops = static_cast<std::size_t>(state.range(0));
    double freed = 0.0;
    for (auto _ : state) {
        grow_garbage(mgr, rng, garbage_ops);
        const auto start = std::chrono::steady_clock::now();
        const bdd::BddManager::GcResult gc = mgr.collect();
        const auto stop = std::chrono::steady_clock::now();
        freed += static_cast<double>(gc.freed_nodes);
        state.SetIterationTime(
            std::chrono::duration_cast<std::chrono::duration<double>>(stop - start).count());
    }
    mgr.unpin(pin);
    state.counters["gc_freed_nodes"] =
        benchmark::Counter(freed, benchmark::Counter::kAvgIterations);
    state.SetLabel(std::to_string(garbage_ops) + " garbage ops");
}
BENCHMARK(BM_GcPause)->Arg(20000)->Arg(100000)->UseManualTime();

void BM_ProbabilityBatch(benchmark::State& state) {
    const ftree::FaultTree ft = tree_with_blocks(8);
    const bdd::CompiledFaultTree compiled = bdd::compile_fault_tree(ft);
    const auto k = static_cast<std::size_t>(state.range(0));
    const std::vector<bdd::ProbVector> lanes = rate_lanes(ft, compiled.event_of_var, k);
    for (auto _ : state) {
        benchmark::DoNotOptimize(compiled.manager.probability_batch(compiled.root, lanes));
    }
    state.counters["batch_lanes"] = static_cast<double>(k);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k));
    state.SetLabel("k=" + std::to_string(k));
}
BENCHMARK(BM_ProbabilityBatch)->Arg(1)->Arg(8)->Arg(64);

void BM_ProbabilitySequential(benchmark::State& state) {
    const ftree::FaultTree ft = tree_with_blocks(8);
    const bdd::CompiledFaultTree compiled = bdd::compile_fault_tree(ft);
    const auto k = static_cast<std::size_t>(state.range(0));
    const std::vector<bdd::ProbVector> lanes = rate_lanes(ft, compiled.event_of_var, k);
    for (auto _ : state) {
        for (const bdd::ProbVector& lane : lanes) {
            benchmark::DoNotOptimize(compiled.manager.probability(compiled.root, lane));
        }
    }
    state.counters["batch_lanes"] = static_cast<double>(k);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k));
    state.SetLabel("k=" + std::to_string(k));
}
BENCHMARK(BM_ProbabilitySequential)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

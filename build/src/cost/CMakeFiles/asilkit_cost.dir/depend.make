# Empty dependencies file for asilkit_cost.
# This may be replaced when dependencies are built.

# Empty dependencies file for asilkit_cli.
# This may be replaced when dependencies are built.

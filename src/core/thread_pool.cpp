#include "core/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace asilkit::core {

unsigned resolve_thread_count(unsigned requested) noexcept {
    unsigned threads = requested;
    if (threads == 0) {
        if (const char* env = std::getenv("ASILKIT_THREADS"); env != nullptr && *env != '\0') {
            threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        }
    }
    if (threads == 0) threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    return threads > 256 ? 256 : threads;
}

ThreadPool::ThreadPool(unsigned threads) : threads_(std::max(threads, 1u)) {
    workers_.reserve(threads_ - 1);
    for (unsigned i = 0; i + 1 < threads_; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const core::MutexLock lock(mutex_);
        stopping_ = true;
    }
    wake_workers_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
        Batch* batch = nullptr;
        {
            const core::MutexLock lock(mutex_);
            while (!stopping_ && epoch_ == seen_epoch) wake_workers_.wait(mutex_);
            if (stopping_) return;
            seen_epoch = epoch_;
            batch = batch_;
            if (batch != nullptr) ++active_;  // keeps the caller's Batch alive
        }
        if (batch != nullptr) {
            run_batch(*batch);
            const core::MutexLock lock(mutex_);
            if (--active_ == 0) batch_done_.notify_all();
        }
    }
}

void ThreadPool::run_batch(Batch& batch) {
    for (;;) {
        const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.count) return;
        try {
            (*batch.fn)(i);
        } catch (...) {
            const core::MutexLock lock(batch.error_mutex);
            if (!batch.error) batch.error = std::current_exception();
        }
        if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.count) {
            // Take the pool mutex so the notification cannot slip into
            // the caller's predicate-check window.
            const core::MutexLock lock(mutex_);
            batch_done_.notify_all();
        }
    }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (workers_.empty() || count == 1) {
        // Same drain-then-rethrow semantics as the parallel path below: a
        // throwing task never skips the rest of the batch, and only the
        // first exception surfaces.  Callers therefore see one behaviour
        // at every thread count.
        std::exception_ptr error;
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!error) error = std::current_exception();
            }
        }
        if (error) std::rethrow_exception(error);
        return;
    }
    Batch batch;
    batch.fn = &fn;
    batch.count = count;
    {
        const core::MutexLock lock(mutex_);
        batch_ = &batch;
        ++epoch_;
    }
    wake_workers_.notify_all();
    run_batch(batch);  // the caller is a full participant
    {
        // Wait for every task to finish AND every worker to step out of
        // the batch: `batch` lives on this stack frame, so an in-flight
        // worker that claimed no task must still be drained before it
        // is destroyed.
        const core::MutexLock lock(mutex_);
        while (batch.done.load(std::memory_order_acquire) != count || active_ != 0) {
            batch_done_.wait(mutex_);
        }
        batch_ = nullptr;
    }
    std::exception_ptr error;
    {
        // All tasks are drained, so no writer remains — but the error
        // slot's contract is "guarded by error_mutex" and the annotated
        // build enforces it, so the final read takes the (uncontended)
        // lock too.
        const core::MutexLock lock(batch.error_mutex);
        error = batch.error;
    }
    if (error) std::rethrow_exception(error);
}

}  // namespace asilkit::core

#include "bdd/from_fault_tree.h"

#include <cmath>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.h"

namespace asilkit::bdd {

using ftree::FaultTree;
using ftree::FtRef;
using ftree::GateKind;

std::vector<std::uint32_t> ft_variable_order(const FaultTree& ft) {
    std::vector<std::uint32_t> order;
    std::unordered_set<std::uint32_t> seen_events;
    std::unordered_set<std::uint32_t> seen_gates;
    std::deque<FtRef> queue{ft.top()};
    while (!queue.empty()) {
        const FtRef r = queue.front();
        queue.pop_front();
        if (r.kind == FtRef::Kind::Basic) {
            if (seen_events.insert(r.index).second) order.push_back(r.index);
            continue;
        }
        if (!seen_gates.insert(r.index).second) continue;
        for (FtRef c : ft.gate(r.index).children) queue.push_back(c);
    }
    return order;
}

CompiledFaultTree compile_fault_tree(const FaultTree& ft) {
    return compile_fault_tree(ft, ft_variable_order(ft));
}

CompiledFaultTree compile_fault_tree(const FaultTree& ft,
                                     const std::vector<std::uint32_t>& event_order) {
    CompiledFaultTree out{BddManager{static_cast<std::uint32_t>(event_order.size())}, kFalse,
                          event_order};
    std::unordered_map<std::uint32_t, std::uint32_t> var_of_event;
    for (std::uint32_t v = 0; v < event_order.size(); ++v) {
        var_of_event.emplace(event_order[v], v);
    }

    std::unordered_map<std::uint32_t, BddRef> gate_memo;
    std::function<BddRef(FtRef)> compile = [&](FtRef r) -> BddRef {
        if (r.kind == FtRef::Kind::Basic) {
            const auto it = var_of_event.find(r.index);
            if (it == var_of_event.end()) {
                throw AnalysisError("compile_fault_tree: event '" +
                                    ft.basic_event(r.index).name + "' missing from ordering");
            }
            return out.manager.variable(it->second);
        }
        if (auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const ftree::Gate& g = ft.gate(r.index);
        // A failure gate with no children has no failure mode: constant 0
        // for both gate kinds (fault-tree semantics, not boolean algebra).
        BddRef acc = kFalse;
        bool first = true;
        for (FtRef c : g.children) {
            const BddRef cb = compile(c);
            if (first) {
                acc = cb;
                first = false;
            } else {
                acc = out.manager.apply(g.kind == GateKind::Or ? BddOp::Or : BddOp::And, acc, cb);
            }
        }
        gate_memo.emplace(r.index, acc);
        return acc;
    };
    out.root = compile(ft.top());
    return out;
}

double basic_event_probability(double lambda, double hours) noexcept {
    return 1.0 - std::exp(-lambda * hours);
}

std::vector<double> CompiledFaultTree::variable_probabilities(const FaultTree& ft,
                                                              double hours) const {
    std::vector<double> probs;
    probs.reserve(event_of_var.size());
    for (std::uint32_t event : event_of_var) {
        probs.push_back(basic_event_probability(ft.basic_event(event).lambda, hours));
    }
    return probs;
}

ModuleEvalResult evaluate_module(const FaultTree& ft, const ftree::ModuleDecomposition& dec,
                                 std::size_t module_index,
                                 std::span<const double> child_probabilities,
                                 double mission_hours) {
    const obs::ObsSpan span("evaluate_module", "bdd", "module",
                            static_cast<double>(module_index));
    const ftree::Module& mod = dec.modules.at(module_index);
    if (child_probabilities.size() != mod.child_modules.size()) {
        throw AnalysisError("evaluate_module: child probability count mismatch");
    }
    ModuleEvalResult out;
    if (mod.root.kind == FtRef::Kind::Basic) {
        // Leaf module: the whole tree is one basic event.
        out.probability = basic_event_probability(ft.basic_event(mod.root.index).lambda,
                                                  mission_hours);
        out.variables = 1;
        out.bdd_nodes = 1;
        out.bdd_total_nodes = 1;
        return out;
    }

    std::unordered_map<std::uint32_t, double> pseudo_prob;  // child-module gate -> probability
    for (std::size_t i = 0; i < mod.child_modules.size(); ++i) {
        pseudo_prob.emplace(dec.modules[mod.child_modules[i]].root.index,
                            child_probabilities[i]);
    }

    // Local variable order: BFS from the module root, leaves (basic
    // events and pseudo-variables) numbered in first-seen order —
    // the paper's ordering restricted to the module.
    std::vector<double> probs;
    std::unordered_map<std::uint32_t, std::uint32_t> var_of_event;
    std::unordered_map<std::uint32_t, std::uint32_t> var_of_pseudo;
    std::size_t real_events = 0;
    {
        std::unordered_set<std::uint32_t> seen_gates{mod.root.index};
        std::deque<FtRef> queue{mod.root};
        while (!queue.empty()) {
            const FtRef r = queue.front();
            queue.pop_front();
            for (FtRef c : ft.gate(r.index).children) {
                if (c.kind == FtRef::Kind::Basic) {
                    if (var_of_event.try_emplace(c.index,
                                                 static_cast<std::uint32_t>(probs.size()))
                            .second) {
                        probs.push_back(basic_event_probability(ft.basic_event(c.index).lambda,
                                                                mission_hours));
                        ++real_events;
                    }
                    continue;
                }
                if (const auto it = pseudo_prob.find(c.index); it != pseudo_prob.end()) {
                    if (var_of_pseudo.try_emplace(c.index,
                                                  static_cast<std::uint32_t>(probs.size()))
                            .second) {
                        probs.push_back(it->second);
                    }
                    continue;
                }
                if (seen_gates.insert(c.index).second) queue.push_back(c);
            }
        }
    }

    BddManager manager(static_cast<std::uint32_t>(probs.size()));
    std::unordered_map<std::uint32_t, BddRef> gate_memo;
    std::function<BddRef(FtRef)> compile = [&](FtRef r) -> BddRef {
        if (r.kind == FtRef::Kind::Basic) return manager.variable(var_of_event.at(r.index));
        if (const auto it = var_of_pseudo.find(r.index); it != var_of_pseudo.end()) {
            return manager.variable(it->second);
        }
        if (const auto it = gate_memo.find(r.index); it != gate_memo.end()) return it->second;
        const ftree::Gate& g = ft.gate(r.index);
        BddRef acc = kFalse;
        bool first = true;
        for (FtRef c : g.children) {
            const BddRef cb = compile(c);
            if (first) {
                acc = cb;
                first = false;
            } else {
                acc = manager.apply(g.kind == GateKind::Or ? BddOp::Or : BddOp::And, acc, cb);
            }
        }
        gate_memo.emplace(r.index, acc);
        return acc;
    };
    const BddRef root = compile(mod.root);
    out.probability = manager.probability(root, probs);
    out.bdd_nodes = manager.node_count(root);
    out.bdd_total_nodes = manager.size();
    out.variables = real_events;
    manager.flush_obs();
    return out;
}

}  // namespace asilkit::bdd

#include "cli/cli.h"

#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "analysis/ccf.h"
#include "analysis/fmea.h"
#include "analysis/probability.h"
#include "analysis/simulation.h"
#include "analysis/tolerance.h"
#include "analysis/traceability.h"
#include "cost/cost_analysis.h"
#include "explore/advisor.h"
#include "explore/driver.h"
#include "explore/mapping_search.h"
#include "io/json.h"
#include "io/csv.h"
#include "io/dot.h"
#include "io/graphml.h"
#include "io/model_diff.h"
#include "io/model_json.h"
#include "io/watch_rules.h"
#include "engine/engine.h"
#include "lint/emit.h"
#include "lint/lint.h"
#include "model/validation.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "scenarios/ecotwin.h"
#include "scenarios/fig3.h"
#include "scenarios/longitudinal.h"
#include "transform/connect.h"
#include "transform/expand.h"
#include "transform/reduce.h"

namespace asilkit::cli {
namespace {

/// Parsed invocation: positionals + --key value / --flag options.
struct Args {
    std::vector<std::string> positionals;
    std::map<std::string, std::string> options;

    [[nodiscard]] bool has(const std::string& key) const { return options.contains(key); }
    [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const {
        if (auto it = options.find(key); it != options.end()) return it->second;
        return fallback;
    }
};

/// Options that are flags (no value follows).
bool is_flag(const std::string& key) {
    return key == "approximate" || key == "all" || key == "help" || key == "strict" ||
           key == "no-incremental-ftree" || key == "profile" || key == "is";
}

Args parse_args(const std::vector<std::string>& argv) {
    Args args;
    for (std::size_t i = 0; i < argv.size(); ++i) {
        const std::string& token = argv[i];
        if (token.rfind("--", 0) == 0) {
            const std::string key = token.substr(2);
            if (is_flag(key)) {
                args.options[key] = "1";
            } else if (i + 1 < argv.size()) {
                args.options[key] = argv[++i];
            } else {
                throw IoError("option --" + key + " needs a value");
            }
        } else if (token == "-o" && i + 1 < argv.size()) {
            args.options["out"] = argv[++i];
        } else {
            args.positionals.push_back(token);
        }
    }
    return args;
}

DecompositionStrategy parse_strategy(const std::string& text) {
    if (text == "BB" || text == "bb") return DecompositionStrategy::BB;
    if (text == "AC" || text == "ac") return DecompositionStrategy::AC;
    if (text == "RND" || text == "rnd") return DecompositionStrategy::RND;
    throw IoError("unknown strategy '" + text + "' (expected BB, AC or RND)");
}

cost::CostMetric parse_metric(const std::string& text) {
    if (text == "1" || text.empty()) return cost::CostMetric::exponential_metric1();
    if (text == "2") return cost::CostMetric::exponential_metric2();
    if (text == "3") return cost::CostMetric::linear_metric3();
    throw IoError("unknown metric '" + text + "' (expected 1, 2 or 3)");
}

ArchitectureModel load_positional_model(const Args& args) {
    if (args.positionals.size() < 2) throw IoError("missing model file argument");
    return io::load_model(args.positionals[1]);
}

std::string require_out(const Args& args) {
    if (!args.has("out")) throw IoError("missing -o <output file>");
    return args.get("out");
}

int cmd_demo(const Args& args, std::ostream& out) {
    if (args.positionals.size() < 2) throw IoError("demo: missing scenario name");
    const std::string& name = args.positionals[1];
    ArchitectureModel m;
    if (name == "fig3") {
        m = scenarios::fig3_camera_gps_fusion();
    } else if (name == "fig3-ccf") {
        m = scenarios::fig3_with_shared_ecu_ccf();
    } else if (name == "ecotwin") {
        m = scenarios::ecotwin_lateral_control();
    } else if (name == "longitudinal") {
        m = scenarios::ecotwin_longitudinal_control();
    } else {
        throw IoError("unknown demo scenario '" + name +
                      "' (expected fig3, fig3-ccf, ecotwin or longitudinal)");
    }
    io::save_model(m, require_out(args));
    out << "wrote " << m.name() << " (" << m.app().node_count() << " nodes, "
        << m.resources().node_count() << " resources) to " << args.get("out") << "\n";
    return 0;
}

int cmd_validate(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    const ValidationReport report = validate(m);
    out << m.name() << ": " << report.error_count() << " errors, " << report.warning_count()
        << " warnings\n";
    for (const ValidationIssue& issue : report.issues) out << "  " << issue << "\n";
    // --strict promotes warnings: a report that is not fully clean fails.
    if (args.has("strict")) return report.ok() ? 0 : 1;
    return report.error_count() == 0 ? 0 : 1;
}

/// Exit codes mirror severities so CI can distinguish outcomes: 0 =
/// clean (notes allowed), 3 = warnings present, 4 = errors present
/// (1/2 stay reserved for input/usage errors).
int cmd_lint(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    lint::LintOptions options;
    if (args.has("rules")) options.config = lint::load_lint_config(args.get("rules"));
    const lint::LintReport report = lint::run_lint(m, options);

    const std::string format = args.get("format", "text");
    std::string text;
    if (format == "text") {
        text = lint::to_text(report, m.name());
    } else if (format == "json") {
        text = lint::to_json(report, m.name()).dump(2) + "\n";
    } else if (format == "sarif") {
        text = lint::to_sarif(report).dump(2) + "\n";
    } else {
        throw IoError("unknown format '" + format + "' (expected text, json or sarif)");
    }
    if (args.has("out")) {
        io::save_text_file(text, args.get("out"));
        out << "wrote " << format << " lint report to " << args.get("out") << "\n";
    } else {
        out << text;
    }
    if (report.error_count() > 0) return 4;
    if (report.warning_count() > 0) return 3;
    return 0;
}

int cmd_analyze(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    analysis::ProbabilityOptions options;
    options.approximate = args.has("approximate");
    if (args.has("hours")) options.mission_hours = std::stod(args.get("hours"));
    const analysis::ProbabilityResult result = analysis::analyze_failure_probability(m, options);
    const cost::CostMetric metric = parse_metric(args.get("metric", "1"));
    out << "model              : " << m.name() << "\n"
        << "application nodes  : " << m.app().node_count() << "\n"
        << "resources          : " << m.resources().node_count() << "\n"
        << "cost (" << metric.name() << "): " << cost::total_cost(m, metric) << "\n"
        << "fault tree         : " << result.ft_stats.dag_nodes << " nodes, "
        << result.ft_stats.paths << " paths\n"
        << "bdd                : " << result.bdd_nodes << " nodes over " << result.variables
        << " variables\n"
        << "P(system failure)  : " << result.failure_probability << " over "
        << options.mission_hours << " h\n";
    if (result.approximated_blocks > 0) {
        out << "approximated blocks: " << result.approximated_blocks << "\n";
    }
    for (const std::string& w : result.warnings) out << "warning: " << w << "\n";
    return 0;
}

/// Monte Carlo estimation of the top-event probability via the
/// vectorized SimEngine (docs/simulation.md).  Exit 0 always — the
/// estimate plus its CI is the product; judging it is the caller's job.
int cmd_simulate(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    analysis::SimulationOptions options;
    if (args.has("trials")) options.trials = std::stoull(args.get("trials"));
    if (args.has("seed")) options.seed = std::stoull(args.get("seed"));
    if (args.has("hours")) options.mission_hours = std::stod(args.get("hours"));
    if (args.has("rate-scale")) options.rate_scale = std::stod(args.get("rate-scale"));
    if (args.has("threads")) options.threads = static_cast<unsigned>(std::stoul(args.get("threads")));
    if (args.has("block")) options.block_trials = std::stoull(args.get("block"));
    options.importance_sampling = args.has("is");
    if (args.has("is-bias")) options.is_bias = std::stod(args.get("is-bias"));
    if (args.has("is-max-order")) {
        options.is_max_order = static_cast<std::size_t>(std::stoul(args.get("is-max-order")));
    }
    const std::string engine = args.get("engine", "bitparallel");
    if (engine == "naive") {
        options.engine = analysis::SimEngineKind::Naive;
    } else if (engine == "bitparallel") {
        options.engine = analysis::SimEngineKind::BitParallel;
    } else {
        throw IoError("unknown engine '" + engine + "' (expected naive or bitparallel)");
    }

    const analysis::SimulationResult r = analysis::simulate_failure_probability(m, options);
    const std::string format = args.get("format", "text");
    if (format == "json") {
        io::Json doc = io::Json::object();
        doc["model"] = m.name();
        doc["engine"] = engine;
        doc["trials"] = r.trials;
        doc["failures"] = r.failures;
        doc["estimate"] = r.estimate;
        doc["std_error"] = r.std_error;
        doc["ci95_low"] = r.ci95_low;
        doc["ci95_high"] = r.ci95_high;
        doc["ess"] = r.ess;
        doc["importance_sampled"] = r.importance_sampled;
        doc["mission_hours"] = options.mission_hours;
        doc["rate_scale"] = options.rate_scale;
        out << doc.dump(2) << "\n";
    } else if (format == "text") {
        out << "model              : " << m.name() << "\n"
            << "engine             : " << engine
            << (r.importance_sampled ? " + importance sampling" : "") << "\n"
            << "trials             : " << r.trials << "\n"
            << "failures           : " << r.failures << "\n"
            << "P(system failure)  : " << r.estimate << " over " << options.mission_hours
            << " h\n"
            << "std error          : " << r.std_error << "\n"
            << "95% CI             : [" << r.ci95_low << ", " << r.ci95_high << "]\n"
            << "effective samples  : " << r.ess << "\n";
    } else {
        throw IoError("unknown format '" + format + "' (expected text or json)");
    }
    return 0;
}

int cmd_ccf(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    const analysis::CcfReport report = analysis::analyze_ccf(m);
    if (report.independent()) {
        out << "no common cause faults: every decomposition is independent\n";
        return 0;
    }
    out << report.findings.size() << " finding(s):\n";
    for (const analysis::CcfFinding& f : report.findings) out << "  " << f << "\n";
    return 1;
}

int cmd_tolerance(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    analysis::FaultToleranceOptions options;
    if (args.has("max-order")) {
        options.max_order = static_cast<std::size_t>(std::stoul(args.get("max-order")));
    }
    const analysis::FaultToleranceReport report = analyze_fault_tolerance(m, options);
    out << "minimal cut order : " << report.min_cut_order << "\n"
        << "tolerated faults  : " << report.tolerated_faults << "\n";
    for (std::size_t order = 1; order < report.cut_sets_by_order.size(); ++order) {
        out << "cut sets, order " << order << " : " << report.cut_sets_by_order[order] << "\n";
    }
    out << "single points of failure:\n";
    for (const std::string& spof : report.single_points_of_failure) out << "  " << spof << "\n";
    return 0;
}

int cmd_trace(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    const analysis::TraceabilityReport report = analysis::trace_requirements(m);
    for (const analysis::FsrStatus& status : report.requirements) {
        out << "  " << status << "\n";
        for (const std::string& node : status.under_implemented) {
            out << "    under-implemented: " << node << "\n";
        }
    }
    if (!report.untraced_nodes.empty()) {
        out << "  " << report.untraced_nodes.size() << " node(s) without an FSR\n";
    }
    return report.all_satisfied() ? 0 : 1;
}

int cmd_fmea(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    analysis::FmeaOptions options;
    if (args.has("hours")) options.mission_hours = std::stod(args.get("hours"));
    for (const analysis::FmeaRow& row : analysis::fmea_report(m, options)) {
        out << "  " << row << "\n";
    }
    return 0;
}

int cmd_advise(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    explore::AdvisorOptions options;
    options.strategy = parse_strategy(args.get("strategy", "BB"));
    if (args.has("branches")) {
        options.branches = static_cast<std::size_t>(std::stoul(args.get("branches")));
    }
    options.probability.approximate = true;
    for (const explore::ExpansionAdvice& advice : explore::advise_expansions(m, options)) {
        out << "  " << advice << "\n";
    }
    return 0;
}

int cmd_expand(const Args& args, std::ostream& out) {
    ArchitectureModel m = load_positional_model(args);
    if (!args.has("node")) throw IoError("expand: missing --node NAME");
    const NodeId n = m.find_app_node(args.get("node"));
    if (!n.valid()) throw IoError("no application node named '" + args.get("node") + "'");
    transform::ExpandOptions options;
    options.strategy = parse_strategy(args.get("strategy", "BB"));
    if (args.has("branches")) {
        options.branches = static_cast<std::size_t>(std::stoul(args.get("branches")));
    }
    const transform::ExpandResult result = transform::expand(m, n, options);
    io::save_model(m, require_out(args));
    out << "expanded '" << args.get("node") << "' with " << to_string(result.pattern) << " into "
        << result.branches.size() << " branches; wrote " << args.get("out") << "\n";
    return 0;
}

int cmd_connect(const Args& args, std::ostream& out) {
    ArchitectureModel m = load_positional_model(args);
    std::size_t merges = 0;
    if (args.has("all")) {
        transform::reduce_all(m);
        merges = transform::connect_all(m);
    } else {
        if (!args.has("merger")) throw IoError("connect: need --merger NAME or --all");
        const NodeId merger = m.find_app_node(args.get("merger"));
        if (!merger.valid()) throw IoError("no node named '" + args.get("merger") + "'");
        transform::connect(m, merger);
        merges = 1;
    }
    io::save_model(m, require_out(args));
    out << "performed " << merges << " connect(s); wrote " << args.get("out") << "\n";
    return 0;
}

int cmd_reduce(const Args& args, std::ostream& out) {
    ArchitectureModel m = load_positional_model(args);
    const std::size_t reductions = transform::reduce_all(m);
    io::save_model(m, require_out(args));
    out << "performed " << reductions << " reduction(s); wrote " << args.get("out") << "\n";
    return 0;
}

/// One NDJSON line per front change: the anytime contract's streamed
/// output.  Each line is a complete JSON object, so a consumer can
/// follow the file while the search still runs.
class FrontStream {
public:
    explicit FrontStream(const std::string& path) : stream_(path) {
        if (!stream_) throw IoError("cannot open '" + path + "' for writing");
    }
    void write(const explore::TradeoffPoint& p, std::size_t front_size) {
        io::Json line = io::Json::object();
        line["label"] = p.label;
        line["cost"] = p.cost;
        line["failure_probability"] = p.failure_probability;
        line["front_size"] = static_cast<std::uint64_t>(front_size);
        stream_ << line.dump() << "\n";
        stream_.flush();  // a crashed/killed run still leaves every line behind
        ++lines_;
    }
    [[nodiscard]] std::size_t lines() const noexcept { return lines_; }

private:
    std::ofstream stream_;
    std::size_t lines_ = 0;
};

int cmd_search(const Args& args, std::ostream& out) {
    ArchitectureModel m = load_positional_model(args);
    explore::MappingSearchOptions options;
    options.metric = parse_metric(args.get("metric", "1"));
    options.probability.approximate = args.has("approximate");
    if (args.has("hours")) options.probability.mission_hours = std::stod(args.get("hours"));
    if (args.has("max-nodes")) {
        options.max_nodes_per_resource =
            static_cast<std::size_t>(std::stoul(args.get("max-nodes")));
    }
    if (args.has("threads")) {
        options.engine.threads = static_cast<unsigned>(std::stoul(args.get("threads")));
    }
    // Escape hatch for A/B timing; never changes the searched model or
    // the front (docs/ftree.md).
    if (args.has("no-incremental-ftree")) options.engine.incremental_ftree = false;
    std::optional<FrontStream> stream;
    if (args.has("stream-front")) {
        stream.emplace(args.get("stream-front"));
        options.on_front_update = [&](const explore::TradeoffPoint& p, std::size_t front_size) {
            stream->write(p, front_size);
        };
    }
    const explore::MappingSearchResult r = explore::search_mapping(m, options);
    out << "merges            : " << r.merges << " over " << r.iterations << " iteration(s)"
        << (r.reached_local_optimum ? " (local optimum)" : "") << "\n"
        << "cost              : " << r.cost_before << " -> " << r.cost_after << "\n"
        << "P(system failure) : " << r.probability_before << " -> " << r.probability_after << "\n"
        << "evaluations       : " << r.evaluations << " (" << r.bound_rejections
        << " bound-pruned, " << r.lint_rejections << " lint-rejected, " << r.dedup_hits
        << " dedup hits)\n"
        << "front             : " << r.front.size() << " point(s), " << r.front_updates
        << " update(s)\n";
    if (stream) {
        out << "front stream written to " << args.get("stream-front") << " (" << stream->lines()
            << " lines)\n";
    }
    if (args.has("out")) {
        io::save_model(m, args.get("out"));
        out << "optimized model written to " << args.get("out") << "\n";
    }
    return 0;
}

int cmd_explore(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    if (!args.has("nodes")) throw IoError("explore: missing --nodes a,b,c");
    std::vector<std::string> nodes;
    std::stringstream ss(args.get("nodes"));
    for (std::string item; std::getline(ss, item, ',');) {
        if (!item.empty()) nodes.push_back(item);
    }
    explore::ExplorationOptions options;
    options.strategy = parse_strategy(args.get("strategy", "BB"));
    options.metric = parse_metric(args.get("metric", "1"));
    options.probability.approximate = true;
    std::optional<FrontStream> stream;
    if (args.has("stream-front")) {
        stream.emplace(args.get("stream-front"));
        options.on_front_update = [&](const explore::TradeoffPoint& p, std::size_t front_size) {
            stream->write(p, front_size);
        };
    }
    const explore::ExplorationResult result = explore::run_exploration(m, nodes, options);
    for (const explore::TradeoffPoint& p : result.curve.points) out << "  " << p << "\n";
    if (stream) {
        out << "front stream written to " << args.get("stream-front") << " (" << stream->lines()
            << " lines)\n";
    }
    if (args.has("csv")) {
        io::CsvWriter csv({"label", "cost", "failure_probability"});
        for (const explore::TradeoffPoint& p : result.curve.points) {
            csv.add_row({p.label, io::CsvWriter::number(p.cost),
                         io::CsvWriter::number(p.failure_probability)});
        }
        csv.save(args.get("csv"));
        out << "curve written to " << args.get("csv") << "\n";
    }
    if (args.has("out")) {
        io::save_model(result.final_model, args.get("out"));
        out << "final model written to " << args.get("out") << "\n";
    }
    return 0;
}

int cmd_export(const Args& args, std::ostream& out) {
    const ArchitectureModel m = load_positional_model(args);
    const std::string layer = args.get("layer", "app");
    const std::string format = args.get("format", "dot");
    std::string text;
    if (format == "graphml") {
        if (layer == "app") {
            text = io::app_graph_to_graphml(m);
        } else if (layer == "resources") {
            text = io::resource_graph_to_graphml(m);
        } else {
            throw IoError("graphml export supports layers: app, resources");
        }
    } else if (format == "dot") {
        if (layer == "app") {
            text = io::app_graph_to_dot(m);
        } else if (layer == "resources") {
            text = io::resource_graph_to_dot(m);
        } else if (layer == "physical") {
            text = io::physical_graph_to_dot(m);
        } else if (layer == "ftree") {
            text = io::fault_tree_to_dot(ftree::build_fault_tree(m).tree);
        } else {
            throw IoError("unknown layer '" + layer +
                          "' (expected app, resources, physical, ftree)");
        }
    } else {
        throw IoError("unknown format '" + format + "' (expected dot or graphml)");
    }
    io::save_text_file(text, require_out(args));
    out << "wrote " << layer << " graph (" << format << ") to " << args.get("out") << "\n";
    return 0;
}

int cmd_diff(const Args& args, std::ostream& out) {
    if (args.positionals.size() < 3) throw IoError("diff: need two model files");
    const ArchitectureModel before = io::load_model(args.positionals[1]);
    const ArchitectureModel after = io::load_model(args.positionals[2]);
    const io::ModelDiff diff = io::diff_models(before, after);
    out << diff;
    return diff.empty() ? 0 : 1;
}

/// `stats [model.json]`: with a model, runs one engine-backed analysis
/// so the registry reflects the full pipeline (fault tree -> modules ->
/// BDD -> probability); without one, reports whatever this process has
/// already recorded (useful after --metrics-producing commands in the
/// same run).  Prints the metrics snapshot as text or JSON.
int cmd_stats(const Args& args, std::ostream& out) {
    obs::set_detail_enabled(true);  // stats exists to measure: populate histograms too
    const bool want_profile = args.has("profile") || args.has("profile-out");
    // A profile is folded from span events, so measuring one implies
    // tracing the analysis below (a prior --trace session still counts:
    // start_tracing is idempotent).
    if (want_profile) obs::start_tracing();
    if (args.positionals.size() >= 2) {
        const ArchitectureModel m = io::load_model(args.positionals[1]);
        analysis::ProbabilityOptions options;
        options.approximate = args.has("approximate");
        if (args.has("hours")) options.mission_hours = std::stod(args.get("hours"));
        engine::EngineOptions engine_options;
        if (args.has("threads")) {
            engine_options.threads = static_cast<unsigned>(std::stoul(args.get("threads")));
        }
        if (args.has("no-incremental-ftree")) engine_options.incremental_ftree = false;
        engine::EvalEngine engine(engine_options);
        const analysis::ProbabilityResult result = engine.analyze(m, options);
        out << "model             : " << m.name() << "\n"
            << "P(system failure) : " << result.failure_probability << " over "
            << options.mission_hours << " h\n\n";
    }
    if (want_profile) {
        const obs::SpanProfile profile = obs::profile_current_trace();
        if (args.has("profile-out")) {
            // Always collapsed-stack format: the file feeds flamegraph.pl
            // (or any folded-stack consumer) directly.
            io::save_text_file(profile.to_collapsed(), args.get("profile-out"));
            out << "wrote folded profile to " << args.get("profile-out") << "\n";
        }
        if (args.has("profile")) {
            const std::string pf = args.get("profile-format", "text");
            if (pf == "text") {
                out << profile.to_text();
            } else if (pf == "json") {
                out << profile.to_json() << "\n";
            } else if (pf == "collapsed") {
                out << profile.to_collapsed();
            } else {
                throw IoError("unknown profile format '" + pf +
                              "' (expected text, json or collapsed)");
            }
            return 0;  // the profile replaces the metrics document
        }
    }
    const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
    const std::string format = args.get("format", "text");
    if (format == "json") {
        out << snapshot.to_json() << "\n";
    } else if (format == "text") {
        out << snapshot.to_text();
    } else if (format == "openmetrics") {
        out << obs::to_openmetrics(snapshot);
    } else {
        throw IoError("unknown format '" + format +
                      "' (expected text, json or openmetrics)");
    }
    return 0;
}

int dispatch(const std::string& command, const Args& parsed, std::ostream& out,
             std::ostream& err) {
    if (command == "demo") return cmd_demo(parsed, out);
    if (command == "validate") return cmd_validate(parsed, out);
    if (command == "lint") return cmd_lint(parsed, out);
    if (command == "analyze") return cmd_analyze(parsed, out);
    if (command == "simulate") return cmd_simulate(parsed, out);
    if (command == "ccf") return cmd_ccf(parsed, out);
    if (command == "tolerance") return cmd_tolerance(parsed, out);
    if (command == "trace") return cmd_trace(parsed, out);
    if (command == "fmea") return cmd_fmea(parsed, out);
    if (command == "advise") return cmd_advise(parsed, out);
    if (command == "expand") return cmd_expand(parsed, out);
    if (command == "connect") return cmd_connect(parsed, out);
    if (command == "reduce") return cmd_reduce(parsed, out);
    if (command == "search") return cmd_search(parsed, out);
    if (command == "explore") return cmd_explore(parsed, out);
    if (command == "export") return cmd_export(parsed, out);
    if (command == "diff") return cmd_diff(parsed, out);
    if (command == "stats") return cmd_stats(parsed, out);
    err << "unknown command '" << command << "'\n" << usage();
    return 2;
}

/// RAII for the global observability options (available on every
/// subcommand): `--trace out.json`, `--metrics out.json`, the
/// time-series sampler (`--sample-out/--sample-ndjson/--sample-period/
/// --sample-capacity/--openmetrics-out`) and the threshold watchdog
/// (`--watch-rules/--watch-out`).  Telemetry starts before the command
/// runs and the requested files are written afterwards — including on
/// the error path, so a failing run still leaves its trace behind.
class ObsSession {
public:
    ObsSession(const Args& args, std::ostream& err)
        : trace_path_(args.get("trace")),
          metrics_path_(args.get("metrics")),
          sample_out_(args.get("sample-out")) {
        if (!metrics_path_.empty()) obs::set_detail_enabled(true);
        if (!trace_path_.empty()) obs::start_tracing();

        if (args.has("watch-rules")) {
            watchdog_.emplace(io::load_watch_rules(args.get("watch-rules")));
            if (args.has("watch-out")) {
                watch_file_.open(args.get("watch-out"), std::ios::app);
                if (!watch_file_) {
                    throw IoError("cannot open '" + args.get("watch-out") +
                                  "' for watchdog events");
                }
                watchdog_->set_sink(&watch_file_);
            } else {
                watchdog_->set_sink(&err);  // NDJSON events, one per line
            }
        }

        const bool want_sampler = !sample_out_.empty() || args.has("sample-ndjson") ||
                                  args.has("openmetrics-out") || watchdog_.has_value();
        if (want_sampler) {
            obs::set_detail_enabled(true);  // sampled series should include histograms
            obs::TimeSeriesOptions options;
            if (args.has("sample-period")) {
                options.period =
                    std::chrono::milliseconds(std::stoul(args.get("sample-period")));
                if (options.period.count() <= 0) {
                    options.period = std::chrono::milliseconds(1);
                }
            }
            if (args.has("sample-capacity")) {
                options.capacity =
                    static_cast<std::size_t>(std::stoul(args.get("sample-capacity")));
            }
            options.ndjson_path = args.get("sample-ndjson");
            options.openmetrics_path = args.get("openmetrics-out");
            sampler_.emplace(options);
            if (watchdog_) sampler_->attach_watchdog(&*watchdog_);
            sampler_->start();
        }
    }
    ~ObsSession() {
        if (sampler_) {
            sampler_->stop();
            sampler_->sample_now();  // final state: short commands still get an end point
            if (!sample_out_.empty()) {
                try {
                    io::save_text_file(sampler_->snapshot().to_json() + "\n", sample_out_);
                } catch (...) {  // a failed telemetry write never masks the outcome
                }
            }
        }
        if (!trace_path_.empty()) {
            obs::stop_tracing();
            try {
                io::save_text_file(obs::trace_to_json(), trace_path_);
            } catch (...) {
            }
        }
        if (!metrics_path_.empty()) {
            try {
                io::save_text_file(obs::Registry::global().snapshot().to_json() + "\n",
                                   metrics_path_);
            } catch (...) {
            }
        }
    }
    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

private:
    std::string trace_path_;
    std::string metrics_path_;
    std::string sample_out_;
    std::ofstream watch_file_;
    std::optional<obs::Watchdog> watchdog_;
    std::optional<obs::TimeSeriesSampler> sampler_;
};

}  // namespace

std::string usage() {
    return "usage: asilkit_cli <command> [arguments]\n"
           "\n"
           "commands:\n"
           "  demo <fig3|fig3-ccf|ecotwin|longitudinal> -o model.json\n"
           "  validate  model.json [--strict]\n"
           "  lint      model.json [--format text|json|sarif] [--rules config.json]\n"
           "            [-o report]   (exit: 0 clean, 3 warnings, 4 errors)\n"
           "  analyze   model.json [--approximate] [--hours H] [--metric 1|2|3]\n"
           "  simulate  model.json [--trials N] [--seed S] [--engine naive|bitparallel]\n"
           "            [--threads N] [--block N] [--is] [--is-bias Q] [--is-max-order K]\n"
           "            [--hours H] [--rate-scale X] [--format text|json]\n"
           "  ccf       model.json\n"
           "  tolerance model.json [--max-order K]\n"
           "  trace     model.json\n"
           "  fmea      model.json [--hours H]\n"
           "  advise    model.json [--strategy BB|AC|RND] [--branches N]\n"
           "  expand    model.json --node NAME [--strategy S] [--branches N] -o out.json\n"
           "  connect   model.json [--merger NAME | --all] -o out.json\n"
           "  reduce    model.json -o out.json\n"
           "  search    model.json [--metric M] [--max-nodes N] [--hours H]\n"
           "            [--approximate] [--threads N] [--no-incremental-ftree]\n"
           "            [--stream-front front.ndjson] [-o optimized.json]\n"
           "  explore   model.json --nodes a,b,c [--strategy S] [--metric M]\n"
           "            [--csv curve.csv] [--stream-front front.ndjson] [-o final.json]\n"
           "  export    model.json --layer app|resources|physical|ftree\n"
           "            [--format dot|graphml] -o out.dot\n"
           "  diff      before.json after.json\n"
           "  stats     [model.json] [--approximate] [--hours H] [--threads N]\n"
           "            [--no-incremental-ftree] [--format text|json|openmetrics]\n"
           "            [--profile] [--profile-format text|json|collapsed]\n"
           "            [--profile-out folded.txt]\n"
           "\n"
           "observability (any command):\n"
           "  --trace out.json         write a Chrome/Perfetto trace of the run\n"
           "  --metrics out.json       write a metrics-registry snapshot\n"
           "  --sample-out ts.json     sample the registry periodically; write the\n"
           "                           ring-buffered time series on exit\n"
           "  --sample-ndjson ts.ndjson  append one metrics line per sampler tick\n"
           "  --sample-period MS       sampler period (default 1000)\n"
           "  --sample-capacity N      points retained per series (default 600)\n"
           "  --openmetrics-out om.txt rewrite an OpenMetrics exposition per tick\n"
           "  --watch-rules rules.json evaluate threshold rules every tick\n"
           "  --watch-out events.ndjson  watchdog events (default: stderr)\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
    try {
        const Args parsed = parse_args(args);
        if (parsed.positionals.empty() || parsed.has("help")) {
            out << usage();
            return parsed.positionals.empty() && !parsed.has("help") ? 2 : 0;
        }
        const std::string& command = parsed.positionals.front();
        const ObsSession obs_session(parsed, err);
        return dispatch(command, parsed, out, err);
    } catch (const Error& e) {
        err << "error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

}  // namespace asilkit::cli


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenarios/builder.cpp" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/builder.cpp.o" "gcc" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/builder.cpp.o.d"
  "/root/repo/src/scenarios/ecotwin.cpp" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/ecotwin.cpp.o" "gcc" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/ecotwin.cpp.o.d"
  "/root/repo/src/scenarios/fig3.cpp" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/fig3.cpp.o" "gcc" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/fig3.cpp.o.d"
  "/root/repo/src/scenarios/longitudinal.cpp" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/longitudinal.cpp.o" "gcc" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/longitudinal.cpp.o.d"
  "/root/repo/src/scenarios/micro.cpp" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/micro.cpp.o" "gcc" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/micro.cpp.o.d"
  "/root/repo/src/scenarios/synthetic.cpp" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/synthetic.cpp.o" "gcc" "src/scenarios/CMakeFiles/asilkit_scenarios.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/asilkit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asilkit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

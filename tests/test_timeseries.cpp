// Time-series sampler: ring-buffer wrap semantics, chronological
// snapshots, the synchronous sample_now() driver, the background
// thread's lifecycle, and the NDJSON / OpenMetrics / watchdog sinks.
// Most tests drive sample_now() directly so no timing is involved.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "io/json.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace asilkit::obs {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class TempPath {
public:
    explicit TempPath(const char* name)
        : path_(std::string(::testing::TempDir()) + name) {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    [[nodiscard]] const std::string& str() const { return path_; }

private:
    std::string path_;
};

TEST(TimeSeries, SampleNowRecordsEverySeriesKind) {
    Registry::global().counter("test.ts.requests").add(2);
    Registry::global().gauge("test.ts.depth").set(4.5);
    Registry::global()
        .histogram("test.ts.latency", std::vector<double>{10.0, 100.0})
        .observe(42.0);

    TimeSeriesSampler sampler;
    sampler.sample_now();
    const TimeSeriesSnapshot snap = sampler.snapshot();
    EXPECT_EQ(snap.ticks, 1u);

    const TimeSeriesSnapshot::Series* counter = snap.find("test.ts.requests");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->kind, "counter");
    ASSERT_EQ(counter->points.size(), 1u);
    EXPECT_GE(counter->points[0].value, 2.0);

    const TimeSeriesSnapshot::Series* gauge = snap.find("test.ts.depth");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->kind, "gauge");
    EXPECT_EQ(gauge->points[0].value, 4.5);

    // Histograms project to .count / .sum series.
    const TimeSeriesSnapshot::Series* count = snap.find("test.ts.latency.count");
    const TimeSeriesSnapshot::Series* sum = snap.find("test.ts.latency.sum");
    ASSERT_NE(count, nullptr);
    ASSERT_NE(sum, nullptr);
    EXPECT_EQ(count->kind, "histogram");
    EXPECT_GE(count->points[0].value, 1.0);
    EXPECT_GE(sum->points[0].value, 42.0);
}

TEST(TimeSeries, RingWrapsKeepingNewestInChronologicalOrder) {
    Counter& c = Registry::global().counter("test.ts.wrap");
    TimeSeriesOptions options;
    options.capacity = 3;
    TimeSeriesSampler sampler(options);
    for (int i = 0; i < 5; ++i) {
        c.inc();
        sampler.sample_now();
    }
    const TimeSeriesSnapshot snap = sampler.snapshot();
    EXPECT_EQ(snap.ticks, 5u);
    const TimeSeriesSnapshot::Series* s = snap.find("test.ts.wrap");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->points.size(), 3u);  // capacity, not tick count
    // The three NEWEST points, oldest-first: values ascend and so do
    // their timestamps.
    EXPECT_EQ(s->points[2].value - s->points[0].value, 2.0);
    EXPECT_LE(s->points[0].ts_ns, s->points[1].ts_ns);
    EXPECT_LE(s->points[1].ts_ns, s->points[2].ts_ns);
}

TEST(TimeSeries, ZeroCapacityIsClampedToOne) {
    TimeSeriesOptions options;
    options.capacity = 0;
    TimeSeriesSampler sampler(options);
    sampler.sample_now();
    sampler.sample_now();
    const TimeSeriesSnapshot snap = sampler.snapshot();
    EXPECT_EQ(snap.capacity, 1u);
    for (const TimeSeriesSnapshot::Series& s : snap.series) {
        EXPECT_LE(s.points.size(), 1u);
    }
}

TEST(TimeSeries, SnapshotJsonParsesBack) {
    Registry::global().counter("test.ts.json").inc();
    TimeSeriesSampler sampler;
    sampler.sample_now();
    const io::Json doc = io::Json::parse(sampler.snapshot().to_json());
    EXPECT_TRUE(doc.at("series").is_array());
    EXPECT_EQ(doc.at("ticks").as_number(), 1.0);
    EXPECT_EQ(doc.at("capacity").as_number(), 600.0);
    bool found = false;
    for (const io::Json& series : doc.at("series").as_array()) {
        if (series.at("id").as_string() != "test.ts.json") continue;
        found = true;
        EXPECT_EQ(series.at("kind").as_string(), "counter");
        const io::Json& point = series.at("points").as_array().front();
        EXPECT_EQ(point.as_array().size(), 2u);  // [ts_ns, value]
    }
    EXPECT_TRUE(found);
}

TEST(TimeSeries, BackgroundThreadTicksAndStops) {
    TimeSeriesOptions options;
    options.period = std::chrono::milliseconds(5);
    TimeSeriesSampler sampler(options);
    EXPECT_FALSE(sampler.running());
    sampler.start();
    EXPECT_TRUE(sampler.running());
    // The first tick is immediate; wait for at least one more.
    while (sampler.ticks() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    const std::uint64_t after_stop = sampler.ticks();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(sampler.ticks(), after_stop);  // no thread left ticking
    // Series survive stop() for export.
    EXPECT_FALSE(sampler.snapshot().series.empty());
}

TEST(TimeSeries, StartIsIdempotentAndRestartable) {
    TimeSeriesOptions options;
    options.period = std::chrono::milliseconds(1);
    TimeSeriesSampler sampler(options);
    sampler.start();
    sampler.start();  // second start: no second thread, no crash
    while (sampler.ticks() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    sampler.stop();
    sampler.stop();  // idempotent
    const std::uint64_t ticks = sampler.ticks();
    sampler.start();  // restart after stop works
    while (sampler.ticks() <= ticks) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    sampler.stop();
}

TEST(TimeSeries, NdjsonSinkAppendsOneParseableLinePerTick) {
    const TempPath path("ts_sink.ndjson");
    Registry::global().counter("test.ts.ndjson").inc();
    TimeSeriesOptions options;
    options.ndjson_path = path.str();
    TimeSeriesSampler sampler(options);
    sampler.sample_now();
    sampler.sample_now();

    std::istringstream lines(read_file(path.str()));
    std::string line;
    std::size_t n = 0;
    std::uint64_t last_ts = 0;
    while (std::getline(lines, line)) {
        const io::Json doc = io::Json::parse(line);
        const auto ts = static_cast<std::uint64_t>(doc.at("ts_ns").as_number());
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
        EXPECT_TRUE(doc.at("metrics").is_object());
        EXPECT_TRUE(doc.at("metrics").contains("counters"));
        ++n;
    }
    EXPECT_EQ(n, 2u);
}

TEST(TimeSeries, OpenMetricsSinkRewritesValidExposition) {
    const TempPath path("ts_om.txt");
    Registry::global().counter("test.ts.om").inc();
    TimeSeriesOptions options;
    options.openmetrics_path = path.str();
    TimeSeriesSampler sampler(options);
    sampler.sample_now();
    sampler.sample_now();  // rewrite, not append
    const std::string text = read_file(path.str());
    EXPECT_NE(text.find("test_ts_om_total"), std::string::npos);
    // Exactly one document: one terminator, at the end.
    EXPECT_EQ(text.find("# EOF\n"), text.size() - 6);
}

TEST(TimeSeries, AttachedWatchdogSeesEveryTick) {
    Gauge& g = Registry::global().gauge("test.ts.watch");
    Watchdog dog({{"watch", "test.ts.watch", WatchdogRule::Op::Gt, 10.0, 0}});
    TimeSeriesSampler sampler;
    sampler.attach_watchdog(&dog);
    g.set(5.0);
    sampler.sample_now();
    EXPECT_EQ(dog.fire_count(), 0u);
    g.set(50.0);
    sampler.sample_now();
    EXPECT_EQ(dog.fire_count(), 1u);
    g.set(5.0);
    sampler.sample_now();
    ASSERT_EQ(dog.events().size(), 2u);
    EXPECT_FALSE(dog.events()[1].fired);  // cleared on recovery
}

}  // namespace
}  // namespace asilkit::obs

file(REMOVE_RECURSE
  "CMakeFiles/asilkit_core.dir/asil.cpp.o"
  "CMakeFiles/asilkit_core.dir/asil.cpp.o.d"
  "CMakeFiles/asilkit_core.dir/decomposition.cpp.o"
  "CMakeFiles/asilkit_core.dir/decomposition.cpp.o.d"
  "libasilkit_core.a"
  "libasilkit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// End-to-end integration tests: the complete paper pipeline on the
// EcoTwin case study, cross-module consistency, and failure injection.
#include <gtest/gtest.h>

#include <random>

#include "analysis/ccf.h"
#include "analysis/cutsets.h"
#include "analysis/probability.h"
#include "cost/cost_analysis.h"
#include "explore/driver.h"
#include "explore/mapping_opt.h"
#include "explore/pareto.h"
#include "io/model_json.h"
#include "model/blocks.h"
#include "model/validation.h"
#include "scenarios/ecotwin.h"
#include "scenarios/micro.h"
#include "scenarios/synthetic.h"
#include "transform/connect.h"
#include "transform/expand.h"
#include "transform/reduce.h"

namespace asilkit {
namespace {

TEST(Integration, EcotwinEveryIntermediateModelIsValid) {
    // Replay the exploration by hand and validate after every mutation.
    ArchitectureModel m = scenarios::ecotwin_lateral_control();
    validate_or_throw(m);
    for (const std::string& name : scenarios::ecotwin_decision_nodes()) {
        transform::expand(m, m.find_app_node(name));
        EXPECT_EQ(validate(m).error_count(), 0u) << "after expand(" << name << ")";
    }
    transform::reduce_all(m);
    EXPECT_EQ(validate(m).error_count(), 0u) << "after reduce_all";
    while (true) {
        const auto connectable = transform::find_connectable(m);
        if (connectable.empty()) break;
        transform::connect(m, connectable.front());
        transform::reduce_all(m);
        EXPECT_EQ(validate(m).error_count(), 0u) << "after connect";
    }
    explore::optimize_mapping(m);
    EXPECT_EQ(validate(m).error_count(), 0u) << "after mapping optimisation";
    EXPECT_TRUE(analysis::analyze_ccf(m).independent());
}

TEST(Integration, EcotwinDecompositionRemainsAsilD) {
    // Every intermediate and the final architecture still meets the
    // original ASIL D requirement through its redundant blocks (Eq. 4).
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    explore::ExplorationOptions options;
    options.probability.approximate = true;
    const auto result =
        explore::run_exploration(m, scenarios::ecotwin_decision_nodes(), options);
    for (const RedundantBlock& block : find_redundant_blocks(result.final_model)) {
        ASSERT_TRUE(block.well_formed);
        EXPECT_EQ(block_asil(result.final_model, block), Asil::D);
    }
}

TEST(Integration, EcotwinSingleFaultInjectionOnFinalModel) {
    // Fail each decision-branch resource individually: the merged
    // two-branch block must mask every single fault.
    const ArchitectureModel base = scenarios::ecotwin_lateral_control();
    explore::ExplorationOptions options;
    options.probability.approximate = true;
    const auto result =
        explore::run_exploration(base, scenarios::ecotwin_decision_nodes(), options);
    const ArchitectureModel& final_model = result.final_model;

    for (const RedundantBlock& block : find_redundant_blocks(final_model)) {
        for (const Branch& branch : block.branches) {
            for (NodeId n : branch.nodes) {
                if (!final_model.app().node(n).asil.is_decomposed()) continue;
                for (ResourceId r : final_model.mapped_resources(n)) {
                    ArchitectureModel injected = final_model;
                    injected.resources().node(r).lambda_override = 1e9;  // ~failed
                    const double p =
                        analysis::analyze_failure_probability(injected).failure_probability;
                    EXPECT_LT(p, 0.5)
                        << "single fault in " << final_model.resources().node(r).name
                        << " must be masked";
                }
            }
        }
    }
}

TEST(Integration, EcotwinDoubleFaultAcrossBranchesIsFatal) {
    const ArchitectureModel base = scenarios::ecotwin_lateral_control();
    explore::ExplorationOptions options;
    options.probability.approximate = true;
    const auto result =
        explore::run_exploration(base, scenarios::ecotwin_decision_nodes(), options);
    ArchitectureModel injected = result.final_model;
    // One resource in each decision branch (after mapping optimisation the
    // replicas sit on shared per-branch ECUs; look them up via the nodes).
    const NodeId n1 = injected.find_app_node("world_model_1");
    const NodeId n2 = injected.find_app_node("world_model_2");
    ASSERT_TRUE(n1.valid());
    ASSERT_TRUE(n2.valid());
    ASSERT_FALSE(injected.mapped_resources(n1).empty());
    ASSERT_FALSE(injected.mapped_resources(n2).empty());
    const ResourceId b1 = injected.mapped_resources(n1).front();
    const ResourceId b2 = injected.mapped_resources(n2).front();
    ASSERT_NE(b1, b2);
    injected.resources().node(b1).lambda_override = 1e9;
    injected.resources().node(b2).lambda_override = 1e9;
    EXPECT_GT(analysis::analyze_failure_probability(injected).failure_probability, 0.5);
}

TEST(Integration, SerializationPreservesExplorationResults) {
    // Save/load mid-pipeline and verify the rest of the flow behaves
    // identically on the reloaded model.
    ArchitectureModel m = scenarios::chain_two_stages();
    transform::expand(m, m.find_app_node("n1"));
    transform::expand(m, m.find_app_node("n2"));
    const ArchitectureModel reloaded = io::model_from_json(io::to_json(m));

    ArchitectureModel original = m;
    ArchitectureModel copy = reloaded;
    transform::connect_all(original);
    transform::connect_all(copy);
    EXPECT_DOUBLE_EQ(analysis::analyze_failure_probability(original).failure_probability,
                     analysis::analyze_failure_probability(copy).failure_probability);
}

TEST(Integration, CutSetOrderMatchesBlockRedundancy) {
    // After a 2-way decomposition, no order-1 cut set may remain inside
    // the expanded region.
    ArchitectureModel m = scenarios::chain_1in_1out();
    transform::expand(m, m.find_app_node("n"));
    const auto ft = ftree::build_fault_tree(m);
    analysis::CutSetOptions options;
    options.max_order = 1;
    for (const auto& cs : analysis::minimal_cut_sets(ft.tree, options)) {
        const std::string& name = ft.tree.basic_event(cs.front()).name;
        EXPECT_EQ(name.find("n_1"), std::string::npos) << name;
        EXPECT_EQ(name.find("n_2"), std::string::npos) << name;
    }
}

TEST(Integration, ApproximationStaysAccurateAcrossWholeEcotwinFlow) {
    const ArchitectureModel base = scenarios::ecotwin_lateral_control();
    explore::ExplorationOptions approx;
    approx.probability.approximate = true;
    explore::ExplorationOptions exact;
    exact.probability.approximate = false;
    const auto ra = explore::run_exploration(base, scenarios::ecotwin_decision_nodes(), approx);
    const auto re = explore::run_exploration(base, scenarios::ecotwin_decision_nodes(), exact);
    ASSERT_EQ(ra.curve.points.size(), re.curve.points.size());
    for (std::size_t i = 0; i < ra.curve.points.size(); ++i) {
        const double pa = ra.curve.points[i].failure_probability;
        const double pe = re.curve.points[i].failure_probability;
        EXPECT_NEAR(pa, pe, 1e-3 * pe) << ra.curve.points[i].label;
        EXPECT_LE(ra.curve.points[i].ft_dag_nodes, re.curve.points[i].ft_dag_nodes);
    }
}

TEST(Integration, StrategiesTradeOffDifferently) {
    // BB and AC visit different architectures: with the exponential
    // metric, AC's C-branch hardware costs more than BB's two B branches.
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    explore::ExplorationOptions bb;
    bb.probability.approximate = true;
    bb.strategy = DecompositionStrategy::BB;
    explore::ExplorationOptions ac = bb;
    ac.strategy = DecompositionStrategy::AC;
    const auto rb = explore::run_exploration(m, scenarios::ecotwin_decision_nodes(), bb);
    const auto rc = explore::run_exploration(m, scenarios::ecotwin_decision_nodes(), ac);
    EXPECT_NE(rb.curve.back().cost, rc.curve.back().cost);
    EXPECT_LT(rb.curve.back().cost, rc.curve.back().cost)
        << "B+B branches are cheaper than C+A under a x10-per-level metric";
}

TEST(Integration, SyntheticModelsSurviveRandomTransformSequences) {
    // Fuzz: expand random expandable nodes, connect/reduce where possible;
    // the model must stay structurally valid throughout.
    for (std::uint32_t seed = 1; seed <= 6; ++seed) {
        scenarios::SyntheticOptions synth;
        synth.seed = seed;
        ArchitectureModel m = scenarios::synthetic_model(synth);
        std::mt19937 rng(seed);
        int expansions = 0;
        for (int attempt = 0; attempt < 12; ++attempt) {
            const auto ids = m.app().node_ids();
            const NodeId n = ids[rng() % ids.size()];
            const AppNode& node = m.app().node(n);
            if ((node.kind != NodeKind::Functional && node.kind != NodeKind::Communication) ||
                node.asil.level == Asil::QM || m.app().in_degree(n) == 0 ||
                m.app().out_degree(n) == 0) {
                continue;
            }
            transform::ExpandOptions options;
            options.strategy = rng() % 2 ? DecompositionStrategy::BB : DecompositionStrategy::AC;
            transform::expand(m, n, options);
            ++expansions;
            ASSERT_EQ(validate(m).error_count(), 0u) << "seed " << seed;
        }
        EXPECT_GT(expansions, 0) << "seed " << seed;
        transform::reduce_all(m);
        transform::connect_all(m);
        explore::optimize_mapping(m);
        ASSERT_EQ(validate(m).error_count(), 0u) << "seed " << seed;
        const double p = analysis::analyze_failure_probability(m).failure_probability;
        EXPECT_GT(p, 0.0);
        EXPECT_LT(p, 1.0);
    }
}

TEST(Integration, CostAndProbabilityAreConsistentAcrossApis) {
    // measure_point must agree with calling the analyses directly.
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const auto metric = cost::CostMetric::exponential_metric1();
    analysis::ProbabilityOptions prob;
    const auto point = explore::measure_point(m, "check", metric, prob);
    EXPECT_DOUBLE_EQ(point.cost, cost::total_cost(m, metric));
    EXPECT_DOUBLE_EQ(point.failure_probability,
                     analysis::analyze_failure_probability(m, prob).failure_probability);
    EXPECT_EQ(point.app_nodes, m.app().node_count());
}

}  // namespace
}  // namespace asilkit

#include "ftree/cft.h"

#include <cstring>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "core/hash.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace asilkit::ftree {
namespace {

[[nodiscard]] std::uint64_t double_bits(double d) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

/// Deterministic string fold (std::hash is implementation-defined; the
/// fragment keys feed bench counters that should not drift across
/// standard libraries).
[[nodiscard]] std::uint64_t string_hash(std::string_view s) noexcept {
    std::uint64_t h = hash::combine(0x737472ull /* "str" */, s.size());
    for (const char c : s) h = hash::combine(h, static_cast<unsigned char>(c));
    return h;
}

[[nodiscard]] std::uint64_t option_bits(const FtBuildOptions& o) noexcept {
    return (o.approximate ? 1u : 0u) | (o.include_location_events ? 2u : 0u) |
           (o.include_qm_actuators ? 4u : 0u);
}

}  // namespace

std::uint64_t fragment_key(const ArchitectureModel& m, NodeId n, const FtBuildOptions& options) {
    const AppNode& node = m.app().node(n);
    std::uint64_t h = hash::combine(0x66726167ull /* "frag" */, option_bits(options));
    h = hash::combine(h, string_hash(node.name));
    h = hash::combine(h, static_cast<std::uint64_t>(node.kind));
    h = hash::combine(h, static_cast<std::uint64_t>(node.asil.level));
    // Inport wiring: the in-order predecessor list is part of the
    // fragment, because the node's failure gate ORs its inputs' gates in
    // exactly this order — a connectivity edit dirties the sink.
    for (const NodeId p : m.app().predecessors(n)) {
        h = hash::combine(h, 0x70726564ull /* "pred" */);
        h = hash::combine(h, p.value());
    }
    // Intrinsic events: resolved rates, not table identity, so a custom
    // rate table or a lambda_override dirties exactly the nodes whose
    // events change.
    for (const ResourceId r : m.mapped_resources(n)) {
        const Resource& res = m.resources().node(r);
        h = hash::combine(h, string_hash(res.name));
        h = hash::combine(h, double_bits(options.rates.resource_rate(res)));
        if (options.include_location_events) {
            for (const LocationId p : m.resource_locations(r)) {
                const Location& loc = m.physical().node(p);
                h = hash::combine(h, string_hash(loc.name));
                h = hash::combine(h, double_bits(options.rates.location_rate(loc)));
            }
        }
    }
    return h;
}

ComponentFragment build_fragment(const ArchitectureModel& m, NodeId n,
                                 const FtBuildOptions& options) {
    ComponentFragment f;
    f.key = fragment_key(m, n, options);
    const auto& resources = m.mapped_resources(n);
    f.no_resource = resources.empty();
    for (const ResourceId r : resources) {
        const Resource& res = m.resources().node(r);
        f.events.push_back(BasicEvent{std::string(kResourceEventPrefix) + res.name,
                                      options.rates.resource_rate(res)});
        if (options.include_location_events) {
            for (const LocationId p : m.resource_locations(r)) {
                const Location& loc = m.physical().node(p);
                f.events.push_back(BasicEvent{std::string(kLocationEventPrefix) + loc.name,
                                              options.rates.location_rate(loc)});
            }
        }
    }
    return f;
}

std::vector<NodeId> dirty_fragments(const ArchitectureModel& before, const ArchitectureModel& after,
                                    const FtBuildOptions& options) {
    std::unordered_map<std::uint32_t, std::uint64_t> before_keys;
    for (const NodeId n : before.app().node_ids()) {
        before_keys.emplace(n.value(), fragment_key(before, n, options));
    }
    std::vector<NodeId> dirty;
    std::unordered_set<std::uint32_t> seen;
    for (const NodeId n : after.app().node_ids()) {
        seen.insert(n.value());
        const auto it = before_keys.find(n.value());
        if (it == before_keys.end() || it->second != fragment_key(after, n, options)) {
            dirty.push_back(n);
        }
    }
    for (const NodeId n : before.app().node_ids()) {
        if (!seen.contains(n.value())) dirty.push_back(n);
    }
    return dirty;
}

IncrementalTreeBuilder::Prepared IncrementalTreeBuilder::prepare(const ArchitectureModel& m,
                                                                 const FtBuildOptions& options) {
    const obs::ObsSpan span("assemble", "ftree");
    static obs::Counter& built_counter = obs::Registry::global().counter("ftree.fragment.built");
    static obs::Counter& reused_counter = obs::Registry::global().counter("ftree.fragment.reused");
    static obs::Counter& memo_hits = obs::Registry::global().counter("ftree.memo_hits");
    last_ = {};

    // Delta pass: one fragment key per component, against the cache of
    // the last assembled candidate.  The composition fingerprint folds
    // the keys in node-id order, so it covers the node set, every
    // fragment's content and the full edge wiring.
    const std::vector<NodeId> ids = m.app().node_ids();
    std::vector<std::uint64_t> keys;
    keys.reserve(ids.size());
    std::uint64_t composition = hash::combine(0x636F6D70ull /* "comp" */, option_bits(options));
    for (const NodeId n : ids) {
        const std::uint64_t key = fragment_key(m, n, options);
        keys.push_back(key);
        composition = hash::combine(composition, n.value());
        composition = hash::combine(composition, key);
    }

    if (const auto it = memo_.find(composition); it != memo_.end()) {
        // Steady state: this exact composition was generated before —
        // the canonical tree, its hashes and its module decomposition
        // are reused by reference; zero gates are constructed.
        last_.fragments_reused = ids.size();
        last_.memo_hit = true;
        reused_counter.add(ids.size());
        memo_hits.inc();
        return it->second;
    }

    // Dirty fragments only: regenerate where the key drifted, keep the
    // rest by reference.
    for (std::size_t i = 0; i < ids.size(); ++i) {
        ComponentFragment& slot = fragments_[ids[i].value()];
        if (slot.key == keys[i] && keys[i] != 0) {
            ++last_.fragments_reused;
        } else {
            slot = build_fragment(m, ids[i], options);
            ++last_.fragments_built;
        }
    }
    built_counter.add(last_.fragments_built);
    reused_counter.add(last_.fragments_reused);

    FtBuildResult built = assemble_fault_tree(m, options, [this](NodeId n) {
        const auto it = fragments_.find(n.value());
        return it == fragments_.end() ? nullptr : &it->second;
    });

    Prepared p;
    p.stats = built.tree.stats();
    p.warnings = std::move(built.warnings);
    p.approximated_blocks = built.approximated_blocks;
    p.cycles_cut = built.cycles_cut;
    p.canonical = std::make_shared<const FaultTree>(canonical_form(built.tree));
    p.structural_hash = p.canonical->structural_hash();
    p.shape_hash = p.canonical->shape_hash();
    p.modules = std::make_shared<const ModuleDecomposition>(find_modules(*p.canonical));

    if (options_.memo_capacity > 0) {
        while (memo_.size() >= options_.memo_capacity && !memo_order_.empty()) {
            memo_.erase(memo_order_.front());
            memo_order_.pop_front();
        }
        memo_.emplace(composition, p);
        memo_order_.push_back(composition);
    }
    return p;
}

}  // namespace asilkit::ftree

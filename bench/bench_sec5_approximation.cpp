// Section V: the path-collapsing fault-tree approximation.
//
// Reproduces the paper's three claims:
//  1. accuracy — on the Fig. 3 system the approximation changes the
//     failure probability only in the 6th significant digit
//     (paper: 2.04180e-7 exact vs 2.04179e-7 approximated);
//  2. size — the fault tree shrinks (paper: 87 -> 51 nodes) and the
//     path count halves per decomposed block (2^n overall);
//  3. scalability — exact BDD compilation cost grows steeply with the
//     number of redundant blocks while the approximated one stays flat
//     (the paper could not evaluate its 695-node tree exactly).
#include "bench_util.h"

#include "analysis/probability.h"
#include "ftree/builder.h"
#include "scenarios/fig3.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

ArchitectureModel expanded_chain(std::size_t blocks) {
    ArchitectureModel m = scenarios::chain_n_stages(blocks);
    for (std::size_t i = 1; i <= blocks; ++i) {
        transform::expand(m, m.find_app_node("f" + std::to_string(i)));
    }
    return m;
}

void print_report() {
    bench::heading("Section V: approximation accuracy on the Fig. 3 system");
    const ArchitectureModel fig3 = scenarios::fig3_camera_gps_fusion();
    analysis::ProbabilityOptions exact_options;
    analysis::ProbabilityOptions approx_options;
    approx_options.approximate = true;
    const auto exact = analysis::analyze_failure_probability(fig3, exact_options);
    const auto approx = analysis::analyze_failure_probability(fig3, approx_options);
    bench::compare("P(fail) exact", "2.04180e-7", exact.failure_probability);
    bench::compare("P(fail) approximated", "2.04179e-7", approx.failure_probability);
    bench::row("relative error",
               (exact.failure_probability - approx.failure_probability) /
                   exact.failure_probability);
    bench::compare("fault-tree nodes exact", "87",
                   std::to_string(exact.ft_stats.expanded_nodes) + " (expanded) / " +
                       std::to_string(exact.ft_stats.dag_nodes) + " (DAG)");
    bench::compare("fault-tree nodes approximated", "51",
                   std::to_string(approx.ft_stats.expanded_nodes) + " (expanded) / " +
                       std::to_string(approx.ft_stats.dag_nodes) + " (DAG)");

    bench::heading("Path blow-up: 2^n growth vs approximation (n expanded blocks)");
    std::printf("  %-8s %-16s %-16s %-14s %-14s %-12s\n", "blocks", "paths(exact)",
                "paths(approx)", "P(exact)", "P(approx)", "rel.err");
    for (std::size_t blocks : {1u, 2u, 4u, 6u, 8u}) {
        const ArchitectureModel m = expanded_chain(blocks);
        const auto e = analysis::analyze_failure_probability(m, exact_options);
        const auto a = analysis::analyze_failure_probability(m, approx_options);
        std::printf("  %-8zu %-16llu %-16llu %-14.6g %-14.6g %-12.2e\n", blocks,
                    static_cast<unsigned long long>(e.ft_stats.paths),
                    static_cast<unsigned long long>(a.ft_stats.paths), e.failure_probability,
                    a.failure_probability,
                    (e.failure_probability - a.failure_probability) / e.failure_probability);
    }
    bench::note("the exact path count doubles per block; the approximation removes the");
    bench::note("branch events and collapses identical merger inputs, flattening growth.");
}

void BM_ExactPipeline(benchmark::State& state) {
    const ArchitectureModel m = expanded_chain(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::analyze_failure_probability(m));
    }
    state.SetLabel(std::to_string(state.range(0)) + " blocks, exact");
}
BENCHMARK(BM_ExactPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_ApproximatedPipeline(benchmark::State& state) {
    const ArchitectureModel m = expanded_chain(static_cast<std::size_t>(state.range(0)));
    analysis::ProbabilityOptions options;
    options.approximate = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::analyze_failure_probability(m, options));
    }
    state.SetLabel(std::to_string(state.range(0)) + " blocks, approximated");
}
BENCHMARK(BM_ApproximatedPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

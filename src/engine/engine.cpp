#include "engine/engine.h"

#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "core/hash.h"
#include "ftree/builder.h"
#include "ftree/modules.h"
#include "obs/trace.h"

namespace asilkit::engine {
namespace {

// Keeps module keys disjoint from whole-tree keys even when a tree is a
// single module (identical structural content, different granularity).
constexpr std::uint64_t kModuleKeySalt = 0x6D6F646B6579;  // "modkey"

[[nodiscard]] std::uint64_t double_bits(double d) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

[[nodiscard]] std::uint64_t module_cache_key(std::uint64_t subtree_hash, double hours) noexcept {
    return hash::combine(hash::combine(kModuleKeySalt, subtree_hash), double_bits(hours));
}

void fill_from_value(analysis::ProbabilityResult& result, const EvalValue& value) {
    result.failure_probability = value.failure_probability;
    result.bdd_nodes = value.bdd_nodes;
    result.bdd_total_nodes = value.bdd_total_nodes;
    result.variables = value.variables;
    result.modules = value.modules;
}

}  // namespace

EvalEngine::EvalEngine(const EngineOptions& options)
    : pool_(resolve_thread_count(options.threads)),
      cache_(options.cache_capacity),
      modularize_(options.modularize),
      persistent_bdd_(options.persistent_bdd),
      batch_rate_variants_(options.batch_rate_variants),
      candidate_dedup_(options.candidate_dedup),
      incremental_ftree_(options.incremental_ftree),
      bdd_gc_node_threshold_(options.bdd_gc_node_threshold),
      analyze_calls_(obs::Registry::global().counter("engine.analyze_calls")),
      tree_hits_(obs::Registry::global().counter("engine.tree_hits")),
      tree_misses_(obs::Registry::global().counter("engine.tree_misses")),
      module_hits_(obs::Registry::global().counter("engine.module_hits")),
      module_misses_(obs::Registry::global().counter("engine.module_misses")),
      lint_rejections_(obs::Registry::global().counter("engine.lint_rejections")),
      dedup_hits_(obs::Registry::global().counter("explore.dedup_hits")),
      subtree_memo_hits_(obs::Registry::global().counter("bdd.subtree_memo_hits")),
      subtree_memo_misses_(obs::Registry::global().counter("bdd.subtree_memo_misses")),
      gc_collections_(obs::Registry::global().counter("bdd.gc.collections")),
      batch_groups_(obs::Registry::global().counter("engine.batch_groups")),
      batch_lanes_(obs::Registry::global().counter("engine.batch_lanes")),
      fragments_built_(obs::Registry::global().counter("ftree.fragment.built")),
      fragments_reused_(obs::Registry::global().counter("ftree.fragment.reused")),
      ftree_memo_hits_(obs::Registry::global().counter("ftree.memo_hits")) {
    base_.analyze_calls = analyze_calls_.value();
    base_.tree_hits = tree_hits_.value();
    base_.tree_misses = tree_misses_.value();
    base_.module_hits = module_hits_.value();
    base_.module_misses = module_misses_.value();
    base_.lint_rejections = lint_rejections_.value();
    base_.dedup_hits = dedup_hits_.value();
    base_.subtree_memo_hits = subtree_memo_hits_.value();
    base_.subtree_memo_misses = subtree_memo_misses_.value();
    base_.gc_collections = gc_collections_.value();
    base_.batch_groups = batch_groups_.value();
    base_.batch_lanes = batch_lanes_.value();
    base_.fragments_built = fragments_built_.value();
    base_.fragments_reused = fragments_reused_.value();
    base_.ftree_memo_hits = ftree_memo_hits_.value();
}

EvalEngine::Stats EvalEngine::stats() const {
    Stats s;
    s.cache = cache_.stats();
    s.analyze_calls = analyze_calls_.value() - base_.analyze_calls;
    s.tree_hits = tree_hits_.value() - base_.tree_hits;
    s.tree_misses = tree_misses_.value() - base_.tree_misses;
    s.module_hits = module_hits_.value() - base_.module_hits;
    s.module_misses = module_misses_.value() - base_.module_misses;
    s.lint_rejections = lint_rejections_.value() - base_.lint_rejections;
    s.dedup_hits = dedup_hits_.value() - base_.dedup_hits;
    s.subtree_memo_hits = subtree_memo_hits_.value() - base_.subtree_memo_hits;
    s.subtree_memo_misses = subtree_memo_misses_.value() - base_.subtree_memo_misses;
    s.gc_collections = gc_collections_.value() - base_.gc_collections;
    s.batch_groups = batch_groups_.value() - base_.batch_groups;
    s.batch_lanes = batch_lanes_.value() - base_.batch_lanes;
    s.fragments_built = fragments_built_.value() - base_.fragments_built;
    s.fragments_reused = fragments_reused_.value() - base_.fragments_reused;
    s.ftree_memo_hits = ftree_memo_hits_.value() - base_.ftree_memo_hits;
    return s;
}

std::optional<EvalValue> EvalEngine::dedup_lookup(std::uint64_t key) {
    if (!candidate_dedup_) return std::nullopt;
    const core::MutexLock lock(dedup_mutex_);
    if (const auto it = dedup_map_.find(key); it != dedup_map_.end()) return it->second;
    return std::nullopt;
}

void EvalEngine::dedup_insert(std::uint64_t key, const EvalValue& value) {
    if (!candidate_dedup_) return;
    const core::MutexLock lock(dedup_mutex_);
    dedup_map_.emplace(key, value);
}

bdd::PersistentBddCompiler* EvalEngine::compiler_lane() {
    if (!persistent_bdd_) return nullptr;
    const std::thread::id id = std::this_thread::get_id();
    const core::MutexLock lock(compilers_mutex_);
    std::unique_ptr<bdd::PersistentBddCompiler>& slot = compilers_[id];
    if (slot == nullptr) {
        bdd::PersistentBddCompiler::Options o;
        o.gc_node_threshold = bdd_gc_node_threshold_;
        slot = std::make_unique<bdd::PersistentBddCompiler>(o);
    }
    return slot.get();
}

ftree::IncrementalTreeBuilder* EvalEngine::ftree_lane() {
    if (!incremental_ftree_) return nullptr;
    const std::thread::id id = std::this_thread::get_id();
    const core::MutexLock lock(ftree_lanes_mutex_);
    std::unique_ptr<ftree::IncrementalTreeBuilder>& slot = ftree_lanes_[id];
    if (slot == nullptr) slot = std::make_unique<ftree::IncrementalTreeBuilder>();
    return slot.get();
}

EvalEngine::PreparedModel EvalEngine::prepare(const ArchitectureModel& m,
                                              const analysis::ProbabilityOptions& options,
                                              bool want_shape) {
    analyze_calls_.inc();

    ftree::FtBuildOptions build_options;
    build_options.approximate = options.approximate;
    build_options.include_location_events = options.include_location_events;
    build_options.rates = options.rates;

    PreparedModel p;
    // The engine evaluates the canonical form of the tree: gate children
    // sorted by a structural subtree hash.  AND/OR commute, so the
    // probability is unchanged — but candidate architectures that differ
    // only by a symmetry (mirror merges in redundant branches, sibling
    // chains of a sensor fan) collapse onto the SAME canonical tree and
    // therefore the same cache key, the same module decomposition, the
    // same BDD variable orders, and bit-identical arithmetic.  That is
    // what makes a cache hit safe to substitute for a fresh evaluation
    // at any thread count.
    if (ftree::IncrementalTreeBuilder* const builder = ftree_lane()) {
        // Incremental path: fragments dirty-tracked per thread, repeat
        // compositions served from the finished-tree memo.  The
        // assembled tree is bitwise identical to build_fault_tree, so
        // everything derived below matches the full-rebuild path.
        ftree::IncrementalTreeBuilder::Prepared prep = builder->prepare(m, build_options);
        p.result.ft_stats = prep.stats;
        p.result.approximated_blocks = prep.approximated_blocks;
        p.result.cycles_cut = prep.cycles_cut;
        p.result.warnings = std::move(prep.warnings);
        p.canonical = std::move(prep.canonical);
        p.modules = std::move(prep.modules);
        p.tree_key = hash::combine(prep.structural_hash, double_bits(options.mission_hours));
        if (want_shape) p.shape_hash = prep.shape_hash;
        return p;
    }

    ftree::FtBuildResult built = ftree::build_fault_tree(m, build_options);
    p.result.ft_stats = built.tree.stats();
    p.result.approximated_blocks = built.approximated_blocks;
    p.result.cycles_cut = built.cycles_cut;
    p.result.warnings = std::move(built.warnings);
    p.canonical = std::make_shared<const ftree::FaultTree>(ftree::canonical_form(built.tree));
    p.tree_key = hash::combine(p.canonical->structural_hash(), double_bits(options.mission_hours));
    if (want_shape) p.shape_hash = p.canonical->shape_hash();
    return p;
}

void EvalEngine::finish(PreparedModel& p, const analysis::ProbabilityOptions& options) {
    if (const auto cached = cache_.lookup(p.tree_key)) {
        tree_hits_.inc();
        fill_from_value(p.result, *cached);
        return;
    }
    // LRU miss: the non-evicting candidate memo may still know this
    // canonical tree from an earlier iteration / sweep branch whose
    // entry was evicted (or never cached, capacity 0).  The stored value
    // is the bitwise EvalValue of that evaluation — identical to what
    // re-evaluating would produce — so serving it is a tree hit.
    if (const auto remembered = dedup_lookup(p.tree_key)) {
        tree_hits_.inc();
        dedup_hits_.inc();
        cache_.insert(p.tree_key, *remembered);
        fill_from_value(p.result, *remembered);
        return;
    }
    tree_misses_.inc();

    // Whole-tree miss: evaluate module by module, bottom-up.  A
    // candidate move only perturbs the modules its basic events sit in;
    // with modularize on, every other module's key is unchanged from
    // previously scored candidates and replays from cache — module
    // subtree hashes are context-free, so the same region under a
    // different tree yields the same key and the same bitwise value.
    // The incremental builder hands the decomposition over with the
    // tree; the full-rebuild path computes it here, as before.
    std::shared_ptr<const ftree::ModuleDecomposition> dec_owned = p.modules;
    if (dec_owned == nullptr) {
        dec_owned =
            std::make_shared<const ftree::ModuleDecomposition>(ftree::find_modules(*p.canonical));
    }
    const ftree::ModuleDecomposition& dec = *dec_owned;
    bdd::PersistentBddCompiler* const compiler = compiler_lane();
    std::vector<double> module_prob(dec.size());
    std::vector<double> child_probs;
    EvalValue total;
    total.modules = dec.size();
    std::uint64_t local_hits = 0;
    std::uint64_t local_misses = 0;
    for (std::size_t i = 0; i < dec.size(); ++i) {
        const ftree::Module& mod = dec.modules[i];
        const std::uint64_t module_key =
            module_cache_key(mod.subtree_hash, options.mission_hours);
        if (modularize_) {
            if (const auto cached = cache_.lookup(module_key)) {
                ++local_hits;
                module_prob[i] = cached->failure_probability;
                total.bdd_nodes += cached->bdd_nodes;
                total.bdd_total_nodes += cached->bdd_total_nodes;
                total.variables += cached->variables;
                continue;
            }
        }
        ++local_misses;
        child_probs.clear();
        for (const std::uint32_t child : mod.child_modules) {
            child_probs.push_back(module_prob[child]);
        }
        const bdd::ModuleEvalResult eval =
            compiler != nullptr
                ? compiler->evaluate_module(*p.canonical, dec, i, child_probs,
                                            options.mission_hours)
                : bdd::evaluate_module(*p.canonical, dec, i, child_probs, options.mission_hours);
        module_prob[i] = eval.probability;
        total.bdd_nodes += eval.bdd_nodes;
        total.bdd_total_nodes += eval.bdd_total_nodes;
        total.variables += eval.variables;
        if (modularize_) {
            EvalValue module_value;
            module_value.failure_probability = eval.probability;
            module_value.bdd_nodes = eval.bdd_nodes;
            module_value.bdd_total_nodes = eval.bdd_total_nodes;
            module_value.variables = eval.variables;
            cache_.insert(module_key, module_value);
        }
    }
    if (modularize_) {
        module_hits_.add(local_hits);
        module_misses_.add(local_misses);
    }

    total.failure_probability = module_prob.back();
    cache_.insert(p.tree_key, total);
    dedup_insert(p.tree_key, total);
    fill_from_value(p.result, total);
}

void EvalEngine::finish_group(std::span<PreparedModel* const> lanes,
                              const analysis::ProbabilityOptions& options) {
    const obs::ObsSpan span("finish_group", "engine", "lanes",
                            static_cast<double>(lanes.size()));
    // Lanes share one canonical shape but carry distinct tree keys
    // (rates differ); whole-tree hits from earlier batches drop out.
    std::vector<PreparedModel*> live;
    live.reserve(lanes.size());
    for (PreparedModel* p : lanes) {
        if (const auto cached = cache_.lookup(p->tree_key)) {
            tree_hits_.inc();
            fill_from_value(p->result, *cached);
        } else if (const auto remembered = dedup_lookup(p->tree_key)) {
            tree_hits_.inc();
            dedup_hits_.inc();
            cache_.insert(p->tree_key, *remembered);
            fill_from_value(p->result, *remembered);
        } else {
            tree_misses_.inc();
            live.push_back(p);
        }
    }
    if (live.empty()) return;
    const std::size_t k = live.size();
    bdd::PersistentBddCompiler* const compiler = compiler_lane();  // grouping implies persistence

    // find_modules boundaries and order are purely structural, so every
    // lane decomposes identically; the per-lane runs exist because
    // module subtree hashes (the cache keys) include the lane's rates.
    // Lanes prepared incrementally carry their decomposition already.
    std::vector<std::shared_ptr<const ftree::ModuleDecomposition>> decs;
    decs.reserve(k);
    for (const PreparedModel* p : live) {
        decs.push_back(p->modules != nullptr
                           ? p->modules
                           : std::make_shared<const ftree::ModuleDecomposition>(
                                 ftree::find_modules(*p->canonical)));
    }
    const std::size_t nmodules = decs.front()->size();

    std::vector<std::vector<double>> module_prob(k, std::vector<double>(nmodules));
    std::vector<EvalValue> totals(k);
    for (EvalValue& t : totals) t.modules = nmodules;
    std::uint64_t local_hits = 0;
    std::uint64_t local_misses = 0;

    std::vector<std::uint64_t> keys(k);
    std::vector<std::size_t> eval_lanes;
    std::vector<std::pair<std::size_t, std::size_t>> dedup;  // (follower lane, leader lane)
    std::unordered_map<std::uint64_t, std::size_t> first_with_key;
    std::vector<const ftree::FaultTree*> trees;
    std::vector<std::vector<double>> child_probs;
    std::vector<std::span<const double>> child_spans;
    for (std::size_t i = 0; i < nmodules; ++i) {
        eval_lanes.clear();
        dedup.clear();
        first_with_key.clear();
        for (std::size_t j = 0; j < k; ++j) {
            keys[j] = module_cache_key(decs[j]->modules[i].subtree_hash, options.mission_hours);
            if (modularize_) {
                if (const auto cached = cache_.lookup(keys[j])) {
                    ++local_hits;
                    module_prob[j][i] = cached->failure_probability;
                    totals[j].bdd_nodes += cached->bdd_nodes;
                    totals[j].bdd_total_nodes += cached->bdd_total_nodes;
                    totals[j].variables += cached->variables;
                    continue;
                }
                // In-group dedup: two lanes whose rates agree on this
                // module share one evaluation (a hit in all but name).
                if (const auto it = first_with_key.find(keys[j]); it != first_with_key.end()) {
                    ++local_hits;
                    dedup.emplace_back(j, it->second);
                    continue;
                }
                first_with_key.emplace(keys[j], j);
            }
            ++local_misses;
            eval_lanes.push_back(j);
        }
        std::vector<bdd::ModuleEvalResult> evals;
        if (!eval_lanes.empty()) {
            trees.clear();
            child_probs.clear();
            child_spans.clear();
            child_probs.resize(eval_lanes.size());
            for (std::size_t idx = 0; idx < eval_lanes.size(); ++idx) {
                const std::size_t j = eval_lanes[idx];
                trees.push_back(live[j]->canonical.get());
                for (const std::uint32_t child : decs[j]->modules[i].child_modules) {
                    child_probs[idx].push_back(module_prob[j][child]);
                }
                child_spans.emplace_back(child_probs[idx]);
            }
            // One compilation + one SoA sweep for every lane of the
            // module; dec structure is lane-independent, so the first
            // lane's decomposition addresses them all.
            evals = compiler->evaluate_module_lanes(trees, *decs.front(), i, child_spans,
                                                    options.mission_hours);
            for (std::size_t idx = 0; idx < eval_lanes.size(); ++idx) {
                const std::size_t j = eval_lanes[idx];
                const bdd::ModuleEvalResult& eval = evals[idx];
                module_prob[j][i] = eval.probability;
                totals[j].bdd_nodes += eval.bdd_nodes;
                totals[j].bdd_total_nodes += eval.bdd_total_nodes;
                totals[j].variables += eval.variables;
                if (modularize_) {
                    EvalValue module_value;
                    module_value.failure_probability = eval.probability;
                    module_value.bdd_nodes = eval.bdd_nodes;
                    module_value.bdd_total_nodes = eval.bdd_total_nodes;
                    module_value.variables = eval.variables;
                    cache_.insert(keys[j], module_value);
                }
            }
        }
        for (const auto& [follower, leader] : dedup) {
            // The leader is always an eval lane of this module (dedup
            // only forms behind a cache miss), so its slot is final.
            module_prob[follower][i] = module_prob[leader][i];
            for (std::size_t idx = 0; idx < eval_lanes.size(); ++idx) {
                if (eval_lanes[idx] == leader) {
                    totals[follower].bdd_nodes += evals[idx].bdd_nodes;
                    totals[follower].bdd_total_nodes += evals[idx].bdd_total_nodes;
                    totals[follower].variables += evals[idx].variables;
                    break;
                }
            }
        }
    }
    if (modularize_) {
        module_hits_.add(local_hits);
        module_misses_.add(local_misses);
    }
    for (std::size_t j = 0; j < k; ++j) {
        totals[j].failure_probability = module_prob[j].back();
        cache_.insert(live[j]->tree_key, totals[j]);
        dedup_insert(live[j]->tree_key, totals[j]);
        fill_from_value(live[j]->result, totals[j]);
    }
}

analysis::ProbabilityResult EvalEngine::analyze(const ArchitectureModel& m,
                                                const analysis::ProbabilityOptions& options) {
    const obs::ObsSpan span("analyze", "engine");
    static obs::Histogram& latency =
        obs::Registry::global().histogram("engine.analyze_ns", obs::latency_bounds_ns());
    const obs::ScopedTimer timer(latency);
    PreparedModel p = prepare(m, options, false);
    finish(p, options);
    return std::move(p.result);
}

std::vector<analysis::ProbabilityResult> EvalEngine::analyze_batch(
    std::span<const ArchitectureModel* const> models,
    const analysis::ProbabilityOptions& options) {
    const obs::ObsSpan span("analyze_batch", "engine", "batch_size",
                            static_cast<double>(models.size()));
    const bool group = batch_rate_variants_ && persistent_bdd_;

    // Phase A (parallel): model -> canonical tree and keys.  All cache
    // traffic waits for phase C, so the grouping below is a pure
    // function of the batch — deterministic at any thread count.
    std::vector<std::optional<PreparedModel>> prepared(models.size());
    pool_.parallel_for(models.size(), [&](std::size_t i) {
        if (models[i] != nullptr) prepared[i] = prepare(*models[i], options, group);
    });

    // Phase B (serial, input order): dedup identical tree keys — the
    // follower replays its leader, a tree hit in all but name — then
    // group the remaining leaders by canonical shape, membership
    // confirmed by exact structural comparison (hashes only shortlist).
    std::unordered_map<std::uint64_t, std::size_t> leader_of_key;
    std::vector<std::pair<std::size_t, std::size_t>> followers;  // (model, leader)
    std::vector<std::size_t> leaders;
    for (std::size_t i = 0; i < prepared.size(); ++i) {
        if (!prepared[i].has_value()) continue;
        if (const auto it = leader_of_key.find(prepared[i]->tree_key);
            it != leader_of_key.end()) {
            followers.emplace_back(i, it->second);
        } else {
            leader_of_key.emplace(prepared[i]->tree_key, i);
            leaders.push_back(i);
        }
    }
    std::vector<std::vector<std::size_t>> units;
    if (group) {
        std::unordered_map<std::uint64_t, std::vector<std::size_t>> units_of_shape;
        for (const std::size_t i : leaders) {
            std::vector<std::size_t>& candidates = units_of_shape[prepared[i]->shape_hash];
            bool placed = false;
            for (const std::size_t u : candidates) {
                if (ftree::identical_shape(*prepared[units[u].front()]->canonical,
                                           *prepared[i]->canonical)) {
                    units[u].push_back(i);
                    placed = true;
                    break;
                }
            }
            if (!placed) {
                candidates.push_back(units.size());
                units.push_back({i});
            }
        }
    } else {
        units.reserve(leaders.size());
        for (const std::size_t i : leaders) units.push_back({i});
    }
    for (const std::vector<std::size_t>& unit : units) {
        if (unit.size() > 1) {
            batch_groups_.inc();
            batch_lanes_.add(unit.size());
        }
    }

    // Phase C (parallel over units): singles run the ordinary tail,
    // multi-lane groups run the batched multi-lambda kernel.
    pool_.parallel_for(units.size(), [&](std::size_t u) {
        const std::vector<std::size_t>& unit = units[u];
        if (unit.size() == 1) {
            finish(*prepared[unit.front()], options);
            return;
        }
        std::vector<PreparedModel*> ptrs;
        ptrs.reserve(unit.size());
        for (const std::size_t i : unit) ptrs.push_back(&*prepared[i]);
        finish_group(ptrs, options);
    });

    for (const auto& [i, leader] : followers) {
        tree_hits_.inc();
        fill_from_value(prepared[i]->result, EvalValue{
                                                 prepared[leader]->result.failure_probability,
                                                 prepared[leader]->result.bdd_nodes,
                                                 prepared[leader]->result.bdd_total_nodes,
                                                 prepared[leader]->result.variables,
                                                 prepared[leader]->result.modules,
                                             });
    }

    std::vector<analysis::ProbabilityResult> results(models.size());
    for (std::size_t i = 0; i < prepared.size(); ++i) {
        if (prepared[i].has_value()) results[i] = std::move(prepared[i]->result);
    }
    return results;
}

}  // namespace asilkit::engine

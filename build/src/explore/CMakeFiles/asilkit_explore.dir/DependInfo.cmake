
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explore/advisor.cpp" "src/explore/CMakeFiles/asilkit_explore.dir/advisor.cpp.o" "gcc" "src/explore/CMakeFiles/asilkit_explore.dir/advisor.cpp.o.d"
  "/root/repo/src/explore/driver.cpp" "src/explore/CMakeFiles/asilkit_explore.dir/driver.cpp.o" "gcc" "src/explore/CMakeFiles/asilkit_explore.dir/driver.cpp.o.d"
  "/root/repo/src/explore/mapping_opt.cpp" "src/explore/CMakeFiles/asilkit_explore.dir/mapping_opt.cpp.o" "gcc" "src/explore/CMakeFiles/asilkit_explore.dir/mapping_opt.cpp.o.d"
  "/root/repo/src/explore/mapping_search.cpp" "src/explore/CMakeFiles/asilkit_explore.dir/mapping_search.cpp.o" "gcc" "src/explore/CMakeFiles/asilkit_explore.dir/mapping_search.cpp.o.d"
  "/root/repo/src/explore/pareto.cpp" "src/explore/CMakeFiles/asilkit_explore.dir/pareto.cpp.o" "gcc" "src/explore/CMakeFiles/asilkit_explore.dir/pareto.cpp.o.d"
  "/root/repo/src/explore/tradeoff.cpp" "src/explore/CMakeFiles/asilkit_explore.dir/tradeoff.cpp.o" "gcc" "src/explore/CMakeFiles/asilkit_explore.dir/tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/asilkit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/asilkit_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/asilkit_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/asilkit_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/asilkit_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/ftree/CMakeFiles/asilkit_ftree.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asilkit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

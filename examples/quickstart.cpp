// Quickstart: build a small model, analyse it, decompose a node, and
// compare cost / failure probability before and after.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~100 lines: model
// construction, validation, fault-tree generation, BDD probability,
// cost, Expand(), and the CCF independence check.
#include <iostream>

#include "analysis/ccf.h"
#include "analysis/probability.h"
#include "cost/cost_analysis.h"
#include "model/validation.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

void report(const ArchitectureModel& m, const char* label) {
    const cost::CostMetric metric = cost::CostMetric::exponential_metric1();
    const analysis::ProbabilityResult prob = analysis::analyze_failure_probability(m);
    std::cout << label << "\n"
              << "  application nodes : " << m.app().node_count() << "\n"
              << "  resources         : " << m.resources().node_count() << "\n"
              << "  cost (metric 1)   : " << cost::total_cost(m, metric) << "\n"
              << "  fault tree        : " << prob.ft_stats.dag_nodes << " nodes, "
              << prob.ft_stats.paths << " paths\n"
              << "  P(system failure) : " << prob.failure_probability << " per hour\n";
}

}  // namespace

int main() {
    // 1. A minimal sensor -> control -> actuator chain, everything ASIL D
    //    on dedicated ASIL-D hardware.
    ArchitectureModel m = scenarios::chain_1in_1out();

    const ValidationReport validation = validate(m);
    std::cout << "validation: " << validation.error_count() << " errors, "
              << validation.warning_count() << " warnings\n\n";

    report(m, "initial architecture (all ASIL D)");

    // 2. ASIL D parts for the control function are not available: expand
    //    the node into two redundant ASIL B(D) branches (D = B + B).
    transform::ExpandOptions options;
    options.strategy = DecompositionStrategy::BB;
    const NodeId n = m.find_app_node("n");
    const transform::ExpandResult expansion = transform::expand(m, n, options);
    std::cout << "\napplied Expand(n) with pattern " << to_string(expansion.pattern) << "\n\n";

    report(m, "after ASIL decomposition");

    // 3. The decomposition is only valid if the branches are independent.
    const analysis::CcfReport ccf = analysis::analyze_ccf(m);
    std::cout << "\ncommon-cause findings: " << ccf.findings.size() << "\n";
    for (const auto& finding : ccf.findings) std::cout << "  " << finding << "\n";
    std::cout << (ccf.independent() ? "decomposition is independent: VALID\n"
                                    : "decomposition is NOT valid\n");
    return 0;
}

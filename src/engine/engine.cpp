#include "engine/engine.h"

#include <cstdlib>
#include <cstring>
#include <thread>

#include "bdd/from_fault_tree.h"
#include "core/hash.h"
#include "ftree/builder.h"
#include "ftree/modules.h"
#include "obs/trace.h"

namespace asilkit::engine {
namespace {

// Keeps module keys disjoint from whole-tree keys even when a tree is a
// single module (identical structural content, different granularity).
constexpr std::uint64_t kModuleKeySalt = 0x6D6F646B6579;  // "modkey"

[[nodiscard]] std::uint64_t double_bits(double d) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

}  // namespace

unsigned resolve_thread_count(unsigned requested) noexcept {
    unsigned threads = requested;
    if (threads == 0) {
        if (const char* env = std::getenv("ASILKIT_THREADS"); env != nullptr && *env != '\0') {
            threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        }
    }
    if (threads == 0) threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    return threads > 256 ? 256 : threads;
}

EvalEngine::EvalEngine(const EngineOptions& options)
    : pool_(resolve_thread_count(options.threads)),
      cache_(options.cache_capacity),
      modularize_(options.modularize),
      analyze_calls_(obs::Registry::global().counter("engine.analyze_calls")),
      tree_hits_(obs::Registry::global().counter("engine.tree_hits")),
      tree_misses_(obs::Registry::global().counter("engine.tree_misses")),
      module_hits_(obs::Registry::global().counter("engine.module_hits")),
      module_misses_(obs::Registry::global().counter("engine.module_misses")),
      lint_rejections_(obs::Registry::global().counter("engine.lint_rejections")) {
    base_.analyze_calls = analyze_calls_.value();
    base_.tree_hits = tree_hits_.value();
    base_.tree_misses = tree_misses_.value();
    base_.module_hits = module_hits_.value();
    base_.module_misses = module_misses_.value();
    base_.lint_rejections = lint_rejections_.value();
}

EvalEngine::Stats EvalEngine::stats() const {
    Stats s;
    s.cache = cache_.stats();
    s.analyze_calls = analyze_calls_.value() - base_.analyze_calls;
    s.tree_hits = tree_hits_.value() - base_.tree_hits;
    s.tree_misses = tree_misses_.value() - base_.tree_misses;
    s.module_hits = module_hits_.value() - base_.module_hits;
    s.module_misses = module_misses_.value() - base_.module_misses;
    s.lint_rejections = lint_rejections_.value() - base_.lint_rejections;
    return s;
}

analysis::ProbabilityResult EvalEngine::analyze(const ArchitectureModel& m,
                                                const analysis::ProbabilityOptions& options) {
    const obs::ObsSpan span("analyze", "engine");
    static obs::Histogram& latency =
        obs::Registry::global().histogram("engine.analyze_ns", obs::latency_bounds_ns());
    const obs::ScopedTimer timer(latency);
    analyze_calls_.inc();

    ftree::FtBuildOptions build_options;
    build_options.approximate = options.approximate;
    build_options.include_location_events = options.include_location_events;
    build_options.rates = options.rates;
    ftree::FtBuildResult built = ftree::build_fault_tree(m, build_options);

    analysis::ProbabilityResult result;
    result.ft_stats = built.tree.stats();
    result.approximated_blocks = built.approximated_blocks;
    result.cycles_cut = built.cycles_cut;
    result.warnings = std::move(built.warnings);

    // The engine evaluates the canonical form of the tree: gate children
    // sorted by a structural subtree hash.  AND/OR commute, so the
    // probability is unchanged — but candidate architectures that differ
    // only by a symmetry (mirror merges in redundant branches, sibling
    // chains of a sensor fan) collapse onto the SAME canonical tree and
    // therefore the same cache key, the same module decomposition, the
    // same BDD variable orders, and bit-identical arithmetic.  That is
    // what makes a cache hit safe to substitute for a fresh evaluation
    // at any thread count.
    const ftree::FaultTree canonical = ftree::canonical_form(built.tree);
    const std::uint64_t tree_key =
        hash::combine(canonical.structural_hash(), double_bits(options.mission_hours));
    if (const auto cached = cache_.lookup(tree_key)) {
        tree_hits_.inc();
        result.failure_probability = cached->failure_probability;
        result.bdd_nodes = cached->bdd_nodes;
        result.bdd_total_nodes = cached->bdd_total_nodes;
        result.variables = cached->variables;
        result.modules = cached->modules;
        return result;
    }
    tree_misses_.inc();

    // Whole-tree miss: evaluate module by module, bottom-up.  A
    // candidate move only perturbs the modules its basic events sit in;
    // with modularize on, every other module's key is unchanged from
    // previously scored candidates and replays from cache — module
    // subtree hashes are context-free, so the same region under a
    // different tree yields the same key and the same bitwise value.
    const ftree::ModuleDecomposition dec = ftree::find_modules(canonical);
    std::vector<double> module_prob(dec.size());
    std::vector<double> child_probs;
    EvalValue total;
    total.modules = dec.size();
    std::uint64_t local_hits = 0;
    std::uint64_t local_misses = 0;
    for (std::size_t i = 0; i < dec.size(); ++i) {
        const ftree::Module& mod = dec.modules[i];
        const std::uint64_t module_key = hash::combine(
            hash::combine(kModuleKeySalt, mod.subtree_hash), double_bits(options.mission_hours));
        if (modularize_) {
            if (const auto cached = cache_.lookup(module_key)) {
                ++local_hits;
                module_prob[i] = cached->failure_probability;
                total.bdd_nodes += cached->bdd_nodes;
                total.bdd_total_nodes += cached->bdd_total_nodes;
                total.variables += cached->variables;
                continue;
            }
        }
        ++local_misses;
        child_probs.clear();
        for (const std::uint32_t child : mod.child_modules) {
            child_probs.push_back(module_prob[child]);
        }
        const bdd::ModuleEvalResult eval =
            bdd::evaluate_module(canonical, dec, i, child_probs, options.mission_hours);
        module_prob[i] = eval.probability;
        total.bdd_nodes += eval.bdd_nodes;
        total.bdd_total_nodes += eval.bdd_total_nodes;
        total.variables += eval.variables;
        if (modularize_) {
            EvalValue module_value;
            module_value.failure_probability = eval.probability;
            module_value.bdd_nodes = eval.bdd_nodes;
            module_value.bdd_total_nodes = eval.bdd_total_nodes;
            module_value.variables = eval.variables;
            cache_.insert(module_key, module_value);
        }
    }
    if (modularize_) {
        module_hits_.add(local_hits);
        module_misses_.add(local_misses);
    }

    total.failure_probability = module_prob.back();
    cache_.insert(tree_key, total);

    result.failure_probability = total.failure_probability;
    result.bdd_nodes = total.bdd_nodes;
    result.bdd_total_nodes = total.bdd_total_nodes;
    result.variables = total.variables;
    result.modules = total.modules;
    return result;
}

std::vector<analysis::ProbabilityResult> EvalEngine::analyze_batch(
    std::span<const ArchitectureModel* const> models,
    const analysis::ProbabilityOptions& options) {
    const obs::ObsSpan span("analyze_batch", "engine", "batch_size",
                            static_cast<double>(models.size()));
    std::vector<analysis::ProbabilityResult> results(models.size());
    pool_.parallel_for(models.size(), [&](std::size_t i) {
        if (models[i] != nullptr) results[i] = analyze(*models[i], options);
    });
    return results;
}

}  // namespace asilkit::engine

// Common-Cause-Fault audit of the paper's Fig. 3 camera+GPS system.
//
// Runs the independence analysis on the correct architecture and on the
// deliberately broken variant where both data-fusion replicas share one
// ECU (the paper's Section V example of an invalid decomposition), shows
// how the fault-tree approximation refuses the unsound block, and prints
// the minimal cut sets that expose the single point of failure.
//
//   $ ./ccf_audit
#include <iostream>

#include "analysis/ccf.h"
#include "analysis/cutsets.h"
#include "analysis/probability.h"
#include "ftree/builder.h"
#include "scenarios/fig3.h"

using namespace asilkit;

namespace {

void audit(const ArchitectureModel& m) {
    std::cout << "=== " << m.name() << " ===\n";

    const analysis::CcfReport ccf = analysis::analyze_ccf(m);
    std::cout << "CCF findings: " << ccf.findings.size() << "\n";
    for (const auto& f : ccf.findings) std::cout << "  " << f << "\n";

    analysis::ProbabilityOptions exact;
    analysis::ProbabilityOptions approx;
    approx.approximate = true;
    const auto exact_result = analysis::analyze_failure_probability(m, exact);
    const auto approx_result = analysis::analyze_failure_probability(m, approx);
    std::cout << "P(fail) exact  = " << exact_result.failure_probability << "  (fault tree "
              << exact_result.ft_stats.dag_nodes << " nodes)\n"
              << "P(fail) approx = " << approx_result.failure_probability << "  (fault tree "
              << approx_result.ft_stats.dag_nodes << " nodes, "
              << approx_result.approximated_blocks << " blocks collapsed)\n";
    for (const std::string& w : approx_result.warnings) std::cout << "  warning: " << w << "\n";

    // Cut sets of order 1 are single points of failure.
    const ftree::FtBuildResult ft = ftree::build_fault_tree(m);
    analysis::CutSetOptions cs_options;
    cs_options.max_order = 2;
    const auto cut_sets = analysis::minimal_cut_sets(ft.tree, cs_options);
    std::size_t singles = 0;
    for (const auto& cs : cut_sets) {
        if (cs.size() == 1) ++singles;
    }
    std::cout << "minimal cut sets (order<=2): " << cut_sets.size() << ", single points of failure: "
              << singles << "\n";
    for (const auto& cs : cut_sets) {
        if (cs.size() == 2) {
            std::cout << "  pair: {" << ft.tree.basic_event(cs[0]).name << ", "
                      << ft.tree.basic_event(cs[1]).name << "}\n";
        }
    }
    std::cout << "\n";
}

}  // namespace

int main() {
    audit(scenarios::fig3_camera_gps_fusion());
    audit(scenarios::fig3_with_shared_ecu_ccf());
    return 0;
}

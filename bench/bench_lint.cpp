// Lint-as-prefilter benchmark: how cheap is the structural soundness
// probe that explore::search_mapping runs in front of the fault-tree /
// BDD evaluation pipeline, and what does switching it on cost (or save)
// in DSE wall time.
//
// Workload: chain_n_stages(3) with every stage expanded — the same
// symmetry-rich model bench_mapping_search times — plus a deliberately
// broken variant (an unmapped orphan node, the map.unmapped-node error)
// standing in for the structurally invalid candidates an external move
// generator might propose.
//
// Counters exported per timing (consumed by tools/bench_to_json):
//   findings          diagnostics produced by a full run_lint pass
//   rejects_per_sec   broken candidates rejected per second by the probe
//   lint_rejections   candidates the DSE search itself rejected
#include "bench_util.h"

#include "explore/mapping_search.h"
#include "lint/lint.h"
#include "scenarios/micro.h"
#include "transform/expand.h"

using namespace asilkit;

namespace {

ArchitectureModel workload() {
    ArchitectureModel m = scenarios::chain_n_stages(3);
    for (const char* n : {"f1", "f2", "f3"}) transform::expand(m, m.find_app_node(n));
    return m;
}

/// The workload with one structural error injected: an orphan functional
/// node wired into the chain but mapped to no resource.
ArchitectureModel broken_workload() {
    ArchitectureModel m = workload();
    const NodeId orphan = m.add_app_node({"orphan", NodeKind::Functional, AsilTag{Asil::B}, {}});
    const NodeId f1 = m.find_app_node("f1_1");
    m.connect_app(f1, orphan);
    m.connect_app(orphan, f1);
    return m;
}

explore::MappingSearchResult run_search(bool prefilter) {
    ArchitectureModel m = workload();
    explore::MappingSearchOptions options;
    options.engine.threads = 1;
    options.lint_prefilter = prefilter;
    return explore::search_mapping(m, options);
}

void print_report() {
    bench::heading("Lint pre-filter (chain x3, all stages expanded)");
    const ArchitectureModel clean = workload();
    const ArchitectureModel broken = broken_workload();
    bench::row("app nodes in workload", static_cast<double>(clean.app().node_count()));
    bench::row("full-lint diagnostics (clean model)",
               static_cast<double>(lint::run_lint(clean).diagnostics.size()));
    bench::row("structural errors (clean model)",
               static_cast<double>(lint::structural_error_count(clean)));
    bench::row("structural errors (broken candidate)",
               static_cast<double>(lint::structural_error_count(broken)));
    const auto with = run_search(true);
    const auto without = run_search(false);
    bench::row("DSE merges, prefilter on / off",
               std::to_string(with.merges) + " / " + std::to_string(without.merges));
    bench::note("determinism: identical results with the filter on or off");
    bench::note("(asserted by tests/test_mapping_search.cpp).");
}

// Full linter pass — every rule, default severities.  This is the cost
// of `asilkit lint` on a mid-size model, not the pre-filter cost.
void BM_Lint_FullRun(benchmark::State& state) {
    const ArchitectureModel m = workload();
    std::size_t findings = 0;
    for (auto _ : state) {
        const lint::LintReport report = lint::run_lint(m);
        findings = report.diagnostics.size();
        benchmark::DoNotOptimize(report);
    }
    state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_Lint_FullRun)->Unit(benchmark::kMicrosecond);

// The pre-filter probe on broken candidates: error-severity rules only.
// Each iteration is one rejected candidate, so items-per-second is the
// reject throughput the DSE loop can sustain.
void BM_Lint_PrefilterReject(benchmark::State& state) {
    const ArchitectureModel broken = broken_workload();
    const std::size_t baseline = lint::structural_error_count(workload());
    std::uint64_t rejects = 0;
    for (auto _ : state) {
        const std::size_t errors = lint::structural_error_count(broken);
        rejects += errors > baseline ? 1 : 0;
        benchmark::DoNotOptimize(errors);
    }
    state.counters["rejects_per_sec"] =
        benchmark::Counter(static_cast<double>(rejects), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Lint_PrefilterReject)->Unit(benchmark::kMicrosecond);

// End-to-end DSE wall time with the pre-filter on: the probe runs once
// per candidate on top of the evaluation pipeline.  Compare against
// BM_MappingSearch_PrefilterOff for the net overhead; the in-region move
// generator never proposes invalid merges, so rejections stay at zero
// and the delta is pure probe cost.
void BM_MappingSearch_PrefilterOn(benchmark::State& state) {
    std::uint64_t rejections = 0;
    for (auto _ : state) {
        const auto r = run_search(true);
        rejections = r.lint_rejections;
        benchmark::DoNotOptimize(r);
    }
    state.counters["lint_rejections"] = static_cast<double>(rejections);
}
BENCHMARK(BM_MappingSearch_PrefilterOn)->Unit(benchmark::kMillisecond);

void BM_MappingSearch_PrefilterOff(benchmark::State& state) {
    for (auto _ : state) {
        const auto r = run_search(false);
        benchmark::DoNotOptimize(r);
    }
    state.counters["lint_rejections"] = 0.0;
}
BENCHMARK(BM_MappingSearch_PrefilterOff)->Unit(benchmark::kMillisecond);

}  // namespace

ASILKIT_BENCH_MAIN(print_report)

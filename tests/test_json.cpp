#include "io/json.h"

#include <gtest/gtest.h>

namespace asilkit::io {
namespace {

TEST(Json, TypesAndAccessors) {
    EXPECT_TRUE(Json{}.is_null());
    EXPECT_TRUE(Json(true).is_bool());
    EXPECT_TRUE(Json(1.5).is_number());
    EXPECT_TRUE(Json("x").is_string());
    EXPECT_TRUE(Json::array().is_array());
    EXPECT_TRUE(Json::object().is_object());
    EXPECT_EQ(Json(true).as_bool(), true);
    EXPECT_DOUBLE_EQ(Json(1.5).as_number(), 1.5);
    EXPECT_EQ(Json("x").as_string(), "x");
}

TEST(Json, TypeMismatchThrows) {
    EXPECT_THROW((void)Json(1.0).as_string(), IoError);
    EXPECT_THROW((void)Json("x").as_number(), IoError);
    EXPECT_THROW((void)Json{}.as_array(), IoError);
    EXPECT_THROW((void)Json(true).as_object(), IoError);
}

TEST(Json, AsIntRequiresIntegral) {
    EXPECT_EQ(Json(42).as_int(), 42);
    EXPECT_EQ(Json(-3).as_int(), -3);
    EXPECT_THROW((void)Json(1.5).as_int(), IoError);
}

TEST(Json, ObjectAccess) {
    Json obj = Json::object();
    obj["key"] = Json(7);
    EXPECT_TRUE(obj.contains("key"));
    EXPECT_FALSE(obj.contains("missing"));
    EXPECT_EQ(obj.at("key").as_int(), 7);
    EXPECT_THROW((void)obj.at("missing"), IoError);
    EXPECT_TRUE(obj.get_or_null("missing").is_null());
    EXPECT_EQ(obj.size(), 1u);
}

TEST(Json, OperatorBracketAutoVivifiesObject) {
    Json value;  // null
    value["a"] = Json(1);
    EXPECT_TRUE(value.is_object());
}

TEST(Json, ArrayAccess) {
    Json arr = Json::array();
    arr.push_back(Json(1));
    arr.push_back(Json("two"));
    EXPECT_EQ(arr.size(), 2u);
    EXPECT_EQ(arr.as_array()[1].as_string(), "two");
    Json null_value;
    null_value.push_back(Json(1));  // auto-vivify array
    EXPECT_TRUE(null_value.is_array());
}

TEST(Json, ParseScalars) {
    EXPECT_TRUE(Json::parse("null").is_null());
    EXPECT_EQ(Json::parse("true").as_bool(), true);
    EXPECT_EQ(Json::parse("false").as_bool(), false);
    EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
    EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
    EXPECT_DOUBLE_EQ(Json::parse("1e-9").as_number(), 1e-9);
    EXPECT_DOUBLE_EQ(Json::parse("2.5E+3").as_number(), 2500.0);
    EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNested) {
    const Json v = Json::parse(R"({"a": [1, 2, {"b": null}], "c": {"d": true}})");
    EXPECT_EQ(v.at("a").size(), 3u);
    EXPECT_TRUE(v.at("a").as_array()[2].at("b").is_null());
    EXPECT_TRUE(v.at("c").at("d").as_bool());
}

TEST(Json, ParseWhitespaceTolerant) {
    const Json v = Json::parse("  {\n\t\"a\" :\r 1 }  ");
    EXPECT_EQ(v.at("a").as_int(), 1);
}

TEST(Json, ParseStringEscapes) {
    EXPECT_EQ(Json::parse(R"("a\"b")").as_string(), "a\"b");
    EXPECT_EQ(Json::parse(R"("a\\b")").as_string(), "a\\b");
    EXPECT_EQ(Json::parse(R"("a\nb\tc")").as_string(), "a\nb\tc");
    EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
    EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xC3\xA9");      // é
    EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xE2\x82\xAC");  // €
    EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");  // emoji
}

TEST(Json, ParseErrorsCarryPosition) {
    try {
        (void)Json::parse("{\n  \"a\": }");
        FAIL() << "expected IoError";
    } catch (const IoError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    }
}

TEST(Json, ParseRejectsMalformedInput) {
    EXPECT_THROW((void)Json::parse(""), IoError);
    EXPECT_THROW((void)Json::parse("{"), IoError);
    EXPECT_THROW((void)Json::parse("[1,]"), IoError);
    EXPECT_THROW((void)Json::parse("{\"a\":1,}"), IoError);
    EXPECT_THROW((void)Json::parse("tru"), IoError);
    EXPECT_THROW((void)Json::parse("01"), IoError);
    EXPECT_THROW((void)Json::parse("1.2.3"), IoError);
    EXPECT_THROW((void)Json::parse("\"unterminated"), IoError);
    EXPECT_THROW((void)Json::parse("\"bad\\q\""), IoError);
    EXPECT_THROW((void)Json::parse("{} trailing"), IoError);
    EXPECT_THROW((void)Json::parse("{1: 2}"), IoError);
    EXPECT_THROW((void)Json::parse("\"\\ud800\""), IoError);  // unpaired surrogate
}

TEST(Json, DumpCompact) {
    Json obj = Json::object();
    obj["b"] = Json(1);
    obj["a"] = Json::array();
    obj["a"].push_back(Json("x"));
    EXPECT_EQ(obj.dump(), R"({"a":["x"],"b":1})");  // keys sorted: deterministic
}

TEST(Json, DumpPretty) {
    Json obj = Json::object();
    obj["a"] = Json(1);
    EXPECT_EQ(obj.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, DumpEscapes) {
    EXPECT_EQ(Json("a\"b\\c\nd").dump(), R"("a\"b\\c\nd")");
    EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, DumpNumbers) {
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-1.0).dump(), "-1");
    EXPECT_EQ(Json(0).dump(), "0");
    // Scientific values survive a round trip exactly.
    const double lambda = 1.23e-9;
    EXPECT_DOUBLE_EQ(Json::parse(Json(lambda).dump()).as_number(), lambda);
}

TEST(Json, RoundTripRandomStructures) {
    const char* docs[] = {
        R"({"nested":{"deep":{"deeper":[1,2,3]}}})",
        R"([[],{},[{}],[[[0]]]])",
        R"({"unicode":"héllo wörld","empty":"","n":-0.5})",
        R"([true,false,null,0,1e10,"mix"])",
    };
    for (const char* doc : docs) {
        const Json parsed = Json::parse(doc);
        EXPECT_EQ(Json::parse(parsed.dump()), parsed) << doc;
        EXPECT_EQ(Json::parse(parsed.dump(2)), parsed) << doc;
    }
}

TEST(Json, Equality) {
    EXPECT_EQ(Json::parse("{\"a\":1}"), Json::parse("{ \"a\" : 1 }"));
    EXPECT_NE(Json::parse("{\"a\":1}"), Json::parse("{\"a\":2}"));
    EXPECT_NE(Json(1), Json("1"));
}

TEST(Json, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/asilkit_json_test.json";
    Json obj = Json::object();
    obj["lambda"] = Json(1e-9);
    obj["name"] = Json("ecu");
    save_json_file(obj, path);
    EXPECT_EQ(load_json_file(path), obj);
    EXPECT_THROW((void)load_json_file("/nonexistent/dir/file.json"), IoError);
}

TEST(Json, NonFiniteNumbersRejected) {
    EXPECT_THROW((void)Json(std::numeric_limits<double>::infinity()).dump(), IoError);
    EXPECT_THROW((void)Json(std::numeric_limits<double>::quiet_NaN()).dump(), IoError);
}

}  // namespace
}  // namespace asilkit::io

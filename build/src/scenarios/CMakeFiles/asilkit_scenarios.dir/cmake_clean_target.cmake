file(REMOVE_RECURSE
  "libasilkit_scenarios.a"
)

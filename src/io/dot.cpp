#include "io/dot.h"

#include <fstream>
#include <sstream>

namespace asilkit::io {
namespace {

std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

const char* node_shape(NodeKind k) {
    switch (k) {
        case NodeKind::Sensor: return "house";
        case NodeKind::Actuator: return "invhouse";
        case NodeKind::Functional: return "box";
        case NodeKind::Communication: return "ellipse";
        case NodeKind::Splitter: return "triangle";
        case NodeKind::Merger: return "invtriangle";
    }
    return "box";
}

const char* resource_shape(ResourceKind k) {
    switch (k) {
        case ResourceKind::Sensor: return "house";
        case ResourceKind::Actuator: return "invhouse";
        case ResourceKind::Functional: return "box3d";
        case ResourceKind::Communication: return "cds";
        case ResourceKind::Splitter: return "triangle";
        case ResourceKind::Merger: return "invtriangle";
    }
    return "box3d";
}

}  // namespace

std::string app_graph_to_dot(const ArchitectureModel& m) {
    std::ostringstream os;
    os << "digraph application {\n  rankdir=LR;\n  node [fontsize=10];\n";
    for (NodeId n : m.app().node_ids()) {
        const AppNode& node = m.app().node(n);
        os << "  n" << n.value() << " [label=\"" << escape(node.name) << "\\n"
           << to_string(node.asil) << "\", shape=" << node_shape(node.kind) << "];\n";
    }
    for (ChannelId e : m.app().edge_ids()) {
        const auto& edge = m.app().edge(e);
        os << "  n" << edge.source.value() << " -> n" << edge.sink.value();
        if (!edge.data.label.empty()) os << " [label=\"" << escape(edge.data.label) << "\"]";
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

std::string resource_graph_to_dot(const ArchitectureModel& m) {
    std::ostringstream os;
    os << "digraph resources {\n  rankdir=LR;\n  node [fontsize=10];\n";
    for (ResourceId r : m.resources().node_ids()) {
        const Resource& res = m.resources().node(r);
        os << "  r" << r.value() << " [label=\"" << escape(res.name) << "\\n"
           << to_string(res.asil) << "\", shape=" << resource_shape(res.kind) << "];\n";
    }
    for (LinkId e : m.resources().edge_ids()) {
        const auto& edge = m.resources().edge(e);
        os << "  r" << edge.source.value() << " -> r" << edge.sink.value() << ";\n";
    }
    os << "}\n";
    return os.str();
}

std::string physical_graph_to_dot(const ArchitectureModel& m) {
    std::ostringstream os;
    os << "graph physical {\n  node [fontsize=10, shape=component];\n";
    for (LocationId p : m.physical().node_ids()) {
        const Location& loc = m.physical().node(p);
        os << "  p" << p.value() << " [label=\"" << escape(loc.name) << "\"];\n";
    }
    for (ConnectionId e : m.physical().edge_ids()) {
        const auto& edge = m.physical().edge(e);
        os << "  p" << edge.source.value() << " -- p" << edge.sink.value() << ";\n";
    }
    os << "}\n";
    return os.str();
}

std::string fault_tree_to_dot(const ftree::FaultTree& ft) {
    std::ostringstream os;
    os << "digraph fault_tree {\n  rankdir=TB;\n  node [fontsize=9];\n";
    for (std::size_t i = 0; i < ft.basic_events().size(); ++i) {
        const ftree::BasicEvent& e = ft.basic_events()[i];
        os << "  b" << i << " [label=\"" << escape(e.name) << "\\nl=" << e.lambda
           << "\", shape=circle];\n";
    }
    for (std::size_t i = 0; i < ft.gates().size(); ++i) {
        const ftree::Gate& g = ft.gates()[i];
        os << "  g" << i << " [label=\"" << escape(g.name) << "\\n" << to_string(g.kind)
           << "\", shape=" << (g.kind == ftree::GateKind::Or ? "box" : "box, style=rounded")
           << "];\n";
        for (const ftree::FtRef& c : g.children) {
            os << "  g" << i << " -> " << (c.kind == ftree::FtRef::Kind::Basic ? "b" : "g")
               << c.index << ";\n";
        }
    }
    os << "}\n";
    return os.str();
}

void save_text_file(const std::string& text, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open '" + path + "' for writing");
    out << text;
    if (!out) throw IoError("write to '" + path + "' failed");
}

}  // namespace asilkit::io

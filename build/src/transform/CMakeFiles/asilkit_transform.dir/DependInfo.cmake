
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/connect.cpp" "src/transform/CMakeFiles/asilkit_transform.dir/connect.cpp.o" "gcc" "src/transform/CMakeFiles/asilkit_transform.dir/connect.cpp.o.d"
  "/root/repo/src/transform/expand.cpp" "src/transform/CMakeFiles/asilkit_transform.dir/expand.cpp.o" "gcc" "src/transform/CMakeFiles/asilkit_transform.dir/expand.cpp.o.d"
  "/root/repo/src/transform/reduce.cpp" "src/transform/CMakeFiles/asilkit_transform.dir/reduce.cpp.o" "gcc" "src/transform/CMakeFiles/asilkit_transform.dir/reduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/asilkit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asilkit_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/asilkit_explore.dir/advisor.cpp.o"
  "CMakeFiles/asilkit_explore.dir/advisor.cpp.o.d"
  "CMakeFiles/asilkit_explore.dir/driver.cpp.o"
  "CMakeFiles/asilkit_explore.dir/driver.cpp.o.d"
  "CMakeFiles/asilkit_explore.dir/mapping_opt.cpp.o"
  "CMakeFiles/asilkit_explore.dir/mapping_opt.cpp.o.d"
  "CMakeFiles/asilkit_explore.dir/mapping_search.cpp.o"
  "CMakeFiles/asilkit_explore.dir/mapping_search.cpp.o.d"
  "CMakeFiles/asilkit_explore.dir/pareto.cpp.o"
  "CMakeFiles/asilkit_explore.dir/pareto.cpp.o.d"
  "CMakeFiles/asilkit_explore.dir/tradeoff.cpp.o"
  "CMakeFiles/asilkit_explore.dir/tradeoff.cpp.o.d"
  "libasilkit_explore.a"
  "libasilkit_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

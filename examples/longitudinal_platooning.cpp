// Second case study: the platoon's longitudinal (gap-keeping) control.
//
// Demonstrates the extension APIs on a model with a control feedback
// loop, two actuators and a QM side chain:
//   * the expansion ADVISOR ranks every decomposable node by measured
//     effect before anything is transformed,
//   * fault-tolerance reporting shows which single points of failure the
//     decomposition removes,
//   * the capacity-constrained mapping SEARCH finishes the flow.
//
//   $ ./longitudinal_platooning
#include <iostream>

#include "analysis/probability.h"
#include "analysis/tolerance.h"
#include "cost/cost_analysis.h"
#include "explore/advisor.h"
#include "explore/driver.h"
#include "explore/mapping_search.h"
#include "model/validation.h"
#include "scenarios/longitudinal.h"

using namespace asilkit;

int main() {
    ArchitectureModel m = scenarios::ecotwin_longitudinal_control();
    validate_or_throw(m);

    const auto p0 = analysis::analyze_failure_probability(m);
    std::cout << "initial: " << m.app().node_count() << " nodes, P(fail)="
              << p0.failure_probability << " (cycles cut in FTA: " << p0.cycles_cut << ")\n";

    const auto tolerance0 = analysis::analyze_fault_tolerance(m);
    std::cout << "single points of failure: " << tolerance0.single_points_of_failure.size()
              << "\n\n";

    std::cout << "advisor ranking (trial expansion per node):\n";
    explore::AdvisorOptions advisor_options;
    advisor_options.probability.approximate = true;
    const auto advice = explore::advise_expansions(m, advisor_options);
    for (std::size_t i = 0; i < advice.size() && i < 6; ++i) {
        std::cout << "  " << advice[i] << "\n";
    }

    std::cout << "\nrunning the full flow on the decision chain...\n";
    explore::ExplorationOptions options;
    options.probability.approximate = true;
    options.run_mapping_optimization = false;  // the search below replaces it
    explore::ExplorationResult result =
        explore::run_exploration(m, scenarios::longitudinal_decision_nodes(), options);
    std::cout << "  expansions=" << result.expansions << " connects=" << result.connects
              << " reductions=" << result.reductions << "\n";
    std::cout << "  " << result.curve.front() << "\n  " << result.curve.back() << "\n";

    explore::MappingSearchOptions search_options;
    search_options.max_nodes_per_resource = 3;
    search_options.probability.approximate = true;
    const auto search = explore::search_mapping(result.final_model, search_options);
    std::cout << "\nmapping search: " << search.merges << " merges in " << search.iterations
              << " iterations\n  P(fail) " << search.probability_before << " -> "
              << search.probability_after << "\n  cost    " << search.cost_before << " -> "
              << search.cost_after << "\n";

    const auto tolerance1 = analysis::analyze_fault_tolerance(result.final_model);
    std::cout << "\nsingle points of failure after the flow: "
              << tolerance1.single_points_of_failure.size() << "\n";
    for (const std::string& spof : tolerance1.single_points_of_failure) {
        std::cout << "  " << spof << "\n";
    }
    const ValidationReport report = validate(result.final_model);
    std::cout << "final validation: " << report.error_count() << " errors, "
              << report.warning_count() << " warnings\n";
    return 0;
}

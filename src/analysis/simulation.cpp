#include "analysis/simulation.h"

#include <cmath>
#include <random>
#include <vector>

#include "ftree/builder.h"

namespace asilkit::analysis {
namespace {

/// One-pass evaluation order: gate indices sorted so every gate's gate
/// children precede it.  Computed once per simulation, reused per trial.
std::vector<std::uint32_t> evaluation_order(const ftree::FaultTree& ft) {
    const auto gates = ft.gates();
    std::vector<std::uint8_t> state(gates.size(), 0);  // 0 new, 1 open, 2 done
    std::vector<std::uint32_t> order;
    order.reserve(gates.size());
    std::vector<std::uint32_t> stack;
    for (std::uint32_t root = 0; root < gates.size(); ++root) {
        if (state[root]) continue;
        stack.push_back(root);
        while (!stack.empty()) {
            const std::uint32_t g = stack.back();
            if (state[g] == 2) {
                stack.pop_back();
                continue;
            }
            if (state[g] == 1) {
                state[g] = 2;
                order.push_back(g);
                stack.pop_back();
                continue;
            }
            state[g] = 1;
            for (const ftree::FtRef& c : gates[g].children) {
                if (c.kind == ftree::FtRef::Kind::Gate && state[c.index] == 0) {
                    stack.push_back(c.index);
                }
            }
        }
    }
    return order;
}

/// Gate evaluation under one sampled assignment, in precomputed order.
bool evaluate(const ftree::FaultTree& ft, const std::vector<std::uint32_t>& order,
              const std::vector<bool>& events, std::vector<bool>& gate_values) {
    const auto gates = ft.gates();
    for (const std::uint32_t g : order) {
        const ftree::Gate& gate = gates[g];
        bool value = gate.kind == ftree::GateKind::And && !gate.children.empty();
        for (const ftree::FtRef& c : gate.children) {
            const bool child = c.kind == ftree::FtRef::Kind::Basic ? events[c.index]
                                                                   : gate_values[c.index];
            if (gate.kind == ftree::GateKind::Or) {
                if (child) {
                    value = true;
                    break;
                }
            } else if (!child) {
                value = false;
                break;
            }
        }
        gate_values[g] = value;
    }
    const ftree::FtRef top = ft.top();
    return top.kind == ftree::FtRef::Kind::Basic ? events[top.index] : gate_values[top.index];
}

}  // namespace

SimulationResult simulate_fault_tree(const ftree::FaultTree& ft,
                                     const SimulationOptions& options) {
    if (!ft.has_top()) throw AnalysisError("simulate_fault_tree: fault tree has no top event");
    const auto basics = ft.basic_events();
    std::vector<double> p(basics.size());
    for (std::size_t i = 0; i < basics.size(); ++i) {
        p[i] = 1.0 - std::exp(-basics[i].lambda * options.rate_scale * options.mission_hours);
    }

    std::mt19937_64 rng(options.seed);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    std::vector<bool> events(basics.size());
    std::vector<bool> gate_values(ft.gates().size());
    const std::vector<std::uint32_t> order = evaluation_order(ft);

    SimulationResult result;
    result.trials = options.trials;
    for (std::uint64_t t = 0; t < options.trials; ++t) {
        for (std::size_t i = 0; i < p.size(); ++i) events[i] = uniform(rng) < p[i];
        if (evaluate(ft, order, events, gate_values)) ++result.failures;
    }
    result.estimate =
        static_cast<double>(result.failures) / static_cast<double>(result.trials);
    result.std_error = std::sqrt(result.estimate * (1.0 - result.estimate) /
                                 static_cast<double>(result.trials));
    // Add half a trial of slack so a zero-failure run still brackets 0.
    const double slack = 0.5 / static_cast<double>(result.trials);
    result.ci95_low = result.estimate - 1.96 * result.std_error - slack;
    result.ci95_high = result.estimate + 1.96 * result.std_error + slack;
    return result;
}

SimulationResult simulate_failure_probability(const ArchitectureModel& m,
                                              const SimulationOptions& options) {
    ftree::FtBuildOptions build_options;
    build_options.include_location_events = options.include_location_events;
    build_options.rates = options.rates;
    const ftree::FtBuildResult built = ftree::build_fault_tree(m, build_options);
    return simulate_fault_tree(built.tree, options);
}

}  // namespace asilkit::analysis

// Fault-tree -> BDD compilation (paper Section V).
//
// Variable ordering follows the paper: a breadth-first, left-to-right
// traversal of the fault tree from the top event, assigning increasing
// variable indices to basic events in first-seen order "so that the base
// events that impact more directly the Top Level Event come first".
// Gates then become apply() chains: OR children are combined with
// BddOp::Or, AND children with BddOp::And — the "+" and "*" of the
// paper's ITE formulation.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "ftree/fault_tree.h"
#include "ftree/modules.h"

namespace asilkit::bdd {

/// Basic-event indices in the paper's top-down / left-to-right variable
/// order (restricted to events reachable from the top gate).
[[nodiscard]] std::vector<std::uint32_t> ft_variable_order(const ftree::FaultTree& ft);

/// A compiled fault tree: the manager owning the diagram, the root
/// function, and the var -> basic-event-index mapping.
struct CompiledFaultTree {
    BddManager manager;
    BddRef root = kFalse;
    /// event_of_var[v] = index of the basic event assigned to variable v.
    std::vector<std::uint32_t> event_of_var;

    /// Per-variable failure probabilities for a mission of `hours`,
    /// p = 1 - exp(-lambda * t), aligned with the manager's variables.
    [[nodiscard]] std::vector<double> variable_probabilities(const ftree::FaultTree& ft,
                                                             double hours) const;
};

/// Compiles with the paper's default ordering, or with an explicit order
/// (a permutation of reachable basic-event indices) for ordering studies.
[[nodiscard]] CompiledFaultTree compile_fault_tree(const ftree::FaultTree& ft);
[[nodiscard]] CompiledFaultTree compile_fault_tree(const ftree::FaultTree& ft,
                                                   const std::vector<std::uint32_t>& event_order);

/// p = 1 - exp(-lambda * hours); for lambda*t << 1 this is ~= lambda * t,
/// which is why the paper quotes probabilities numerically equal to rates
/// at t = 1 h.
[[nodiscard]] double basic_event_probability(double lambda, double hours) noexcept;

/// Result of evaluating one module of a ftree::ModuleDecomposition: the
/// module's local region compiled to its own (small) BDD with nested
/// modules as pseudo-variables, Shannon-evaluated with the child
/// modules' probabilities.  Exact: a module's basic events are disjoint
/// from the rest of the tree, so a nested module is an independent
/// boolean variable of the local region — even when it is referenced
/// several times, because the BDD keeps the repeated-variable
/// dependence that a naive sum/product combination would lose.
struct ModuleEvalResult {
    double probability = 0.0;
    std::size_t bdd_nodes = 0;        ///< interior nodes reachable from the local root
    std::size_t bdd_total_nodes = 0;  ///< all nodes the local manager allocated
    std::size_t variables = 0;        ///< real basic events in the local region
};

/// Evaluates module `module_index` of `dec` on `ft` (the tree `dec` was
/// detected on).  `child_probabilities` must align with
/// dec.modules[module_index].child_modules — the values previously
/// computed for the nested modules, children before parents.  The local
/// variable order follows the paper within the module: breadth-first,
/// left-to-right from the module root over basic events and
/// pseudo-variables in first-seen order, so the evaluation is a pure
/// function of the module's subtree (the cache-replay guarantee).
[[nodiscard]] ModuleEvalResult evaluate_module(const ftree::FaultTree& ft,
                                               const ftree::ModuleDecomposition& dec,
                                               std::size_t module_index,
                                               std::span<const double> child_probabilities,
                                               double mission_hours);

/// Long-lived compilation service over ONE persistent BddManager: every
/// compiled diagram shares the manager's unique table, so a candidate
/// that shares 90 % of its tree with an earlier one re-derives 90 % of
/// its nodes as hash-cons lookups instead of fresh allocations — and a
/// *subtree compile memo* short-circuits even those lookups: gates are
/// keyed by their structure over the local BDD variable indices
/// (rate-blind — the diagram is a function of variables only; rates
/// enter at the probability sweep), and a key hit returns the root ref
/// without walking the subtree at all.  ROBDD canonicity makes the memo
/// sound: recompiling a structurally identical gate over the same
/// variables must return the same ref (see docs/bdd.md).
///
/// The manager grows across candidates; at the gc_node_threshold high
/// water the compiler reaches a safe point (entry of a compile /
/// evaluate call, no refs live on any stack), clears the memo — its
/// refs are the only roots the compiler retains — and runs a
/// mark-and-compact collection.  Roots a *caller* wants to keep across
/// collections must be pinned (BddManager::pin).
///
/// Single-threaded by contract, like the manager it owns: the engine
/// keeps one compiler per worker thread and never shares them.
class PersistentBddCompiler {
public:
    struct Options {
        /// Interior-node high water at which the next safe point clears
        /// the memo and collects.  0 disables collection.
        std::size_t gc_node_threshold = std::size_t{1} << 20;
    };

    PersistentBddCompiler() : PersistentBddCompiler(Options{}) {}
    explicit PersistentBddCompiler(Options options);
    PersistentBddCompiler(const PersistentBddCompiler&) = delete;
    PersistentBddCompiler& operator=(const PersistentBddCompiler&) = delete;

    [[nodiscard]] BddManager& manager() noexcept { return manager_; }

    /// Whole-tree compilation in the paper's ordering, sharing the
    /// persistent manager and the subtree memo.  `root` is valid until
    /// the next safe point may collect (pin it to keep it longer);
    /// `nodes_allocated` is the arena growth caused by this call (0 on
    /// a full memo hit).
    struct CompileResult {
        BddRef root = kFalse;
        std::vector<std::uint32_t> event_of_var;
        std::size_t nodes_allocated = 0;
    };
    [[nodiscard]] CompileResult compile(const ftree::FaultTree& ft);

    /// Per-variable probabilities for a compile(ft) result, aligned with
    /// its event_of_var (same closed form as the fresh-manager path).
    [[nodiscard]] static std::vector<double> variable_probabilities(
        const ftree::FaultTree& ft, std::span<const std::uint32_t> event_of_var, double hours);

    /// evaluate_module, persistent edition: same local variable order,
    /// same per-node arithmetic, bitwise-identical probability — the
    /// only differences are where the nodes live and that the
    /// probability runs through the (k = 1) batch kernel.
    /// `bdd_total_nodes` reports the arena growth caused by this call
    /// (a full subtree-memo hit allocates nothing), where the fresh-
    /// manager path reports its throwaway manager's size.
    [[nodiscard]] ModuleEvalResult evaluate_module(const ftree::FaultTree& ft,
                                                   const ftree::ModuleDecomposition& dec,
                                                   std::size_t module_index,
                                                   std::span<const double> child_probabilities,
                                                   double mission_hours);

    /// The batched multi-lambda edition: evaluates module `module_index`
    /// of `dec` (detected on lane_trees[0], the representative) for k
    /// shape-identical lanes in ONE compilation and ONE SoA probability
    /// sweep.  Lane trees must satisfy ftree::identical_shape with the
    /// representative — index-identical structure, rates free — so one
    /// gate/event index addresses the corresponding node of every lane.
    /// Per-lane results are bitwise identical to k independent
    /// evaluate_module calls.
    [[nodiscard]] std::vector<ModuleEvalResult> evaluate_module_lanes(
        std::span<const ftree::FaultTree* const> lane_trees,
        const ftree::ModuleDecomposition& dec, std::size_t module_index,
        std::span<const std::span<const double>> lane_child_probabilities, double mission_hours);

    struct Stats {
        std::uint64_t memo_hits = 0;    ///< gates served by the subtree memo
        std::uint64_t memo_misses = 0;  ///< gates compiled (and memoised)
        std::uint64_t collections = 0;  ///< safe-point GCs triggered
        std::size_t memo_entries = 0;
        std::size_t manager_nodes = 0;
    };
    [[nodiscard]] Stats stats() const noexcept;

private:
    /// Safe point: no compiler-held refs are live outside the memo, so
    /// when the manager is over threshold the memo is dropped and the
    /// arena compacted.  Callers' pinned roots survive.
    void maybe_collect();
    /// Folds memo tallies into the obs registry ("bdd.subtree_memo_*")
    /// and the manager's own tallies via flush_obs().
    void flush_obs();

    BddManager manager_{0};
    std::unordered_map<std::uint64_t, BddRef> memo_;
    std::uint64_t memo_hits_ = 0;
    std::uint64_t memo_misses_ = 0;
    std::uint64_t flushed_hits_ = 0;
    std::uint64_t flushed_misses_ = 0;
    std::size_t gc_threshold_ = 0;
};

}  // namespace asilkit::bdd

#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>

namespace asilkit::obs {
namespace {

/// JSON string escaping for metric ids (conservative: ids are dotted
/// ASCII by convention, but a malformed id must not corrupt the file).
std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Shortest round-trip double rendering (%.17g trims trailing noise for
/// representable values; integral values print without exponent).
std::string number(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    for (int precision = 6; precision < 17; ++precision) {
        char trial[40];
        std::snprintf(trial, sizeof(trial), "%.*g", precision, v);
        std::sscanf(trial, "%lf", &parsed);
        if (parsed == v) return trial;
    }
    return buf;
}

/// "1.23 ms"-style rendering of a nanosecond quantity for to_text().
std::string human_ns(double ns) {
    char buf[48];
    if (ns >= 1e9) {
        std::snprintf(buf, sizeof(buf), "%.3g s", ns / 1e9);
    } else if (ns >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.3g ms", ns / 1e6);
    } else if (ns >= 1e3) {
        std::snprintf(buf, sizeof(buf), "%.3g us", ns / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3g ns", ns);
    }
    return buf;
}

}  // namespace

namespace detail {
std::atomic<bool> g_detail{false};
}  // namespace detail

void set_detail_enabled(bool on) noexcept {
    detail::g_detail.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
}

double histogram_quantile(std::span<const double> bounds,
                          std::span<const std::uint64_t> counts, double q) noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double rank = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        const double lower = i == 0 ? 0.0 : bounds[i - 1];
        const std::uint64_t before = cumulative;
        cumulative += counts[i];
        if (static_cast<double>(cumulative) < rank) continue;
        if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
        const double upper = bounds[i];
        const double into =
            (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
        return lower + (upper - lower) * (into < 0.0 ? 0.0 : into);
    }
    return bounds.empty() ? 0.0 : bounds.back();  // unreachable with exact counts
}

std::span<const double> latency_bounds_ns() noexcept {
    static const std::array<double, 24> bounds = [] {
        std::array<double, 24> b{};
        double bound = 1e3;  // 1 µs
        for (double& slot : b) {
            slot = bound;
            bound *= 2.0;
        }
        return b;
    }();
    return bounds;
}

Registry& Registry::global() {
    static Registry* instance = new Registry();  // leaked: see header
    return *instance;
}

Counter& Registry::counter(std::string_view id) {
    const core::MutexLock lock(mutex_);
    auto it = counters_.find(id);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(id), std::unique_ptr<Counter>(new Counter())).first;
    }
    return *it->second;
}

Gauge& Registry::gauge(std::string_view id) {
    const core::MutexLock lock(mutex_);
    auto it = gauges_.find(id);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string(id), std::unique_ptr<Gauge>(new Gauge())).first;
    }
    return *it->second;
}

Histogram& Registry::histogram(std::string_view id, std::span<const double> bounds) {
    const core::MutexLock lock(mutex_);
    auto it = histograms_.find(id);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(id),
                          std::unique_ptr<Histogram>(
                              new Histogram(std::vector<double>(bounds.begin(), bounds.end()))))
                 .first;
    }
    return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
    const core::MutexLock lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [id, c] : counters_) snap.counters.push_back({id, c->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& [id, g] : gauges_) snap.gauges.push_back({id, g->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& [id, h] : histograms_) {
        MetricsSnapshot::HistogramSample s;
        s.id = id;
        s.bounds.assign(h->bounds_.begin(), h->bounds_.end());
        s.counts.reserve(s.bounds.size() + 1);
        for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
            s.counts.push_back(h->counts_[i].load(std::memory_order_relaxed));
        }
        s.count = h->count();
        s.sum = h->sum();
        snap.histograms.push_back(std::move(s));
    }
    return snap;
}

void Registry::reset() {
    const core::MutexLock lock(mutex_);
    for (auto& [id, c] : counters_) c->value_.store(0, std::memory_order_relaxed);
    for (auto& [id, g] : gauges_) g->value_.store(0.0, std::memory_order_relaxed);
    for (auto& [id, h] : histograms_) {
        for (std::size_t i = 0; i <= h->bounds_.size(); ++i) {
            h->counts_[i].store(0, std::memory_order_relaxed);
        }
        h->count_.store(0, std::memory_order_relaxed);
        h->sum_.store(0.0, std::memory_order_relaxed);
    }
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view id,
                                          std::uint64_t fallback) const noexcept {
    for (const CounterSample& c : counters) {
        if (c.id == id) return c.value;
    }
    return fallback;
}

double MetricsSnapshot::gauge_or(std::string_view id, double fallback) const noexcept {
    for (const GaugeSample& g : gauges) {
        if (g.id == id) return g.value;
    }
    return fallback;
}

std::string MetricsSnapshot::to_json() const {
    std::ostringstream os;
    os << "{\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (i != 0) os << ",";
        os << "\"" << json_escape(counters[i].id) << "\":" << counters[i].value;
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        if (i != 0) os << ",";
        os << "\"" << json_escape(gauges[i].id) << "\":" << number(gauges[i].value);
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const HistogramSample& h = histograms[i];
        if (i != 0) os << ",";
        os << "\"" << json_escape(h.id) << "\":{\"bounds\":[";
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            if (b != 0) os << ",";
            os << number(h.bounds[b]);
        }
        os << "],\"counts\":[";
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            if (b != 0) os << ",";
            os << h.counts[b];
        }
        os << "],\"count\":" << h.count << ",\"sum\":" << number(h.sum) << "}";
    }
    os << "}}";
    return os.str();
}

std::string MetricsSnapshot::to_text() const {
    std::ostringstream os;
    char line[160];
    if (!counters.empty()) {
        os << "counters:\n";
        for (const CounterSample& c : counters) {
            std::snprintf(line, sizeof(line), "  %-36s %llu\n", c.id.c_str(),
                          static_cast<unsigned long long>(c.value));
            os << line;
        }
    }
    if (!gauges.empty()) {
        os << "gauges:\n";
        for (const GaugeSample& g : gauges) {
            std::snprintf(line, sizeof(line), "  %-36s %s\n", g.id.c_str(),
                          number(g.value).c_str());
            os << line;
        }
    }
    if (!histograms.empty()) {
        os << "histograms:\n";
        for (const HistogramSample& h : histograms) {
            const double mean =
                h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
            std::snprintf(line, sizeof(line), "  %-36s count=%llu mean=%s\n", h.id.c_str(),
                          static_cast<unsigned long long>(h.count), human_ns(mean).c_str());
            os << line;
            for (std::size_t b = 0; b < h.counts.size(); ++b) {
                if (h.counts[b] == 0) continue;
                const std::string label =
                    b < h.bounds.size() ? "<= " + human_ns(h.bounds[b])
                                        : "> " + human_ns(h.bounds.back());
                std::snprintf(line, sizeof(line), "    %-34s %llu\n", label.c_str(),
                              static_cast<unsigned long long>(h.counts[b]));
                os << line;
            }
        }
    }
    if (counters.empty() && gauges.empty() && histograms.empty()) {
        os << "(no metrics registered)\n";
    }
    return os.str();
}

}  // namespace asilkit::obs

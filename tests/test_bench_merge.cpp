// bench_to_json merge semantics (tools/bench_merge.h): replace-by-key
// with the newest input winning — the regression here is the old
// behaviour where re-running a bench binary appended duplicate
// benchmark entries and a newer --metrics snapshot could not refresh a
// same-keyed gauge.
#include <gtest/gtest.h>

#include <string>

#include "bench_merge.h"
#include "io/json.h"

namespace asilkit::bench {
namespace {

io::Json raw_run(const char* name, double real_time, const char* unit,
                 const char* run_type = "iteration") {
    io::Json b = io::Json::object();
    b["name"] = name;
    b["real_time"] = real_time;
    b["time_unit"] = unit;
    b["run_type"] = run_type;
    io::Json raw = io::Json::object();
    raw["benchmarks"] = io::Json::array();
    raw["benchmarks"].push_back(std::move(b));
    return raw;
}

TEST(CompactBenchmarks, ConvertsUnitsAndSkipsAggregates) {
    io::Json raw = io::Json::object();
    raw["benchmarks"] = io::Json::array();
    io::Json plain = io::Json::object();
    plain["name"] = "BM_Search";
    plain["real_time"] = 2.5;
    plain["time_unit"] = "ms";
    plain["run_type"] = "iteration";
    plain["evals"] = 61.0;
    raw["benchmarks"].push_back(std::move(plain));
    io::Json mean = io::Json::object();
    mean["name"] = "BM_Search_mean";
    mean["real_time"] = 2.5;
    mean["time_unit"] = "ms";
    mean["run_type"] = "aggregate";
    raw["benchmarks"].push_back(std::move(mean));

    const io::Json compact = compact_benchmarks(raw);
    ASSERT_EQ(compact.size(), 1u);
    EXPECT_EQ(compact.as_array()[0].at("name").as_string(), "BM_Search");
    EXPECT_EQ(compact.as_array()[0].at("ns_per_op").as_number(), 2.5e6);
    EXPECT_EQ(compact.as_array()[0].at("evals").as_number(), 61.0);
}

TEST(MergeBenchmarks, NewerRunReplacesSameNameInPlace) {
    io::Json base = io::Json::array();
    base.push_back(compact_benchmarks(raw_run("BM_A", 100, "ns")).as_array()[0]);
    base.push_back(compact_benchmarks(raw_run("BM_B", 200, "ns")).as_array()[0]);

    // Re-run of BM_A (new timing) plus a brand-new BM_C.
    io::Json update = io::Json::array();
    update.push_back(compact_benchmarks(raw_run("BM_A", 150, "ns")).as_array()[0]);
    update.push_back(compact_benchmarks(raw_run("BM_C", 300, "ns")).as_array()[0]);
    merge_benchmarks(base, update);

    ASSERT_EQ(base.size(), 3u);  // replaced, not duplicated
    EXPECT_EQ(base.as_array()[0].at("name").as_string(), "BM_A");
    EXPECT_EQ(base.as_array()[0].at("ns_per_op").as_number(), 150.0);  // newest wins
    EXPECT_EQ(base.as_array()[1].at("name").as_string(), "BM_B");  // position kept
    EXPECT_EQ(base.as_array()[2].at("name").as_string(), "BM_C");  // appended
}

TEST(MetricsSummary, DerivesRatesFromSnapshotIds) {
    const io::Json snapshot = io::Json::parse(R"({
        "counters": {"bdd.apply_hits": 80, "bdd.apply_lookups": 100,
                     "engine.cache.hits": 30, "engine.cache.misses": 10},
        "gauges": {"bdd.node_high_water": 1234}
    })");
    const io::Json summary = metrics_summary(snapshot);
    EXPECT_EQ(summary.at("bdd_node_high_water").as_number(), 1234.0);
    EXPECT_EQ(summary.at("bdd_apply_hit_rate").as_number(), 0.8);
    EXPECT_EQ(summary.at("engine_cache_hit_rate").as_number(), 0.75);
}

TEST(MetricsSummary, MissingIdsDropDerivedFields) {
    const io::Json summary = metrics_summary(io::Json::parse(
        R"({"counters": {"bdd.apply_lookups": 0}, "gauges": {}})"));
    EXPECT_FALSE(summary.contains("bdd_node_high_water"));
    EXPECT_FALSE(summary.contains("bdd_apply_hit_rate"));  // zero lookups
}

/// The regression: two overlapping snapshots — the newer one must
/// replace the gauges it reports and keep the keys only the older run
/// measured.
TEST(MergeMetrics, NewerSnapshotReplacesSameKeyedGauges) {
    io::Json base = metrics_summary(io::Json::parse(R"({
        "counters": {"bdd.apply_hits": 80, "bdd.apply_lookups": 100},
        "gauges": {"bdd.node_high_water": 1000}
    })"));
    const io::Json update = metrics_summary(io::Json::parse(R"({
        "counters": {},
        "gauges": {"bdd.node_high_water": 2000}
    })"));
    merge_metrics(base, update);
    EXPECT_EQ(base.at("bdd_node_high_water").as_number(), 2000.0);  // replaced
    EXPECT_EQ(base.at("bdd_apply_hit_rate").as_number(), 0.8);      // preserved
}

TEST(TimeseriesSummary, CompactsRingsToLastValues) {
    const io::Json ts = io::Json::parse(R"({
        "period_ms": 250, "capacity": 600, "ticks": 4,
        "series": [
            {"id": "engine.analyze_calls", "kind": "counter",
             "points": [[100, 1], [200, 5], [300, 9]]},
            {"id": "empty.series", "kind": "gauge", "points": []}
        ]
    })");
    const io::Json summary = timeseries_summary(ts);
    EXPECT_EQ(summary.at("ticks").as_number(), 4.0);
    EXPECT_EQ(summary.at("period_ms").as_number(), 250.0);
    EXPECT_EQ(summary.at("series").as_number(), 1.0);  // empty series skipped
    EXPECT_EQ(summary.at("last").at("engine.analyze_calls").as_number(), 9.0);
}

}  // namespace
}  // namespace asilkit::bench

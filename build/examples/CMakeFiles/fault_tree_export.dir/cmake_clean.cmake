file(REMOVE_RECURSE
  "CMakeFiles/fault_tree_export.dir/fault_tree_export.cpp.o"
  "CMakeFiles/fault_tree_export.dir/fault_tree_export.cpp.o.d"
  "fault_tree_export"
  "fault_tree_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tree_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

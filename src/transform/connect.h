// The Connect() transformation (paper Section VII-A, Fig. 6).
//
// Two consecutive redundant blocks
//
//   s1 =< branches1 >= n_m --> c --> f_s =< branches2 >= m2
//
// are merged into a single block by wiring each branch of block 1
// directly into the ASIL-matching branch of block 2 and removing the
// middle merger n_m, communication node c, and splitter f_s (together
// with their dedicated hardware).  The transformation is ASIL-equivalent
// iff the paper's four conditions hold:
//   1. the two blocks have the same block ASIL (Eq. 4);
//   2. they have the same number of branches;
//   3. c is connected to nothing but n_m and f_s;
//   4. the branch ASIL multisets match pairwise.
// Under a single-fault assumption reliability is unchanged; with two or
// more faults the merged block is weaker (one fault per side of the old
// boundary could previously be masked), which is exactly the trade the
// paper's Fig. 6/12 experiments quantify.
#pragma once

#include <string>
#include <vector>

#include "core/asil.h"
#include "model/architecture.h"

namespace asilkit::transform {

struct ConnectResult {
    NodeId removed_merger;    ///< n_m (now erased)
    NodeId removed_comm;      ///< c
    NodeId removed_splitter;  ///< f_s
    /// New branch-to-branch edges: (tail of block-1 branch, head of
    /// block-2 branch), one per matched pair.
    std::vector<std::pair<NodeId, NodeId>> stitched;
};

/// Merges the block ending at `merger` with the next block downstream.
/// Throws TransformError when any of the four conditions fails or the
/// n_m -> c -> f_s chain is not present.
ConnectResult connect(ArchitectureModel& m, NodeId merger);

/// True iff connect(m, merger) would succeed (non-mutating).
[[nodiscard]] bool can_connect(const ArchitectureModel& m, NodeId merger,
                               std::string* why = nullptr);

/// Mergers for which can_connect() holds, in id order.
[[nodiscard]] std::vector<NodeId> find_connectable(const ArchitectureModel& m);

/// Applies connect() until no connectable pair remains; returns the
/// number of merges performed.
std::size_t connect_all(ArchitectureModel& m);

}  // namespace asilkit::transform

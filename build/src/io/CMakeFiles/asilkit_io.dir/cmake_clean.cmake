file(REMOVE_RECURSE
  "CMakeFiles/asilkit_io.dir/csv.cpp.o"
  "CMakeFiles/asilkit_io.dir/csv.cpp.o.d"
  "CMakeFiles/asilkit_io.dir/dot.cpp.o"
  "CMakeFiles/asilkit_io.dir/dot.cpp.o.d"
  "CMakeFiles/asilkit_io.dir/graphml.cpp.o"
  "CMakeFiles/asilkit_io.dir/graphml.cpp.o.d"
  "CMakeFiles/asilkit_io.dir/json.cpp.o"
  "CMakeFiles/asilkit_io.dir/json.cpp.o.d"
  "CMakeFiles/asilkit_io.dir/model_diff.cpp.o"
  "CMakeFiles/asilkit_io.dir/model_diff.cpp.o.d"
  "CMakeFiles/asilkit_io.dir/model_json.cpp.o"
  "CMakeFiles/asilkit_io.dir/model_json.cpp.o.d"
  "libasilkit_io.a"
  "libasilkit_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asilkit_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "model/architecture.h"

#include <algorithm>

#include "core/error.h"

namespace asilkit {
namespace {

template <typename Id>
void erase_value(std::vector<Id>& v, Id x) {
    v.erase(std::remove(v.begin(), v.end(), x), v.end());
}

template <typename Id>
bool contains_value(const std::vector<Id>& v, Id x) {
    return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

void ArchitectureModel::map_node(NodeId n, ResourceId r) {
    const AppNode& node = app_.node(n);
    const Resource& res = res_.node(r);
    if (!mapping_compatible(node.kind, res.kind)) {
        throw ModelError("cannot map " + std::string(to_string(node.kind)) + " node '" + node.name +
                         "' onto " + std::string(to_string(res.kind)) + " resource '" + res.name + "'");
    }
    auto& rs = map_g_[n];
    if (!contains_value(rs, r)) rs.push_back(r);
}

void ArchitectureModel::unmap_node(NodeId n, ResourceId r) {
    if (auto it = map_g_.find(n); it != map_g_.end()) {
        erase_value(it->second, r);
        if (it->second.empty()) map_g_.erase(it);
    }
}

void ArchitectureModel::remap_node(NodeId n, const std::vector<ResourceId>& rs) {
    map_g_.erase(n);
    for (ResourceId r : rs) map_node(n, r);
}

void ArchitectureModel::place_resource(ResourceId r, LocationId p) {
    res_.require(r);
    phy_.require(p);
    auto& ps = map_h_[r];
    if (!contains_value(ps, p)) ps.push_back(p);
}

NodeId ArchitectureModel::add_node_with_dedicated_resource(AppNode node, LocationId loc) {
    Resource res;
    res.name = node.name + "_hw";
    res.kind = default_resource_kind(node.kind);
    res.asil = node.asil.level;
    const NodeId n = app_.add_node(std::move(node));
    const ResourceId r = res_.add_node(std::move(res));
    map_node(n, r);
    if (loc.valid()) place_resource(r, loc);
    return n;
}

const std::vector<ResourceId>& ArchitectureModel::mapped_resources(NodeId n) const {
    if (auto it = map_g_.find(n); it != map_g_.end()) return it->second;
    return empty_resources_;
}

const std::vector<LocationId>& ArchitectureModel::resource_locations(ResourceId r) const {
    if (auto it = map_h_.find(r); it != map_h_.end()) return it->second;
    return empty_locations_;
}

std::vector<NodeId> ArchitectureModel::nodes_on_resource(ResourceId r) const {
    std::vector<NodeId> out;
    for (const auto& [n, rs] : map_g_) {
        if (contains_value(rs, r)) out.push_back(n);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<ResourceId> ArchitectureModel::used_resources() const {
    std::vector<ResourceId> out;
    for (const auto& [n, rs] : map_g_) {
        for (ResourceId r : rs) {
            if (!contains_value(out, r)) out.push_back(r);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<LocationId> ArchitectureModel::node_locations(NodeId n) const {
    std::vector<LocationId> out;
    for (ResourceId r : mapped_resources(n)) {
        for (LocationId p : resource_locations(r)) {
            if (!contains_value(out, p)) out.push_back(p);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

Asil ArchitectureModel::effective_asil(NodeId n) const {
    const AppNode& node = app_.node(n);
    const auto& rs = mapped_resources(n);
    if (rs.empty()) return Asil::QM;
    Asil hw = Asil::D;
    for (ResourceId r : rs) hw = asil_min(hw, res_.node(r).asil);
    return asil_min(node.asil.level, hw);
}

double ArchitectureModel::resource_lambda(ResourceId r) const {
    const Resource& res = res_.node(r);
    if (res.lambda_override) return *res.lambda_override;
    // Paper Table I: splitter/merger hardware is one decade more reliable
    // than other resource kinds at the same ASIL readiness.
    //   Other:           QM 1e-5, A 1e-6, B 1e-7, C 1e-8, D 1e-9
    //   Splitter/Merger: QM 1e-6, A 1e-7, B 1e-8, C 1e-9, D 1e-10
    const bool dedicated = res.kind == ResourceKind::Splitter || res.kind == ResourceKind::Merger;
    const double base = dedicated ? 1e-6 : 1e-5;
    double lambda = base;
    for (int i = 0; i < asil_value(res.asil); ++i) lambda /= 10.0;
    return lambda;
}

void ArchitectureModel::erase_app_node(NodeId n, bool drop_dedicated_resources) {
    app_.require(n);
    std::vector<ResourceId> owned = mapped_resources(n);
    map_g_.erase(n);
    app_.erase_node(n);
    if (drop_dedicated_resources) {
        for (ResourceId r : owned) {
            if (nodes_on_resource(r).empty()) erase_resource(r);
        }
    }
}

void ArchitectureModel::erase_resource(ResourceId r) {
    res_.require(r);
    map_h_.erase(r);
    for (auto it = map_g_.begin(); it != map_g_.end();) {
        erase_value(it->second, r);
        it = it->second.empty() ? map_g_.erase(it) : std::next(it);
    }
    res_.erase_node(r);
}

NodeId ArchitectureModel::find_app_node(std::string_view name) const {
    for (NodeId n : app_.node_ids()) {
        if (app_.node(n).name == name) return n;
    }
    return NodeId{};
}

ResourceId ArchitectureModel::find_resource(std::string_view name) const {
    for (ResourceId r : res_.node_ids()) {
        if (res_.node(r).name == name) return r;
    }
    return ResourceId{};
}

LocationId ArchitectureModel::find_location(std::string_view name) const {
    for (LocationId p : phy_.node_ids()) {
        if (phy_.node(p).name == name) return p;
    }
    return LocationId{};
}

}  // namespace asilkit

#include "analysis/traceability.h"

#include <gtest/gtest.h>

#include "explore/driver.h"
#include "io/model_json.h"
#include "scenarios/ecotwin.h"
#include "scenarios/micro.h"
#include "transform/connect.h"
#include "transform/expand.h"
#include "transform/reduce.h"

namespace asilkit::analysis {
namespace {

ArchitectureModel tagged_chain() {
    ArchitectureModel m = scenarios::chain_1in_1out();
    for (NodeId n : m.app().node_ids()) m.app().node(n).fsr = "FSR-X";
    return m;
}

TEST(Traceability, UntaggedNodesAreReported) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const TraceabilityReport report = trace_requirements(m);
    EXPECT_TRUE(report.requirements.empty());
    EXPECT_EQ(report.untraced_nodes.size(), m.app().node_count());
}

TEST(Traceability, SatisfiedRequirement) {
    const ArchitectureModel m = tagged_chain();  // all D on D hardware
    const TraceabilityReport report = trace_requirements(m);
    ASSERT_EQ(report.requirements.size(), 1u);
    const FsrStatus& status = report.requirements.front();
    EXPECT_EQ(status.fsr, "FSR-X");
    EXPECT_EQ(status.required, Asil::D);
    EXPECT_EQ(status.achieved, Asil::D);
    EXPECT_TRUE(status.satisfied);
    EXPECT_EQ(status.nodes.size(), 5u);
    EXPECT_TRUE(report.all_satisfied());
    EXPECT_NE(report.find("FSR-X"), nullptr);
    EXPECT_EQ(report.find("FSR-Y"), nullptr);
}

TEST(Traceability, WeakHardwareViolatesRequirement) {
    ArchitectureModel m = tagged_chain();
    const NodeId n = m.find_app_node("n");
    m.resources().node(m.mapped_resources(n).front()).asil = Asil::B;
    const TraceabilityReport report = trace_requirements(m);
    ASSERT_EQ(report.requirements.size(), 1u);
    const FsrStatus& status = report.requirements.front();
    EXPECT_EQ(status.achieved, Asil::B);
    EXPECT_FALSE(status.satisfied);
    EXPECT_EQ(status.under_implemented, (std::vector<std::string>{"n"}));
    EXPECT_FALSE(report.all_satisfied());
}

TEST(Traceability, DecompositionKeepsRequirementSatisfied) {
    // After Expand(), the replicas are only ASIL B(D) — but the block
    // achieves D via Eq. 4, so FSR-X must still be satisfied.
    ArchitectureModel m = tagged_chain();
    transform::expand(m, m.find_app_node("n"));
    const TraceabilityReport report = trace_requirements(m);
    ASSERT_EQ(report.requirements.size(), 1u);
    EXPECT_TRUE(report.requirements.front().satisfied)
        << "block-level credit must cover the decomposed branches";
    EXPECT_TRUE(report.untraced_nodes.empty()) << "expansion must propagate the FSR";
    // All 12 nodes trace to the FSR now.
    EXPECT_EQ(report.requirements.front().nodes.size(), 12u);
}

TEST(Traceability, BrokenBlockIsDetected) {
    // Downgrade one branch after expansion: block ASIL drops to C < D.
    ArchitectureModel m = tagged_chain();
    const auto r = transform::expand(m, m.find_app_node("n"));
    m.resources().node(m.mapped_resources(r.replicas[0]).front()).asil = Asil::A;
    m.app().node(r.replicas[0]).asil.level = Asil::A;
    const TraceabilityReport report = trace_requirements(m);
    ASSERT_EQ(report.requirements.size(), 1u);
    EXPECT_FALSE(report.requirements.front().satisfied);
}

TEST(Traceability, SurvivesFullTransformationFlow) {
    ArchitectureModel m = scenarios::chain_two_stages();
    for (NodeId n : m.app().node_ids()) m.app().node(n).fsr = "FSR-CHAIN";
    transform::expand(m, m.find_app_node("n1"));
    transform::expand(m, m.find_app_node("n2"));
    transform::reduce_all(m);
    transform::connect_all(m);
    const TraceabilityReport report = trace_requirements(m);
    EXPECT_TRUE(report.untraced_nodes.empty());
    ASSERT_EQ(report.requirements.size(), 1u);
    EXPECT_TRUE(report.requirements.front().satisfied);
}

TEST(Traceability, EcotwinRequirementsAllSatisfiedBeforeAndAfter) {
    const ArchitectureModel before = scenarios::ecotwin_lateral_control();
    const TraceabilityReport r_before = trace_requirements(before);
    EXPECT_TRUE(r_before.untraced_nodes.empty());
    EXPECT_GE(r_before.requirements.size(), 4u);
    EXPECT_TRUE(r_before.all_satisfied());
    ASSERT_NE(r_before.find("FSR-LAT-01"), nullptr);
    EXPECT_EQ(r_before.find("FSR-LAT-01")->required, Asil::D);

    explore::ExplorationOptions options;
    options.probability.approximate = true;
    const auto result =
        explore::run_exploration(before, scenarios::ecotwin_decision_nodes(), options);
    const TraceabilityReport r_after = trace_requirements(result.final_model);
    EXPECT_TRUE(r_after.all_satisfied());
    const FsrStatus* lat01 = r_after.find("FSR-LAT-01");
    ASSERT_NE(lat01, nullptr);
    EXPECT_EQ(lat01->required, Asil::D);
    EXPECT_EQ(lat01->achieved, Asil::D);
    // Decomposition multiplied the implementing nodes.
    EXPECT_GT(lat01->nodes.size(), r_before.find("FSR-LAT-01")->nodes.size());
}

TEST(Traceability, FsrSurvivesJsonRoundTrip) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    const ArchitectureModel reloaded = io::model_from_json(io::to_json(m));
    const NodeId n = reloaded.find_app_node("world_model");
    ASSERT_TRUE(n.valid());
    EXPECT_EQ(reloaded.app().node(n).fsr, "FSR-LAT-01");
}

TEST(Traceability, RequiredIsMaxInheritedAcrossNodes) {
    ArchitectureModel m("mixed");
    const LocationId loc = m.add_location({"zone", kDefaultLocationLambda, {}});
    AppNode a{"a", NodeKind::Functional, AsilTag{Asil::B, Asil::B}, "FSR-M"};
    AppNode b{"b", NodeKind::Functional, AsilTag{Asil::B, Asil::D}, "FSR-M"};  // decomposed
    m.add_node_with_dedicated_resource(std::move(a), loc);
    m.add_node_with_dedicated_resource(std::move(b), loc);
    const TraceabilityReport report = trace_requirements(m);
    ASSERT_EQ(report.requirements.size(), 1u);
    EXPECT_EQ(report.requirements.front().required, Asil::D);
    EXPECT_FALSE(report.requirements.front().satisfied);  // lone B(D) without a block
}

}  // namespace
}  // namespace asilkit::analysis

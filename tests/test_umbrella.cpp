// Compile-level test: the umbrella header exposes the whole public API
// coherently (no missing includes, no ODR surprises), plus a few
// end-to-end snippets written purely against it.
#include "asilkit.h"

#include <gtest/gtest.h>

namespace asilkit {
namespace {

TEST(Umbrella, VersionIsExposed) {
    EXPECT_EQ(kVersionMajor, 1);
    EXPECT_STREQ(kVersionString, "1.0.0");
}

TEST(Umbrella, ReadmeQuickstartSnippetWorks) {
    ArchitectureModel m = scenarios::chain_1in_1out();
    const auto p0 = analysis::analyze_failure_probability(m);
    const double c0 = cost::total_cost(m, cost::CostMetric::exponential_metric1());
    transform::expand(m, m.find_app_node("n"));
    const auto p1 = analysis::analyze_failure_probability(m);
    const bool ok = analysis::analyze_ccf(m).independent();
    EXPECT_LT(p1.failure_probability, p0.failure_probability);
    EXPECT_GT(c0, 0.0);
    EXPECT_TRUE(ok);
}

TEST(Umbrella, EveryAnalysisRunsOnEveryScenario) {
    const ArchitectureModel models[] = {
        scenarios::chain_1in_1out(),
        scenarios::fig3_camera_gps_fusion(),
        scenarios::ecotwin_lateral_control(),
        scenarios::ecotwin_longitudinal_control(),
    };
    for (const ArchitectureModel& m : models) {
        EXPECT_NO_THROW({
            (void)analysis::analyze_failure_probability(m);
            (void)analysis::analyze_ccf(m);
            (void)analysis::analyze_fault_tolerance(m);
            (void)analysis::trace_requirements(m);
            (void)analysis::fmea_report(m);
            (void)analysis::tornado(m, 10.0);
            (void)cost::cost_report(m, cost::CostMetric::exponential_metric1());
            (void)io::to_json(m);
            (void)io::app_graph_to_dot(m);
            (void)io::app_graph_to_graphml(m);
            (void)validate(m);
        }) << m.name();
    }
}

}  // namespace
}  // namespace asilkit

#include "model/resource.h"

#include <ostream>

namespace asilkit {

std::string_view to_string(ResourceKind k) noexcept {
    switch (k) {
        case ResourceKind::Sensor: return "sensor";
        case ResourceKind::Actuator: return "actuator";
        case ResourceKind::Functional: return "functional";
        case ResourceKind::Communication: return "communication";
        case ResourceKind::Splitter: return "splitter";
        case ResourceKind::Merger: return "merger";
    }
    return "?";
}

std::ostream& operator<<(std::ostream& os, ResourceKind k) { return os << to_string(k); }

ResourceKind default_resource_kind(NodeKind k) noexcept {
    switch (k) {
        case NodeKind::Sensor: return ResourceKind::Sensor;
        case NodeKind::Actuator: return ResourceKind::Actuator;
        case NodeKind::Functional: return ResourceKind::Functional;
        case NodeKind::Communication: return ResourceKind::Communication;
        case NodeKind::Splitter: return ResourceKind::Splitter;
        case NodeKind::Merger: return ResourceKind::Merger;
    }
    return ResourceKind::Functional;
}

bool mapping_compatible(NodeKind n, ResourceKind r) noexcept {
    switch (n) {
        case NodeKind::Sensor: return r == ResourceKind::Sensor;
        case NodeKind::Actuator: return r == ResourceKind::Actuator;
        case NodeKind::Functional: return r == ResourceKind::Functional;
        case NodeKind::Communication: return r == ResourceKind::Communication;
        case NodeKind::Splitter:
            return r == ResourceKind::Splitter || r == ResourceKind::Functional ||
                   r == ResourceKind::Communication;
        case NodeKind::Merger:
            return r == ResourceKind::Merger || r == ResourceKind::Functional ||
                   r == ResourceKind::Communication;
    }
    return false;
}

}  // namespace asilkit

// Pareto-front extraction over trade-off points (lower cost AND lower
// failure probability are both better).  Used to compare curve families
// (Fig. 1: which decomposition/metric combinations dominate).
#pragma once

#include <vector>

#include "explore/tradeoff.h"

namespace asilkit::explore {

/// True iff `a` dominates `b` (no worse in both objectives, strictly
/// better in at least one).
[[nodiscard]] bool dominates(const TradeoffPoint& a, const TradeoffPoint& b) noexcept;

/// The non-dominated subset, sorted by ascending cost.
[[nodiscard]] std::vector<TradeoffPoint> pareto_front(const std::vector<TradeoffPoint>& points);

}  // namespace asilkit::explore

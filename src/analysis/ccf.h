// Common-Cause-Fault analysis (paper Section V).
//
// ASIL decomposition is only valid when the redundant branches are
// independent.  Three ways independence breaks, in decreasing severity:
//   * SharedResource   — two branches mapped onto the same hardware: one
//                        base event fails both branches at once (the
//                        paper's dfus_1/dfus_2-on-one-ECU example);
//   * SharedLocation   — branch hardware hosted at the same physical
//                        position: a single local event (crash intrusion,
//                        fire) removes both branches;
//   * SharedEnvironment — branch hardware in different locations that
//                        nevertheless share a non-benign environmental
//                        zone (temperature / vibration / EMI / water):
//                        the Freedom-From-Interference concern.
//
// A SharedResource finding additionally invalidates the Section V
// fault-tree approximation (the approximation requires the branches not
// to share base events); the fault-tree builder performs the same check
// and falls back to the exact expansion.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/ids.h"
#include "model/architecture.h"

namespace asilkit::analysis {

enum class CcfKind : std::uint8_t {
    SharedResource,
    SharedLocation,
    SharedEnvironment,
};

[[nodiscard]] std::string_view to_string(CcfKind k) noexcept;

struct CcfFinding {
    CcfKind kind = CcfKind::SharedResource;
    NodeId merger;                            ///< the block where independence breaks
    std::string subject;                      ///< resource/location/zone name
    std::vector<std::size_t> branch_indices;  ///< branches sharing it
    std::string message;
};

std::ostream& operator<<(std::ostream& os, const CcfFinding& f);

struct CcfReport {
    std::vector<CcfFinding> findings;

    [[nodiscard]] bool independent() const noexcept { return findings.empty(); }
    /// True when the block at `merger` has no finding of any kind.
    [[nodiscard]] bool block_independent(NodeId merger) const noexcept;
    /// True when the block at `merger` has no SharedResource finding — the
    /// condition for the fault-tree approximation and for the validity of
    /// the decomposition's base-event independence.
    [[nodiscard]] bool block_approximation_safe(NodeId merger) const noexcept;
    [[nodiscard]] std::size_t count(CcfKind kind) const noexcept;
};

struct CcfOptions {
    bool check_locations = true;
    bool check_environment = true;
};

[[nodiscard]] CcfReport analyze_ccf(const ArchitectureModel& m, const CcfOptions& options = {});

}  // namespace asilkit::analysis

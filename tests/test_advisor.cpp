#include "explore/advisor.h"

#include <gtest/gtest.h>

#include "scenarios/ecotwin.h"
#include "scenarios/micro.h"

namespace asilkit::explore {
namespace {

TEST(Advisor, CoversEveryExpandableNode) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const auto advice = advise_expansions(m);
    // n, c_in, c_out are expandable; sensor/actuator are not.
    ASSERT_EQ(advice.size(), 3u);
    for (const auto& a : advice) {
        EXPECT_TRUE(a.node == "n" || a.node == "c_in" || a.node == "c_out") << a.node;
    }
}

TEST(Advisor, FunctionalExpansionRecommendedUnderTable1) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const auto advice = advise_expansions(m);
    // Best entry: the functional node (removes 1e-9, adds 2e-10).
    EXPECT_EQ(advice.front().node, "n");
    EXPECT_LT(advice.front().delta_probability, 0.0);
    EXPECT_TRUE(advice.front().recommended);
}

TEST(Advisor, CommExpansionRaisesBothAxesAndIsNotRecommended) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const auto advice = advise_expansions(m);
    for (const auto& a : advice) {
        if (a.kind != NodeKind::Communication) continue;
        // c_pre/c_post D comm resources add ~2e-9, removed comm is 1e-9;
        // the same two resources add 80000 cost against 40000 removed.
        EXPECT_GT(a.delta_probability, 0.0) << a.node;
        EXPECT_GT(a.delta_cost, 0.0) << a.node;
        EXPECT_FALSE(a.recommended) << a.node;
    }
}

TEST(Advisor, ToleranceEnablesCostDrivenRecommendations) {
    // With management hardware as failure-prone as ordinary hardware, a
    // functional expansion raises P slightly (+1e-9) but still saves cost
    // (-27400): recommended only when the caller tolerates the risk.
    const ArchitectureModel m = scenarios::chain_1in_1out();
    AdvisorOptions strict;
    strict.probability.rates.set_rate(ResourceKind::Splitter, Asil::D, 1e-9);
    strict.probability.rates.set_rate(ResourceKind::Merger, Asil::D, 1e-9);
    const auto no_tolerance = advise_expansions(m, strict);
    AdvisorOptions lenient = strict;
    lenient.probability_tolerance = 0.5;
    const auto with_tolerance = advise_expansions(m, lenient);
    for (const auto& a : no_tolerance) {
        if (a.node == "n") {
            EXPECT_GT(a.delta_probability, 0.0);
            EXPECT_LT(a.delta_cost, 0.0);
            EXPECT_FALSE(a.recommended);
        }
    }
    for (const auto& a : with_tolerance) {
        if (a.node == "n") { EXPECT_TRUE(a.recommended); }
    }
}

TEST(Advisor, SortedByProbabilityDelta) {
    const ArchitectureModel m = scenarios::ecotwin_lateral_control();
    AdvisorOptions options;
    options.probability.approximate = true;
    const auto advice = advise_expansions(m, options);
    ASSERT_GT(advice.size(), 5u);
    for (std::size_t i = 1; i < advice.size(); ++i) {
        EXPECT_LE(advice[i - 1].delta_probability, advice[i].delta_probability);
    }
}

TEST(Advisor, TrialDoesNotMutateInput) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    const std::size_t nodes = m.app().node_count();
    (void)advise_expansions(m);
    EXPECT_EQ(m.app().node_count(), nodes);
    EXPECT_TRUE(m.find_app_node("n").valid());
}

TEST(Advisor, RespectsStrategyAndBranchCount) {
    const ArchitectureModel m = scenarios::chain_1in_1out();
    AdvisorOptions three_way;
    three_way.branches = 3;
    const auto advice2 = advise_expansions(m);
    const auto advice3 = advise_expansions(m, three_way);
    // Three BB branches on D are {B, A, A}: the third branch is weaker
    // and CHEAPER than the B branch it replaces, so the 3-way expansion
    // saves slightly more under the exponential metric.
    double cost2 = 0.0;
    double cost3 = 0.0;
    for (const auto& a : advice2) {
        if (a.node == "n") cost2 = a.delta_cost;
    }
    for (const auto& a : advice3) {
        if (a.node == "n") cost3 = a.delta_cost;
    }
    EXPECT_NE(cost3, cost2);
    EXPECT_LT(cost3, cost2);
}

}  // namespace
}  // namespace asilkit::explore
